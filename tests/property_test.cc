// Property-style tests: statistical invariants (unbiasedness, coverage,
// proportional allocation) and structural invariants under parameter sweeps.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/janus.h"
#include "core/partitioner_1d.h"
#include "core/spt.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "sampling/reservoir.h"
#include "util/invariants.h"
#include "util/stats.h"

namespace janus {
namespace {

// ---------------------------------------------------------------------------
// Reservoir invariant: m <= |S| <= 2m under arbitrary insert/delete churn.
// ---------------------------------------------------------------------------

class ReservoirChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReservoirChurnTest, SizeBoundsHoldUnderChurn) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  DynamicTable table(Schema{{"x"}});
  DynamicReservoir res(100, seed);
  uint64_t next_id = 0;
  for (int step = 0; step < 20000; ++step) {
    if (table.size() < 200 || rng.NextDouble() < 0.55) {
      Tuple t;
      t.id = next_id++;
      t[0] = rng.NextDouble();
      table.Insert(t);
      res.OnInsert(t, table.size());
    } else {
      const Tuple victim = table.SampleOne(&rng);
      table.Delete(victim.id);
      ReservoirChange ch = res.OnDelete(victim.id);
      if (ch.needs_resample) {
        res.Reset(table.SampleUniform(&rng, res.capacity()));
      }
    }
    // m <= |S| <= 2m once the reservoir has had a chance to fill (the table
    // itself can be smaller than m early on or right after a reset).
    ASSERT_GE(res.size(), std::min(res.lower_bound(), table.size()));
    ASSERT_LE(res.size(), res.capacity());
    // Every sample is live, and the reservoir's internal slot index stays a
    // bijection (periodically — the audit is O(|S|)).
    if (step % 2500 == 0) {
      for (const Tuple& t : res.samples()) {
        ASSERT_TRUE(table.Find(t.id).has_value());
      }
      invariants::MaybeAudit(res);
      invariants::MaybeAudit(table.store());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservoirChurnTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Proportional allocation (Appendix B): strata of size >= (16/alpha) log k
// receive at least half their proportional sample share w.h.p.
// ---------------------------------------------------------------------------

TEST(ProportionalAllocationTest, LargeStrataGetProportionalShare) {
  const size_t n = 50000;
  const double alpha = 0.02;
  const int k = 16;
  auto ds = GenerateUniform(n, 1, 1234);
  int violations = 0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    Rng rng(static_cast<uint64_t>(rep) + 1);
    auto sample = [&] {
      std::vector<size_t> idx =
          rng.SampleIndices(n, static_cast<size_t>(alpha * n));
      std::vector<int> counts(k, 0);
      for (size_t i : idx) {
        int s = std::min(k - 1, static_cast<int>(ds.rows[i][0] * k));
        counts[static_cast<size_t>(s)]++;
      }
      return counts;
    }();
    const double expected = alpha * n / k;
    for (int c : sample) {
      if (c < expected / 2) ++violations;
    }
  }
  // Appendix B: violation probability <= 1/k per stratum set; across
  // 20 * 16 = 320 stratum draws we allow a generous handful.
  EXPECT_LE(violations, 4);
}

// ---------------------------------------------------------------------------
// Estimator unbiasedness: the mean DPT estimate over independent reservoirs
// matches the truth within Monte-Carlo error.
// ---------------------------------------------------------------------------

class UnbiasednessTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(UnbiasednessTest, CatchupEstimatorCentersOnTruth) {
  const AggFunc f = GetParam();
  auto ds = GenerateUniform(10000, 1, 55);
  SynopsisSpec spec;
  spec.agg_column = 1;
  spec.predicate_columns = {0};
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.23}, {0.81});
  const auto truth = ExactAnswer(ds.rows, q);
  ASSERT_TRUE(truth.has_value());

  std::vector<double> estimates;
  for (uint64_t rep = 0; rep < 30; ++rep) {
    DptOptions opts;
    opts.spec = spec;
    std::vector<double> boundaries;
    for (int b = 1; b < 8; ++b) boundaries.push_back(b / 8.0);
    Dpt dpt(opts, BuildBalanced1dTree(boundaries));
    Rng rng(rep * 131 + 7);
    std::vector<size_t> idx = rng.SampleIndices(ds.rows.size(), 300);
    std::vector<Tuple> sample;
    for (size_t i : idx) sample.push_back(ds.rows[i]);
    dpt.InitializeFromReservoir(sample, ds.rows.size());
    for (int c = 0; c < 700; ++c) {
      dpt.AddCatchupSample(ds.rows[rng.NextUint64(ds.rows.size())]);
    }
    estimates.push_back(dpt.Query(q).estimate);
  }
  const double mean = Mean(estimates);
  // Mean of 30 estimates within 3% of truth (each is already ~2% accurate).
  EXPECT_NEAR(mean / *truth, 1.0, 0.03) << AggFuncName(f);
}

INSTANTIATE_TEST_SUITE_P(Funcs, UnbiasednessTest,
                         ::testing::Values(AggFunc::kSum, AggFunc::kCount,
                                           AggFunc::kAvg),
                         [](const auto& info) {
                           return AggFuncName(info.param);
                         });

// ---------------------------------------------------------------------------
// Partition-tree structural invariants across a (k, focus, data-shape) sweep.
// ---------------------------------------------------------------------------

struct SweepParam {
  int num_leaves;
  AggFunc focus;
  uint64_t seed;
};

class PartitionSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PartitionSweepTest, InvariantsHold) {
  const SweepParam p = GetParam();
  auto ds = GenerateUniform(4000, 1, p.seed);
  SptOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = p.num_leaves;
  o.focus = p.focus;
  o.sample_rate = 0.1;
  std::vector<Tuple> sample(ds.rows.begin(), ds.rows.begin() + 800);
  const PartitionResult pr = OptimizePartition(sample, o, ds.rows.size());
  ASSERT_TRUE(pr.ok);
  const PartitionTreeSpec& spec = pr.spec;
  ASSERT_LE(spec.num_leaves(), p.num_leaves);
  // (1) Every child is a subset of its parent; (2) siblings tile the parent;
  // (3) every sample routes to exactly one leaf containing it.
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const PartitionNode& n = spec.nodes[i];
    if (n.IsLeaf()) continue;
    const PartitionNode& l = spec.nodes[static_cast<size_t>(n.left)];
    const PartitionNode& r = spec.nodes[static_cast<size_t>(n.right)];
    ASSERT_TRUE(n.rect.Covers(l.rect));
    ASSERT_TRUE(n.rect.Covers(r.rect));
    ASSERT_DOUBLE_EQ(l.rect.hi(n.split_dim), n.split_val);
    ASSERT_DOUBLE_EQ(r.rect.lo(n.split_dim), n.split_val);
  }
  for (const Tuple& t : sample) {
    const double x = t[0];
    const int leaf = spec.LeafFor(&x);
    ASSERT_TRUE(spec.nodes[static_cast<size_t>(leaf)].IsLeaf());
    ASSERT_TRUE(spec.nodes[static_cast<size_t>(leaf)].rect.Contains(&x));
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> out;
  for (int k : {2, 8, 32, 128}) {
    for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
      for (uint64_t seed : {11u, 22u}) {
        out.push_back({k, f, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionSweepTest,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const auto& info) {
                           return std::string("k") +
                                  std::to_string(info.param.num_leaves) +
                                  AggFuncName(info.param.focus) + "s" +
                                  std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// System-level conservation: after arbitrary mixed churn, the DPT's root
// count estimate tracks the live table size.
// ---------------------------------------------------------------------------

class ChurnConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnConservationTest, RootCountTracksTableSize) {
  auto ds = GenerateUniform(8000, 1, GetParam());
  JanusOptions opts;
  opts.spec.agg_column = 1;
  opts.spec.predicate_columns = {0};
  opts.num_leaves = 16;
  opts.sample_rate = 0.02;
  opts.enable_triggers = false;
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  Rng rng(GetParam() * 31 + 1);
  uint64_t next_id = 1000000;
  std::vector<uint64_t> live_ids;
  for (const Tuple& t : ds.rows) live_ids.push_back(t.id);
  for (int step = 0; step < 5000; ++step) {
    if (rng.NextDouble() < 0.6) {
      Tuple t;
      t.id = next_id++;
      t[0] = rng.NextDouble();
      t[1] = rng.Normal(10, 2);
      system.Insert(t);
      live_ids.push_back(t.id);
    } else if (!live_ids.empty()) {
      const size_t i = rng.NextUint64(live_ids.size());
      if (system.Delete(live_ids[i])) {
        live_ids[i] = live_ids.back();
        live_ids.pop_back();
      }
    }
  }
  const double n = static_cast<double>(system.table().size());
  EXPECT_NEAR(system.dpt().NodeCountEstimate(0), n, n * 0.03);
  // Full-system structural audit after the churn: archive store, reservoir
  // liveness, synopsis trees and the sample mirror.
  invariants::MaybeAudit(system);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnConservationTest,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// CI calibration sweep: coverage stays sane across sample rates.
// ---------------------------------------------------------------------------

class CoverageSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverageSweepTest, CiCoverageAboveFloor) {
  const double rate = GetParam();
  auto ds = GenerateUniform(10000, 1, 777);
  JanusOptions opts;
  opts.spec.agg_column = 1;
  opts.spec.predicate_columns = {0};
  opts.num_leaves = 16;
  opts.sample_rate = rate;
  opts.enable_triggers = false;
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  Rng qrng(5);
  int covered = 0, total = 0;
  for (int i = 0; i < 150; ++i) {
    double a = qrng.NextDouble(), b = qrng.NextDouble();
    if (a > b) std::swap(a, b);
    AggQuery q;
    q.func = AggFunc::kSum;
    q.agg_column = 1;
    q.predicate_columns = {0};
    q.rect = Rectangle({a}, {b});
    const auto truth = ExactAnswer(ds.rows, q);
    if (!truth.has_value() || *truth == 0) continue;
    const QueryResult r = system.Query(q);
    if (r.ci_half_width <= 0) continue;
    ++total;
    covered += std::abs(r.estimate - *truth) <= r.ci_half_width;
  }
  ASSERT_GT(total, 60);
  EXPECT_GT(static_cast<double>(covered) / total, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Rates, CoverageSweepTest,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05));

}  // namespace
}  // namespace janus
