#include "core/node_stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace janus {
namespace {

TEST(MinMaxTrackerTest, TracksExtremaUnderInserts) {
  MinMaxTracker mm(4);
  EXPECT_FALSE(mm.Min().has_value());
  EXPECT_FALSE(mm.Max().has_value());
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) mm.Insert(v);
  EXPECT_DOUBLE_EQ(*mm.Min(), 1.0);
  EXPECT_DOUBLE_EQ(*mm.Max(), 9.0);
  EXPECT_FALSE(mm.degraded());
}

TEST(MinMaxTrackerTest, EraseUpdatesExtrema) {
  MinMaxTracker mm(8);
  for (double v : {1.0, 2.0, 3.0, 4.0}) mm.Insert(v);
  mm.Erase(1.0);
  EXPECT_DOUBLE_EQ(*mm.Min(), 2.0);
  mm.Erase(4.0);
  EXPECT_DOUBLE_EQ(*mm.Max(), 3.0);
  EXPECT_FALSE(mm.degraded());
}

TEST(MinMaxTrackerTest, HeapBoundedAtK) {
  // With k = 2, only the 2 smallest / largest are retained: deleting the
  // tracked minimum twice exposes the next tracked value, after which the
  // true minimum may be unknown but the tracker still answers.
  MinMaxTracker mm(2);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) mm.Insert(v);
  EXPECT_DOUBLE_EQ(*mm.Min(), 1.0);
  mm.Erase(1.0);
  EXPECT_DOUBLE_EQ(*mm.Min(), 2.0);
  mm.Erase(2.0);
  // Bottom heap is now a single survivor; it refuses to empty.
  const auto min_now = mm.Min();
  ASSERT_TRUE(min_now.has_value());
}

TEST(MinMaxTrackerTest, RefusesToEmptyAndDegrades) {
  MinMaxTracker mm(2);
  mm.Insert(10.0);
  mm.Erase(10.0);  // would empty both heaps: refused, tracker degrades
  EXPECT_TRUE(mm.degraded());
  ASSERT_TRUE(mm.Min().has_value());
  ASSERT_TRUE(mm.Max().has_value());
  // Outer approximation: the stale value remains visible.
  EXPECT_DOUBLE_EQ(*mm.Min(), 10.0);
}

TEST(MinMaxTrackerTest, EraseUntrackedValueIsNoop) {
  MinMaxTracker mm(4);
  for (double v : {1.0, 2.0, 3.0}) mm.Insert(v);
  mm.Erase(99.0);  // not tracked (and larger than tracked max)
  EXPECT_DOUBLE_EQ(*mm.Min(), 1.0);
  EXPECT_DOUBLE_EQ(*mm.Max(), 3.0);
  EXPECT_FALSE(mm.degraded());
}

TEST(MinMaxTrackerTest, DuplicatesErasedOneAtATime) {
  MinMaxTracker mm(8);
  mm.Insert(5.0);
  mm.Insert(5.0);
  mm.Insert(7.0);
  mm.Erase(5.0);
  EXPECT_DOUBLE_EQ(*mm.Min(), 5.0);  // one copy remains
  mm.Erase(5.0);
  EXPECT_DOUBLE_EQ(*mm.Min(), 7.0);
}

TEST(MinMaxTrackerTest, ClearResets) {
  MinMaxTracker mm(4);
  mm.Insert(1.0);
  mm.Erase(1.0);
  EXPECT_TRUE(mm.degraded());
  mm.Clear();
  EXPECT_FALSE(mm.degraded());
  EXPECT_FALSE(mm.Min().has_value());
}

TEST(MinMaxTrackerTest, RandomizedAgainstBruteForceWhileWithinK) {
  // As long as fewer than k deletions-from-the-extremes occur, the tracker
  // must report the exact min/max of the live multiset.
  Rng rng(3);
  MinMaxTracker mm(64);
  std::multiset<double> ref;
  for (int step = 0; step < 500; ++step) {
    if (ref.size() < 40 || rng.NextDouble() < 0.7) {
      const double v = rng.Uniform(-100, 100);
      mm.Insert(v);
      ref.insert(v);
    } else {
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.NextUint64(ref.size())));
      mm.Erase(*it);
      ref.erase(it);
    }
    ASSERT_DOUBLE_EQ(*mm.Min(), *ref.begin());
    ASSERT_DOUBLE_EQ(*mm.Max(), *ref.rbegin());
  }
}

TEST(NodeStatsTest, ClearDynamicPreservesExact) {
  NodeStats ns;
  ns.exact.Add(5);
  ns.inserted.Add(3);
  ns.removed.Add(1);
  ns.catchup.count = 7;
  ns.ClearDynamic();
  EXPECT_DOUBLE_EQ(ns.exact.count, 1);
  EXPECT_DOUBLE_EQ(ns.inserted.count, 0);
  EXPECT_DOUBLE_EQ(ns.removed.count, 0);
  EXPECT_DOUBLE_EQ(ns.catchup.count, 0);
}

}  // namespace
}  // namespace janus
