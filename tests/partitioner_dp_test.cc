#include "core/partitioner_dp.h"

#include <gtest/gtest.h>

#include "core/max_variance.h"
#include "core/partitioner_1d.h"
#include "util/rng.h"
#include "util/timer.h"

namespace janus {
namespace {

std::vector<std::pair<double, double>> RandomSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> out;
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(rng.NextDouble(), rng.LogNormal(0, 1));
  }
  return out;
}

TEST(DpPartitionerTest, ProducesAtMostKBuckets) {
  PartitionerDpOptions opts;
  opts.num_leaves = 8;
  const PartitionResult r = BuildPartitionDP(RandomSamples(500, 1), opts);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.spec.num_leaves(), 8);
  EXPECT_GE(r.spec.num_leaves(), 2);
}

TEST(DpPartitionerTest, EmptyInput) {
  PartitionerDpOptions opts;
  const PartitionResult r = BuildPartitionDP({}, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.num_leaves(), 1);
}

TEST(DpPartitionerTest, SingleSample) {
  PartitionerDpOptions opts;
  opts.num_leaves = 4;
  const PartitionResult r = BuildPartitionDP({{0.5, 1.0}}, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.num_leaves(), 1);
  EXPECT_DOUBLE_EQ(r.achieved_error, 0.0);
}

TEST(DpPartitionerTest, MinimaxNoWorseThanSingleBucket) {
  auto samples = RandomSamples(400, 3);
  PartitionerDpOptions one;
  one.num_leaves = 1;
  PartitionerDpOptions many;
  many.num_leaves = 16;
  const double e1 = BuildPartitionDP(samples, one).achieved_error;
  const double e16 = BuildPartitionDP(samples, many).achieved_error;
  EXPECT_LE(e16, e1 + 1e-12);
}

class DpVsBsTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(DpVsBsTest, DpAtLeastAsAccurateButSlower) {
  const AggFunc f = GetParam();
  Rng rng(5);
  std::vector<KdPoint> pts;
  std::vector<std::pair<double, double>> pairs;
  for (size_t i = 0; i < 2000; ++i) {
    KdPoint p;
    p.id = i;
    p.x[0] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1.5);
    pts.push_back(p);
    pairs.emplace_back(p.x[0], p.a);
  }
  MaxVarianceIndex::Options mo;
  mo.dims = 1;
  mo.focus = f;
  MaxVarianceIndex idx(mo);
  idx.Build(pts);

  Partitioner1dOptions bs_opts;
  bs_opts.num_leaves = 32;
  bs_opts.focus = f;
  bs_opts.data_size = 200000;
  Timer bs_timer;
  const PartitionResult bs = BuildPartition1D(idx, bs_opts);
  const double bs_seconds = bs_timer.ElapsedSeconds();

  PartitionerDpOptions dp_opts;
  dp_opts.num_leaves = 32;
  dp_opts.focus = f;
  Timer dp_timer;
  const PartitionResult dp = BuildPartitionDP(pairs, dp_opts);
  const double dp_seconds = dp_timer.ElapsedSeconds();

  ASSERT_TRUE(bs.ok);
  ASSERT_TRUE(dp.ok);
  // DP optimizes the same objective globally: its minimax error should not
  // be much worse than BS's (both use the same approximate cost M).
  EXPECT_LE(dp.achieved_error, bs.achieved_error * 2.0 + 1e-12);
  // And the DP pass costs substantially more time (Table 3's shape).
  EXPECT_GT(dp_seconds, bs_seconds * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Funcs, DpVsBsTest,
                         ::testing::Values(AggFunc::kSum, AggFunc::kCount,
                                           AggFunc::kAvg),
                         [](const auto& info) {
                           return AggFuncName(info.param);
                         });

TEST(DpPartitionerTest, UnsortedInputIsSorted) {
  std::vector<std::pair<double, double>> samples{
      {0.9, 1}, {0.1, 2}, {0.5, 3}, {0.3, 4}, {0.7, 5}};
  PartitionerDpOptions opts;
  opts.num_leaves = 2;
  const PartitionResult r = BuildPartitionDP(samples, opts);
  ASSERT_TRUE(r.ok);
  // Boundaries must be within the key domain.
  for (int leaf : r.spec.leaves) {
    const Rectangle& rect = r.spec.nodes[static_cast<size_t>(leaf)].rect;
    EXPECT_LE(rect.lo(0), rect.hi(0));
  }
}

TEST(DpPartitionerTest, CandidateCoarseningKeepsResultReasonable) {
  auto samples = RandomSamples(5000, 7);
  PartitionerDpOptions fine;
  fine.num_leaves = 8;
  fine.max_candidates = 5000;
  PartitionerDpOptions coarse;
  coarse.num_leaves = 8;
  coarse.max_candidates = 250;
  const double ef = BuildPartitionDP(samples, fine).achieved_error;
  const double ec = BuildPartitionDP(samples, coarse).achieved_error;
  EXPECT_LE(ec, ef * 3.0 + 1e-12);
}

}  // namespace
}  // namespace janus
