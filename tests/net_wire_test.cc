// Wire-format hardening for the serving tier (net/wire.h).
//
// The contract under test: every payload type round-trips bit-exactly
// through the persist serde (doubles included), and every malformed frame —
// wrong magic, unknown version, reserved flags, hostile payload length,
// truncated header, flipped payload bit — fails with a *typed*
// ApiException(kMalformedFrame) before the payload is trusted, never a
// crash or an unbounded allocation. Counters ride as plain u64, so a
// QueryResult whose covered_nodes exceeds the byte length of the frame
// carrying it (real sharded-merge outputs do) must still round-trip.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/error.h"
#include "net/wire.h"
#include "persist/serde.h"

namespace janus {
namespace net {
namespace {

template <typename T, typename WriteFn, typename ReadFn>
T RoundTrip(const T& value, WriteFn write, ReadFn read) {
  persist::Writer w;
  write(value, &w);
  persist::Reader r(w.buffer());
  T out = read(&r);
  EXPECT_EQ(r.remaining(), 0u) << "decoder left trailing bytes";
  return out;
}

AggQuery SampleQuery() {
  AggQuery q;
  q.func = AggFunc::kAvg;
  q.agg_column = 3;
  q.predicate_columns = {0, 2};
  q.rect = Rectangle({-1.5, 0.0}, {2.5, 1e9});
  return q;
}

TEST(NetWireTest, AggQueryRoundTripsBitExactly) {
  const AggQuery q = SampleQuery();
  const AggQuery out = RoundTrip(q, WriteAggQuery, ReadAggQuery);
  EXPECT_EQ(out.func, q.func);
  EXPECT_EQ(out.agg_column, q.agg_column);
  EXPECT_EQ(out.predicate_columns, q.predicate_columns);
  ASSERT_EQ(out.rect.dims(), q.rect.dims());
  for (int d = 0; d < q.rect.dims(); ++d) {
    EXPECT_EQ(out.rect.lo(d), q.rect.lo(d));
    EXPECT_EQ(out.rect.hi(d), q.rect.hi(d));
  }
}

TEST(NetWireTest, QueryResultRoundTripsIncludingErrorSlot) {
  QueryResult res;
  res.estimate = -0.0;  // signed zero must survive
  res.ci_half_width = 0.125;
  res.variance_catchup = 1e-300;
  res.variance_sample = std::numeric_limits<double>::infinity();
  res.covered_nodes = 17;
  res.partial_leaves = 5;
  res.exact = true;
  res.ok = false;
  res.error_code = static_cast<uint32_t>(ApiErrorCode::kRejectedRateLimit);
  res.error_detail = "tenant 7 over budget";

  const QueryResult out = RoundTrip(res, WriteQueryResult, ReadQueryResult);
  EXPECT_EQ(std::signbit(out.estimate), std::signbit(res.estimate));
  EXPECT_EQ(out.estimate, res.estimate);
  EXPECT_EQ(out.ci_half_width, res.ci_half_width);
  EXPECT_EQ(out.variance_catchup, res.variance_catchup);
  EXPECT_EQ(out.variance_sample, res.variance_sample);
  EXPECT_EQ(out.covered_nodes, res.covered_nodes);
  EXPECT_EQ(out.partial_leaves, res.partial_leaves);
  EXPECT_EQ(out.exact, res.exact);
  EXPECT_EQ(out.ok, res.ok);
  EXPECT_EQ(out.error_code, res.error_code);
  EXPECT_EQ(out.error_detail, res.error_detail);
}

TEST(NetWireTest, CountersLargerThanTheFrameRoundTrip) {
  // Regression guard: counters are plain u64 on the wire, NOT Size()
  // values. A Size() read validates against the payload byte count, and a
  // merged sharded result routinely reports covered_nodes greater than the
  // byte length of its own frame — that must decode fine.
  QueryResult res;
  res.covered_nodes = 1u << 20;    // far larger than the encoded payload
  res.partial_leaves = 123456789;  // ditto
  const QueryResult out = RoundTrip(res, WriteQueryResult, ReadQueryResult);
  EXPECT_EQ(out.covered_nodes, res.covered_nodes);
  EXPECT_EQ(out.partial_leaves, res.partial_leaves);

  EngineStats stats;
  stats.engine = "sharded:janus";
  stats.rows = size_t{1} << 40;  // counters exceed any frame length
  stats.sample_size = 999999999;
  stats.catchup_processed = size_t{3} << 33;
  stats.archive_bytes = size_t{7} << 34;
  stats.synopsis_bytes = size_t{5} << 32;
  const EngineStats sout = RoundTrip(stats, WriteEngineStats,
                                     ReadEngineStats);
  EXPECT_EQ(sout.engine, stats.engine);
  EXPECT_EQ(sout.rows, stats.rows);
  EXPECT_EQ(sout.sample_size, stats.sample_size);
  EXPECT_EQ(sout.catchup_processed, stats.catchup_processed);
  EXPECT_EQ(sout.archive_bytes, stats.archive_bytes);
  EXPECT_EQ(sout.synopsis_bytes, stats.synopsis_bytes);
}

TEST(NetWireTest, VectorPayloadsRoundTrip) {
  std::vector<AggQuery> qs(3, SampleQuery());
  qs[1].func = AggFunc::kCount;
  qs[2].agg_column = 1;
  const std::vector<AggQuery> qout = RoundTrip(qs, WriteQueryVec,
                                               ReadQueryVec);
  ASSERT_EQ(qout.size(), qs.size());
  EXPECT_EQ(qout[1].func, AggFunc::kCount);
  EXPECT_EQ(qout[2].agg_column, 1);

  std::vector<QueryResult> rs(2);
  rs[0].estimate = 42.0;
  rs[1].ok = false;
  rs[1].error_code = static_cast<uint32_t>(ApiErrorCode::kInternal);
  const std::vector<QueryResult> rout = RoundTrip(rs, WriteResultVec,
                                                  ReadResultVec);
  ASSERT_EQ(rout.size(), 2u);
  EXPECT_EQ(rout[0].estimate, 42.0);
  EXPECT_FALSE(rout[1].ok);

  std::vector<Tuple> ts(2);
  ts[0].id = 7;
  ts[0][0] = 1.25;
  ts[1].id = 9;
  ts[1][1] = -3.5;
  const std::vector<Tuple> tout = RoundTrip(ts, WriteTupleVec, ReadTupleVec);
  ASSERT_EQ(tout.size(), 2u);
  EXPECT_EQ(tout[0].id, 7u);
  EXPECT_EQ(tout[0][0], 1.25);
  EXPECT_EQ(tout[1].id, 9u);
  EXPECT_EQ(tout[1][1], -3.5);
}

TEST(NetWireTest, ApiErrorAndConfigEchoRoundTrip) {
  const ApiError err{ApiErrorCode::kUnknownConfigKey, "no such key 'shrads'"};
  const ApiError eout = RoundTrip(err, WriteApiError, ReadApiError);
  EXPECT_EQ(eout.code, err.code);
  EXPECT_EQ(eout.detail, err.detail);

  const ConfigKeyEcho echo = {{"leaves", "partition-tree leaf budget"},
                              {"batch_window_us", "coalescing window"}};
  const ConfigKeyEcho oout = RoundTrip(echo, WriteConfigEcho, ReadConfigEcho);
  EXPECT_EQ(oout, echo);
}

TEST(NetWireTest, StatsReplyCarriesServingCounters) {
  StatsReply reply;
  reply.engine.engine = "janus";
  reply.engine.rows = 12345;
  reply.serving.connections = 8;
  reply.serving.queries = 4000;
  reply.serving.batches = 512;
  reply.serving.batched_queries = 3900;
  reply.serving.rejected_rate_limit = 77;
  reply.serving.malformed_frames = 3;
  const StatsReply out = RoundTrip(reply, WriteStatsReply, ReadStatsReply);
  EXPECT_EQ(out.engine.engine, "janus");
  EXPECT_EQ(out.engine.rows, 12345u);
  EXPECT_EQ(out.serving.connections, 8u);
  EXPECT_EQ(out.serving.queries, 4000u);
  EXPECT_EQ(out.serving.batches, 512u);
  EXPECT_EQ(out.serving.batched_queries, 3900u);
  EXPECT_EQ(out.serving.rejected_rate_limit, 77u);
  EXPECT_EQ(out.serving.malformed_frames, 3u);
}

// ---------------------------------------------------------------------------
// Frame header validation: every corruption is a typed error, pre-payload.
// ---------------------------------------------------------------------------

std::vector<uint8_t> ValidFrame() {
  persist::Writer w;
  WriteAggQuery(SampleQuery(), &w);
  return EncodeFrame(static_cast<uint8_t>(MsgType::kQuery), /*tenant_id=*/7,
                     /*request_id=*/42, w.buffer());
}

ApiErrorCode DecodeError(const std::vector<uint8_t>& frame) {
  try {
    (void)DecodeHeader(frame.data(), std::min(frame.size(),
                                              kFrameHeaderBytes));
    return ApiErrorCode::kOk;
  } catch (const ApiException& e) {
    return e.code();
  }
}

TEST(NetWireTest, EncodeDecodeHeaderRoundTrips) {
  const std::vector<uint8_t> frame = ValidFrame();
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  const FrameHeader h = DecodeHeader(frame.data(), kFrameHeaderBytes);
  EXPECT_EQ(h.type, static_cast<uint8_t>(MsgType::kQuery));
  EXPECT_EQ(h.version, kWireVersion);
  EXPECT_EQ(h.tenant_id, 7u);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.payload_len, frame.size() - kFrameHeaderBytes);

  const std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                                     frame.end());
  EXPECT_NO_THROW(VerifyPayload(h, payload));
}

TEST(NetWireTest, BadMagicIsTyped) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[0] ^= 0xFF;
  EXPECT_EQ(DecodeError(frame), ApiErrorCode::kMalformedFrame);
}

TEST(NetWireTest, UnknownVersionIsTyped) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[6] = 0x7F;  // version low byte
  EXPECT_EQ(DecodeError(frame), ApiErrorCode::kMalformedFrame);
}

TEST(NetWireTest, ReservedFlagsMustBeZero) {
  std::vector<uint8_t> frame = ValidFrame();
  frame[5] = 0x01;  // flags byte
  EXPECT_EQ(DecodeError(frame), ApiErrorCode::kMalformedFrame);
}

TEST(NetWireTest, HostilePayloadLengthIsRejectedBeforeAllocation) {
  std::vector<uint8_t> frame = ValidFrame();
  // payload_len bytes 8-11: claim 4 GiB - 1. The decoder must reject the
  // header (cap kMaxPayloadBytes) without ever allocating the claimed size.
  frame[8] = frame[9] = frame[10] = frame[11] = 0xFF;
  EXPECT_EQ(DecodeError(frame), ApiErrorCode::kMalformedFrame);
}

TEST(NetWireTest, TruncatedHeaderIsTyped) {
  const std::vector<uint8_t> frame = ValidFrame();
  for (size_t n : {0u, 1u, 4u, 35u}) {
    try {
      (void)DecodeHeader(frame.data(), n);
      FAIL() << "header of " << n << " bytes decoded";
    } catch (const ApiException& e) {
      EXPECT_EQ(e.code(), ApiErrorCode::kMalformedFrame) << n;
    }
  }
}

TEST(NetWireTest, FlippedPayloadBitFailsTheChecksum) {
  std::vector<uint8_t> frame = ValidFrame();
  const FrameHeader h = DecodeHeader(frame.data(), kFrameHeaderBytes);
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes,
                               frame.end());
  ASSERT_FALSE(payload.empty());
  payload[payload.size() / 2] ^= 0x10;
  try {
    VerifyPayload(h, payload);
    FAIL() << "corrupt payload passed the checksum";
  } catch (const ApiException& e) {
    EXPECT_EQ(e.code(), ApiErrorCode::kMalformedFrame);
  }
}

TEST(NetWireTest, TruncatedPayloadBodyThrowsAtEveryCut) {
  // Whatever point the truncation lands on — mid-field (bounds-checked
  // Reader, PersistError) or between fields (the dims-vs-remaining sanity
  // guard, typed ApiException) — decoding must throw, never read past the
  // end or fabricate a query. Both exception types map to kMalformedFrame
  // at the frame boundary.
  persist::Writer w;
  WriteAggQuery(SampleQuery(), &w);
  const std::vector<uint8_t> full = w.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    persist::Reader r(full.data(), cut);
    EXPECT_THROW((void)ReadAggQuery(&r), std::exception) << "cut=" << cut;
  }
}

TEST(NetWireTest, GarbageQueryBodyIsRejectedNotTrusted) {
  // A body that parses as a header but claims absurd dims must fail the
  // dims-vs-remaining sanity check instead of allocating a huge rectangle.
  persist::Writer w;
  w.U8(static_cast<uint8_t>(AggFunc::kCount));
  w.I32(1);              // agg_column
  w.IntVec({0, 1, 2});   // predicate columns
  w.I32(0x40000000);     // hostile dim count
  persist::Reader r(w.buffer());
  EXPECT_THROW((void)ReadAggQuery(&r), std::exception);

  persist::Writer w2;
  w2.U8(250);            // unknown aggregate function code
  persist::Reader r2(w2.buffer());
  EXPECT_THROW((void)ReadAggQuery(&r2), ApiException);
}

}  // namespace
}  // namespace net
}  // namespace janus
