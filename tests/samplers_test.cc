#include "stream/samplers.h"

#include <map>

#include <gtest/gtest.h>

namespace janus {
namespace {

Tuple MakeTuple(uint64_t id) {
  Tuple t;
  t.id = id;
  return t;
}

class SamplersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topic_ = std::make_unique<Topic>("data", /*poll_overhead_ns=*/0);
    for (uint64_t i = 0; i < 10000; ++i) topic_->Append(MakeTuple(i));
  }
  std::unique_ptr<Topic> topic_;
};

TEST_F(SamplersTest, SingletonDrawsRequestedCount) {
  SingletonSampler sampler(topic_.get(), 1);
  SamplerStats stats;
  auto sample = sampler.Sample(500, &stats);
  EXPECT_EQ(sample.size(), 500u);
  EXPECT_EQ(stats.polls, 500u);
  EXPECT_EQ(stats.tuples_transferred, 500u);
}

TEST_F(SamplersTest, SingletonIsRoughlyUniform) {
  SingletonSampler sampler(topic_.get(), 2);
  std::map<uint64_t, int> hits;
  SamplerStats stats;
  for (int rep = 0; rep < 20; ++rep) {
    for (const Tuple& t : sampler.Sample(1000, &stats)) hits[t.id]++;
  }
  // 20k draws over 10k tuples: first and last decile should both get ~2k.
  int first_decile = 0, last_decile = 0;
  for (const auto& [id, n] : hits) {
    if (id < 1000) first_decile += n;
    if (id >= 9000) last_decile += n;
  }
  EXPECT_NEAR(first_decile, 2000, 350);
  EXPECT_NEAR(last_decile, 2000, 350);
}

TEST_F(SamplersTest, SingletonSampleOne) {
  SingletonSampler sampler(topic_.get(), 3);
  Tuple t;
  ASSERT_TRUE(sampler.SampleOne(&t));
  EXPECT_LT(t.id, 10000u);
}

TEST_F(SamplersTest, SingletonEmptyTopic) {
  Topic empty("empty", 0);
  SingletonSampler sampler(&empty, 4);
  Tuple t;
  EXPECT_FALSE(sampler.SampleOne(&t));
  SamplerStats stats;
  EXPECT_TRUE(sampler.Sample(10, &stats).empty());
}

TEST_F(SamplersTest, SequentialTransfersWholeTopic) {
  SequentialSampler sampler(topic_.get(), /*poll_size=*/1000, 5);
  SamplerStats stats;
  auto sample = sampler.Sample(500, &stats);
  EXPECT_EQ(stats.tuples_transferred, 10000u);
  EXPECT_EQ(stats.polls, 10u);
  // Binomial subsample: ~500 expected.
  EXPECT_NEAR(static_cast<double>(sample.size()), 500, 100);
}

TEST_F(SamplersTest, SequentialPollCountScalesWithPollSize) {
  SequentialSampler small(topic_.get(), 100, 6);
  SequentialSampler large(topic_.get(), 5000, 7);
  SamplerStats s1, s2;
  small.Sample(100, &s1);
  large.Sample(100, &s2);
  EXPECT_EQ(s1.polls, 100u);
  EXPECT_EQ(s2.polls, 2u);
}

TEST_F(SamplersTest, SequentialUniformAcrossPositions) {
  SequentialSampler sampler(topic_.get(), 512, 8);
  std::map<uint64_t, int> hits;
  SamplerStats stats;
  for (int rep = 0; rep < 20; ++rep) {
    for (const Tuple& t : sampler.Sample(1000, &stats)) hits[t.id]++;
  }
  int first = 0, last = 0;
  for (const auto& [id, n] : hits) {
    if (id < 1000) first += n;
    if (id >= 9000) last += n;
  }
  EXPECT_NEAR(first, 2000, 350);
  EXPECT_NEAR(last, 2000, 350);
}

TEST_F(SamplersTest, OverheadMakesSingletonSlowerPerTuple) {
  // With a visible per-poll cost the sequential sampler amortizes it, the
  // singleton sampler cannot — the Appendix-A tradeoff.
  Topic slow("slow", /*poll_overhead_ns=*/20000);
  for (uint64_t i = 0; i < 5000; ++i) slow.Append(MakeTuple(i));
  SingletonSampler single(&slow, 9);
  SequentialSampler sequential(&slow, 1000, 10);
  SamplerStats s1, s2;
  single.Sample(1000, &s1);
  sequential.Sample(1000, &s2);
  EXPECT_GT(s1.seconds, s2.seconds);
}

}  // namespace
}  // namespace janus
