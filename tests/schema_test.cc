#include "data/schema.h"

#include <gtest/gtest.h>

namespace janus {
namespace {

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s;
  s.column_names = {"a", "b", "c"};
  EXPECT_EQ(s.ColumnIndex("a"), 0);
  EXPECT_EQ(s.ColumnIndex("c"), 2);
  EXPECT_EQ(s.ColumnIndex("zzz"), -1);
  EXPECT_EQ(s.num_columns(), 3);
}

TEST(AggFuncTest, Names) {
  EXPECT_STREQ(AggFuncName(AggFunc::kSum), "SUM");
  EXPECT_STREQ(AggFuncName(AggFunc::kCount), "COUNT");
  EXPECT_STREQ(AggFuncName(AggFunc::kAvg), "AVG");
  EXPECT_STREQ(AggFuncName(AggFunc::kMin), "MIN");
  EXPECT_STREQ(AggFuncName(AggFunc::kMax), "MAX");
}

TEST(RectangleTest, ContainsClosedIntervals) {
  Rectangle r({0.0, 0.0}, {1.0, 2.0});
  const double inside[] = {0.5, 1.0};
  const double on_edge[] = {0.0, 2.0};
  const double outside[] = {1.5, 1.0};
  EXPECT_TRUE(r.Contains(inside));
  EXPECT_TRUE(r.Contains(on_edge));
  EXPECT_FALSE(r.Contains(outside));
}

TEST(RectangleTest, CoversSubsetSemantics) {
  Rectangle big({0.0}, {10.0});
  Rectangle small({2.0}, {5.0});
  EXPECT_TRUE(big.Covers(small));
  EXPECT_FALSE(small.Covers(big));
  EXPECT_TRUE(big.Covers(big));
}

TEST(RectangleTest, IntersectsBoundaryTouch) {
  Rectangle a({0.0}, {1.0});
  Rectangle b({1.0}, {2.0});
  Rectangle c({1.5}, {2.0});
  EXPECT_TRUE(a.Intersects(b));  // closed intervals share x = 1
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
}

TEST(RectangleTest, IntersectsMultiDimRequiresAllDims) {
  Rectangle a({0.0, 0.0}, {1.0, 1.0});
  Rectangle b({0.5, 2.0}, {1.5, 3.0});  // overlaps dim 0 only
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectangleTest, InfiniteCoversEverything) {
  Rectangle inf = Rectangle::Infinite(2);
  Rectangle r({-1e18, -1e18}, {1e18, 1e18});
  EXPECT_TRUE(inf.Covers(r));
  const double p[] = {1e300, -1e300};
  EXPECT_TRUE(inf.Contains(p));
}

TEST(RectangleTest, EqualityAndToString) {
  Rectangle a({0.0}, {1.0});
  Rectangle b({0.0}, {1.0});
  Rectangle c({0.0}, {2.0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a.ToString().empty());
}

TEST(TupleTest, ProjectTuple) {
  Tuple t;
  t[0] = 10;
  t[1] = 20;
  t[2] = 30;
  double out[2];
  ProjectTuple(t, {2, 0}, out);
  EXPECT_DOUBLE_EQ(out[0], 30);
  EXPECT_DOUBLE_EQ(out[1], 10);
}

}  // namespace
}  // namespace janus
