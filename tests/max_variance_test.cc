#include "core/max_variance.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/variance.h"
#include "util/rng.h"

namespace janus {
namespace {

std::vector<KdPoint> RandomPoints1d(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> pts;
  for (size_t i = 0; i < n; ++i) {
    KdPoint p;
    p.id = i;
    p.x[0] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1);
    pts.push_back(p);
  }
  return pts;
}

std::unique_ptr<MaxVarianceIndex> MakeIndex1d(const std::vector<KdPoint>& pts,
                                              AggFunc focus) {
  MaxVarianceIndex::Options o;
  o.dims = 1;
  o.focus = focus;
  o.sampling_rate = 0.01;
  o.delta = 0.25;  // matches the brute-force valid-query threshold below
  auto idx = std::make_unique<MaxVarianceIndex>(o);
  idx->Build(pts);
  return idx;
}

/// Brute-force V(R) over contiguous sample windows in rank space: the true
/// max-variance query inside a 1-D bucket is some contiguous run of samples.
double BruteMaxVariance1d(std::vector<double> values, AggFunc f,
                          double sampling_rate) {
  const double mi = static_cast<double>(values.size());
  double best = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    TreeAgg q;
    for (size_t j = i; j < values.size(); ++j) {
      q.count += 1;
      q.sum += values[j];
      q.sumsq += values[j] * values[j];
      double v = 0;
      switch (f) {
        case AggFunc::kSum:
          v = SumLeafError(sampling_rate, mi, q);
          break;
        case AggFunc::kCount: {
          TreeAgg c;
          c.count = c.sum = c.sumsq = q.count;
          v = SumLeafError(sampling_rate, mi, c);
          break;
        }
        case AggFunc::kAvg:
          // Only windows with >= 25% of the bucket are "valid" queries
          // (the 2*delta*m assumption).
          if (q.count >= 0.25 * mi) v = AvgLeafError(mi, q);
          break;
        default:
          break;
      }
      best = std::max(best, v);
    }
  }
  return best;
}

class MaxVarApproxTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(MaxVarApproxTest, WithinTheoreticalFactorOfBruteForce) {
  const AggFunc f = GetParam();
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto pts = RandomPoints1d(64, seed);
    auto idx = MakeIndex1d(pts, f);
    // Sorted values for the brute force.
    std::sort(pts.begin(), pts.end(),
              [](const KdPoint& a, const KdPoint& b) { return a.x[0] < b.x[0]; });
    std::vector<double> values;
    for (const auto& p : pts) values.push_back(p.a);
    const double truth = BruteMaxVariance1d(values, f, 0.01);
    const double approx = idx->MaxVarianceRankRange(0, pts.size(), f);
    if (truth == 0) continue;
    // Upper: M never exceeds the true max variance by definition of the
    // half/window construction (both are variances of actual queries).
    EXPECT_LE(approx, truth * (1 + 1e-9)) << "seed " << seed;
    // Lower: generous factor covering the 1/4-approx plus window stride.
    EXPECT_GE(approx, truth / 16.0) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Funcs, MaxVarApproxTest,
                         ::testing::Values(AggFunc::kSum, AggFunc::kCount,
                                           AggFunc::kAvg),
                         [](const auto& info) {
                           return AggFuncName(info.param);
                         });

TEST(MaxVarianceTest, RankRangeMonotonicity) {
  // Bigger buckets have (weakly) larger max variance — the property the
  // binary-search partitioner relies on (Appendix D.2).
  auto pts = RandomPoints1d(256, 7);
  auto idx = MakeIndex1d(pts, AggFunc::kSum);
  double prev = 0;
  for (size_t hi = 2; hi <= 256; hi += 16) {
    const double v = idx->MaxVarianceRankRange(0, hi);
    EXPECT_GE(v, prev * 0.5);  // allow small non-monotone wiggles of M
    prev = std::max(prev, v);
  }
}

TEST(MaxVarianceTest, EmptyAndSingletonRangesAreZero) {
  auto pts = RandomPoints1d(32, 9);
  auto idx = MakeIndex1d(pts, AggFunc::kSum);
  EXPECT_DOUBLE_EQ(idx->MaxVarianceRankRange(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(idx->MaxVarianceRankRange(5, 6), 0.0);
}

TEST(MaxVarianceTest, RectQueryMatchesRankRangeIn1d) {
  auto pts = RandomPoints1d(128, 11);
  auto idx = MakeIndex1d(pts, AggFunc::kSum);
  Rectangle all({0.0}, {1.0});
  const double via_rect = idx->MaxVariance(all);
  const double via_rank = idx->MaxVarianceRankRange(0, 128);
  EXPECT_NEAR(via_rect, via_rank, 1e-9 * (1 + via_rank));
}

TEST(MaxVarianceTest, InsertDeleteKeepsIndexesConsistent) {
  MaxVarianceIndex::Options o;
  o.dims = 1;
  o.focus = AggFunc::kSum;
  MaxVarianceIndex idx(o);
  auto pts = RandomPoints1d(100, 13);
  idx.Build(pts);
  ASSERT_EQ(idx.size(), 100u);
  ASSERT_EQ(idx.tree1d().size(), 100u);
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(idx.Delete(pts[i]));
  }
  EXPECT_EQ(idx.size(), 50u);
  EXPECT_EQ(idx.tree1d().size(), 50u);
  for (size_t i = 0; i < 50; ++i) idx.Insert(pts[i]);
  EXPECT_EQ(idx.size(), 100u);
  EXPECT_EQ(idx.tree1d().size(), 100u);
}

TEST(MaxVarianceTest, MultiDimSumVariancePositive) {
  MaxVarianceIndex::Options o;
  o.dims = 2;
  o.focus = AggFunc::kSum;
  MaxVarianceIndex idx(o);
  Rng rng(17);
  std::vector<KdPoint> pts;
  for (size_t i = 0; i < 500; ++i) {
    KdPoint p;
    p.id = i;
    p.x[0] = rng.NextDouble();
    p.x[1] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1);
    pts.push_back(p);
  }
  idx.Build(pts);
  Rectangle r({0.0, 0.0}, {1.0, 1.0});
  EXPECT_GT(idx.MaxVariance(r, AggFunc::kSum), 0.0);
  EXPECT_GT(idx.MaxVariance(r, AggFunc::kCount), 0.0);
  EXPECT_GT(idx.MaxVariance(r, AggFunc::kAvg), 0.0);
  // Sub-rectangle has (weakly) smaller max variance.
  Rectangle sub({0.25, 0.25}, {0.75, 0.75});
  EXPECT_LE(idx.MaxVariance(sub, AggFunc::kSum),
            idx.MaxVariance(r, AggFunc::kSum) * 2.0);
}

TEST(MaxVarianceTest, MakeKdPointProjection) {
  Tuple t;
  t.id = 42;
  t[0] = 1;
  t[1] = 2;
  t[2] = 3;
  const KdPoint p = MakeKdPoint(t, {2, 0}, 1);
  EXPECT_EQ(p.id, 42u);
  EXPECT_DOUBLE_EQ(p.x[0], 3);
  EXPECT_DOUBLE_EQ(p.x[1], 1);
  EXPECT_DOUBLE_EQ(p.a, 2);
}

}  // namespace
}  // namespace janus
