#include "data/table.h"

#include <optional>
#include <set>

#include <gtest/gtest.h>

namespace janus {
namespace {

Tuple MakeTuple(uint64_t id, double v) {
  Tuple t;
  t.id = id;
  t[0] = v;
  return t;
}

TEST(DynamicTableTest, InsertFindDelete) {
  DynamicTable table(Schema{{"x"}});
  table.Insert(MakeTuple(1, 10));
  table.Insert(MakeTuple(2, 20));
  ASSERT_EQ(table.size(), 2u);
  const std::optional<Tuple> t = table.Find(1);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ((*t)[0], 10);
  EXPECT_TRUE(table.Delete(1));
  EXPECT_FALSE(table.Find(1).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(DynamicTableTest, DeleteMissingReturnsFalse) {
  DynamicTable table(Schema{{"x"}});
  EXPECT_FALSE(table.Delete(99));
  table.Insert(MakeTuple(1, 1));
  EXPECT_TRUE(table.Delete(1));
  EXPECT_FALSE(table.Delete(1));
}

TEST(DynamicTableTest, SwapRemoveKeepsIndexConsistent) {
  DynamicTable table(Schema{{"x"}});
  for (uint64_t i = 0; i < 100; ++i) table.Insert(MakeTuple(i, i * 1.0));
  // Delete from the middle repeatedly; every remaining id must stay findable.
  for (uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(table.Delete(i * 2));
  for (uint64_t i = 0; i < 100; ++i) {
    const std::optional<Tuple> t = table.Find(i);
    if (i % 2 == 0) {
      EXPECT_FALSE(t.has_value());
    } else {
      ASSERT_TRUE(t.has_value());
      EXPECT_EQ(t->id, i);
      EXPECT_DOUBLE_EQ((*t)[0], static_cast<double>(i));
    }
  }
}

TEST(DynamicTableTest, SchemaSizesColumnWidth) {
  DynamicTable narrow(Schema{{"x", "y"}});
  EXPECT_EQ(narrow.store().num_columns(), 2);
  DynamicTable fallback(Schema{});
  EXPECT_EQ(fallback.store().num_columns(), kMaxColumns);
}

TEST(DynamicTableTest, ColumnSpanIsPositionallyAligned) {
  DynamicTable table(Schema{{"x", "y"}});
  for (uint64_t i = 0; i < 10; ++i) {
    Tuple t;
    t.id = i;
    t[0] = static_cast<double>(i);
    t[1] = static_cast<double>(i) * 2;
    table.Insert(t);
  }
  table.Delete(4);  // swap-remove moves the last row into position 4
  const ColumnSpan x = table.column(0);
  const ColumnSpan y = table.column(1);
  ASSERT_EQ(x.size, table.size());
  ASSERT_EQ(y.size, table.size());
  for (size_t pos = 0; pos < table.size(); ++pos) {
    const uint64_t id = table.store().id_at(pos);
    EXPECT_DOUBLE_EQ(x[pos], static_cast<double>(id));
    EXPECT_DOUBLE_EQ(y[pos], static_cast<double>(id) * 2);
  }
  // Columns outside the schema yield an empty span.
  EXPECT_EQ(table.column(5).data, nullptr);
}

TEST(DynamicTableTest, SampleUniformSizeAndMembership) {
  DynamicTable table(Schema{{"x"}});
  for (uint64_t i = 0; i < 1000; ++i) table.Insert(MakeTuple(i, 0));
  Rng rng(5);
  auto sample = table.SampleUniform(&rng, 100);
  ASSERT_EQ(sample.size(), 100u);
  std::set<uint64_t> ids;
  for (const Tuple& t : sample) {
    EXPECT_TRUE(table.Find(t.id).has_value());
    ids.insert(t.id);
  }
  EXPECT_EQ(ids.size(), 100u);  // without replacement
}

TEST(DynamicTableTest, SampleMoreThanSizeReturnsAll) {
  DynamicTable table(Schema{{"x"}});
  for (uint64_t i = 0; i < 10; ++i) table.Insert(MakeTuple(i, 0));
  Rng rng(5);
  EXPECT_EQ(table.SampleUniform(&rng, 100).size(), 10u);
}

TEST(DynamicTableTest, SampleOneIsLive) {
  DynamicTable table(Schema{{"x"}});
  for (uint64_t i = 0; i < 10; ++i) table.Insert(MakeTuple(i, 0));
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(table.Find(table.SampleOne(&rng).id).has_value());
  }
}

TEST(DynamicTableTest, LiveReflectsDeletions) {
  DynamicTable table(Schema{{"x"}});
  for (uint64_t i = 0; i < 5; ++i) table.Insert(MakeTuple(i, 0));
  table.Delete(3);
  std::set<uint64_t> ids;
  for (const Tuple& t : table.live()) ids.insert(t.id);
  EXPECT_EQ(ids, (std::set<uint64_t>{0, 1, 2, 4}));
}

}  // namespace
}  // namespace janus
