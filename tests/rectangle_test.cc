// Rectangle edge-case coverage: closed-interval boundaries (lo == hi),
// Infinite() containment, and degenerate Covers/Intersects on touching
// edges — plus matching checks that the vectorized CountInRect kernel agrees
// with a naive row loop on exactly these cases.

#include "data/schema.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/column_store.h"
#include "data/scan.h"

namespace janus {
namespace {

TEST(RectangleTest, ClosedIntervalIncludesBothEndpoints) {
  const Rectangle r({1.0, -2.0}, {3.0, 2.0});
  const double on_lo[] = {1.0, -2.0};
  const double on_hi[] = {3.0, 2.0};
  const double inside[] = {2.0, 0.0};
  const double below[] = {1.0 - 1e-12, 0.0};
  const double above[] = {3.0 + 1e-12, 0.0};
  EXPECT_TRUE(r.Contains(on_lo));
  EXPECT_TRUE(r.Contains(on_hi));
  EXPECT_TRUE(r.Contains(inside));
  EXPECT_FALSE(r.Contains(below));
  EXPECT_FALSE(r.Contains(above));
}

TEST(RectangleTest, DegeneratePointRectangle) {
  // lo == hi: the closed interval [x, x] contains exactly x.
  const Rectangle point({5.0}, {5.0});
  const double exact[] = {5.0};
  const double off[] = {5.0 + 1e-12};
  EXPECT_TRUE(point.Contains(exact));
  EXPECT_FALSE(point.Contains(off));
  // A point rectangle covers itself and intersects itself.
  EXPECT_TRUE(point.Covers(point));
  EXPECT_TRUE(point.Intersects(point));
}

TEST(RectangleTest, InfiniteContainsEverything) {
  const Rectangle inf = Rectangle::Infinite(2);
  const double big = std::numeric_limits<double>::max();
  const double points[][2] = {{0, 0}, {-big, big}, {big, -big}};
  for (const auto& p : points) EXPECT_TRUE(inf.Contains(p));
  const double at_inf[] = {std::numeric_limits<double>::infinity(), 0};
  EXPECT_TRUE(inf.Contains(at_inf));
  // Infinite covers any finite rectangle; any finite rectangle never covers
  // Infinite.
  const Rectangle finite({-1, -1}, {1, 1});
  EXPECT_TRUE(inf.Covers(finite));
  EXPECT_FALSE(finite.Covers(inf));
  EXPECT_TRUE(inf.Intersects(finite));
  EXPECT_TRUE(finite.Intersects(inf));
  EXPECT_TRUE(inf.Covers(inf));
}

TEST(RectangleTest, TouchingEdgesIntersectButDoNotCover) {
  // [0,1] and [1,2] share exactly the boundary point 1 (closed intervals).
  const Rectangle left({0.0}, {1.0});
  const Rectangle right({1.0}, {2.0});
  EXPECT_TRUE(left.Intersects(right));
  EXPECT_TRUE(right.Intersects(left));
  EXPECT_FALSE(left.Covers(right));
  EXPECT_FALSE(right.Covers(left));
  // Separated by any gap: no intersection.
  const Rectangle gapped({1.0 + 1e-12}, {2.0});
  EXPECT_FALSE(left.Intersects(gapped));
}

TEST(RectangleTest, CoversIsInclusiveOnSharedEdges) {
  const Rectangle outer({0.0, 0.0}, {2.0, 2.0});
  const Rectangle flush({0.0, 1.0}, {2.0, 2.0});  // shares three edges
  EXPECT_TRUE(outer.Covers(flush));
  EXPECT_TRUE(outer.Covers(outer));
  const Rectangle spill({0.0, 1.0}, {2.0 + 1e-12, 2.0});
  EXPECT_FALSE(outer.Covers(spill));
}

TEST(RectangleTest, DegenerateSliceCoversAndIntersects) {
  // A zero-width slice inside a box: covered by the box, intersects a
  // rectangle that only touches it.
  const Rectangle box({0.0, 0.0}, {4.0, 4.0});
  const Rectangle slice({2.0, 0.0}, {2.0, 4.0});
  EXPECT_TRUE(box.Covers(slice));
  EXPECT_TRUE(slice.Intersects(box));
  const Rectangle touching({2.0, 4.0}, {3.0, 5.0});
  EXPECT_TRUE(slice.Intersects(touching));
}

// ---------------------------------------------------------------------------
// The columnar kernel must agree with a naive row loop on the same edge
// cases: boundary equality, degenerate rectangles, infinite rectangles.
// ---------------------------------------------------------------------------

size_t NaiveCount(const std::vector<Tuple>& rows,
                  const std::vector<int>& cols, const Rectangle& rect) {
  size_t count = 0;
  std::vector<double> point(cols.size());
  for (const Tuple& t : rows) {
    ProjectTuple(t, cols, point.data());
    if (rect.Contains(point.data())) ++count;
  }
  return count;
}

class CountKernelEdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<ColumnStore>(Schema{{"x", "y"}});
    // A grid of integer points, including repeated boundary values.
    uint64_t id = 0;
    for (int x = 0; x <= 4; ++x) {
      for (int y = 0; y <= 4; ++y) {
        Tuple t;
        t.id = id++;
        t[0] = static_cast<double>(x);
        t[1] = static_cast<double>(y);
        store_->Insert(t);
        rows_.push_back(t);
      }
    }
  }

  void ExpectAgreement(const std::vector<int>& cols, const Rectangle& rect) {
    EXPECT_EQ(scan::CountInRect(*store_, cols, rect),
              NaiveCount(rows_, cols, rect))
        << rect.ToString();
  }

  std::unique_ptr<ColumnStore> store_;
  std::vector<Tuple> rows_;
};

TEST_F(CountKernelEdgeCaseTest, ClosedBoundaries) {
  ExpectAgreement({0}, Rectangle({0.0}, {4.0}));      // everything
  ExpectAgreement({0}, Rectangle({0.0}, {0.0}));      // lo == hi at the edge
  ExpectAgreement({0}, Rectangle({2.0}, {2.0}));      // lo == hi inside
  ExpectAgreement({0}, Rectangle({4.0}, {4.0}));      // lo == hi at max
  ExpectAgreement({0}, Rectangle({2.0}, {1.0}));      // inverted: empty
  ExpectAgreement({0, 1}, Rectangle({1.0, 1.0}, {1.0, 3.0}));  // slice
  ExpectAgreement({0, 1}, Rectangle({4.0, 4.0}, {9.0, 9.0}));  // corner touch
}

TEST_F(CountKernelEdgeCaseTest, InfiniteRectangles) {
  ExpectAgreement({0}, Rectangle::Infinite(1));
  ExpectAgreement({0, 1}, Rectangle::Infinite(2));
  ExpectAgreement({1, 0}, Rectangle::Infinite(2));  // column order permuted
}

TEST_F(CountKernelEdgeCaseTest, AggregatesOnDegenerateRects) {
  // AggregateInRect agrees with the kernel count on a lo==hi slice, and the
  // SUM over an inverted (empty) rect is undefined, exactly as the row path.
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({3.0}, {3.0});
  const auto count = scan::ExactAnswer(*store_, q);
  ASSERT_TRUE(count.has_value());
  EXPECT_DOUBLE_EQ(*count, static_cast<double>(NaiveCount(rows_, {0}, q.rect)));
  q.rect = Rectangle({3.0}, {2.0});
  q.func = AggFunc::kSum;
  EXPECT_FALSE(scan::ExactAnswer(*store_, q).has_value());
}

}  // namespace
}  // namespace janus
