#include "core/janus.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/thread_pool.h"

namespace janus {
namespace {

JanusOptions BaseOptions() {
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 32;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  o.enable_triggers = false;  // triggers tested separately
  return o;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

TEST(JanusTest, InitializeAndQuery) {
  auto ds = GenerateUniform(20000, 1, 3);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.2, 0.8);
  const auto truth = ExactAnswer(ds.rows, q);
  const QueryResult r = system.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.05);
  EXPECT_GE(system.catchup_processed(), 2000u);  // 10% of 20k
}

TEST(JanusTest, InsertsReflectInQueries) {
  auto ds = GenerateUniform(10000, 1, 5);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  auto rows = ds.rows;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    Tuple t;
    t.id = 1000000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    system.Insert(t);
    rows.push_back(t);
  }
  EXPECT_EQ(system.counters().inserts, 5000u);
  EXPECT_EQ(system.table().size(), 15000u);
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
  const auto truth = ExactAnswer(rows, q);
  const QueryResult r = system.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.05);
}

TEST(JanusTest, DeletesReflectInQueries) {
  auto ds = GenerateUniform(10000, 1, 9);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  auto rows = ds.rows;
  // Delete 2000 random tuples.
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(system.Delete(static_cast<uint64_t>(i * 5)));
  }
  std::vector<Tuple> remaining;
  for (const Tuple& t : rows) {
    if (t.id % 5 != 0 || t.id >= 10000) remaining.push_back(t);
  }
  EXPECT_EQ(system.table().size(), remaining.size());
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.1, 0.9);
  const auto truth = ExactAnswer(remaining, q);
  const QueryResult r = system.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.08);
}

TEST(JanusTest, DeleteMissingIdReturnsFalse) {
  auto ds = GenerateUniform(1000, 1, 13);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  EXPECT_FALSE(system.Delete(999999));
  EXPECT_TRUE(system.Delete(5));
  EXPECT_FALSE(system.Delete(5));
}

TEST(JanusTest, HeavyDeletionsTriggerReservoirResample) {
  auto ds = GenerateUniform(5000, 1, 15);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  // Delete 80% of the data; the reservoir must re-sample at least once.
  for (uint64_t id = 0; id < 4000; ++id) system.Delete(id);
  EXPECT_GE(system.counters().reservoir_resamples, 1u);
  // Reservoir samples must all still be live tuples.
  for (const Tuple& t : system.reservoir().samples()) {
    EXPECT_TRUE(system.table().Find(t.id).has_value());
  }
}

TEST(JanusTest, ReinitializeRebuildsAndRestartsCatchup) {
  auto ds = GenerateUniform(10000, 1, 17);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const size_t processed_before = system.catchup_processed();
  system.Reinitialize();
  EXPECT_EQ(system.counters().repartitions, 1u);
  EXPECT_LT(system.catchup_processed(), processed_before);
  system.RunCatchupToGoal();
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.3, 0.7);
  const auto truth = ExactAnswer(ds.rows, q);
  EXPECT_LT(std::abs(system.Query(q).estimate - *truth) / *truth, 0.10);
  EXPECT_GT(system.counters().last_reopt_seconds, 0.0);
  EXPECT_GE(system.counters().last_reopt_seconds,
            system.counters().last_blocking_seconds);
}

TEST(JanusTest, ConcurrentReinitializeServesOldSynopsisMeanwhile) {
  auto ds = GenerateUniform(20000, 1, 19);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  system.BeginReinitialize();
  // While the optimizer runs, updates and queries keep working.
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    Tuple t;
    t.id = 2000000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    system.Insert(t);
  }
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
  EXPECT_GT(system.Query(q).estimate, 0);
  const double blocking = system.FinishReinitialize();
  EXPECT_GE(blocking, 0.0);
  EXPECT_EQ(system.counters().repartitions, 1u);
  // New synopsis sees all 21000 tuples.
  system.RunCatchupToGoal();
  const auto r = system.Query(q);
  EXPECT_NEAR(r.estimate, 21000.0, 21000.0 * 0.05);
}

TEST(JanusTest, MultiThreadedUpdatesAreConsistent) {
  auto ds = GenerateUniform(10000, 1, 23);
  JanusOptions opts = BaseOptions();
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  // 8 worker threads, each inserting 1000 distinct tuples.
  ThreadPool pool(8);
  for (int w = 0; w < 8; ++w) {
    pool.Submit([&system, w] {
      Rng rng(static_cast<uint64_t>(w) + 100);
      for (int i = 0; i < 1000; ++i) {
        Tuple t;
        t.id = 3000000 + static_cast<uint64_t>(w) * 1000 +
               static_cast<uint64_t>(i);
        t[0] = rng.NextDouble();
        t[1] = rng.Normal(10, 2);
        system.Insert(t);
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(system.counters().inserts, 8000u);
  EXPECT_EQ(system.table().size(), 18000u);
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
  EXPECT_NEAR(system.Query(q).estimate, 18000.0, 18000.0 * 0.05);
}

TEST(JanusTest, MinMaxSupported) {
  auto ds = GenerateUniform(10000, 1, 25);
  JanusAqp system(BaseOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const AggQuery qmin = MakeQuery(AggFunc::kMin, 0.0, 1.0);
  const AggQuery qmax = MakeQuery(AggFunc::kMax, 0.0, 1.0);
  const auto tmin = ExactAnswer(ds.rows, qmin);
  const auto tmax = ExactAnswer(ds.rows, qmax);
  // Catch-up statistics see a sample of the data, so the extremes are
  // sample extremes: inner approximations of the true MIN/MAX.
  EXPECT_GE(system.Query(qmin).estimate, *tmin - 1e-9);
  EXPECT_LE(system.Query(qmax).estimate, *tmax + 1e-9);
  EXPECT_NEAR(system.Query(qmin).estimate, *tmin, 3.0);
  EXPECT_NEAR(system.Query(qmax).estimate, *tmax, 3.0);
}

TEST(JanusTest, QueryLatencyIndependentOfTableSize) {
  // The query procedure never touches the archive: latency is a function of
  // the synopsis (k, m), not of |D| (Sec. 4.4's zero-I/O claim, tested as a
  // node-access property rather than wall clock).
  auto small = GenerateUniform(5000, 1, 27);
  auto large = GenerateUniform(50000, 1, 29);
  for (const auto* ds : {&small, &large}) {
    JanusAqp system(BaseOptions());
    system.LoadInitial(ds->rows);
    system.Initialize();
    system.RunCatchupToGoal();
    const AggQuery q = MakeQuery(AggFunc::kSum, 0.25, 0.75);
    const QueryResult r = system.Query(q);
    // Frontier sizes are bounded by the tree, not the data.
    EXPECT_LE(r.covered_nodes, 64u);
    EXPECT_LE(r.partial_leaves, 4u);
  }
}

}  // namespace
}  // namespace janus
