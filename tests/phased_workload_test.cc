// Tests for the YCSB-style phased workload harness (src/workload/):
// distribution samplers against their analytic pmfs (chi-squared), preset
// spec construction, latency reservoirs and closed-loop runner smoke runs
// against direct and sharded engines plus the streaming path.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "workload/distributions.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace janus {
namespace workload {
namespace {

// --- distribution samplers --------------------------------------------------

TEST(DistKindTest, ParseRoundTrip) {
  for (DistKind k : {DistKind::kUniform, DistKind::kZipfian,
                     DistKind::kHotspot, DistKind::kLogNormal}) {
    EXPECT_EQ(ParseDistKind(DistKindName(k), DistKind::kUniform), k);
  }
  EXPECT_EQ(ParseDistKind("nonsense", DistKind::kHotspot),
            DistKind::kHotspot);
}

TEST(AliasTableTest, NormalizesWeightsIntoPmf) {
  AliasTable table({1.0, 3.0, 4.0});
  ASSERT_EQ(table.size(), 3u);
  EXPECT_DOUBLE_EQ(table.probability(0), 0.125);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.375);
  EXPECT_DOUBLE_EQ(table.probability(2), 0.5);
}

TEST(AliasTableTest, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasTableTest, SampleFrequenciesMatchPmf) {
  AliasTable table({5.0, 1.0, 3.0, 1.0});
  Rng rng(123);
  const int kDraws = 100000;
  std::vector<int> counts(table.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(&rng)];
  for (size_t c = 0; c < table.size(); ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / kDraws,
                table.probability(c), 0.01)
        << "cell " << c;
  }
}

// Chi-squared goodness of fit of `draws` samples against the sampler's own
// analytic cell probabilities over `cells` equal subdivisions of [0, 1).
double ChiSquared(const UnitDistribution& dist, size_t cells, int draws,
                  uint64_t seed) {
  Rng rng(seed);
  std::vector<int> counts(cells, 0);
  for (int i = 0; i < draws; ++i) {
    const double u = dist.Sample(&rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    size_t cell = static_cast<size_t>(u * static_cast<double>(cells));
    if (cell >= cells) cell = cells - 1;
    ++counts[cell];
  }
  double chi2 = 0;
  for (size_t c = 0; c < cells; ++c) {
    const double expected = dist.CellProbability(c, cells) * draws;
    EXPECT_GT(expected, 0.0) << "cell " << c;
    const double d = counts[c] - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// The acceptance criterion: the zipfian sampler matches its analytic
// distribution in a chi-squared test. With 63 degrees of freedom the 99.9%
// quantile is ~106; the alias-method sampler is exact, so a deterministic
// seed lands comfortably under it.
TEST(UnitDistributionTest, ZipfianMatchesAnalyticChiSquared) {
  DistSpec spec;
  spec.kind = DistKind::kZipfian;
  spec.zipf_s = 0.99;
  spec.zipf_n = 64;
  UnitDistribution dist(spec);

  // Sanity: the analytic pmf is normalized and monotone decreasing in rank.
  double total = 0;
  for (size_t c = 0; c < 64; ++c) {
    total += dist.CellProbability(c, 64);
    if (c > 0) {
      EXPECT_LE(dist.CellProbability(c, 64), dist.CellProbability(c - 1, 64));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  EXPECT_LT(ChiSquared(dist, 64, 200000, 2024), 106.0);
}

TEST(UnitDistributionTest, UniformMatchesAnalyticChiSquared) {
  DistSpec spec;  // default kUniform
  UnitDistribution dist(spec);
  EXPECT_DOUBLE_EQ(dist.CellProbability(0, 64), 1.0 / 64.0);
  EXPECT_LT(ChiSquared(dist, 64, 200000, 2025), 106.0);
}

TEST(UnitDistributionTest, HotspotMatchesAnalyticChiSquared) {
  DistSpec spec;
  spec.kind = DistKind::kHotspot;
  spec.hot_fraction = 0.25;  // aligns with cell boundaries at cells=16
  spec.hot_probability = 0.8;
  UnitDistribution dist(spec);

  // 80% of the mass on the first quarter: each of the 4 hot cells carries
  // 0.2, each of the 12 cold cells (1-0.8)/12.
  EXPECT_NEAR(dist.CellProbability(0, 16), 0.2, 1e-12);
  EXPECT_NEAR(dist.CellProbability(15, 16), 0.2 / 12.0, 1e-12);

  // 15 degrees of freedom: 99.9% quantile ~37.7.
  EXPECT_LT(ChiSquared(dist, 16, 100000, 2026), 37.7);
}

TEST(UnitDistributionTest, ScrambledZipfianSpreadsTheHotCells) {
  DistSpec plain;
  plain.kind = DistKind::kZipfian;
  plain.zipf_s = 1.2;
  plain.zipf_n = 64;
  DistSpec scrambled = plain;
  scrambled.scramble = true;

  UnitDistribution a(plain), b(scrambled);
  Rng ra(7), rb(7);
  const int kDraws = 50000;
  int low_a = 0, low_b = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (a.Sample(&ra) < 0.25) ++low_a;
    if (b.Sample(&rb) < 0.25) ++low_b;
  }
  // Unscrambled zipf piles the popular ranks into the low end; scrambling
  // redistributes them over [0, 1).
  EXPECT_GT(static_cast<double>(low_a) / kDraws, 0.6);
  EXPECT_LT(static_cast<double>(low_b) / kDraws, 0.5);
}

TEST(UnitDistributionTest, LogNormalStaysInUnitInterval) {
  DistSpec spec;
  spec.kind = DistKind::kLogNormal;
  spec.lognormal_mu = 0.0;
  spec.lognormal_sigma = 1.0;
  UnitDistribution dist(spec);
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = dist.Sample(&rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // exp(mu)/exp(mu + 3 sigma) = e^-3 ~ 0.0498 is the scaled median; the
  // mean sits a bit above it. Loose band — just pin the distribution's
  // location so a scaling regression fails loudly.
  const double mean = sum / 20000;
  EXPECT_GT(mean, 0.03);
  EXPECT_LT(mean, 0.25);
}

TEST(UnitDistributionTest, DeterministicBySeed) {
  DistSpec spec;
  spec.kind = DistKind::kZipfian;
  spec.scramble = true;
  UnitDistribution dist(spec);
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist.Sample(&a), dist.Sample(&b));
  }
}

// --- spec & presets ----------------------------------------------------------

TEST(OpMixTest, NormalizeScalesToUnitSum) {
  OpMix mix;
  mix.insert = 2;
  mix.del = 1;
  mix.query = 1;
  mix.Normalize();
  EXPECT_DOUBLE_EQ(mix.insert, 0.5);
  EXPECT_DOUBLE_EQ(mix.del, 0.25);
  EXPECT_DOUBLE_EQ(mix.query, 0.25);
}

TEST(OpMixTest, DegenerateMixesBecomeQueryOnly) {
  OpMix zero;
  zero.insert = zero.del = zero.query = 0;
  zero.Normalize();
  EXPECT_DOUBLE_EQ(zero.query, 1.0);

  OpMix negative;
  negative.insert = -3;
  negative.del = -1;
  negative.query = 0;
  negative.Normalize();
  EXPECT_DOUBLE_EQ(negative.query, 1.0);
  EXPECT_DOUBLE_EQ(negative.insert, 0.0);
}

TEST(PresetTest, AllPresetsBuildAndScale) {
  const auto names = PresetNames();
  ASSERT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    const WorkloadSpec spec = Preset(name, 5000, 1000);
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.load_rows, 5000u);
    ASSERT_FALSE(spec.phases.empty()) << name;
    for (const PhaseSpec& p : spec.phases) {
      EXPECT_GT(p.ops, 0u) << name << "." << p.name;
      const double sum = p.mix.insert + p.mix.del + p.mix.query;
      EXPECT_NEAR(sum, 1.0, 1e-9) << name << "." << p.name;
    }
    EXPECT_FALSE(ToString(spec).empty());
  }
}

TEST(PresetTest, KnownShapes) {
  const WorkloadSpec a = Preset("ycsb-a", 1000, 100);
  ASSERT_EQ(a.phases.size(), 1u);
  EXPECT_EQ(a.phases[0].key_dist.kind, DistKind::kZipfian);
  EXPECT_TRUE(a.phases[0].key_dist.scramble);
  EXPECT_NEAR(a.phases[0].mix.query, 0.5, 1e-9);

  const WorkloadSpec del = Preset("delete-heavy", 1000, 100);
  ASSERT_EQ(del.phases.size(), 2u);
  EXPECT_GT(del.phases[0].mix.del, del.phases[0].mix.insert);
  EXPECT_EQ(del.phases[0].key_dist.kind, DistKind::kHotspot);

  const WorkloadSpec burst = Preset("zipf-burst", 1000, 100);
  ASSERT_EQ(burst.phases.size(), 3u);
  EXPECT_EQ(burst.phases[1].key_dist.kind, DistKind::kZipfian);
  EXPECT_GT(burst.phases[1].mix.insert, burst.phases[0].mix.insert);
}

TEST(PresetTest, UnknownNameThrowsWithKnownNames) {
  try {
    Preset("ycsb-z", 1000, 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("ycsb-z"), std::string::npos);
    EXPECT_NE(msg.find("ycsb-a"), std::string::npos);
  }
}

// --- latency reservoir -------------------------------------------------------

TEST(LatencyReservoirTest, ExactBelowCapacity) {
  LatencyReservoir res(128);
  Rng rng(1);
  for (int i = 1; i <= 100; ++i) res.Add(static_cast<double>(i), &rng);
  EXPECT_EQ(res.count(), 100u);
  EXPECT_DOUBLE_EQ(res.max_ms(), 100.0);
  EXPECT_NEAR(res.PercentileMs(50), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(res.PercentileMs(100), 100.0);
}

TEST(LatencyReservoirTest, EmptyIsZero) {
  LatencyReservoir res(16);
  EXPECT_EQ(res.count(), 0u);
  EXPECT_DOUBLE_EQ(res.PercentileMs(50), 0.0);
}

TEST(LatencyReservoirTest, BoundedAboveCapacityAndUnbiased) {
  LatencyReservoir res(256);
  Rng rng(2);
  // 20k uniform [0, 1) observations through a 256-slot reservoir: count and
  // max are exact, the sampled median close to 0.5.
  double true_max = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble();
    true_max = std::max(true_max, x);
    res.Add(x, &rng);
  }
  EXPECT_EQ(res.count(), 20000u);
  EXPECT_DOUBLE_EQ(res.max_ms(), true_max);
  EXPECT_NEAR(res.PercentileMs(50), 0.5, 0.12);
}

TEST(LatencyReservoirTest, MergeCombinesCountsAndMax) {
  LatencyReservoir a(64), b(64);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) a.Add(1.0, &rng);
  for (int i = 0; i < 30; ++i) b.Add(5.0, &rng);
  a.Merge(b, &rng);
  EXPECT_EQ(a.count(), 80u);
  EXPECT_DOUBLE_EQ(a.max_ms(), 5.0);
  const double p50 = a.PercentileMs(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 5.0);
}

// --- runner smoke ------------------------------------------------------------

RunnerOptions SmokeOptions(const std::string& engine) {
  RunnerOptions opts;
  opts.engine_cfg.engine = engine;
  opts.engine_cfg.num_leaves = 16;
  opts.engine_cfg.num_shards = 2;
  opts.threads = 2;
  opts.accuracy_queries = 8;
  opts.seed = 7;
  return opts;
}

void CheckSmokeReport(const RunReport& run, const WorkloadSpec& spec,
                      bool expect_latency) {
  EXPECT_EQ(run.spec, spec.name);
  EXPECT_EQ(run.load_rows, spec.load_rows);
  ASSERT_EQ(run.phases.size(), spec.phases.size());
  for (size_t i = 0; i < run.phases.size(); ++i) {
    const PhaseReport& p = run.phases[i];
    EXPECT_EQ(p.phase, spec.phases[i].name);
    // Closed loop: every claimed op resolves to an insert, delete, miss or
    // query.
    EXPECT_EQ(p.ops.total(), spec.phases[i].ops);
    EXPECT_GT(p.ops.queries, 0u);
    if (expect_latency) {
      EXPECT_GT(p.query_samples, 0u);
      EXPECT_GT(p.query_p50_ms, 0.0);
      EXPECT_LE(p.query_p50_ms, p.query_p99_ms);
      EXPECT_LE(p.query_p99_ms, p.query_max_ms);
    }
    EXPECT_GT(p.accuracy_evaluated, 0u);
    EXPECT_GE(p.err_median, 0.0);
    EXPECT_GE(p.ci_coverage, 0.0);
    EXPECT_LE(p.ci_coverage, 1.0);
  }
}

TEST(PhasedRunnerTest, YcsbAOnDirectEngine) {
  const WorkloadSpec spec = Preset("ycsb-a", 2000, 600);
  const RunReport run = RunPhasedWorkload(spec, SmokeOptions("janus"));
  CheckSmokeReport(run, spec, /*expect_latency=*/true);
  EXPECT_GT(run.final_stats.rows, 0u);
}

TEST(PhasedRunnerTest, YcsbAOnShardedEngine) {
  const WorkloadSpec spec = Preset("ycsb-a", 2000, 600);
  const RunReport run = RunPhasedWorkload(spec, SmokeOptions("sharded:janus"));
  CheckSmokeReport(run, spec, /*expect_latency=*/true);
  EXPECT_EQ(run.engine, "sharded:janus");
}

TEST(PhasedRunnerTest, DeleteHeavyShrinksTheTable) {
  const WorkloadSpec spec = Preset("delete-heavy", 3000, 900);
  const RunReport run = RunPhasedWorkload(spec, SmokeOptions("janus"));
  CheckSmokeReport(run, spec, /*expect_latency=*/true);
  const PhaseReport& churn = run.phases[0];
  EXPECT_GT(churn.ops.deletes, churn.ops.inserts);
  // 3000 rows + inserts - deletes (misses removed nothing).
  EXPECT_EQ(run.final_stats.rows,
            3000u + churn.ops.inserts - churn.ops.deletes);
}

TEST(PhasedRunnerTest, StreamModeDrivesThroughBroker) {
  const WorkloadSpec spec = Preset("ycsb-b", 2000, 600);
  RunnerOptions opts = SmokeOptions("janus");
  opts.stream = true;
  const RunReport run = RunPhasedWorkload(spec, opts);
  EXPECT_TRUE(run.stream);
  // Per-op latency is undefined in stream mode; throughput and accuracy
  // still report.
  CheckSmokeReport(run, spec, /*expect_latency=*/false);
}

TEST(PhasedRunnerTest, MultiColumnPredicates) {
  WorkloadSpec spec = Preset("ycsb-c", 2000, 400);
  spec.num_predicate_columns = 2;
  const RunReport run = RunPhasedWorkload(spec, SmokeOptions("janus"));
  CheckSmokeReport(run, spec, /*expect_latency=*/true);
}

}  // namespace
}  // namespace workload
}  // namespace janus
