// Conformance suite for the unified AqpEngine API: every registered engine
// (including every "sharded:*" composition, at 1 and 4 shards) runs the same
// load / initialize / insert / delete / query / catch-up scenario through
// the facade, with estimate-sanity and CI-coverage checks. Also covers the
// registry, the shared ArgMap/EngineConfig parser, QueryBatch and the
// broker-driven EngineDriver.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/driver.h"
#include "api/engine.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/workload.h"
#include "persist/serde.h"
#include "tests/test_seed.h"
#include "util/invariants.h"
#include "util/thread_pool.h"

namespace janus {
namespace {

/// One conformance instantiation: a registry key plus, for sharded engines,
/// the shard count to run the scenario at (0 = engine has no shards).
struct ConformanceParam {
  std::string name;
  int shards = 0;
};

std::ostream& operator<<(std::ostream& os, const ConformanceParam& p) {
  os << p.name;
  if (p.shards > 0) os << " shards=" << p.shards;
  return os;
}

bool IsSharded(const std::string& name) {
  return name.rfind("sharded:", 0) == 0;
}

/// Registry key of the backend doing the estimating ("sharded:spn" -> "spn").
std::string InnerName(const std::string& name) {
  return IsSharded(name) ? name.substr(std::string("sharded:").size()) : name;
}

/// The full conformance matrix, derived from the registry: plain engines run
/// once, sharded engines run at 1 and 4 shards.
std::vector<ConformanceParam> BuildConformanceParams() {
  std::vector<ConformanceParam> out;
  for (const std::string& name : EngineRegistry::Global().Names()) {
    if (IsSharded(name)) {
      out.push_back({name, 1});
      out.push_back({name, 4});
    } else {
      out.push_back({name, 0});
    }
  }
  return out;
}

/// Snapshot used both to instantiate the suite and to verify coverage, so
/// the coverage check fails if the registry grows past the instantiation.
const std::vector<ConformanceParam>& InstantiatedParams() {
  static const std::vector<ConformanceParam> params =
      BuildConformanceParams();
  return params;
}

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 32;
  cfg.sample_rate = 0.02;
  cfg.catchup_rate = 0.10;
  cfg.enable_triggers = false;
  cfg.seed = TestSeed();
  return cfg;
}

EngineConfig ConfigFor(const ConformanceParam& p) {
  EngineConfig cfg = BaseConfig();
  if (p.shards > 0) cfg.num_shards = p.shards;
  return cfg;
}

/// Live row count however the engine exposes it: directly from the archive
/// table, or from the stats snapshot when the archive lives in shards.
size_t LiveRows(const AqpEngine& engine) {
  return engine.table() != nullptr ? engine.table()->size()
                                   : engine.Stats().rows;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

/// Workloads wide enough that every backend's resolution suffices.
std::vector<AggQuery> WideWorkload(const std::vector<Tuple>& rows,
                                   size_t n, uint64_t seed) {
  WorkloadGenerator gen(rows, {0}, 1);
  WorkloadOptions o;
  o.num_queries = n;
  o.func = AggFunc::kSum;
  o.min_count = std::max<size_t>(50, rows.size() / 100);
  o.seed = seed;
  return gen.Generate(rows, o);
}

/// Median relative error the scenario tolerates per engine (keyed by the
/// inner backend; sharding pools unbiased per-shard estimators, so the
/// budget carries over). The learned model has fixed resolution; everything
/// else is sampling-based.
double ErrorBudget(const std::string& engine) {
  return InnerName(engine) == "spn" ? 0.50 : 0.25;
}

class EngineConformanceTest
    : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(EngineConformanceTest, InsertDeleteQueryCatchupScenario) {
  const std::string name = GetParam().name;
  auto ds = GenerateUniform(20000, 1, TestSeed() + 31);
  auto engine = EngineRegistry::Create(name, ConfigFor(GetParam()));
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), name);

  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();
  // Structural audit after every mutation phase (debug builds / the
  // JANUS_AUDIT_INVARIANTS knob; a violation throws and fails the test).
  invariants::MaybeAudit(*engine);

  // Phase 1: estimate sanity on the historical data.
  auto rows = ds.rows;
  {
    const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
    const auto truth = ExactAnswer(rows, q);
    const QueryResult r = engine->Query(q);
    EXPECT_NEAR(r.estimate, *truth, *truth * ErrorBudget(name)) << name;
  }

  // Phase 2: stream 2000 inserts and 1000 deletes.
  Rng rng(TestSeed() + 77);
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = 500000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    engine->Insert(t);
    rows.push_back(t);
  }
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_TRUE(engine->Delete(id * 7)) << name;
  }
  EXPECT_FALSE(engine->Delete(999999999)) << name;
  invariants::MaybeAudit(*engine);
  std::vector<Tuple> live;
  for (const Tuple& t : rows) {
    if (t.id >= 500000 || t.id % 7 != 0 || t.id >= 7000) live.push_back(t);
  }

  // The archive tracks the stream exactly (sharded engines expose the row
  // count through Stats, which quiesces every shard first; every other
  // engine must still expose its archive table).
  if (IsSharded(name)) {
    EXPECT_EQ(engine->table(), nullptr) << name;
  } else {
    ASSERT_NE(engine->table(), nullptr) << name;
  }
  EXPECT_EQ(LiveRows(*engine), live.size()) << name;

  // Phase 3: updates are reflected (after a refresh for engines whose
  // synopsis only moves on Reinitialize).
  const std::string inner = InnerName(name);
  if (inner == "spn" || inner == "spt") engine->Reinitialize();
  engine->RunCatchupToGoal();
  invariants::MaybeAudit(*engine);
  {
    const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
    const auto truth = ExactAnswer(live, q);
    const QueryResult r = engine->Query(q);
    EXPECT_NEAR(r.estimate, *truth, *truth * ErrorBudget(name)) << name;
  }

  // Phase 4: workload-level estimate sanity and CI coverage.
  const auto queries = WideWorkload(live, 30, TestSeed() + 13);
  const auto truths = ExactAnswers(live, queries);
  std::vector<double> errors;
  size_t with_ci = 0, covered = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult r = engine->Query(queries[i]);
    EXPECT_GE(r.ci_half_width, 0.0) << name;
    EXPECT_TRUE(std::isfinite(r.estimate)) << name;
    const auto rel = RelativeError(truths[i], r.estimate);
    if (rel.has_value()) errors.push_back(*rel);
    if (r.ci_half_width > 0 && truths[i].has_value()) {
      ++with_ci;
      if (std::abs(r.estimate - *truths[i]) <= r.ci_half_width) ++covered;
    }
  }
  ASSERT_FALSE(errors.empty()) << name;
  std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                   errors.end());
  EXPECT_LT(errors[errors.size() / 2], ErrorBudget(name)) << name;
  // Engines that report confidence intervals must cover the truth at least
  // half the time at 95% nominal confidence (a loose floor; estimators are
  // biased only through the sample).
  if (with_ci >= queries.size() / 2) {
    EXPECT_GE(static_cast<double>(covered) / static_cast<double>(with_ci),
              0.5)
        << name;
  }

  // Stats snapshot is consistent with the stream.
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.engine, name);
  EXPECT_EQ(stats.rows, live.size()) << name;
  EXPECT_GE(stats.inserts, 2000u) << name;
  EXPECT_GE(stats.deletes, 1000u) << name;
  invariants::MaybeAudit(*engine);
}

TEST_P(EngineConformanceTest, QueryBatchMatchesSerialQueries) {
  const std::string name = GetParam().name;
  auto ds = GenerateUniform(8000, 1, TestSeed() + 57);
  auto engine = EngineRegistry::Create(name, ConfigFor(GetParam()));
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  const auto queries = WideWorkload(ds.rows, 24, TestSeed() + 5);
  std::vector<QueryResult> serial;
  for (const AggQuery& q : queries) serial.push_back(engine->Query(q));

  ThreadPool pool(4);
  const auto inline_batch = engine->QueryBatch(queries, nullptr);
  const auto pooled_batch = engine->QueryBatch(queries, &pool);
  ASSERT_EQ(inline_batch.size(), queries.size());
  ASSERT_EQ(pooled_batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(inline_batch[i].estimate, serial[i].estimate) << name;
    EXPECT_DOUBLE_EQ(pooled_batch[i].estimate, serial[i].estimate) << name;
    EXPECT_DOUBLE_EQ(pooled_batch[i].ci_half_width, serial[i].ci_half_width)
        << name;
  }
}

/// Bitwise equality of two query results: a restored engine must be
/// indistinguishable from the saved one, down to the last ulp of every
/// variance term (the persist layer round-trips doubles through their
/// IEEE-754 bits and serializes index structures shape-exactly).
void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& name, size_t query_index) {
  EXPECT_EQ(a.estimate, b.estimate) << name << " q" << query_index;
  EXPECT_EQ(a.ci_half_width, b.ci_half_width) << name << " q" << query_index;
  EXPECT_EQ(a.variance_catchup, b.variance_catchup)
      << name << " q" << query_index;
  EXPECT_EQ(a.variance_sample, b.variance_sample)
      << name << " q" << query_index;
  EXPECT_EQ(a.covered_nodes, b.covered_nodes) << name << " q" << query_index;
  EXPECT_EQ(a.partial_leaves, b.partial_leaves) << name << " q" << query_index;
  EXPECT_EQ(a.exact, b.exact) << name << " q" << query_index;
}

void ExpectSameStats(const EngineStats& a, const EngineStats& b,
                     const std::string& name) {
  EXPECT_EQ(a.engine, b.engine) << name;
  EXPECT_EQ(a.rows, b.rows) << name;
  EXPECT_EQ(a.sample_size, b.sample_size) << name;
  EXPECT_EQ(a.num_templates, b.num_templates) << name;
  EXPECT_EQ(a.inserts, b.inserts) << name;
  EXPECT_EQ(a.deletes, b.deletes) << name;
  EXPECT_EQ(a.repartitions, b.repartitions) << name;
  EXPECT_EQ(a.partial_repartitions, b.partial_repartitions) << name;
  EXPECT_EQ(a.partial_repartition_fallbacks, b.partial_repartition_fallbacks)
      << name;
  EXPECT_EQ(a.background_reopts, b.background_reopts) << name;
  EXPECT_EQ(a.background_discards, b.background_discards) << name;
  EXPECT_EQ(a.delta_ops_replayed, b.delta_ops_replayed) << name;
  EXPECT_EQ(a.trigger_checks, b.trigger_checks) << name;
  EXPECT_EQ(a.trigger_fires, b.trigger_fires) << name;
  EXPECT_EQ(a.reservoir_resamples, b.reservoir_resamples) << name;
  EXPECT_EQ(a.catchup_processed, b.catchup_processed) << name;
  EXPECT_EQ(a.catchup_processing_seconds, b.catchup_processing_seconds)
      << name;
  EXPECT_EQ(a.last_reopt_seconds, b.last_reopt_seconds) << name;
  EXPECT_EQ(a.last_blocking_seconds, b.last_blocking_seconds) << name;
  EXPECT_EQ(a.build_seconds, b.build_seconds) << name;
  EXPECT_EQ(a.partition_seconds, b.partition_seconds) << name;
  // Byte footprints derive from container capacities (allocator growth
  // history, not logical state): a restored engine is typically tighter.
  EXPECT_GT(b.archive_bytes, 0u) << name;
  EXPECT_LE(a.archive_bytes, 3 * b.archive_bytes) << name;
  EXPECT_LE(b.archive_bytes, 3 * a.archive_bytes) << name;
  EXPECT_LE(a.synopsis_bytes, 3 * b.synopsis_bytes + 1024) << name;
  EXPECT_LE(b.synopsis_bytes, 3 * a.synopsis_bytes + 1024) << name;
}

TEST_P(EngineConformanceTest, SaveLoadRoundTripIsBitIdentical) {
  const std::string name = GetParam().name;
  const EngineConfig cfg = ConfigFor(GetParam());
  auto ds = GenerateUniform(8000, 1, TestSeed() + 3);
  auto engine = EngineRegistry::Create(name, cfg);
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  // Stream updates so the snapshot carries dynamic state: post-init deltas,
  // reservoir churn, swap-removed archive slots.
  Rng rng(TestSeed() + 4);
  for (int i = 0; i < 600; ++i) {
    Tuple t;
    t.id = 700000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    engine->Insert(t);
  }
  for (uint64_t id = 0; id < 200; ++id) engine->Delete(id * 11);

  std::string label = name;
  std::replace(label.begin(), label.end(), ':', '_');
  const std::string path = ::testing::TempDir() + "/roundtrip_" + label +
                           "_" + std::to_string(GetParam().shards) + ".snap";
  SnapshotMeta meta;
  meta.insert_offset = 123;
  meta.delete_offset = 45;
  meta.query_offset = 6;
  engine->Save(path, meta);

  // A fresh engine from the same config, restored from the file: no
  // LoadInitial, no Initialize.
  auto restored = EngineRegistry::Create(name, cfg);
  const SnapshotMeta back = restored->Load(path);
  EXPECT_EQ(back.engine, name);
  EXPECT_EQ(back.insert_offset, 123u);
  EXPECT_EQ(back.delete_offset, 45u);
  EXPECT_EQ(back.query_offset, 6u);

  // Fixed workload over the engine's own template, every aggregate: the
  // restored engine must answer bit-identically.
  std::vector<AggQuery> queries = WideWorkload(ds.rows, 20, TestSeed() + 5);
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    queries.push_back(MakeQuery(f, 0.1, 0.8));
    queries.push_back(MakeQuery(f, 0.4, 0.6));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResult(engine->Query(queries[i]), restored->Query(queries[i]),
                     name, i);
  }
  ExpectSameStats(engine->Stats(), restored->Stats(), name);

  // And the restored engine keeps *behaving* identically: the same further
  // update stream leaves both engines in the same state (RNGs, reservoirs
  // and index shapes round-tripped exactly).
  Rng follow_a(TestSeed() + 6), follow_b(TestSeed() + 6);
  auto feed = [](AqpEngine* e, Rng* r) {
    for (int i = 0; i < 150; ++i) {
      Tuple t;
      t.id = 800000 + static_cast<uint64_t>(i);
      t[0] = r->NextDouble();
      t[1] = r->Normal(10, 2);
      e->Insert(t);
    }
    for (uint64_t id = 300; id < 340; ++id) e->Delete(id * 7);
  };
  feed(engine.get(), &follow_a);
  feed(restored.get(), &follow_b);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResult(engine->Query(queries[i]), restored->Query(queries[i]),
                     name, i);
  }
  ExpectSameStats(engine->Stats(), restored->Stats(), name);

  std::remove(path.c_str());
}

TEST_P(EngineConformanceTest, LoadRejectsSnapshotFromOtherEngine) {
  const std::string name = GetParam().name;
  // A snapshot written by a different backend must be rejected by name, not
  // misparsed. ("rs" engines get an "srs" snapshot, everything else "rs".)
  const std::string other = name == "rs" ? "srs" : "rs";
  auto donor = EngineRegistry::Create(other, BaseConfig());
  auto ds = GenerateUniform(500, 1, TestSeed() + 7);
  donor->LoadInitial(ds.rows);
  donor->Initialize();
  std::string label = name;
  std::replace(label.begin(), label.end(), ':', '_');
  const std::string path = ::testing::TempDir() + "/mismatch_" + label +
                           "_" + std::to_string(GetParam().shards) + ".snap";
  donor->Save(path);

  auto engine = EngineRegistry::Create(name, ConfigFor(GetParam()));
  EXPECT_THROW(engine->Load(path), persist::PersistError) << name;
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest,
    ::testing::ValuesIn(InstantiatedParams()),
    [](const ::testing::TestParamInfo<ConformanceParam>& info) {
      std::string label = info.param.name;
      std::replace(label.begin(), label.end(), ':', '_');
      if (info.param.shards > 0) {
        label += "_" + std::to_string(info.param.shards) + "shards";
      }
      return label;
    });

TEST(EngineRegistryTest, CoversAllBackends) {
  const auto names = EngineRegistry::Global().Names();
  for (const char* expected :
       {"janus", "multi", "rs", "srs", "spn", "spt", "sharded:janus",
        "sharded:multi", "sharded:rs", "sharded:srs", "sharded:spn",
        "sharded:spt"}) {
    EXPECT_TRUE(EngineRegistry::Global().Contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
    EXPECT_FALSE(EngineRegistry::Global().Description(expected).empty());
  }
}

TEST(EngineRegistryTest, ConformanceSuiteCoversEveryRegisteredEngine) {
  // The suite is instantiated from a registry snapshot taken at static
  // initialization; every engine registered by query time must be in it.
  // Registering a backend without conformance coverage is a test failure.
  std::set<std::string> covered;
  for (const ConformanceParam& p : InstantiatedParams()) {
    covered.insert(p.name);
  }
  for (const std::string& name : EngineRegistry::Global().Names()) {
    EXPECT_TRUE(covered.contains(name))
        << "engine '" << name
        << "' is registered but missing from the conformance suite";
  }
  // Every sharded composition must run at both 1 and 4 shards.
  for (const ConformanceParam& p : InstantiatedParams()) {
    if (p.name.rfind("sharded:", 0) != 0) continue;
    size_t variants = 0;
    for (const ConformanceParam& q : InstantiatedParams()) {
      if (q.name == p.name && (q.shards == 1 || q.shards == 4)) ++variants;
    }
    EXPECT_EQ(variants, 2u) << p.name;
  }
}

TEST(EngineRegistryTest, UnknownEngineThrowsWithKnownNames) {
  try {
    EngineRegistry::Create("nope", EngineConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("janus"), std::string::npos);
  }
}

TEST(EngineRegistryTest, RuntimeRegistrationWins) {
  EngineRegistry registry;
  registry.Register("custom", "test engine", [](const EngineConfig& c) {
    return EngineRegistry::Global().CreateEngine("rs", c);
  });
  EXPECT_TRUE(registry.Contains("custom"));
  auto engine = registry.CreateEngine("custom", BaseConfig());
  EXPECT_STREQ(engine->name(), "rs");
}

TEST(ArgMapTest, AcceptsAllFlagStyles) {
  const char* argv[] = {"prog",        "rows=100",  "--queries", "7",
                        "--beta=2.5",  "engine=srs", "pred=0,2",  "--verbose"};
  ArgMap args(8, const_cast<char**>(argv));
  EXPECT_EQ(args.GetSize("rows", 0), 100u);
  EXPECT_EQ(args.GetSize("queries", 0), 7u);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0), 2.5);
  EXPECT_EQ(args.GetString("engine", ""), "srs");
  EXPECT_EQ(args.GetIntList("pred", {}), (std::vector<int>{0, 2}));
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetSize("missing", 42), 42u);
}

TEST(ArgMapTest, NegativeValuesAreNotFlags) {
  const char* argv[] = {"prog", "--beta", "-2.5", "--agg", "-1", "--flag"};
  ArgMap args(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0), -2.5);
  EXPECT_EQ(args.GetInt("agg", 0), -1);
  EXPECT_TRUE(args.GetBool("flag", false));
}

TEST(ArgMapTest, BareFlagDoesNotSwallowKeyValueToken) {
  const char* argv[] = {"prog", "--verbose", "engine=rs"};
  ArgMap args(3, const_cast<char**>(argv));
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetString("engine", ""), "rs");
}

// Regression: strtoull-based getters wrapped "rows=-1" to 2^64-1 and read
// "10x" as 10 with the trailing garbage silently ignored. Strict parsing
// must fall back to the caller's default for all of these.
TEST(ArgMapTest, NegativeValueForUnsignedGetterFallsBackToDefault) {
  const char* argv[] = {"prog", "rows=-1", "every=-37"};
  ArgMap args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetSize("rows", 123), 123u);
  EXPECT_EQ(args.GetUint64("every", 7), 7u);
  // The signed getter still accepts negatives, of course.
  EXPECT_EQ(args.GetInt("rows", 0), -1);
}

TEST(ArgMapTest, NonNumericValueFallsBackToDefault) {
  const char* argv[] = {"prog", "rows=abc", "seed=xyz", "beta=nope"};
  ArgMap args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetSize("rows", 55), 55u);
  EXPECT_EQ(args.GetUint64("seed", 42), 42u);
  EXPECT_EQ(args.GetInt("rows", -3), -3);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 1.5), 1.5);
}

TEST(ArgMapTest, TrailingGarbageFallsBackToDefault) {
  const char* argv[] = {"prog", "rows=10x", "leaves=64k", "beta=2.5oops"};
  ArgMap args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetSize("rows", 9), 9u);
  EXPECT_EQ(args.GetInt("leaves", 128), 128);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0.25), 0.25);
}

TEST(ArgMapTest, OverflowFallsBackToDefault) {
  const char* argv[] = {"prog",
                        "seed=99999999999999999999999999",  // > 2^64
                        "leaves=99999999999"};              // > INT_MAX
  ArgMap args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetUint64("seed", 42), 42u);
  EXPECT_EQ(args.GetSize("seed", 17), 17u);
  EXPECT_EQ(args.GetInt("leaves", 128), 128);
}

TEST(ArgMapTest, StrictParsingStillAcceptsValidExtremes) {
  const char* argv[] = {"prog", "seed=18446744073709551615",  // 2^64-1
                        "leaves=-2147483648", "beta=1e-3", "rows=0"};
  ArgMap args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetUint64("seed", 0), 18446744073709551615ull);
  EXPECT_EQ(args.GetInt("leaves", 0), -2147483648);
  EXPECT_DOUBLE_EQ(args.GetDouble("beta", 0), 1e-3);
  EXPECT_EQ(args.GetSize("rows", 5), 0u);
}

TEST(EngineConfigTest, ToStringRoundTripsEveryKnob) {
  EngineConfig cfg;
  cfg.engine = "srs";
  cfg.beta = 4.0;
  cfg.partial_repartition_psi = 2;
  cfg.confidence = 0.99;
  cfg.num_strata = 17;
  cfg.train_fraction = 0.2;
  cfg.num_shards = 6;
  cfg.enable_triggers = false;
  cfg.reopt_mode = "background";
  cfg.reopt_delta_tail = 99;
  // Feed the canonical rendering back through the parser: every knob must
  // survive the round trip.
  const std::string line = cfg.ToString();
  std::vector<std::string> tokens{"prog"};
  std::stringstream ss(line);
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  std::vector<char*> argv;
  for (auto& t : tokens) argv.push_back(t.data());
  const EngineConfig back = EngineConfig::FromArgs(
      ArgMap(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(back.engine, cfg.engine);
  EXPECT_DOUBLE_EQ(back.beta, cfg.beta);
  EXPECT_EQ(back.partial_repartition_psi, cfg.partial_repartition_psi);
  EXPECT_DOUBLE_EQ(back.confidence, cfg.confidence);
  EXPECT_EQ(back.num_strata, cfg.num_strata);
  EXPECT_DOUBLE_EQ(back.train_fraction, cfg.train_fraction);
  EXPECT_EQ(back.num_shards, cfg.num_shards);
  EXPECT_EQ(back.enable_triggers, cfg.enable_triggers);
  EXPECT_EQ(back.trigger_check_interval, cfg.trigger_check_interval);
  EXPECT_DOUBLE_EQ(back.starvation_factor, cfg.starvation_factor);
  EXPECT_EQ(back.reopt_mode, cfg.reopt_mode);
  EXPECT_EQ(back.reopt_delta_tail, cfg.reopt_delta_tail);
}

TEST(EngineConfigTest, FromArgsParsesEveryKnob) {
  const char* argv[] = {"prog",           "engine=spt",  "agg=3",
                        "pred=1,2",       "leaves=64",   "alpha=0.05",
                        "catchup=0.2",    "algorithm=dp", "triggers=off",
                        "seed=9"};
  ArgMap args(10, const_cast<char**>(argv));
  const EngineConfig cfg = EngineConfig::FromArgs(args);
  EXPECT_EQ(cfg.engine, "spt");
  EXPECT_EQ(cfg.agg_column, 3);
  EXPECT_EQ(cfg.predicate_columns, (std::vector<int>{1, 2}));
  EXPECT_EQ(cfg.num_leaves, 64);
  EXPECT_DOUBLE_EQ(cfg.sample_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.catchup_rate, 0.2);
  EXPECT_EQ(cfg.algorithm, PartitionAlgorithm::kDynamicProgram);
  EXPECT_FALSE(cfg.enable_triggers);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_NE(cfg.ToString().find("engine=spt"), std::string::npos);
}

TEST(EngineDriverTest, ConsumesAllThreeTopics) {
  auto ds = GenerateUniform(10000, 1, TestSeed() + 91);
  auto engine = EngineRegistry::Create("janus", BaseConfig());
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  Broker broker;
  Rng rng(TestSeed() + 15);
  std::vector<Tuple> fresh;
  for (int i = 0; i < 3000; ++i) {
    Tuple t;
    t.id = 800000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    fresh.push_back(t);
  }
  broker.insert_topic()->AppendBatch(fresh);
  // Deletions address ids only; the delete stream carries bare tuples.
  std::vector<Tuple> dels;
  for (uint64_t id = 0; id < 500; ++id) {
    Tuple t;
    t.id = id;
    dels.push_back(t);
  }
  broker.delete_topic()->AppendBatch(dels);
  broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  broker.query_topic()->Append(MakeQuery(AggFunc::kSum, 0.2, 0.8));

  EngineDriver driver(engine.get(), &broker);
  const size_t consumed = driver.Drain();
  EXPECT_EQ(consumed, 3000u + 500u + 2u);
  EXPECT_EQ(driver.stats().inserts, 3000u);
  EXPECT_EQ(driver.stats().deletes, 500u);
  EXPECT_EQ(driver.stats().queries, 2u);
  ASSERT_EQ(driver.pending_results(), 2u);
  const std::vector<QueryResult> answers = driver.TakeResults();

  // The engine saw every record: 10000 + 3000 - 500 live tuples.
  EXPECT_EQ(engine->table()->size(), 12500u);
  EXPECT_NEAR(answers[0].estimate, 12500.0, 12500.0 * 0.15);

  // A second Drain with nothing new is a no-op.
  EXPECT_EQ(driver.Drain(), 0u);
}

// Regression: results_ grew with every polled query forever; TakeResults()
// is the drain API long-running consumers use to bound it.
TEST(EngineDriverTest, TakeResultsDrainsBuffer) {
  auto ds = GenerateUniform(5000, 1, TestSeed() + 92);
  auto engine = EngineRegistry::Create("janus", BaseConfig());
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  Broker broker;
  broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  broker.query_topic()->Append(MakeQuery(AggFunc::kSum, 0.2, 0.8));
  EngineDriver driver(engine.get(), &broker);
  driver.Drain();
  ASSERT_EQ(driver.pending_results(), 2u);

  const std::vector<QueryResult> taken = driver.TakeResults();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(driver.pending_results(), 0u);
  // Offsets and stats are untouched by the drain.
  EXPECT_EQ(driver.query_offset(), 2u);
  EXPECT_EQ(driver.stats().queries, 2u);

  // Later queries land in the (now empty) buffer, in topic order.
  broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 0.5));
  driver.Drain();
  ASSERT_EQ(driver.pending_results(), 1u);
  EXPECT_EQ(driver.query_offset(), 3u);
}

TEST(EngineDriverTest, DrainThenSnapshotRoundTrips) {
  auto ds = GenerateUniform(5000, 1, TestSeed() + 93);
  auto engine = EngineRegistry::Create("janus", BaseConfig());
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  Broker broker;
  broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  broker.query_topic()->Append(MakeQuery(AggFunc::kSum, 0.1, 0.9));
  EngineDriver driver(engine.get(), &broker);
  driver.Drain();
  (void)driver.TakeResults();

  // A snapshot taken after the drain records the same offsets it would have
  // with the results still buffered (results are derived data).
  const std::string path =
      ::testing::TempDir() + "/drain_snapshot_roundtrip.snap";
  driver.SaveSnapshot(path);

  auto engine2 = EngineRegistry::Create("janus", BaseConfig());
  EngineDriver driver2(engine2.get(), &broker);
  driver2.LoadSnapshot(path);
  EXPECT_EQ(driver2.query_offset(), driver.query_offset());
  EXPECT_EQ(driver2.insert_offset(), driver.insert_offset());
  EXPECT_EQ(driver2.delete_offset(), driver.delete_offset());

  // The recovered driver answers only queries past the snapshot cut.
  broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 0.5));
  driver2.Drain();
  EXPECT_EQ(driver2.pending_results(), 1u);
  std::remove(path.c_str());
}

TEST(EngineDriverTest, WorksAgainstEveryEngine) {
  // The streaming scenario is engine-agnostic: replay the same topics into
  // each registered backend, sharded compositions included (the driver is
  // routed through them unchanged).
  for (const std::string& name : EngineRegistry::Global().Names()) {
    auto ds = GenerateUniform(5000, 1, TestSeed() + 17);
    EngineConfig cfg = BaseConfig();
    cfg.num_shards = 2;
    auto engine = EngineRegistry::Create(name, cfg);
    engine->LoadInitial(ds.rows);
    engine->Initialize();

    Broker broker;
    Rng rng(TestSeed() + 19);
    for (int i = 0; i < 500; ++i) {
      Tuple t;
      t.id = 900000 + static_cast<uint64_t>(i);
      t[0] = rng.NextDouble();
      t[1] = rng.Normal(10, 2);
      broker.insert_topic()->Append(t);
    }
    broker.query_topic()->Append(MakeQuery(AggFunc::kCount, 0.0, 1.0));

    EngineDriver driver(engine.get(), &broker);
    driver.Drain();
    EXPECT_EQ(driver.stats().inserts, 500u) << name;
    ASSERT_EQ(driver.pending_results(), 1u) << name;
    EXPECT_EQ(LiveRows(*engine), 5500u) << name;
  }
}

}  // namespace
}  // namespace janus
