#include "sampling/reservoir.h"

#include <map>

#include <gtest/gtest.h>

namespace janus {
namespace {

Tuple MakeTuple(uint64_t id, double v = 0) {
  Tuple t;
  t.id = id;
  t[0] = v;
  return t;
}

TEST(ReservoirTest, FillsToCapacity) {
  DynamicReservoir res(10, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    auto ch = res.OnInsert(MakeTuple(i), i + 1);
    EXPECT_TRUE(ch.added.has_value());
    EXPECT_FALSE(ch.evicted.has_value());
  }
  EXPECT_EQ(res.size(), 10u);
}

TEST(ReservoirTest, FullReservoirEvictsWhenAccepting) {
  DynamicReservoir res(10, 2);
  for (uint64_t i = 0; i < 10; ++i) res.OnInsert(MakeTuple(i), i + 1);
  int accepted = 0;
  for (uint64_t i = 10; i < 200; ++i) {
    auto ch = res.OnInsert(MakeTuple(i), i + 1);
    if (ch.added.has_value()) {
      ++accepted;
      EXPECT_TRUE(ch.evicted.has_value());
      EXPECT_EQ(res.size(), 10u);
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 190);
}

TEST(ReservoirTest, DeleteNonSampledIsNoop) {
  DynamicReservoir res(10, 3);
  for (uint64_t i = 0; i < 10; ++i) res.OnInsert(MakeTuple(i), i + 1);
  auto ch = res.OnDelete(999);
  EXPECT_FALSE(ch.evicted.has_value());
  EXPECT_FALSE(ch.needs_resample);
  EXPECT_EQ(res.size(), 10u);
}

TEST(ReservoirTest, DeleteSampledShrinksUntilLowerBound) {
  DynamicReservoir res(10, 4);
  for (uint64_t i = 0; i < 10; ++i) res.OnInsert(MakeTuple(i), i + 1);
  // Delete sampled tuples down to the lower bound m = 5.
  size_t deletions = 0;
  for (uint64_t i = 0; i < 10 && res.size() > res.lower_bound(); ++i) {
    auto ch = res.OnDelete(i);
    if (ch.evicted.has_value()) ++deletions;
    EXPECT_FALSE(ch.needs_resample);
  }
  EXPECT_EQ(res.size(), res.lower_bound());
  EXPECT_EQ(deletions, 5u);
  // The next sampled deletion must request a full re-sample.
  uint64_t sampled_id = res.samples()[0].id;
  auto ch = res.OnDelete(sampled_id);
  EXPECT_TRUE(ch.needs_resample);
}

TEST(ReservoirTest, ResetReplacesContents) {
  DynamicReservoir res(10, 5);
  for (uint64_t i = 0; i < 10; ++i) res.OnInsert(MakeTuple(i), i + 1);
  std::vector<Tuple> fresh;
  for (uint64_t i = 100; i < 108; ++i) fresh.push_back(MakeTuple(i));
  res.Reset(fresh);
  EXPECT_EQ(res.size(), 8u);
  EXPECT_TRUE(res.Contains(103));
  EXPECT_FALSE(res.Contains(3));
}

TEST(ReservoirTest, UniformityOverStream) {
  // Every stream element should end up sampled with probability ~ 2m/N.
  const size_t target = 100;
  const size_t stream = 2000;
  std::map<uint64_t, int> hits;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    DynamicReservoir res(target, static_cast<uint64_t>(rep) * 7919 + 1);
    for (uint64_t i = 0; i < stream; ++i) res.OnInsert(MakeTuple(i), i + 1);
    for (const Tuple& t : res.samples()) hits[t.id]++;
  }
  // Expected inclusion probability target/stream = 0.05.
  double early = 0, late = 0;
  for (uint64_t i = 0; i < 200; ++i) early += hits[i];
  for (uint64_t i = stream - 200; i < stream; ++i) late += hits[i];
  early /= 200.0 * reps;
  late /= 200.0 * reps;
  EXPECT_NEAR(early, 0.05, 0.015);
  EXPECT_NEAR(late, 0.05, 0.015);
}

TEST(ReservoirTest, ContainsTracksMembership) {
  DynamicReservoir res(4, 6);
  for (uint64_t i = 1; i <= 4; ++i) res.OnInsert(MakeTuple(i), i);
  EXPECT_TRUE(res.Contains(1));
  // Above the lower bound: deletion physically removes the sample.
  res.OnDelete(1);
  EXPECT_FALSE(res.Contains(1));
  EXPECT_TRUE(res.Contains(2));
  // At the lower bound m = 2: deletion requests a re-sample instead, so the
  // stale sample remains until Reset().
  res.OnDelete(2);
  auto ch = res.OnDelete(3);
  EXPECT_TRUE(ch.needs_resample);
  EXPECT_TRUE(res.Contains(3));
}

TEST(ReservoirTest, EvictedTupleReportedCorrectly) {
  DynamicReservoir res(2, 7);
  res.OnInsert(MakeTuple(1, 1.5), 1);
  res.OnInsert(MakeTuple(2, 2.5), 2);
  for (uint64_t i = 3; i < 100; ++i) {
    auto ch = res.OnInsert(MakeTuple(i, 0), i);
    if (ch.added.has_value()) {
      ASSERT_TRUE(ch.evicted.has_value());
      EXPECT_FALSE(res.Contains(ch.evicted->id));
      EXPECT_TRUE(res.Contains(ch.added->id));
    }
  }
}

}  // namespace
}  // namespace janus
