#include "baselines/srs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"

namespace janus {
namespace {

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

class SrsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(20000, 1, 12);
    SrsOptions opts;
    opts.num_strata = 32;
    opts.predicate_column = 0;
    opts.sample_rate = 0.02;
    system_ = std::make_unique<StratifiedReservoirBaseline>(opts);
    system_->LoadInitial(ds_.rows);
    system_->Initialize();
  }
  GeneratedDataset ds_;
  std::unique_ptr<StratifiedReservoirBaseline> system_;
};

TEST_F(SrsTest, StrataPopulationsSumToTable) {
  double total = 0;
  for (int s = 0; s < system_->num_strata(); ++s) {
    total += system_->StratumPopulation(s);
  }
  EXPECT_DOUBLE_EQ(total, 20000.0);
}

TEST_F(SrsTest, EqualDepthStrataAreBalanced) {
  for (int s = 0; s < system_->num_strata(); ++s) {
    EXPECT_NEAR(system_->StratumPopulation(s), 20000.0 / 32, 20.0);
  }
}

TEST_F(SrsTest, EstimatesWithinSamplingError) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    const AggQuery q = MakeQuery(f, 0.15, 0.85);
    const auto truth = ExactAnswer(ds_.rows, q);
    const QueryResult r = system_->Query(q);
    EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.12)
        << AggFuncName(f);
  }
}

TEST_F(SrsTest, PopulationCountersTrackUpdates) {
  Tuple t;
  t.id = 700000;
  t[0] = 0.0;  // first stratum
  t[1] = 1.0;
  const double before = system_->StratumPopulation(0);
  system_->Insert(t);
  EXPECT_DOUBLE_EQ(system_->StratumPopulation(0), before + 1);
  system_->Delete(700000);
  EXPECT_DOUBLE_EQ(system_->StratumPopulation(0), before);
}

TEST_F(SrsTest, DeletionsKeepEstimatesConsistent) {
  // Delete all tuples in the lower half of the key space.
  std::vector<Tuple> remaining;
  for (const Tuple& t : ds_.rows) {
    if (t[0] < 0.5) {
      system_->Delete(t.id);
    } else {
      remaining.push_back(t);
    }
  }
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
  const auto truth = ExactAnswer(remaining, q);
  const QueryResult r = system_->Query(q);
  EXPECT_NEAR(r.estimate, *truth, *truth * 0.1);
  // Queries entirely in the emptied region return ~0.
  const QueryResult zero = system_->Query(MakeQuery(AggFunc::kCount, 0.0, 0.4));
  EXPECT_LT(zero.estimate, 200.0);
}

TEST_F(SrsTest, StratifiedBeatsUniformOnStratifiedSkew) {
  // Construct data where the aggregate variance differs wildly by region;
  // stratification should help narrow queries aligned with strata.
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.0, 0.25);
  const auto truth = ExactAnswer(ds_.rows, q);
  const QueryResult r = system_->Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.15);
  EXPECT_GT(r.ci_half_width, 0.0);
}

TEST_F(SrsTest, DeleteMissingReturnsFalse) {
  EXPECT_FALSE(system_->Delete(987654321));
}

}  // namespace
}  // namespace janus
