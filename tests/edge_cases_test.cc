// Failure-injection and degenerate-input tests: tiny tables, constant and
// negative aggregation values, duplicate keys, queries outside the data
// domain, and full churn cycles (everything deleted, then re-grown).

#include <cmath>

#include <gtest/gtest.h>

#include "core/janus.h"
#include "core/multi.h"
#include "data/generators.h"
#include "data/ground_truth.h"

namespace janus {
namespace {

JanusOptions SmallOptions() {
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 16;
  o.sample_rate = 0.05;
  o.catchup_rate = 0.20;
  o.enable_triggers = false;
  return o;
}

Tuple MakeTuple(uint64_t id, double key, double value) {
  Tuple t;
  t.id = id;
  t[0] = key;
  t[1] = value;
  return t;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

TEST(EdgeCaseTest, TinyTableInitializes) {
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  for (uint64_t i = 0; i < 5; ++i) rows.push_back(MakeTuple(i, i * 0.1, 1.0));
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const QueryResult r = system.Query(MakeQuery(AggFunc::kCount, -1.0, 1.0));
  EXPECT_NEAR(r.estimate, 5.0, 2.0);
}

TEST(EdgeCaseTest, SingleRowTable) {
  JanusAqp system(SmallOptions());
  system.LoadInitial({MakeTuple(0, 0.5, 7.0)});
  system.Initialize();
  system.RunCatchupToGoal();
  const QueryResult r = system.Query(MakeQuery(AggFunc::kSum, 0.0, 1.0));
  EXPECT_NEAR(r.estimate, 7.0, 1e-6);
}

TEST(EdgeCaseTest, ConstantAggregationValues) {
  // Zero variance everywhere: every estimate should be near-exact and every
  // CI tiny.
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  Rng rng(1);
  for (uint64_t i = 0; i < 5000; ++i) {
    rows.push_back(MakeTuple(i, rng.NextDouble(), 3.0));
  }
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const AggQuery q = MakeQuery(AggFunc::kAvg, 0.2, 0.8);
  const QueryResult r = system.Query(q);
  EXPECT_NEAR(r.estimate, 3.0, 1e-9);
}

TEST(EdgeCaseTest, NegativeAggregationValues) {
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  Rng rng(2);
  for (uint64_t i = 0; i < 10000; ++i) {
    rows.push_back(MakeTuple(i, rng.NextDouble(), rng.Normal(-50, 5)));
  }
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.1, 0.9);
  const auto truth = ExactAnswer(system.table().store(), q);
  const QueryResult r = system.Query(q);
  ASSERT_LT(*truth, 0);
  EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.05);
}

TEST(EdgeCaseTest, AllKeysIdentical) {
  // Degenerate predicate domain: one point carries everything.
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  Rng rng(3);
  for (uint64_t i = 0; i < 2000; ++i) {
    rows.push_back(MakeTuple(i, 42.0, rng.Normal(10, 2)));
  }
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const auto truth =
      ExactAnswer(system.table().store(), MakeQuery(AggFunc::kSum, 42.0, 42.0));
  const QueryResult hit = system.Query(MakeQuery(AggFunc::kSum, 40.0, 44.0));
  const QueryResult miss = system.Query(MakeQuery(AggFunc::kSum, 0.0, 41.0));
  EXPECT_NEAR(hit.estimate, *truth, std::abs(*truth) * 0.05);
  EXPECT_NEAR(miss.estimate, 0.0, std::abs(*truth) * 0.01);
}

TEST(EdgeCaseTest, QueryOutsideDomainIsZero) {
  auto ds = GenerateUniform(5000, 1, 4);
  JanusAqp system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount}) {
    const QueryResult r = system.Query(MakeQuery(f, 100.0, 200.0));
    EXPECT_DOUBLE_EQ(r.estimate, 0.0) << AggFuncName(f);
  }
}

TEST(EdgeCaseTest, DeleteEverythingThenRegrow) {
  auto ds = GenerateUniform(3000, 1, 5);
  JanusAqp system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  // Drain the table completely except one tuple (reservoir invariants and
  // resamples must survive).
  for (uint64_t id = 0; id + 1 < 3000; ++id) {
    ASSERT_TRUE(system.Delete(id));
  }
  EXPECT_EQ(system.table().size(), 1u);
  const QueryResult empty = system.Query(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  EXPECT_LT(empty.estimate, 50.0);
  // Regrow.
  Rng rng(6);
  for (uint64_t i = 0; i < 4000; ++i) {
    Tuple t = MakeTuple(100000 + i, rng.NextDouble(), rng.Normal(10, 2));
    system.Insert(t);
  }
  const QueryResult after = system.Query(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  EXPECT_NEAR(after.estimate, 4001.0, 4001.0 * 0.1);
}

TEST(EdgeCaseTest, ZeroInflatedAggregates) {
  // Intel-light-style data: mostly zeros with bursts. The error-ladder
  // bounds of Lemma D.2 handle zero values explicitly.
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  Rng rng(7);
  for (uint64_t i = 0; i < 20000; ++i) {
    const double v = rng.Bernoulli(0.8) ? 0.0 : rng.LogNormal(3, 1);
    rows.push_back(MakeTuple(i, rng.NextDouble(), v));
  }
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.1, 0.7);
  const auto truth = ExactAnswer(system.table().store(), q);
  const QueryResult r = system.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.15);
}

TEST(EdgeCaseTest, RepeatedReinitializeIsStable) {
  auto ds = GenerateUniform(8000, 1, 8);
  JanusAqp system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  for (int i = 0; i < 5; ++i) {
    system.Reinitialize();
    system.RunCatchupToGoal();
    const AggQuery q = MakeQuery(AggFunc::kSum, 0.2, 0.8);
    const auto truth = ExactAnswer(system.table().store(), q);
    const QueryResult r = system.Query(q);
    ASSERT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.08)
        << "round " << i;
  }
  EXPECT_EQ(system.counters().repartitions, 5u);
}

TEST(EdgeCaseTest, PointQueryRectangle) {
  // Degenerate rectangle lo == hi: legal, selects a measure-zero slice.
  auto ds = GenerateUniform(5000, 1, 9);
  JanusAqp system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const double key = ds.rows[100][0];
  const AggQuery q = MakeQuery(AggFunc::kCount, key, key);
  const QueryResult r = system.Query(q);
  EXPECT_GE(r.estimate, 0.0);
  EXPECT_LT(r.estimate, 100.0);
}

TEST(EdgeCaseTest, MultiTemplateWithNoTemplatesInitializes) {
  auto ds = GenerateUniform(5000, 2, 10);
  MultiTemplateJanus system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();  // no templates yet: nothing to build
  EXPECT_EQ(system.num_templates(), 0u);
  // First query creates the template lazily.
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 2;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.0}, {1.0});
  const QueryResult r = system.Query(q);
  EXPECT_EQ(system.num_templates(), 1u);
  EXPECT_NEAR(r.estimate, 5000.0, 600.0);
}

TEST(EdgeCaseTest, InsertFarOutsideInitialDomain) {
  // Domain growth: tuples far outside the initial bounding box must still
  // route to a boundary leaf and be counted.
  auto ds = GenerateUniform(5000, 1, 11);
  JanusAqp system(SmallOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  for (uint64_t i = 0; i < 100; ++i) {
    system.Insert(MakeTuple(900000 + i, 1e6 + static_cast<double>(i), 5.0));
  }
  const QueryResult far =
      system.Query(MakeQuery(AggFunc::kCount, 1e6 - 1, 2e6));
  EXPECT_NEAR(far.estimate, 100.0, 10.0);
  const QueryResult sum = system.Query(MakeQuery(AggFunc::kSum, 1e6 - 1, 2e6));
  EXPECT_NEAR(sum.estimate, 500.0, 50.0);
}

TEST(EdgeCaseTest, MinMaxOnNegativeAndMixedSigns) {
  JanusAqp system(SmallOptions());
  std::vector<Tuple> rows;
  Rng rng(12);
  for (uint64_t i = 0; i < 5000; ++i) {
    rows.push_back(MakeTuple(i, rng.NextDouble(), rng.Uniform(-100, 100)));
  }
  system.LoadInitial(rows);
  system.Initialize();
  system.RunCatchupToGoal();
  const auto tmin =
      ExactAnswer(system.table().store(), MakeQuery(AggFunc::kMin, 0.0, 1.0));
  const auto tmax =
      ExactAnswer(system.table().store(), MakeQuery(AggFunc::kMax, 0.0, 1.0));
  // Sample extremes: inner approximations.
  EXPECT_GE(system.Query(MakeQuery(AggFunc::kMin, 0.0, 1.0)).estimate, *tmin);
  EXPECT_LE(system.Query(MakeQuery(AggFunc::kMax, 0.0, 1.0)).estimate, *tmax);
}

}  // namespace
}  // namespace janus
