// Snapshot persistence & crash recovery.
//
// The contract under test: AqpEngine::Save captures *complete* operational
// state — archive layout, sampler contents, RNG streams, index structures
// shape-exact — so that (a) a restored engine answers bit-identically, and
// (b) restoring a snapshot and replaying the broker-stream tail from the
// recorded offsets reproduces an uninterrupted run exactly. Plus the
// format-hardening negatives: wrong magic, truncated files, flipped bits and
// cross-engine snapshots all fail with persist::PersistError, never a crash.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/driver.h"
#include "api/engine.h"
#include "api/registry.h"
#include "data/column_store.h"
#include "data/generators.h"
#include "index/dynamic_kd_tree.h"
#include "index/order_stat_tree.h"
#include "persist/common.h"
#include "persist/snapshot.h"
#include "stream/broker.h"
#include "tests/test_seed.h"
#include "util/rng.h"

namespace janus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Serde primitives.
// ---------------------------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTripBitExactly) {
  persist::Writer w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  w.Bool(true);
  w.Bool(false);
  w.F64(0.1);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::infinity());
  w.F64(std::numeric_limits<double>::quiet_NaN());
  w.Str("hello");
  w.Str("");
  w.F64Vec({1.5, -2.5});
  w.IntVec({});

  persist::Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1234567890123ll);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.F64(), 0.1);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.F64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(r.F64()));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.F64Vec(), (std::vector<double>{1.5, -2.5}));
  EXPECT_TRUE(r.IntVec().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReadPastEndThrowsCleanly) {
  persist::Writer w;
  w.U32(1);
  persist::Reader r(w.buffer());
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_THROW(r.U64(), persist::PersistError);
}

TEST(SerdeTest, HostileLengthPrefixIsRejected) {
  persist::Writer w;
  w.U64(1ull << 60);  // a "length" far past any real payload
  persist::Reader r(w.buffer());
  EXPECT_THROW(r.Size(), persist::PersistError);
}

// ---------------------------------------------------------------------------
// State-carrier round trips: RNG, columnar store, index trees.
// ---------------------------------------------------------------------------

TEST(PersistStateTest, RngStreamContinuesBitIdentically) {
  Rng a(TestSeed());
  for (int i = 0; i < 100; ++i) a.Normal(0, 1);  // populate the cached normal
  persist::Writer w;
  a.SaveTo(&w);
  Rng b(999);  // different seed; LoadFrom must fully overwrite
  persist::Reader r(w.buffer());
  b.LoadFrom(&r);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << i;
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Normal(3, 2), b.Normal(3, 2)) << i;
  }
}

TEST(PersistStateTest, ColumnStorePreservesPhysicalLayout) {
  Schema schema;
  schema.column_names = {"k", "v", "w"};
  ColumnStore store(schema);
  Rng rng(TestSeed() + 1);
  for (uint64_t id = 0; id < 500; ++id) {
    Tuple t;
    t.id = id;
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(0, 1);
    t[2] = rng.Uniform(-5, 5);
    store.Insert(t);
  }
  for (uint64_t id = 0; id < 500; id += 3) store.Delete(id);  // swap-removes

  persist::Writer w;
  store.SaveTo(&w);
  ColumnStore restored(schema);
  persist::Reader r(w.buffer());
  restored.LoadFrom(&r);

  // A store configured under a different schema must refuse the snapshot
  // (column indexes would silently change meaning otherwise).
  {
    ColumnStore mismatched(Schema{});
    persist::Reader r2(w.buffer());
    EXPECT_THROW(mismatched.LoadFrom(&r2), persist::PersistError);
  }

  ASSERT_EQ(restored.size(), store.size());
  EXPECT_EQ(restored.schema().column_names, store.schema().column_names);
  EXPECT_EQ(restored.num_columns(), store.num_columns());
  // Physical position order is part of the state (samplers draw positions).
  EXPECT_EQ(restored.ids(), store.ids());
  for (size_t pos = 0; pos < store.size(); ++pos) {
    for (int c = 0; c < store.num_columns(); ++c) {
      ASSERT_EQ(restored.value(pos, c), store.value(pos, c));
    }
  }
  // The rebuilt id index answers identically.
  EXPECT_TRUE(restored.Contains(1));
  EXPECT_FALSE(restored.Contains(0));
  // Position-based sampling replays identically.
  Rng ra(TestSeed() + 2), rb(TestSeed() + 2);
  const auto sa = store.SampleUniform(&ra, 50);
  const auto sb = restored.SampleUniform(&rb, 50);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i].id, sb[i].id);
}

TEST(PersistStateTest, OrderStatTreeRoundTripsAndKeepsEvolvingIdentically) {
  OrderStatTree a;
  Rng rng(TestSeed() + 3);
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 400; ++i) {
    const double k = rng.NextDouble();
    const double v = rng.Normal(0, 3);
    pts.emplace_back(k, v);
    a.Insert(k, v);
  }
  for (int i = 0; i < 150; ++i) {
    const auto& [k, v] = pts[static_cast<size_t>(rng.NextUint64(pts.size()))];
    a.Delete(k, v);
  }

  persist::Writer w;
  a.SaveTo(&w);
  OrderStatTree b;
  persist::Reader r(w.buffer());
  b.LoadFrom(&r);

  ASSERT_EQ(b.size(), a.size());
  std::vector<std::pair<double, double>> da, db;
  a.Dump(&da);
  b.Dump(&db);
  EXPECT_EQ(da, db);
  for (size_t rank = 0; rank <= a.size(); rank += 7) {
    const TreeAgg pa = a.PrefixAggregate(rank);
    const TreeAgg pb = b.PrefixAggregate(rank);
    ASSERT_EQ(pa.count, pb.count);
    ASSERT_EQ(pa.sum, pb.sum);
    ASSERT_EQ(pa.sumsq, pb.sumsq);
  }
  // The priority RNG round-trips too: identical structure after identical
  // further inserts (future rebalances depend on future priorities).
  for (int i = 0; i < 200; ++i) {
    const double k = 2.0 + i * 0.001;
    a.Insert(k, k);
    b.Insert(k, k);
  }
  da.clear();
  db.clear();
  a.Dump(&da);
  b.Dump(&db);
  EXPECT_EQ(da, db);
  const TreeAgg ta = a.KeyRangeAggregate(0.25, 2.1);
  const TreeAgg tb = b.KeyRangeAggregate(0.25, 2.1);
  EXPECT_EQ(ta.sum, tb.sum);
  EXPECT_EQ(ta.sumsq, tb.sumsq);
}

TEST(PersistStateTest, KdTreeRoundTripsCachesAndReportOrderExactly) {
  DynamicKdTree a(2);
  Rng rng(TestSeed() + 4);
  std::vector<KdPoint> pts;
  for (uint64_t id = 0; id < 600; ++id) {
    KdPoint p;
    p.x[0] = rng.NextDouble();
    p.x[1] = rng.NextDouble();
    p.a = rng.Normal(10, 2);
    p.id = id;
    pts.push_back(p);
  }
  a.Build(std::vector<KdPoint>(pts.begin(), pts.begin() + 300));
  // Incremental history: the caches now hold x + a - b style sums that a
  // fresh rebuild would not reproduce — they must serialize verbatim.
  for (size_t i = 300; i < pts.size(); ++i) a.Insert(pts[i]);
  for (size_t i = 0; i < 200; ++i) a.Delete(pts[i].x.data(), pts[i].id);

  persist::Writer w;
  a.SaveTo(&w);
  DynamicKdTree b(2);
  persist::Reader r(w.buffer());
  b.LoadFrom(&r);

  ASSERT_EQ(b.size(), a.size());
  for (int trial = 0; trial < 50; ++trial) {
    const double lo0 = rng.NextDouble() * 0.8;
    const double lo1 = rng.NextDouble() * 0.8;
    const Rectangle rect({lo0, lo1}, {lo0 + 0.3, lo1 + 0.3});
    const TreeAgg aa = a.RangeAggregate(rect);
    const TreeAgg ab = b.RangeAggregate(rect);
    ASSERT_EQ(aa.count, ab.count);
    ASSERT_EQ(aa.sum, ab.sum);
    ASSERT_EQ(aa.sumsq, ab.sumsq);
    // Report order is load-bearing (query code sums in report order).
    std::vector<KdPoint> oa, ob;
    a.Report(rect, &oa);
    b.Report(rect, &ob);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      ASSERT_EQ(oa[i].id, ob[i].id);
      ASSERT_EQ(oa[i].a, ob[i].a);
    }
    const TreeAgg ca = a.MaxSumsqCell(rect, 16);
    const TreeAgg cb = b.MaxSumsqCell(rect, 16);
    ASSERT_EQ(ca.sumsq, cb.sumsq);
  }
}

// ---------------------------------------------------------------------------
// Format hardening: corrupt files fail cleanly.
// ---------------------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("persist_format.snap");
    EngineConfig cfg;
    cfg.seed = TestSeed();
    engine_ = EngineRegistry::Create("rs", cfg);
    auto ds = GenerateUniform(2000, 1, TestSeed() + 5);
    engine_->LoadInitial(ds.rows);
    engine_->Initialize();
    engine_->Save(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<uint8_t> ReadRaw() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<uint8_t> bytes;
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    std::fclose(f);
    return bytes;
  }

  void WriteRaw(const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::string path_;
  std::unique_ptr<AqpEngine> engine_;
};

TEST_F(SnapshotFileTest, ValidFileLoads) {
  EngineConfig cfg;
  cfg.seed = TestSeed();
  auto fresh = EngineRegistry::Create("rs", cfg);
  EXPECT_NO_THROW(fresh->Load(path_));
}

TEST_F(SnapshotFileTest, MissingFileThrows) {
  EXPECT_THROW(engine_->Load(TempPath("no_such_file.snap")),
               persist::PersistError);
}

TEST_F(SnapshotFileTest, WrongMagicThrows) {
  auto bytes = ReadRaw();
  bytes[0] ^= 0xFF;
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
}

TEST_F(SnapshotFileTest, UnsupportedVersionThrows) {
  auto bytes = ReadRaw();
  bytes[4] = 99;  // version field
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
}

TEST_F(SnapshotFileTest, TruncatedFileThrows) {
  auto bytes = ReadRaw();
  ASSERT_GT(bytes.size(), 100u);
  bytes.resize(bytes.size() / 2);
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
  // Truncated inside the header too.
  bytes.resize(10);
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
  bytes.clear();
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
}

TEST_F(SnapshotFileTest, FlippedPayloadBitFailsChecksum) {
  auto bytes = ReadRaw();
  bytes[bytes.size() / 2] ^= 0x01;
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
}

TEST_F(SnapshotFileTest, EngineIsStillUsableAfterFailedLoad) {
  auto bytes = ReadRaw();
  bytes[0] ^= 0xFF;
  WriteRaw(bytes);
  EXPECT_THROW(engine_->Load(path_), persist::PersistError);
  // The failed load never touched engine state: it still answers.
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.0}, {1.0});
  EXPECT_GT(engine_->Query(q).estimate, 0.0);
}

// ---------------------------------------------------------------------------
// Randomized crash recovery: snapshot at a random stream prefix, replay the
// tail, and the recovered engine must be indistinguishable from a run that
// never stopped — answers and stats bit-identical.
// ---------------------------------------------------------------------------

bool SameResult(const QueryResult& a, const QueryResult& b) {
  return a.estimate == b.estimate && a.ci_half_width == b.ci_half_width &&
         a.variance_catchup == b.variance_catchup &&
         a.variance_sample == b.variance_sample &&
         a.covered_nodes == b.covered_nodes &&
         a.partial_leaves == b.partial_leaves && a.exact == b.exact;
}

AggQuery TemplateQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

void RunCrashRecoveryScenario(const std::string& engine_name, uint64_t seed,
                              bool with_catchup_steps) {
  SCOPED_TRACE(engine_name + " seed=" + std::to_string(seed));
  EngineConfig cfg;
  cfg.engine = engine_name;
  cfg.num_leaves = 16;
  cfg.sample_rate = 0.02;
  cfg.num_shards = 2;
  cfg.seed = seed;
  // Default trigger settings stay on for janus: recovery must survive
  // re-partitions firing mid-stream.

  auto ds = GenerateUniform(5000, 1, seed + 100);
  auto engine_a = EngineRegistry::Create(engine_name, cfg);
  engine_a->LoadInitial(ds.rows);
  engine_a->Initialize();

  // The stream: inserts, deletes and queries through the broker.
  Broker broker;
  broker.insert_topic()->set_poll_overhead_ns(0);
  broker.delete_topic()->set_poll_overhead_ns(0);
  Rng rng(seed + 200);
  std::vector<Tuple> inserts;
  for (int i = 0; i < 1500; ++i) {
    Tuple t;
    t.id = 600000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    inserts.push_back(t);
  }
  broker.insert_topic()->AppendBatch(inserts);
  std::vector<Tuple> dels;
  for (int i = 0; i < 400; ++i) {
    Tuple t;
    t.id = rng.NextUint64(5000);  // some repeat: deletes of dead ids no-op
    dels.push_back(t);
  }
  broker.delete_topic()->AppendBatch(dels);
  // Enough queries that the request stream spans several pump rounds, so
  // random crash points land both between and mid-way through the answered
  // prefix.
  for (int i = 0; i < 300; ++i) {
    const double lo = 0.045 * (i % 13);
    broker.query_topic()->Append(TemplateQuery(AggFunc::kSum, lo, lo + 0.35));
  }

  EngineDriverOptions dopts;
  dopts.poll_batch = 97;  // several pump rounds over the stream
  if (with_catchup_steps) dopts.catchup_step = 64;
  EngineDriver driver_a(engine_a.get(), &broker, dopts);

  // Consume a random prefix (whole pump rounds), then snapshot — this is the
  // "crash point".
  const size_t rounds_before_crash = 1 + rng.NextUint64(12);
  for (size_t i = 0; i < rounds_before_crash; ++i) driver_a.PumpOnce();
  const std::string path =
      TempPath("crash_" + std::to_string(seed) + "_" +
               [&] {
                 std::string s = engine_name;
                 for (char& c : s) {
                   if (c == ':') c = '_';
                 }
                 return s;
               }());
  driver_a.SaveSnapshot(path);
  (void)driver_a.TakeResults();  // answers from before the crash point

  // The uninterrupted run continues to the end of the stream.
  driver_a.Drain();
  const std::vector<QueryResult> tail_a = driver_a.TakeResults();

  // The recovery: a fresh engine from the same config, restored from the
  // snapshot, replays the tail from the recorded offsets.
  auto engine_b = EngineRegistry::Create(engine_name, cfg);
  EngineDriver driver_b(engine_b.get(), &broker, dopts);
  driver_b.LoadSnapshot(path);
  EXPECT_GT(driver_b.insert_offset() + driver_b.delete_offset(), 0u);
  driver_b.Drain();
  const std::vector<QueryResult> tail_b = driver_b.TakeResults();

  // Replayed query answers match the uninterrupted run's, bitwise.
  ASSERT_EQ(tail_a.size(), tail_b.size());
  for (size_t i = 0; i < tail_b.size(); ++i) {
    EXPECT_TRUE(SameResult(tail_a[i], tail_b[i])) << "replayed query " << i;
  }

  // Exact answers to a fresh workload match bitwise, every aggregate.
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    for (int i = 0; i < 6; ++i) {
      const AggQuery q = TemplateQuery(f, 0.13 * i, 0.13 * i + 0.3);
      EXPECT_TRUE(SameResult(engine_a->Query(q), engine_b->Query(q)))
          << AggFuncName(f) << " window " << i;
    }
  }

  // Stats converge to the same counters and footprints.
  const EngineStats sa = engine_a->Stats();
  const EngineStats sb = engine_b->Stats();
  EXPECT_EQ(sa.rows, sb.rows);
  EXPECT_EQ(sa.sample_size, sb.sample_size);
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.deletes, sb.deletes);
  EXPECT_EQ(sa.repartitions, sb.repartitions);
  EXPECT_EQ(sa.trigger_checks, sb.trigger_checks);
  EXPECT_EQ(sa.trigger_fires, sb.trigger_fires);
  EXPECT_EQ(sa.reservoir_resamples, sb.reservoir_resamples);
  // Byte footprints are computed from container *capacities*, which reflect
  // allocator growth history rather than logical state — a freshly restored
  // engine is typically tighter. Same ballpark (within the 2x growth slack of vector doubling), not bitwise.
  EXPECT_GT(sb.archive_bytes, 0u);
  EXPECT_LE(sa.archive_bytes, 3 * sb.archive_bytes);
  EXPECT_LE(sb.archive_bytes, 3 * sa.archive_bytes);
  EXPECT_LE(sa.synopsis_bytes, 3 * sb.synopsis_bytes + 1024);
  EXPECT_LE(sb.synopsis_bytes, 3 * sa.synopsis_bytes + 1024);

  std::remove(path.c_str());
}

TEST(CrashRecoveryTest, JanusRecoversExactlyAcrossRandomCrashPoints) {
  for (uint64_t s = 0; s < 3; ++s) {
    RunCrashRecoveryScenario("janus", TestSeed() + s, /*with_catchup_steps=*/
                             s % 2 == 0);
  }
}

TEST(CrashRecoveryTest, BaselinesRecoverExactly) {
  RunCrashRecoveryScenario("rs", TestSeed() + 11, false);
  RunCrashRecoveryScenario("srs", TestSeed() + 12, false);
  RunCrashRecoveryScenario("spn", TestSeed() + 13, false);
  RunCrashRecoveryScenario("spt", TestSeed() + 14, false);
  RunCrashRecoveryScenario("multi", TestSeed() + 15, true);
}

TEST(CrashRecoveryTest, ShardedEnginesRecoverExactly) {
  RunCrashRecoveryScenario("sharded:janus", TestSeed() + 21, false);
  RunCrashRecoveryScenario("sharded:rs", TestSeed() + 22, false);
}

// ---------------------------------------------------------------------------
// Driver-level snapshotting knobs.
// ---------------------------------------------------------------------------

TEST(EngineDriverPersistTest, AutomaticSnapshotEveryNRecords) {
  EngineConfig cfg;
  cfg.seed = TestSeed();
  cfg.snapshot_path = TempPath("auto_snapshot.snap");
  cfg.snapshot_every = 500;
  auto engine = EngineRegistry::Create("rs", cfg);
  auto ds = GenerateUniform(3000, 1, TestSeed() + 30);
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  Broker broker;
  Rng rng(TestSeed() + 31);
  for (int i = 0; i < 1200; ++i) {
    Tuple t;
    t.id = 700000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    broker.insert_topic()->Append(t);
  }

  EngineDriverOptions dopts = EngineDriverOptions::FromConfig(cfg);
  dopts.poll_batch = 256;
  EngineDriver driver(engine.get(), &broker, dopts);
  driver.Drain();

  // A snapshot was written and restores to the recorded offsets.
  auto restored = EngineRegistry::Create("rs", cfg);
  EngineDriver rdriver(restored.get(), &broker, dopts);
  rdriver.LoadSnapshot(cfg.snapshot_path);
  EXPECT_GE(rdriver.insert_offset(), 500u);
  EXPECT_LE(rdriver.insert_offset(), 1200u);
  // Replay catches the restored engine up to the full stream.
  rdriver.Drain();
  EXPECT_EQ(restored->table()->size(), engine->table()->size());

  std::remove(cfg.snapshot_path.c_str());
}

TEST(EngineConfigPersistTest, SnapshotKnobsParseAndRoundTrip) {
  const char* argv[] = {"prog", "snapshot_path=/tmp/x.snap",
                        "snapshot_every=2048"};
  const EngineConfig cfg =
      EngineConfig::FromArgs(ArgMap(3, const_cast<char**>(argv)));
  EXPECT_EQ(cfg.snapshot_path, "/tmp/x.snap");
  EXPECT_EQ(cfg.snapshot_every, 2048u);
  const std::string line = cfg.ToString();
  EXPECT_NE(line.find("snapshot_path=/tmp/x.snap"), std::string::npos);
  EXPECT_NE(line.find("snapshot_every=2048"), std::string::npos);
  const EngineDriverOptions dopts = EngineDriverOptions::FromConfig(cfg);
  EXPECT_EQ(dopts.snapshot_path, "/tmp/x.snap");
  EXPECT_EQ(dopts.snapshot_every, 2048u);
}

}  // namespace
}  // namespace janus
