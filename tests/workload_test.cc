#include "data/workload.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"

namespace janus {
namespace {

TEST(WorkloadTest, GeneratesRequestedCount) {
  auto ds = GenerateUniform(5000, 1, 1);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 100;
  opts.min_count = 10;
  auto queries = gen.Generate(ds.rows, opts);
  EXPECT_EQ(queries.size(), 100u);
}

TEST(WorkloadTest, RespectsMinCount) {
  auto ds = GenerateUniform(5000, 1, 2);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 50;
  opts.min_count = 25;
  auto queries = gen.Generate(ds.rows, opts);
  for (const AggQuery& q : queries) {
    AggQuery count_q = q;
    count_q.func = AggFunc::kCount;
    auto truth = ExactAnswer(ds.rows, count_q);
    ASSERT_TRUE(truth.has_value());
    EXPECT_GE(*truth, 25.0);
  }
}

TEST(WorkloadTest, RectWithinDomain) {
  auto ds = GenerateUniform(1000, 2, 3);
  WorkloadGenerator gen(ds.rows, {0, 1}, 2);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Rectangle r = gen.RandomRect(&rng);
    ASSERT_EQ(r.dims(), 2);
    for (int d = 0; d < 2; ++d) {
      EXPECT_LE(r.lo(d), r.hi(d));
      EXPECT_GE(r.lo(d), 0.0);
      EXPECT_LE(r.hi(d), 1.0);
    }
  }
}

TEST(WorkloadTest, DeterministicBySeed) {
  auto ds = GenerateUniform(2000, 1, 4);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 20;
  opts.seed = 99;
  auto a = gen.Generate(ds.rows, opts);
  auto b = gen.Generate(ds.rows, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].rect == b[i].rect);
  }
}

TEST(WorkloadTest, CarriesTemplateColumns) {
  auto ds = GenerateUniform(1000, 2, 5);
  WorkloadGenerator gen(ds.rows, {1, 0}, 2);
  WorkloadOptions opts;
  opts.num_queries = 5;
  opts.func = AggFunc::kAvg;
  auto queries = gen.Generate(ds.rows, opts);
  for (const AggQuery& q : queries) {
    EXPECT_EQ(q.func, AggFunc::kAvg);
    EXPECT_EQ(q.agg_column, 2);
    EXPECT_EQ(q.predicate_columns, (std::vector<int>{1, 0}));
  }
}

TEST(WorkloadTest, ReportsFullGenerationWithoutShortfall) {
  auto ds = GenerateUniform(5000, 1, 6);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 50;
  opts.min_count = 10;
  WorkloadGenReport report;
  auto queries = gen.Generate(ds.rows, opts, &report);
  EXPECT_EQ(queries.size(), 50u);
  EXPECT_EQ(report.requested, 50u);
  EXPECT_EQ(report.generated, 50u);
  EXPECT_EQ(report.shortfall(), 0u);
  EXPECT_FALSE(report.budget_exhausted);
}

// Regression: a tiny table with an unsatisfiable min_count used to return a
// short (often empty) workload with no indication anything went wrong.
TEST(WorkloadTest, TinyTableReportsShortfall) {
  auto ds = GenerateUniform(5, 1, 7);  // 5 rows can never satisfy count>=10
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 20;
  opts.min_count = 10;
  WorkloadGenReport report;
  auto queries = gen.Generate(ds.rows, opts, &report);
  EXPECT_TRUE(queries.empty());
  EXPECT_EQ(report.requested, 20u);
  EXPECT_EQ(report.generated, 0u);
  EXPECT_EQ(report.shortfall(), 20u);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_GT(report.rejected, 0u);
}

TEST(WorkloadTest, UnsatisfiableMinCountExceedingTable) {
  auto ds = GenerateUniform(100, 1, 8);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 10;
  opts.min_count = 1000;  // larger than the whole table
  WorkloadGenReport report;
  auto queries = gen.Generate(ds.rows, opts, &report);
  EXPECT_TRUE(queries.empty());
  EXPECT_TRUE(report.budget_exhausted);
  // Every attempt in the budget was spent and rejected.
  EXPECT_EQ(report.rejected, 10u * 50u);
}

// Regression: an empty input left the domain fold at its +max/-max
// sentinels, so RandomRect sampled from an inverted interval.
TEST(WorkloadTest, EmptyInputClampsDomainToDegenerateInterval) {
  const std::vector<Tuple> no_rows;
  WorkloadGenerator gen(no_rows, {0, 1}, 2);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Rectangle r = gen.RandomRect(&rng);
    ASSERT_EQ(r.dims(), 2);
    for (int d = 0; d < 2; ++d) {
      EXPECT_EQ(r.lo(d), 0.0);
      EXPECT_EQ(r.hi(d), 0.0);
    }
  }
}

TEST(WorkloadTest, EmptyColumnStoreClampsDomain) {
  ColumnStore store(2);
  WorkloadGenerator gen(store, {0, 1}, 1);
  Rng rng(10);
  Rectangle r = gen.RandomRect(&rng);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(r.lo(d), 0.0);
    EXPECT_EQ(r.hi(d), 0.0);
  }
}

TEST(WorkloadTest, ConstantColumnYieldsDegenerateButValidRect) {
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) {
    Tuple t;
    t.id = static_cast<uint64_t>(i);
    t[0] = 3.5;
    t[1] = static_cast<double>(i);
    rows.push_back(t);
  }
  WorkloadGenerator gen(rows, {0}, 1);
  Rng rng(11);
  Rectangle r = gen.RandomRect(&rng);
  EXPECT_EQ(r.lo(0), 3.5);
  EXPECT_EQ(r.hi(0), 3.5);
}

TEST(GroundTruthTest, ExactAnswerAllFunctions) {
  std::vector<Tuple> rows;
  for (int i = 0; i < 10; ++i) {
    Tuple t;
    t.id = static_cast<uint64_t>(i);
    t[0] = i;       // predicate
    t[1] = i * 10;  // aggregate
    rows.push_back(t);
  }
  AggQuery q;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({2.0}, {5.0});  // rows 2,3,4,5
  q.func = AggFunc::kSum;
  EXPECT_DOUBLE_EQ(*ExactAnswer(rows, q), 140.0);
  q.func = AggFunc::kCount;
  EXPECT_DOUBLE_EQ(*ExactAnswer(rows, q), 4.0);
  q.func = AggFunc::kAvg;
  EXPECT_DOUBLE_EQ(*ExactAnswer(rows, q), 35.0);
  q.func = AggFunc::kMin;
  EXPECT_DOUBLE_EQ(*ExactAnswer(rows, q), 20.0);
  q.func = AggFunc::kMax;
  EXPECT_DOUBLE_EQ(*ExactAnswer(rows, q), 50.0);
}

TEST(GroundTruthTest, EmptyPredicateIsNullopt) {
  std::vector<Tuple> rows(3);
  rows[0][0] = 1;
  rows[1][0] = 2;
  rows[2][0] = 3;
  AggQuery q;
  q.agg_column = 0;
  q.predicate_columns = {0};
  q.rect = Rectangle({10.0}, {20.0});
  q.func = AggFunc::kAvg;
  EXPECT_FALSE(ExactAnswer(rows, q).has_value());
}

TEST(GroundTruthTest, BatchMatchesSingle) {
  auto ds = GenerateUniform(2000, 1, 6);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = 30;
  auto queries = gen.Generate(ds.rows, opts);
  auto batch = ExactAnswers(ds.rows, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = ExactAnswer(ds.rows, queries[i]);
    ASSERT_EQ(single.has_value(), batch[i].has_value());
    if (single.has_value()) {
      EXPECT_DOUBLE_EQ(*single, *batch[i]);
    }
  }
}

TEST(GroundTruthTest, RelativeError) {
  EXPECT_FALSE(RelativeError(std::nullopt, 1.0).has_value());
  EXPECT_FALSE(RelativeError(0.0, 1.0).has_value());
  EXPECT_DOUBLE_EQ(*RelativeError(100.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(*RelativeError(-100.0, -110.0), 0.1);
}

}  // namespace
}  // namespace janus
