#include "index/order_stat_tree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace janus {
namespace {

TEST(OrderStatTreeTest, InsertSizeAndSelectSorted) {
  OrderStatTree tree;
  std::vector<double> keys{5, 1, 9, 3, 7};
  for (double k : keys) tree.Insert(k, k * 2);
  ASSERT_EQ(tree.size(), 5u);
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(tree.Select(i), keys[i]);
    EXPECT_DOUBLE_EQ(tree.SelectValue(i), keys[i] * 2);
  }
}

TEST(OrderStatTreeTest, RankOfStrictlyLess) {
  OrderStatTree tree;
  for (double k : {1.0, 2.0, 2.0, 3.0}) tree.Insert(k, 0);
  EXPECT_EQ(tree.RankOf(0.5), 0u);
  EXPECT_EQ(tree.RankOf(2.0), 1u);   // keys < 2
  EXPECT_EQ(tree.RankOf(2.5), 3u);
  EXPECT_EQ(tree.RankOf(100.0), 4u);
}

TEST(OrderStatTreeTest, DeleteSpecificValueAmongDuplicates) {
  OrderStatTree tree;
  tree.Insert(5.0, 1.0);
  tree.Insert(5.0, 2.0);
  tree.Insert(5.0, 3.0);
  EXPECT_TRUE(tree.Delete(5.0, 2.0));
  EXPECT_EQ(tree.size(), 2u);
  // Remaining values are 1 and 3.
  const TreeAgg agg = tree.KeyRangeAggregate(5.0, 5.0);
  EXPECT_DOUBLE_EQ(agg.count, 2);
  EXPECT_DOUBLE_EQ(agg.sum, 4.0);
  EXPECT_FALSE(tree.Delete(5.0, 99.0));
  EXPECT_FALSE(tree.Delete(6.0, 1.0));
}

TEST(OrderStatTreeTest, PrefixAggregate) {
  OrderStatTree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, i);
  const TreeAgg p = tree.PrefixAggregate(4);  // values 0,1,2,3
  EXPECT_DOUBLE_EQ(p.count, 4);
  EXPECT_DOUBLE_EQ(p.sum, 6);
  EXPECT_DOUBLE_EQ(p.sumsq, 14);
  EXPECT_DOUBLE_EQ(tree.PrefixAggregate(0).count, 0);
  EXPECT_DOUBLE_EQ(tree.PrefixAggregate(10).sum, 45);
}

TEST(OrderStatTreeTest, RankRangeAggregate) {
  OrderStatTree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, 1.0);
  const TreeAgg agg = tree.RankRangeAggregate(3, 7);
  EXPECT_DOUBLE_EQ(agg.count, 4);
  EXPECT_DOUBLE_EQ(tree.RankRangeAggregate(5, 5).count, 0);
  EXPECT_DOUBLE_EQ(tree.RankRangeAggregate(7, 3).count, 0);
}

TEST(OrderStatTreeTest, KeyRangeAggregateClosed) {
  OrderStatTree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, i);
  const TreeAgg agg = tree.KeyRangeAggregate(2.0, 5.0);  // 2,3,4,5
  EXPECT_DOUBLE_EQ(agg.count, 4);
  EXPECT_DOUBLE_EQ(agg.sum, 14);
}

TEST(OrderStatTreeTest, RandomizedAgainstBruteForce) {
  OrderStatTree tree;
  std::vector<std::pair<double, double>> ref;
  Rng rng(77);
  for (int step = 0; step < 3000; ++step) {
    if (ref.empty() || rng.NextDouble() < 0.6) {
      const double key = rng.Uniform(0, 100);
      const double val = rng.Uniform(-5, 5);
      tree.Insert(key, val);
      ref.emplace_back(key, val);
    } else {
      const size_t i = rng.NextUint64(ref.size());
      EXPECT_TRUE(tree.Delete(ref[i].first, ref[i].second));
      ref[i] = ref.back();
      ref.pop_back();
    }
    ASSERT_EQ(tree.size(), ref.size());
    if (step % 100 == 0 && !ref.empty()) {
      const double lo = rng.Uniform(0, 100);
      const double hi = rng.Uniform(lo, 100);
      TreeAgg expect;
      for (const auto& [k, v] : ref) {
        if (k >= lo && k <= hi) {
          expect.count += 1;
          expect.sum += v;
          expect.sumsq += v * v;
        }
      }
      const TreeAgg got = tree.KeyRangeAggregate(lo, hi);
      ASSERT_DOUBLE_EQ(got.count, expect.count);
      ASSERT_NEAR(got.sum, expect.sum, 1e-9);
      ASSERT_NEAR(got.sumsq, expect.sumsq, 1e-9);
    }
  }
}

TEST(OrderStatTreeTest, DumpInOrder) {
  OrderStatTree tree;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) tree.Insert(rng.Uniform(0, 1), 0);
  std::vector<std::pair<double, double>> out;
  tree.Dump(&out);
  ASSERT_EQ(out.size(), 200u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(OrderStatTreeTest, ClearResets) {
  OrderStatTree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, i);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  tree.Insert(1, 1);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(OrderStatTreeTest, SelectIsMonotoneUnderHeavyInserts) {
  OrderStatTree tree;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) tree.Insert(rng.NextDouble(), 1);
  double prev = -1;
  for (size_t r = 0; r < tree.size(); r += 97) {
    const double k = tree.Select(r);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

}  // namespace
}  // namespace janus
