// Concurrent-query stress over the whole engine registry: the AqpEngine
// base class promises that queries, stats snapshots and batch queries may
// run from any number of threads concurrently with updates, for every
// backend (api/engine.h room-lock contract; the sharded engines provide
// their own, stronger synchronization). Each engine runs reader threads
// hammering Query/QueryBatch/Stats while a writer streams inserts and
// deletes; afterwards the engine must be coherent (counters add up, queries
// answer sanely). Also pins the RoomLock's fairness: neither a steady update
// stream nor a steady query stream may starve the other side. Runs under
// TSan in CI; seeded via JANUS_TEST_SEED with a fixed scan_threads so runs
// reproduce.

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/registry.h"
#include "data/generators.h"
#include "tests/test_seed.h"
#include "util/room_lock.h"
#include "util/thread_pool.h"

namespace janus {
namespace {

constexpr size_t kInitialRows = 6000;
constexpr size_t kStreamed = 1500;
constexpr int kReaders = 4;
constexpr int kQueriesPerReader = 80;

class ConcurrentQueryTest : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> AllEngines() {
  std::vector<std::string> out;
  for (const std::string& name : EngineRegistry::Global().Names()) {
    out.push_back(name);
  }
  return out;
}

TEST_P(ConcurrentQueryTest, ServesQueriesConcurrentWithUpdates) {
  const std::string name = GetParam();
  const GeneratedDataset ds = GenerateUniform(kInitialRows, 1, TestSeed());

  EngineConfig cfg;
  cfg.engine = name;
  cfg.schema = ds.schema;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_shards = 2;
  cfg.scan_threads = 2;  // pinned so CI runs are reproducible
  cfg.seed = TestSeed();
  std::unique_ptr<AqpEngine> engine = EngineRegistry::Create(name, cfg);

  engine->LoadInitial(ds.rows);
  engine->Initialize();

  const GeneratedDataset stream =
      GenerateUniform(kStreamed, 1, TestSeed() + 1);
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> answered{0};

  std::thread writer([&] {
    for (size_t i = 0; i < stream.rows.size(); ++i) {
      Tuple t = stream.rows[i];
      t.id = kInitialRows + i;  // unique beyond the loaded ids
      engine->Insert(t);
      if (i % 7 == 0) {
        engine->Delete(i % kInitialRows);  // may or may not still be live
      }
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  ThreadPool batch_pool(2);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(TestSeed() + 100 + static_cast<uint64_t>(r));
      for (int i = 0; i < kQueriesPerReader; ++i) {
        AggQuery q;
        q.func = static_cast<AggFunc>(i % 5);
        q.agg_column = 1;
        q.predicate_columns = {0};
        double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
        if (a > b) std::swap(a, b);
        q.rect = Rectangle({a}, {b});
        if (i % 17 == 0) {
          const EngineStats s = engine->Stats();
          EXPECT_GE(s.rows, 1u);
        } else if (i % 11 == 0) {
          const auto rs = engine->QueryBatch({q, q, q}, &batch_pool);
          ASSERT_EQ(3u, rs.size());
          EXPECT_TRUE(std::isfinite(rs[0].estimate));
        } else {
          const QueryResult res = engine->Query(q);
          EXPECT_TRUE(std::isfinite(res.estimate));
          EXPECT_TRUE(std::isfinite(res.ci_half_width));
        }
        answered.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(static_cast<uint64_t>(kReaders) * kQueriesPerReader,
            answered.load());

  // Quiesced coherence: every streamed insert is visible.
  const EngineStats s = engine->Stats();
  EXPECT_EQ(kStreamed, s.inserts);
  EXPECT_GE(s.rows, kInitialRows + kStreamed -
                        (kStreamed / 7 + 1));  // minus successful deletes
  AggQuery probe;
  probe.func = AggFunc::kCount;
  probe.agg_column = 1;
  probe.predicate_columns = {0};
  probe.rect = Rectangle::Infinite(1);
  EXPECT_TRUE(std::isfinite(engine->Query(probe).estimate));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ConcurrentQueryTest, ::testing::ValuesIn(AllEngines()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

// --- RoomLock semantics -----------------------------------------------------

TEST(RoomLockTest, ReadersShareUpdatersShareRoomsExclude) {
  RoomLock lock;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  std::atomic<int> active_updaters{0};
  std::atomic<bool> overlap{false};

  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        lock.LockRead();
        const int now = concurrent_readers.fetch_add(1) + 1;
        int prev = max_concurrent_readers.load();
        while (now > prev &&
               !max_concurrent_readers.compare_exchange_weak(prev, now)) {
        }
        if (active_updaters.load() > 0) overlap.store(true);
        concurrent_readers.fetch_sub(1);
        lock.UnlockRead();
      }
    });
  }
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        lock.LockUpdate();
        active_updaters.fetch_add(1);
        if (concurrent_readers.load() > 0) overlap.store(true);
        active_updaters.fetch_sub(1);
        lock.UnlockUpdate();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(overlap.load()) << "a reader and an updater held the lock "
                                  "simultaneously";
}

TEST(RoomLockTest, ExclusiveBlocksBothRooms) {
  RoomLock lock;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        lock.LockRead();
        inside.fetch_add(1);
        inside.fetch_sub(1);
        lock.UnlockRead();
      }
    });
    threads.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        lock.LockUpdate();
        inside.fetch_add(1);
        inside.fetch_sub(1);
        lock.UnlockUpdate();
      }
    });
  }
  threads.emplace_back([&] {
    for (int k = 0; k < 50; ++k) {
      lock.LockExclusive();
      if (inside.load() != 0) violated.store(true);
      lock.UnlockExclusive();
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

}  // namespace
}  // namespace janus
