#include "index/dynamic_kd_tree.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace janus {
namespace {

KdPoint MakePoint(uint64_t id, std::initializer_list<double> coords,
                  double a) {
  KdPoint p;
  p.id = id;
  int i = 0;
  for (double c : coords) p.x[i++] = c;
  p.a = a;
  return p;
}

std::vector<KdPoint> RandomPoints(int dims, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KdPoint> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    KdPoint p;
    p.id = i;
    for (int d = 0; d < dims; ++d) p.x[d] = rng.NextDouble();
    p.a = rng.Uniform(-10, 10);
    pts.push_back(p);
  }
  return pts;
}

TreeAgg BruteAggregate(const std::vector<KdPoint>& pts, const Rectangle& r,
                       int dims) {
  TreeAgg agg;
  for (const KdPoint& p : pts) {
    bool in = true;
    for (int d = 0; d < dims; ++d) {
      if (p.x[d] < r.lo(d) || p.x[d] > r.hi(d)) {
        in = false;
        break;
      }
    }
    if (in) {
      agg.count += 1;
      agg.sum += p.a;
      agg.sumsq += p.a * p.a;
    }
  }
  return agg;
}

class KdTreeDimTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeDimTest, BulkBuildAggregatesMatchBruteForce) {
  const int dims = GetParam();
  auto pts = RandomPoints(dims, 2000, 11);
  DynamicKdTree tree(dims);
  tree.Build(pts);
  ASSERT_EQ(tree.size(), pts.size());
  Rng rng(99);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> lo(dims), hi(dims);
    for (int d = 0; d < dims; ++d) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      lo[d] = a;
      hi[d] = b;
    }
    Rectangle r(lo, hi);
    const TreeAgg expect = BruteAggregate(pts, r, dims);
    const TreeAgg got = tree.RangeAggregate(r);
    ASSERT_DOUBLE_EQ(got.count, expect.count);
    ASSERT_NEAR(got.sum, expect.sum, 1e-8);
    ASSERT_NEAR(got.sumsq, expect.sumsq, 1e-7);
  }
}

TEST_P(KdTreeDimTest, IncrementalInsertMatchesBulk) {
  const int dims = GetParam();
  auto pts = RandomPoints(dims, 1000, 13);
  DynamicKdTree tree(dims);
  for (const KdPoint& p : pts) tree.Insert(p);
  ASSERT_EQ(tree.size(), pts.size());
  Rectangle all(std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0));
  const TreeAgg expect = BruteAggregate(pts, all, dims);
  const TreeAgg got = tree.RangeAggregate(all);
  EXPECT_DOUBLE_EQ(got.count, expect.count);
  EXPECT_NEAR(got.sum, expect.sum, 1e-8);
}

TEST_P(KdTreeDimTest, DeleteRemovesExactPoint) {
  const int dims = GetParam();
  auto pts = RandomPoints(dims, 500, 17);
  DynamicKdTree tree(dims);
  tree.Build(pts);
  // Delete every third point.
  std::vector<KdPoint> remaining;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(tree.Delete(pts[i].x.data(), pts[i].id));
    } else {
      remaining.push_back(pts[i]);
    }
  }
  ASSERT_EQ(tree.size(), remaining.size());
  Rectangle all(std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0));
  const TreeAgg expect = BruteAggregate(remaining, all, dims);
  const TreeAgg got = tree.RangeAggregate(all);
  EXPECT_DOUBLE_EQ(got.count, expect.count);
  EXPECT_NEAR(got.sum, expect.sum, 1e-8);
}

TEST_P(KdTreeDimTest, MixedChurnAgainstBruteForce) {
  const int dims = GetParam();
  DynamicKdTree tree(dims);
  std::vector<KdPoint> ref;
  Rng rng(23);
  uint64_t next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    if (ref.empty() || rng.NextDouble() < 0.6) {
      KdPoint p;
      p.id = next_id++;
      for (int d = 0; d < dims; ++d) p.x[d] = rng.NextDouble();
      p.a = rng.Uniform(-1, 1);
      tree.Insert(p);
      ref.push_back(p);
    } else {
      const size_t i = rng.NextUint64(ref.size());
      ASSERT_TRUE(tree.Delete(ref[i].x.data(), ref[i].id));
      ref[i] = ref.back();
      ref.pop_back();
    }
    if (step % 500 == 0) {
      std::vector<double> lo(dims, 0.2), hi(dims, 0.8);
      Rectangle r(lo, hi);
      const TreeAgg expect = BruteAggregate(ref, r, dims);
      const TreeAgg got = tree.RangeAggregate(r);
      ASSERT_DOUBLE_EQ(got.count, expect.count);
      ASSERT_NEAR(got.sum, expect.sum, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KdTreeDimTest, ::testing::Values(1, 2, 3, 5));

TEST(KdTreeTest, DeleteMissingReturnsFalse) {
  DynamicKdTree tree(2);
  tree.Insert(MakePoint(1, {0.5, 0.5}, 1.0));
  double coords[2] = {0.5, 0.5};
  EXPECT_FALSE(tree.Delete(coords, 999));
  double far_coords[2] = {0.9, 0.9};
  EXPECT_FALSE(tree.Delete(far_coords, 1 + 100));
  EXPECT_TRUE(tree.Delete(coords, 1));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(KdTreeTest, ReportReturnsExactlyMatchingPoints) {
  auto pts = RandomPoints(2, 1000, 31);
  DynamicKdTree tree(2);
  tree.Build(pts);
  Rectangle r({0.25, 0.25}, {0.5, 0.5});
  std::vector<KdPoint> out;
  tree.Report(r, &out);
  const TreeAgg expect = BruteAggregate(pts, r, 2);
  ASSERT_EQ(static_cast<double>(out.size()), expect.count);
  for (const KdPoint& p : out) {
    EXPECT_GE(p.x[0], 0.25);
    EXPECT_LE(p.x[0], 0.5);
    EXPECT_GE(p.x[1], 0.25);
    EXPECT_LE(p.x[1], 0.5);
  }
}

TEST(KdTreeTest, MaxSumsqCellRespectsCapAndRegion) {
  auto pts = RandomPoints(2, 2000, 37);
  DynamicKdTree tree(2);
  tree.Build(pts);
  Rectangle r({0.1, 0.1}, {0.9, 0.9});
  const TreeAgg cell = tree.MaxSumsqCell(r, 100);
  EXPECT_GT(cell.count, 0.0);
  EXPECT_LE(cell.count, 100.0);
  EXPECT_GT(cell.sumsq, 0.0);
  // A cell's sumsq can never exceed the region total.
  const TreeAgg whole = tree.RangeAggregate(r);
  EXPECT_LE(cell.sumsq, whole.sumsq + 1e-9);
}

TEST(KdTreeTest, MaxSumsqCellEmptyRegion) {
  auto pts = RandomPoints(2, 100, 41);
  DynamicKdTree tree(2);
  tree.Build(pts);
  Rectangle r({5.0, 5.0}, {6.0, 6.0});
  const TreeAgg cell = tree.MaxSumsqCell(r, 10);
  EXPECT_DOUBLE_EQ(cell.count, 0.0);
}

TEST(KdTreeTest, BoundingBoxCoversAllPoints) {
  auto pts = RandomPoints(3, 500, 43);
  DynamicKdTree tree(3);
  tree.Build(pts);
  const Rectangle box = tree.BoundingBox();
  for (const KdPoint& p : pts) {
    EXPECT_TRUE(box.Contains(p.x.data()));
  }
}

TEST(KdTreeTest, DumpReturnsAllPoints) {
  auto pts = RandomPoints(2, 300, 47);
  DynamicKdTree tree(2);
  tree.Build(pts);
  std::vector<KdPoint> out;
  tree.Dump(&out);
  EXPECT_EQ(out.size(), pts.size());
}

TEST(KdTreeTest, EmptyTreeQueriesAreSafe) {
  DynamicKdTree tree(2);
  Rectangle r({0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(tree.RangeAggregate(r).count, 0.0);
  std::vector<KdPoint> out;
  tree.Report(r, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(tree.MaxSumsqCell(r, 10).count, 0.0);
}

TEST(KdTreeTest, DuplicateCoordinatesHandled) {
  DynamicKdTree tree(2);
  for (uint64_t i = 0; i < 200; ++i) {
    tree.Insert(MakePoint(i, {0.5, 0.5}, 1.0));
  }
  ASSERT_EQ(tree.size(), 200u);
  Rectangle r({0.5, 0.5}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(tree.RangeAggregate(r).count, 200.0);
  double coords[2] = {0.5, 0.5};
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Delete(coords, i));
  }
  EXPECT_EQ(tree.size(), 0u);
}

}  // namespace
}  // namespace janus
