#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace janus {
namespace {

TEST(MomentAccumulatorTest, AddRemoveRoundTrip) {
  MomentAccumulator acc;
  acc.Add(3.0);
  acc.Add(5.0);
  acc.Add(7.0);
  EXPECT_DOUBLE_EQ(acc.count, 3);
  EXPECT_DOUBLE_EQ(acc.sum, 15);
  EXPECT_DOUBLE_EQ(acc.sum_sq, 9 + 25 + 49);
  acc.Remove(5.0);
  EXPECT_DOUBLE_EQ(acc.count, 2);
  EXPECT_DOUBLE_EQ(acc.sum, 10);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
}

TEST(MomentAccumulatorTest, VarianceMatchesClosedForm) {
  MomentAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_NEAR(acc.Variance(), 4.0, 1e-12);  // textbook example
}

TEST(MomentAccumulatorTest, MergeAndSubtract) {
  MomentAccumulator a, b;
  a.Add(1);
  a.Add(2);
  b.Add(10);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.sum, 13);
  a.Subtract(b);
  EXPECT_DOUBLE_EQ(a.count, 2);
  EXPECT_DOUBLE_EQ(a.sum, 3);
}

TEST(MomentAccumulatorTest, VarianceClampedNonNegative) {
  MomentAccumulator acc;
  acc.Add(1e9);
  acc.Add(1e9);
  EXPECT_GE(acc.Variance(), 0.0);
}

TEST(PercentileTest, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 9.0);
}

TEST(PercentileTest, P95Interpolates) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_NEAR(Percentile(v, 95), 95.05, 1e-9);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

// Pins down the documented estimator: linear interpolation between closest
// ranks (Hyndman–Fan type 7), NOT nearest-rank. Nearest-rank would return
// 2 here; type-7 interpolates to 2.5.
TEST(PercentileTest, InterpolatesBetweenClosestRanks) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({10, 20}, 25), 12.5);
  EXPECT_DOUBLE_EQ(Percentile({10, 20}, 75), 17.5);
}

TEST(PercentileTest, SingleElementIsThatElementAtAnyP) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.9), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 100), 7.0);
}

TEST(PercentileTest, OutOfRangePClampsToExtremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 250), 9.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
}

TEST(NormalZTest, StandardQuantiles) {
  EXPECT_NEAR(NormalZ(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalZ(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(NormalZ(0.90), 1.644854, 1e-4);
}

TEST(NormalZTest, MonotoneInConfidence) {
  double prev = 0;
  for (double c : {0.5, 0.8, 0.9, 0.95, 0.99, 0.999}) {
    const double z = NormalZ(c);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

}  // namespace
}  // namespace janus
