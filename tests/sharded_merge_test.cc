// Property tests for the sharded engine's variance-correct merge: against a
// deterministic exact backend, the merged estimate/variance must equal the
// hand-pooled per-shard estimators to 1e-9 for every aggregate type, and on
// a real backend (janus) CI coverage over a large randomized workload must
// stay within tolerance of the unsharded engine.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/registry.h"
#include "api/sharded.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/workload.h"
#include "util/rng.h"

namespace janus {
namespace {

/// Deterministic stand-in backend: exact aggregates over its rows plus a
/// synthetic-but-deterministic "variance" derived from the matching moments,
/// so the pooling algebra is checkable to machine precision. The nu_c/nu_s
/// split and the ci = 2*sqrt(nu_c + nu_s) shape mirror the real estimators.
class MockExactEngine : public AqpEngine {
 public:
  explicit MockExactEngine(const EngineConfig&) {}

  const char* name() const override { return "mock"; }
  void LoadInitialImpl(const std::vector<Tuple>& rows) override {
    rows_.insert(rows_.end(), rows.begin(), rows.end());
  }
  void InitializeImpl() override {}
  void InsertImpl(const Tuple& t) override { rows_.push_back(t); }
  bool DeleteImpl(uint64_t id) override {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].id == id) {
        rows_[i] = rows_.back();
        rows_.pop_back();
        return true;
      }
    }
    return false;
  }

  QueryResult QueryImpl(const AggQuery& q) const override {
    QueryResult r;
    double count = 0, sum = 0, sumsq = 0;
    double mn = 0, mx = 0;
    std::vector<double> point(q.predicate_columns.size());
    for (const Tuple& t : rows_) {
      ProjectTuple(t, q.predicate_columns, point.data());
      if (!q.rect.Contains(point.data())) continue;
      const double v = t[q.agg_column];
      if (count == 0) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      count += 1;
      sum += v;
      sumsq += v * v;
    }
    switch (q.func) {
      case AggFunc::kSum:
        r.estimate = sum;
        break;
      case AggFunc::kCount:
        r.estimate = count;
        break;
      case AggFunc::kAvg:
        r.estimate = count > 0 ? sum / count : 0;
        break;
      case AggFunc::kMin:
        r.estimate = mn;
        break;
      case AggFunc::kMax:
        r.estimate = mx;
        break;
    }
    r.variance_catchup = 0.25 * count;
    r.variance_sample = sumsq / (count + 1.0);
    r.ci_half_width =
        2.0 * std::sqrt(r.variance_catchup + r.variance_sample);
    r.covered_nodes = 1;
    r.partial_leaves = static_cast<size_t>(count) % 3;
    r.exact = true;
    return r;
  }

  EngineStats StatsImpl() const override {
    EngineStats s;
    s.engine = name();
    s.rows = rows_.size();
    return s;
  }

 private:
  std::vector<Tuple> rows_;
};

void RegisterMockOnce() {
  static const bool done = [] {
    EngineRegistry::Global().Register(
        "mock", "deterministic exact backend (tests only)",
        [](const EngineConfig& c) {
          return std::make_unique<MockExactEngine>(c);
        });
    return true;
  }();
  (void)done;
}

/// Synthetic strata with known moments: 4 blocks of col0 with different
/// means/spreads of col1, so predicates hit heterogeneous regions.
std::vector<Tuple> StratifiedRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.id = i;
    const int stratum = static_cast<int>(i % 4);
    t[0] = 0.25 * stratum + 0.25 * rng.NextDouble();
    t[1] = rng.Normal(5.0 * (stratum + 1), 0.5 * (stratum + 1));
    rows.push_back(t);
  }
  return rows;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

/// Hand-pool per-shard mock results with the documented stratified algebra.
QueryResult HandPooled(
    const std::vector<std::unique_ptr<MockExactEngine>>& shards,
    const AggQuery& q) {
  std::vector<QueryResult> parts;
  std::vector<double> counts;
  AggQuery cq = q;
  cq.func = AggFunc::kCount;
  for (const auto& s : shards) {
    parts.push_back(s->Query(q));
    counts.push_back(s->Query(cq).estimate);
  }
  QueryResult pooled;
  switch (q.func) {
    case AggFunc::kSum:
    case AggFunc::kCount: {
      double ci_sq = 0;
      for (const QueryResult& r : parts) {
        pooled.estimate += r.estimate;
        pooled.variance_catchup += r.variance_catchup;
        pooled.variance_sample += r.variance_sample;
        ci_sq += r.ci_half_width * r.ci_half_width;
      }
      pooled.ci_half_width = std::sqrt(ci_sq);
      break;
    }
    case AggFunc::kAvg: {
      double total = 0;
      for (double c : counts) total += c;
      if (total <= 0) break;
      double ci_sq = 0;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (counts[i] <= 0) continue;
        const double w = counts[i] / total;
        pooled.estimate += w * parts[i].estimate;
        pooled.variance_catchup += w * w * parts[i].variance_catchup;
        pooled.variance_sample += w * w * parts[i].variance_sample;
        ci_sq += w * w * parts[i].ci_half_width * parts[i].ci_half_width;
      }
      pooled.ci_half_width = std::sqrt(ci_sq);
      break;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      bool any = false;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (counts[i] <= 0) continue;
        if (!any) {
          pooled.estimate = parts[i].estimate;
        } else if (q.func == AggFunc::kMin) {
          pooled.estimate = std::min(pooled.estimate, parts[i].estimate);
        } else {
          pooled.estimate = std::max(pooled.estimate, parts[i].estimate);
        }
        pooled.ci_half_width =
            std::max(pooled.ci_half_width, parts[i].ci_half_width);
        any = true;
      }
      break;
    }
  }
  return pooled;
}

TEST(ShardedMergeTest, MergedEstimatorEqualsPooledEstimator) {
  RegisterMockOnce();
  const auto rows = StratifiedRows(6000, 11);

  for (const int num_shards : {1, 3, 4, 8}) {
    EngineConfig cfg;
    cfg.num_shards = num_shards;
    ShardedEngine sharded("mock", cfg);
    ASSERT_EQ(sharded.num_shards(), static_cast<size_t>(num_shards));
    sharded.LoadInitial(rows);
    sharded.Initialize();

    // The reference pooling: identical hash partition, one mock per shard.
    // Engines carry their synchronization state (room lock), so the
    // reference shards are heap-held rather than copied into the vector.
    std::vector<std::unique_ptr<MockExactEngine>> manual;
    for (int i = 0; i < num_shards; ++i) {
      manual.push_back(std::make_unique<MockExactEngine>(cfg));
    }
    for (const Tuple& t : rows) {
      manual[ShardIndexForId(t.id, manual.size())]->Insert(t);
    }

    Rng rng(23);
    for (int trial = 0; trial < 40; ++trial) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      if (a > b) std::swap(a, b);
      for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                        AggFunc::kMin, AggFunc::kMax}) {
        const AggQuery q = MakeQuery(f, a, b);
        const QueryResult got = sharded.Query(q);
        // A single shard is served verbatim (identity merge); pooling only
        // kicks in across two or more shards.
        const QueryResult want =
            num_shards == 1 ? manual[0]->Query(q) : HandPooled(manual, q);
        EXPECT_NEAR(got.estimate, want.estimate, 1e-9)
            << AggFuncName(f) << " shards=" << num_shards;
        EXPECT_NEAR(got.variance_catchup, want.variance_catchup, 1e-9)
            << AggFuncName(f) << " shards=" << num_shards;
        EXPECT_NEAR(got.variance_sample, want.variance_sample, 1e-9)
            << AggFuncName(f) << " shards=" << num_shards;
        EXPECT_NEAR(got.ci_half_width, want.ci_half_width, 1e-9)
            << AggFuncName(f) << " shards=" << num_shards;
      }
    }
  }
}

TEST(ShardedMergeTest, MergeSurvivesInsertsAndDeletes) {
  RegisterMockOnce();
  const auto rows = StratifiedRows(3000, 31);
  EngineConfig cfg;
  cfg.num_shards = 4;
  ShardedEngine sharded("mock", cfg);
  sharded.LoadInitial(rows);
  sharded.Initialize();
  std::vector<std::unique_ptr<MockExactEngine>> manual;
  for (int i = 0; i < 4; ++i) {
    manual.push_back(std::make_unique<MockExactEngine>(cfg));
  }
  for (const Tuple& t : rows) {
    manual[ShardIndexForId(t.id, 4)]->Insert(t);
  }

  // Stream async inserts and synchronous deletes through the sharded
  // facade; mirror them into the manual shards.
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = 100000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(8, 3);
    sharded.Insert(t);
    manual[ShardIndexForId(t.id, 4)]->Insert(t);
  }
  for (uint64_t id = 0; id < 1500; id += 3) {
    EXPECT_TRUE(sharded.Delete(id));
    EXPECT_TRUE(manual[ShardIndexForId(id, 4)]->Delete(id));
  }
  EXPECT_FALSE(sharded.Delete(999999999));

  // Query() quiesces every shard, so all async inserts are visible.
  for (AggFunc f :
       {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg, AggFunc::kMin}) {
    const AggQuery q = MakeQuery(f, 0.1, 0.9);
    const QueryResult got = sharded.Query(q);
    const QueryResult want = HandPooled(manual, q);
    EXPECT_NEAR(got.estimate, want.estimate, 1e-9) << AggFuncName(f);
    EXPECT_NEAR(got.ci_half_width, want.ci_half_width, 1e-9)
        << AggFuncName(f);
  }
}

TEST(ShardedMergeTest, MergeShardResultsAlgebra) {
  // Direct unit check of the pooling algebra on hand-written parts.
  QueryResult a, b;
  a.estimate = 10;
  a.variance_catchup = 1;
  a.variance_sample = 3;
  a.ci_half_width = 4;
  a.exact = true;
  b.estimate = 32;
  b.variance_catchup = 2;
  b.variance_sample = 6;
  b.ci_half_width = 3;
  b.exact = true;

  const QueryResult sum = MergeShardResults(AggFunc::kSum, {a, b}, {});
  EXPECT_DOUBLE_EQ(sum.estimate, 42);
  EXPECT_DOUBLE_EQ(sum.variance_catchup, 3);
  EXPECT_DOUBLE_EQ(sum.variance_sample, 9);
  EXPECT_DOUBLE_EQ(sum.ci_half_width, 5);  // sqrt(16 + 9)
  EXPECT_TRUE(sum.exact);

  // AVG: count-weighted mean, variances scaled by w^2.
  const QueryResult avg =
      MergeShardResults(AggFunc::kAvg, {a, b}, {30, 10});
  EXPECT_DOUBLE_EQ(avg.estimate, 0.75 * 10 + 0.25 * 32);
  EXPECT_DOUBLE_EQ(avg.variance_catchup, 0.5625 * 1 + 0.0625 * 2);
  EXPECT_DOUBLE_EQ(avg.variance_sample, 0.5625 * 3 + 0.0625 * 6);
  EXPECT_DOUBLE_EQ(avg.ci_half_width,
                   std::sqrt(0.5625 * 16 + 0.0625 * 9));

  // MIN skips shards whose count estimate is zero.
  const QueryResult mn = MergeShardResults(AggFunc::kMin, {a, b}, {0, 5});
  EXPECT_DOUBLE_EQ(mn.estimate, 32);
  EXPECT_DOUBLE_EQ(mn.ci_half_width, 3);

  // A non-exact shard poisons exactness.
  b.exact = false;
  const QueryResult mixed = MergeShardResults(AggFunc::kSum, {a, b}, {});
  EXPECT_FALSE(mixed.exact);

  // Empty input merges to the zero result.
  const QueryResult empty = MergeShardResults(AggFunc::kSum, {}, {});
  EXPECT_DOUBLE_EQ(empty.estimate, 0);
}

/// CI coverage of an engine over a workload: fraction of queries whose
/// truth lies inside [estimate - ci, estimate + ci].
double Coverage(const AqpEngine& engine,
                const std::vector<AggQuery>& queries,
                const std::vector<std::optional<double>>& truths) {
  size_t with_truth = 0, covered = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!truths[i].has_value()) continue;
    const QueryResult r = engine.Query(queries[i]);
    ++with_truth;
    if (std::abs(r.estimate - *truths[i]) <= r.ci_half_width) ++covered;
  }
  return with_truth > 0
             ? static_cast<double>(covered) / static_cast<double>(with_truth)
             : 0.0;
}

TEST(ShardedMergeTest, CiCoverageTracksUnshardedEngine) {
  // 1000 randomized SUM queries: the sharded engine's pooled CIs must cover
  // the truth about as often as the unsharded engine's (both nominally 95%).
  auto ds = GenerateUniform(20000, 1, 101);
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions wo;
  wo.num_queries = 1000;
  wo.func = AggFunc::kSum;
  wo.min_count = 100;
  wo.seed = 7;
  const auto queries = gen.Generate(ds.rows, wo);
  const auto truths = ExactAnswers(ds.rows, queries);

  EngineConfig cfg;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 32;
  cfg.sample_rate = 0.02;
  cfg.enable_triggers = false;
  cfg.num_shards = 4;

  auto plain = EngineRegistry::Create("janus", cfg);
  plain->LoadInitial(ds.rows);
  plain->Initialize();
  plain->RunCatchupToGoal();

  auto sharded = EngineRegistry::Create("sharded:janus", cfg);
  sharded->LoadInitial(ds.rows);
  sharded->Initialize();
  sharded->RunCatchupToGoal();

  const double cov_plain = Coverage(*plain, queries, truths);
  const double cov_sharded = Coverage(*sharded, queries, truths);

  // Both track the nominal level loosely; more importantly, sharding must
  // not degrade coverage beyond sampling noise.
  EXPECT_GE(cov_plain, 0.60);
  EXPECT_GE(cov_sharded, 0.60);
  EXPECT_NEAR(cov_sharded, cov_plain, 0.10)
      << "sharded=" << cov_sharded << " plain=" << cov_plain;
}

}  // namespace
}  // namespace janus
