#include "core/dpt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/partitioner_1d.h"
#include "core/spt.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace janus {
namespace {

// Shared fixture: a 1-D synopsis over the uniform dataset (predicate col 0,
// aggregate col 1).
class DptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(20000, 1, 42);
    spec_.agg_column = 1;
    spec_.predicate_columns = {0};
  }

  std::unique_ptr<Dpt> MakeDpt(int leaves, double sample_rate = 0.02) {
    std::vector<double> boundaries;
    for (int b = 1; b < leaves; ++b) {
      boundaries.push_back(static_cast<double>(b) / leaves);
    }
    DptOptions opts;
    opts.spec = spec_;
    opts.sample_rate = sample_rate;
    return std::make_unique<Dpt>(opts, BuildBalanced1dTree(boundaries));
  }

  std::vector<Tuple> SampleRows(size_t k, uint64_t seed) {
    Rng rng(seed);
    std::vector<size_t> idx = rng.SampleIndices(ds_.rows.size(), k);
    std::vector<Tuple> out;
    for (size_t i : idx) out.push_back(ds_.rows[i]);
    return out;
  }

  AggQuery MakeQuery(AggFunc f, double lo, double hi) {
    AggQuery q;
    q.func = f;
    q.agg_column = 1;
    q.predicate_columns = {0};
    q.rect = Rectangle({lo}, {hi});
    return q;
  }

  GeneratedDataset ds_;
  SynopsisSpec spec_;
};

TEST_F(DptTest, ExactModeSumIsExactOnAlignedQueries) {
  auto dpt = MakeDpt(16);
  dpt->InitializeExact(ds_.rows, SampleRows(400, 1));
  // Query aligned with bucket boundaries [4/16, 12/16].
  const AggQuery q = MakeQuery(AggFunc::kSum, 4.0 / 16, 12.0 / 16);
  const QueryResult r = dpt->Query(q);
  // Bucket-aligned: partial leaves may still appear at the exact boundary
  // (closed rectangles touch), but the estimate must equal the truth well
  // within the CI.
  const auto truth = ExactAnswer(ds_.rows, q);
  ASSERT_TRUE(truth.has_value());
  EXPECT_NEAR(r.estimate, *truth, std::abs(*truth) * 0.01 + 1e-6);
}

TEST_F(DptTest, ExactModeCountAndAvgCloseToTruth) {
  auto dpt = MakeDpt(32);
  dpt->InitializeExact(ds_.rows, SampleRows(800, 2));
  for (AggFunc f : {AggFunc::kCount, AggFunc::kAvg, AggFunc::kSum}) {
    const AggQuery q = MakeQuery(f, 0.13, 0.77);
    const QueryResult r = dpt->Query(q);
    const auto truth = ExactAnswer(ds_.rows, q);
    ASSERT_TRUE(truth.has_value());
    const double rel = std::abs(r.estimate - *truth) / std::abs(*truth);
    EXPECT_LT(rel, 0.05) << AggFuncName(f);
  }
}

TEST_F(DptTest, FullyCoveredQueryIsFlaggedExact) {
  auto dpt = MakeDpt(8);
  dpt->InitializeExact(ds_.rows, SampleRows(200, 3));
  // Covers everything: only covered nodes, no partial leaves.
  const AggQuery q = MakeQuery(AggFunc::kSum, -10.0, 10.0);
  const QueryResult r = dpt->Query(q);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.partial_leaves, 0u);
  const auto truth = ExactAnswer(ds_.rows, q);
  EXPECT_NEAR(r.estimate, *truth, 1e-6 * std::abs(*truth));
  EXPECT_DOUBLE_EQ(r.ci_half_width, 0.0);
}

TEST_F(DptTest, InsertMaintainsExactStats) {
  auto dpt = MakeDpt(16);
  dpt->InitializeExact(ds_.rows, SampleRows(400, 4));
  auto rows = ds_.rows;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = 1000000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    dpt->ApplyInsert(t);
    rows.push_back(t);
  }
  const AggQuery q = MakeQuery(AggFunc::kSum, -1.0, 2.0);
  const QueryResult r = dpt->Query(q);
  const auto truth = ExactAnswer(rows, q);
  EXPECT_NEAR(r.estimate, *truth, 1e-6 * std::abs(*truth));
}

TEST_F(DptTest, DeleteMaintainsExactStats) {
  auto dpt = MakeDpt(16);
  dpt->InitializeExact(ds_.rows, SampleRows(400, 6));
  auto rows = ds_.rows;
  // Delete the first 3000 rows.
  for (int i = 0; i < 3000; ++i) dpt->ApplyDelete(ds_.rows[i]);
  rows.erase(rows.begin(), rows.begin() + 3000);
  const AggQuery q = MakeQuery(AggFunc::kSum, -1.0, 2.0);
  const QueryResult r = dpt->Query(q);
  const auto truth = ExactAnswer(rows, q);
  EXPECT_NEAR(r.estimate, *truth, 1e-6 * std::abs(*truth));
}

TEST_F(DptTest, CatchupModeEstimatesImproveWithSamples) {
  auto dpt = MakeDpt(16);
  auto reservoir = SampleRows(400, 7);
  dpt->InitializeFromReservoir(reservoir, ds_.rows.size());
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.2, 0.9);
  const auto truth = ExactAnswer(ds_.rows, q);
  const QueryResult before = dpt->Query(q);
  // Feed catch-up samples (10% of data).
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    dpt->AddCatchupSample(ds_.rows[rng.NextUint64(ds_.rows.size())]);
  }
  const QueryResult after = dpt->Query(q);
  const double rel_before = std::abs(before.estimate - *truth) / *truth;
  const double rel_after = std::abs(after.estimate - *truth) / *truth;
  EXPECT_LT(rel_after, 0.05);
  // CI shrinks as catch-up progresses.
  EXPECT_LT(after.variance_catchup, before.variance_catchup + 1e-12);
  (void)rel_before;
}

TEST_F(DptTest, CatchupModeTracksInsertDeleteDeltas) {
  auto dpt = MakeDpt(16);
  dpt->InitializeFromReservoir(SampleRows(600, 9), ds_.rows.size());
  Rng rng(10);
  for (int i = 0; i < 3000; ++i) {
    dpt->AddCatchupSample(ds_.rows[rng.NextUint64(ds_.rows.size())]);
  }
  auto rows = ds_.rows;
  // Insert new tuples clustered in [0, 0.1] with large values.
  for (int i = 0; i < 4000; ++i) {
    Tuple t;
    t.id = 2000000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble() * 0.1;
    t[1] = 50.0;
    dpt->ApplyInsert(t);
    rows.push_back(t);
  }
  // Delete some original tuples.
  for (int i = 0; i < 1000; ++i) {
    dpt->ApplyDelete(ds_.rows[i]);
  }
  rows.erase(rows.begin(), rows.begin() + 1000);
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.0, 0.3);
  const auto truth = ExactAnswer(rows, q);
  const QueryResult r = dpt->Query(q);
  const double rel = std::abs(r.estimate - *truth) / std::abs(*truth);
  EXPECT_LT(rel, 0.08);
}

TEST_F(DptTest, MinMaxQueries) {
  auto dpt = MakeDpt(16);
  dpt->InitializeExact(ds_.rows, SampleRows(500, 11));
  const AggQuery qmin = MakeQuery(AggFunc::kMin, -10.0, 10.0);
  const AggQuery qmax = MakeQuery(AggFunc::kMax, -10.0, 10.0);
  const auto tmin = ExactAnswer(ds_.rows, qmin);
  const auto tmax = ExactAnswer(ds_.rows, qmax);
  EXPECT_DOUBLE_EQ(dpt->Query(qmin).estimate, *tmin);
  EXPECT_DOUBLE_EQ(dpt->Query(qmax).estimate, *tmax);
}

TEST_F(DptTest, MinMaxOuterApproximationAfterHeavyDeletes) {
  DptOptions opts;
  opts.spec = spec_;
  opts.minmax_k = 4;  // tiny heaps to force degradation
  auto dpt = std::make_unique<Dpt>(opts, BuildBalanced1dTree({0.5}));
  dpt->InitializeExact(ds_.rows, SampleRows(100, 12));
  // Delete the 100 smallest aggregate values: exhausts the bottom heap.
  auto sorted = ds_.rows;
  std::sort(sorted.begin(), sorted.end(),
            [](const Tuple& a, const Tuple& b) { return a[1] < b[1]; });
  for (int i = 0; i < 100; ++i) dpt->ApplyDelete(sorted[i]);
  const AggQuery qmin = MakeQuery(AggFunc::kMin, -10.0, 10.0);
  const QueryResult r = dpt->Query(qmin);
  // Outer approximation: reported MIN <= true MIN of the remaining data.
  EXPECT_LE(r.estimate, sorted[100][1] + 1e-9);
  EXPECT_FALSE(r.exact);
}

TEST_F(DptTest, SampleMaintenanceAffectsPartialEstimates) {
  auto dpt = MakeDpt(4, 0.01);
  dpt->InitializeExact(ds_.rows, SampleRows(200, 13));
  EXPECT_EQ(dpt->sample_size(), 200u);
  Tuple extra;
  extra.id = 5000000;
  extra[0] = 0.5;
  extra[1] = 10;
  dpt->SampleAdd(extra);
  EXPECT_EQ(dpt->sample_size(), 201u);
  EXPECT_TRUE(dpt->sample_tuples().contains(5000000));
  dpt->SampleRemove(extra);
  EXPECT_EQ(dpt->sample_size(), 200u);
  EXPECT_FALSE(dpt->sample_tuples().contains(5000000));
}

TEST_F(DptTest, UntrackedAggColumnFallsBackToSamples) {
  // Query aggregates column 0 (the predicate column) which is not tracked.
  auto dpt = MakeDpt(16, 0.05);
  dpt->InitializeExact(ds_.rows, SampleRows(2000, 14));
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = 0;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.0}, {0.5});
  const QueryResult r = dpt->Query(q);
  const auto truth = ExactAnswer(ds_.rows, q);
  const double rel = std::abs(r.estimate - *truth) / std::abs(*truth);
  EXPECT_LT(rel, 0.15);  // plain uniform-sample accuracy
  EXPECT_FALSE(r.exact);
}

TEST_F(DptTest, ExtraTrackedColumnAnsweredFromTree) {
  GeneratedDataset multi = GenerateUniform(20000, 2, 77);
  SynopsisSpec spec;
  spec.agg_column = 2;
  spec.predicate_columns = {0};
  DptOptions opts;
  opts.spec = spec;
  opts.extra_tracked_columns = {1};
  std::vector<double> boundaries;
  for (int b = 1; b < 16; ++b) boundaries.push_back(b / 16.0);
  Dpt dpt(opts, BuildBalanced1dTree(boundaries));
  Rng rng(15);
  std::vector<size_t> idx = rng.SampleIndices(multi.rows.size(), 500);
  std::vector<Tuple> sample;
  for (size_t i : idx) sample.push_back(multi.rows[i]);
  dpt.InitializeExact(multi.rows, sample);
  // SUM over the *extra* tracked column 1 goes through node statistics.
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({-1.0}, {2.0});
  const QueryResult r = dpt.Query(q);
  const auto truth = ExactAnswer(multi.rows, q);
  EXPECT_NEAR(r.estimate, *truth, 1e-6 * std::abs(*truth));
  EXPECT_TRUE(r.exact);
}

TEST_F(DptTest, MismatchedPredicateColumnsUseSampleFallback) {
  GeneratedDataset multi = GenerateUniform(10000, 2, 78);
  SynopsisSpec spec;
  spec.agg_column = 2;
  spec.predicate_columns = {0};
  DptOptions opts;
  opts.spec = spec;
  opts.sample_rate = 0.05;
  Dpt dpt(opts, BuildBalanced1dTree({0.5}));
  Rng rng(16);
  std::vector<size_t> idx = rng.SampleIndices(multi.rows.size(), 1000);
  std::vector<Tuple> sample;
  for (size_t i : idx) sample.push_back(multi.rows[i]);
  dpt.InitializeExact(multi.rows, sample);
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 2;
  q.predicate_columns = {1};  // different predicate attribute
  q.rect = Rectangle({0.0}, {0.5});
  const QueryResult r = dpt.Query(q);
  const auto truth = ExactAnswer(multi.rows, q);
  const double rel = std::abs(r.estimate - *truth) / *truth;
  EXPECT_LT(rel, 0.15);
}

TEST_F(DptTest, NodeCountEstimatesSumToTotal) {
  auto dpt = MakeDpt(8);
  dpt->InitializeExact(ds_.rows, SampleRows(100, 17));
  double total = 0;
  for (int leaf : dpt->tree().leaves) total += dpt->NodeCountEstimate(leaf);
  EXPECT_NEAR(total, static_cast<double>(ds_.rows.size()), 1e-6);
  EXPECT_NEAR(dpt->NodeCountEstimate(0), total, 1e-6);
}

TEST_F(DptTest, CiCoversTruthMostOfTheTime) {
  // Statistical check of Sec. 4.4.1: ~95% CIs over repeated random queries
  // should cover the truth clearly more than 80% of the time.
  auto dpt = MakeDpt(32, 0.02);
  dpt->InitializeFromReservoir(SampleRows(800, 18), ds_.rows.size());
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    dpt->AddCatchupSample(ds_.rows[rng.NextUint64(ds_.rows.size())]);
  }
  int covered = 0, total = 0;
  Rng qrng(20);
  for (int i = 0; i < 200; ++i) {
    double a = qrng.NextDouble(), b = qrng.NextDouble();
    if (a > b) std::swap(a, b);
    const AggQuery q = MakeQuery(AggFunc::kSum, a, b);
    const auto truth = ExactAnswer(ds_.rows, q);
    if (!truth.has_value() || *truth == 0) continue;
    const QueryResult r = dpt->Query(q);
    if (r.ci_half_width <= 0) continue;
    ++total;
    covered += std::abs(r.estimate - *truth) <= r.ci_half_width;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(covered) / total, 0.8);
}

}  // namespace
}  // namespace janus
