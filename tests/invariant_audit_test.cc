// The invariant auditor must actually catch damage: these tests corrupt
// private structure state through the InvariantTestPeer backdoor and assert
// that CheckInvariants() throws InvariantViolation, alongside positive
// audits of healthy structures and the engine-level audit entry point.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/registry.h"
#include "data/column_store.h"
#include "data/generators.h"
#include "index/dynamic_kd_tree.h"
#include "index/order_stat_tree.h"
#include "sampling/reservoir.h"
#include "tests/test_seed.h"
#include "util/invariants.h"

namespace janus {

/// Friend of ColumnStore and DynamicReservoir (declared in their headers):
/// the only sanctioned way to damage private state, existing purely so the
/// negative tests below can prove the audits detect real corruption.
struct InvariantTestPeer {
  static void CorruptStoreIndex(ColumnStore* store, uint64_t id,
                                size_t wrong_pos) {
    store->index_[id] = wrong_pos;
  }
  static void DropStoreIndexEntry(ColumnStore* store, uint64_t id) {
    store->index_.erase(id);
  }
  static void CorruptReservoirSlot(DynamicReservoir* res, uint64_t id,
                                   size_t wrong_slot) {
    res->index_[id] = wrong_slot;
  }
};

namespace {

ColumnStore MakeStore(size_t rows) {
  ColumnStore store(Schema{{"x", "y"}});
  for (size_t i = 0; i < rows; ++i) {
    Tuple t;
    t.id = i;
    t[0] = static_cast<double>(i);
    t[1] = static_cast<double>(i) * 2;
    store.Insert(t);
  }
  return store;
}

TEST(InvariantAuditTest, HealthyStorePasses) {
  const ColumnStore store = MakeStore(100);
  store.CheckInvariants();  // must not throw
}

TEST(InvariantAuditTest, CorruptedStoreIndexIsCaught) {
  ColumnStore store = MakeStore(100);
  InvariantTestPeer::CorruptStoreIndex(&store, 5, 42);
  EXPECT_THROW(store.CheckInvariants(), InvariantViolation);
}

TEST(InvariantAuditTest, MissingStoreIndexEntryIsCaught) {
  ColumnStore store = MakeStore(100);
  InvariantTestPeer::DropStoreIndexEntry(&store, 7);
  EXPECT_THROW(store.CheckInvariants(), InvariantViolation);
}

TEST(InvariantAuditTest, ViolationMessageNamesTheStructure) {
  ColumnStore store = MakeStore(10);
  InvariantTestPeer::CorruptStoreIndex(&store, 3, 9);
  try {
    store.CheckInvariants();
    FAIL() << "corruption not detected";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ColumnStore"), std::string::npos)
        << e.what();
  }
}

TEST(InvariantAuditTest, CorruptedReservoirIndexIsCaught) {
  DynamicReservoir res(64, TestSeed());
  for (uint64_t i = 0; i < 200; ++i) {
    Tuple t;
    t.id = i;
    t[0] = static_cast<double>(i);
    res.OnInsert(t, i + 1);
  }
  res.CheckInvariants();  // healthy first
  InvariantTestPeer::CorruptReservoirSlot(&res, res.samples()[0].id, 9999);
  EXPECT_THROW(res.CheckInvariants(), InvariantViolation);
}

TEST(InvariantAuditTest, TreeAuditsPassUnderChurn) {
  Rng rng(TestSeed() + 3);
  OrderStatTree ost;
  DynamicKdTree kd(2);
  std::vector<KdPoint> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextDouble() < 0.65) {
      KdPoint p;
      p.id = static_cast<uint64_t>(step);
      p.x[0] = rng.NextDouble();
      p.x[1] = rng.NextDouble();
      p.a = rng.Normal(0, 5);
      kd.Insert(p);
      ost.Insert(p.x[0], p.a);
      live.push_back(p);
    } else {
      const size_t i = rng.NextUint64(live.size());
      ASSERT_TRUE(kd.Delete(live[i].x.data(), live[i].id));
      ASSERT_TRUE(ost.Delete(live[i].x[0], live[i].a));
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 250 == 0) {
      kd.CheckInvariants();
      ost.CheckInvariants();
    }
  }
  kd.CheckInvariants();
  ost.CheckInvariants();
}

TEST(InvariantAuditTest, EngineAuditEntryPointCoversEveryBackend) {
  auto ds = GenerateUniform(3000, 1, TestSeed() + 11);
  for (const std::string& name : EngineRegistry::Global().Names()) {
    EngineConfig cfg;
    cfg.agg_column = 1;
    cfg.predicate_columns = {0};
    cfg.num_leaves = 16;
    cfg.sample_rate = 0.02;
    cfg.enable_triggers = false;
    cfg.num_shards = 2;
    cfg.seed = TestSeed();
    auto engine = EngineRegistry::Create(name, cfg);
    ASSERT_NE(engine, nullptr) << name;
    engine->LoadInitial(ds.rows);
    engine->Initialize();
    engine->RunCatchupToGoal();
    // Unconditional audit (not MaybeAudit): this suite is the auditor's own
    // test, so it runs in every build mode regardless of the knob.
    engine->CheckInvariants();
    Rng rng(TestSeed() + 29);
    for (int i = 0; i < 50; ++i) {
      Tuple t;
      t.id = 900000 + static_cast<uint64_t>(i);  // fresh ids only
      t[0] = rng.NextDouble();
      t[1] = rng.Normal(10, 2);
      engine->Insert(t);
    }
    for (uint64_t id = 0; id < 25; ++id) engine->Delete(id);
    engine->CheckInvariants();
  }
}

}  // namespace
}  // namespace janus
