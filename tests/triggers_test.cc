#include <cmath>

#include <gtest/gtest.h>

#include "core/janus.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace janus {
namespace {

JanusOptions TriggerOptions() {
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 16;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  o.enable_triggers = true;
  o.trigger_check_interval = 32;
  o.beta = 4.0;  // sensitive, so tests fire quickly
  return o;
}

Tuple SkewTuple(uint64_t id, double key, double value) {
  Tuple t;
  t.id = id;
  t[0] = key;
  t[1] = value;
  return t;
}

TEST(TriggersTest, NoFireUnderStationaryInserts) {
  auto ds = GenerateUniform(10000, 1, 31);
  JanusAqp system(TriggerOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    Tuple t;
    t.id = 100000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    system.Insert(t);
  }
  EXPECT_GT(system.counters().trigger_checks, 0u);
  // Stationary data: the variance profile is stable, no re-partition.
  EXPECT_EQ(system.counters().repartitions, 0u);
}

TEST(TriggersTest, SkewedInsertsFireVarianceDrift) {
  auto ds = GenerateUniform(10000, 1, 33);
  JanusAqp system(TriggerOptions());
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  // Blast high-variance values into a narrow key range: the touched leaf's
  // max variance explodes past beta.
  Rng rng(2);
  for (int i = 0; i < 8000; ++i) {
    const double v = rng.Bernoulli(0.5) ? 0.0 : 5000.0;  // huge spread
    system.Insert(SkewTuple(200000 + static_cast<uint64_t>(i),
                            0.95 + 0.05 * rng.NextDouble(), v));
  }
  EXPECT_GT(system.counters().trigger_fires, 0u);
  EXPECT_GT(system.counters().repartitions, 0u);
}

TEST(TriggersTest, RepartitionReducesErrorUnderSkew) {
  auto ds = GenerateUniform(20000, 1, 35);
  // Two systems on identical streams: triggers on vs off (DPT baseline).
  JanusOptions with = TriggerOptions();
  JanusOptions without = TriggerOptions();
  without.enable_triggers = false;
  JanusAqp a(with), b(without);
  a.LoadInitial(ds.rows);
  b.LoadInitial(ds.rows);
  a.Initialize();
  b.Initialize();
  a.RunCatchupToGoal();
  b.RunCatchupToGoal();
  auto rows = ds.rows;
  Rng rng(3);
  for (int i = 0; i < 15000; ++i) {
    const Tuple t = SkewTuple(300000 + static_cast<uint64_t>(i),
                              0.98 + 0.02 * rng.NextDouble(),
                              rng.Bernoulli(0.5) ? 0.0 : 2000.0);
    a.Insert(t);
    b.Insert(t);
    rows.push_back(t);
  }
  a.RunCatchupToGoal();
  // Queries into the hot region.
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = 1;
  q.predicate_columns = {0};
  std::vector<double> err_a, err_b;
  Rng qrng(4);
  for (int i = 0; i < 100; ++i) {
    const double lo = 0.9 + 0.1 * qrng.NextDouble();
    const double hi = lo + 0.05;
    q.rect = Rectangle({lo}, {hi});
    const auto truth = ExactAnswer(rows, q);
    if (!truth.has_value() || *truth == 0) continue;
    err_a.push_back(std::abs(a.Query(q).estimate - *truth) /
                    std::abs(*truth));
    err_b.push_back(std::abs(b.Query(q).estimate - *truth) /
                    std::abs(*truth));
  }
  ASSERT_GT(err_a.size(), 20u);
  std::sort(err_a.begin(), err_a.end());
  std::sort(err_b.begin(), err_b.end());
  // With re-partitioning the skewed region gets finer buckets: median error
  // must not be worse than the frozen baseline.
  EXPECT_LE(err_a[err_a.size() / 2], err_b[err_b.size() / 2] * 1.5 + 0.01);
  EXPECT_GT(a.counters().repartitions + a.counters().partial_repartitions,
            0u);
}

TEST(TriggersTest, StarvationFiresAfterLeafDrain) {
  auto ds = GenerateUniform(10000, 1, 37);
  JanusOptions opts = TriggerOptions();
  opts.trigger_check_interval = 8;
  opts.starvation_factor = 1.0;
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  // Delete every tuple inside the first leaf's bucket: its stratum empties
  // and the starvation trigger must fire.
  const int first_leaf = system.dpt().tree().leaves.front();
  const double cutoff = system.dpt().LeafRect(first_leaf).hi(0);
  std::vector<uint64_t> victims;
  for (const Tuple& t : ds.rows) {
    if (t[0] <= cutoff) victims.push_back(t.id);
  }
  ASSERT_GT(victims.size(), 100u);
  for (uint64_t id : victims) system.Delete(id);
  EXPECT_GT(system.counters().trigger_fires, 0u);
}

TEST(TriggersTest, PartialRepartitionPath) {
  auto ds = GenerateUniform(20000, 1, 39);
  JanusOptions opts = TriggerOptions();
  opts.partial_repartition_psi = 2;
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  auto rows = ds.rows;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const Tuple t = SkewTuple(400000 + static_cast<uint64_t>(i),
                              0.97 + 0.03 * rng.NextDouble(),
                              rng.Bernoulli(0.5) ? 0.0 : 3000.0);
    system.Insert(t);
    rows.push_back(t);
  }
  EXPECT_GT(system.counters().partial_repartitions +
                system.counters().repartitions,
            0u);
  // Tree invariants survive grafting: every point still routes to a leaf
  // whose rectangle contains it, and count estimates stay consistent.
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({-1.0}, {2.0});
  const auto truth = ExactAnswer(rows, q);
  system.RunCatchupToGoal();
  EXPECT_NEAR(system.Query(q).estimate, *truth, *truth * 0.1);
}

TEST(TriggersTest, ManualCheckTriggersRespectsInterval) {
  auto ds = GenerateUniform(5000, 1, 41);
  JanusOptions opts = TriggerOptions();
  opts.trigger_check_interval = 1000000;  // effectively never
  JanusAqp system(opts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = 500000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    system.Insert(t);
  }
  EXPECT_EQ(system.counters().trigger_checks, 0u);
}

}  // namespace
}  // namespace janus
