#include "data/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace janus {
namespace {

class GeneratorsTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorsTest, ProducesRequestedRowsWithUniqueIds) {
  auto ds = GenerateDataset(GetParam(), 5000, 1);
  ASSERT_EQ(ds.rows.size(), 5000u);
  for (size_t i = 0; i < ds.rows.size(); ++i) {
    EXPECT_EQ(ds.rows[i].id, i);
  }
}

TEST_P(GeneratorsTest, DeterministicForSeed) {
  auto a = GenerateDataset(GetParam(), 1000, 7);
  auto b = GenerateDataset(GetParam(), 1000, 7);
  for (size_t i = 0; i < a.rows.size(); ++i) {
    for (int c = 0; c < a.schema.num_columns(); ++c) {
      ASSERT_DOUBLE_EQ(a.rows[i][c], b.rows[i][c]);
    }
  }
}

TEST_P(GeneratorsTest, SeedsDiffer) {
  auto a = GenerateDataset(GetParam(), 100, 1);
  auto b = GenerateDataset(GetParam(), 100, 2);
  int diff = 0;
  for (size_t i = 0; i < a.rows.size(); ++i) diff += (a.rows[i][2] != b.rows[i][2]);
  EXPECT_GT(diff, 50);
}

TEST_P(GeneratorsTest, DefaultTemplateColumnsValid) {
  auto ds = GenerateDataset(GetParam(), 10, 1);
  const DefaultTemplate t = DefaultTemplateFor(GetParam());
  EXPECT_GE(t.predicate_column, 0);
  EXPECT_LT(t.predicate_column, ds.schema.num_columns());
  EXPECT_GE(t.aggregate_column, 0);
  EXPECT_LT(t.aggregate_column, ds.schema.num_columns());
  EXPECT_NE(t.predicate_column, t.aggregate_column);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorsTest,
                         ::testing::Values(DatasetKind::kIntelWireless,
                                           DatasetKind::kNycTaxi,
                                           DatasetKind::kNasdaqEtf),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

TEST(GeneratorsTest, IntelTimeIsMonotone) {
  auto ds = GenerateDataset(DatasetKind::kIntelWireless, 2000, 3);
  for (size_t i = 1; i < ds.rows.size(); ++i) {
    EXPECT_GE(ds.rows[i][0], ds.rows[i - 1][0]);
  }
}

TEST(GeneratorsTest, IntelLightIsZeroInflatedNonNegative) {
  auto ds = GenerateDataset(DatasetKind::kIntelWireless, 20000, 3);
  int zeros = 0;
  for (const Tuple& t : ds.rows) {
    EXPECT_GE(t[1], 0.0);
    zeros += (t[1] == 0.0);
  }
  EXPECT_GT(zeros, 1000);  // night hours
  EXPECT_LT(zeros, 19000);
}

TEST(GeneratorsTest, TaxiPickupMonotoneAndDropoffAfterPickup) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, 5000, 3);
  for (size_t i = 0; i < ds.rows.size(); ++i) {
    EXPECT_GT(ds.rows[i][1], ds.rows[i][0]);  // dropoff > pickup
    if (i > 0) {
      EXPECT_GE(ds.rows[i][0], ds.rows[i - 1][0]);
    }
  }
}

TEST(GeneratorsTest, TaxiFieldsPlausible) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, 5000, 3);
  for (const Tuple& t : ds.rows) {
    EXPECT_GT(t[2], 0.0);                      // distance
    EXPECT_GE(t[3], 1.0);                      // passengers
    EXPECT_GE(t[4], 2.5);                      // fare >= flag drop
    EXPECT_GE(t[5], 0.0);                      // time of day
    EXPECT_LT(t[5], 86400.0);
  }
}

TEST(GeneratorsTest, EtfPricesConsistent) {
  auto ds = GenerateDataset(DatasetKind::kNasdaqEtf, 5000, 3);
  for (const Tuple& t : ds.rows) {
    const double open = t[1], close = t[2], high = t[3], low = t[4];
    EXPECT_GE(high, std::max(open, close));
    EXPECT_LE(low, std::min(open, close));
    EXPECT_GT(low, 0.0);
    EXPECT_GT(t[5], 0.0);  // volume
  }
}

TEST(GeneratorsTest, EtfVolumeHeavyTailed) {
  auto ds = GenerateDataset(DatasetKind::kNasdaqEtf, 50000, 3);
  std::vector<double> vols;
  for (const Tuple& t : ds.rows) vols.push_back(t[5]);
  std::sort(vols.begin(), vols.end());
  const double median = vols[vols.size() / 2];
  const double p99 = vols[static_cast<size_t>(vols.size() * 0.99)];
  EXPECT_GT(p99 / median, 10.0);  // heavy tail
}

TEST(GeneratorsTest, UniformDatasetShape) {
  auto ds = GenerateUniform(1000, 3, 1);
  ASSERT_EQ(ds.schema.num_columns(), 4);
  for (const Tuple& t : ds.rows) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(t[c], 0.0);
      EXPECT_LT(t[c], 1.0);
    }
  }
}

}  // namespace
}  // namespace janus
