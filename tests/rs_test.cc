#include "baselines/rs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"

namespace janus {
namespace {

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

class RsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(20000, 1, 8);
    RsOptions opts;
    opts.sample_rate = 0.02;
    system_ = std::make_unique<ReservoirBaseline>(opts);
    system_->LoadInitial(ds_.rows);
    system_->Initialize();
  }
  GeneratedDataset ds_;
  std::unique_ptr<ReservoirBaseline> system_;
};

TEST_F(RsTest, ReservoirSizedByRate) {
  EXPECT_EQ(system_->sample_size(), 800u);  // 2 * 0.02 * 20000
}

TEST_F(RsTest, SumCountAvgWithinSamplingError) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    const AggQuery q = MakeQuery(f, 0.2, 0.8);
    const auto truth = ExactAnswer(ds_.rows, q);
    ASSERT_TRUE(truth.has_value());
    const QueryResult r = system_->Query(q);
    EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.12)
        << AggFuncName(f);
  }
}

TEST_F(RsTest, CiIsReportedForSumCount) {
  const QueryResult r = system_->Query(MakeQuery(AggFunc::kSum, 0.1, 0.9));
  EXPECT_GT(r.ci_half_width, 0.0);
  EXPECT_GT(r.variance_sample, 0.0);
}

TEST_F(RsTest, InsertionsShiftEstimates) {
  auto rows = ds_.rows;
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    Tuple t;
    t.id = 600000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = 100.0;  // much larger values
    system_->Insert(t);
    rows.push_back(t);
  }
  const AggQuery q = MakeQuery(AggFunc::kSum, 0.0, 1.0);
  const auto truth = ExactAnswer(rows, q);
  const QueryResult r = system_->Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.15);
}

TEST_F(RsTest, DeletionsHandledWithResample) {
  for (uint64_t id = 0; id < 15000; ++id) system_->Delete(id);
  EXPECT_EQ(system_->table().size(), 5000u);
  std::vector<Tuple> remaining(ds_.rows.begin() + 15000, ds_.rows.end());
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.0, 1.0);
  const QueryResult r = system_->Query(q);
  EXPECT_NEAR(r.estimate, 5000.0, 400.0);
}

TEST_F(RsTest, MinMaxFromSample) {
  const AggQuery qmin = MakeQuery(AggFunc::kMin, 0.0, 1.0);
  const QueryResult r = system_->Query(qmin);
  const auto truth = ExactAnswer(ds_.rows, qmin);
  // Sample min is an upper bound of the true min.
  EXPECT_GE(r.estimate, *truth);
}

TEST_F(RsTest, DeleteMissingReturnsFalse) {
  EXPECT_FALSE(system_->Delete(987654321));
}

}  // namespace
}  // namespace janus
