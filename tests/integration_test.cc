// End-to-end scenarios exercising the full JanusAQP pipeline against the
// synthetic paper datasets: initialize from historical data, stream mixed
// insertions/deletions, re-optimize, and compare against exact ground truth
// and the RS baseline (the headline claims of Sec. 6.2 at unit-test scale).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/rs.h"
#include "core/janus.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/workload.h"
#include "util/stats.h"

namespace janus {
namespace {

struct EvalResult {
  double median_rel_error;
  size_t evaluated;
};

template <typename System>
EvalResult Evaluate(const System& system, const std::vector<Tuple>& rows,
                    const std::vector<AggQuery>& queries) {
  auto truths = ExactAnswers(rows, queries);
  std::vector<double> errors;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!truths[i].has_value() || *truths[i] == 0) continue;
    const QueryResult r = system.Query(queries[i]);
    errors.push_back(std::abs(r.estimate - *truths[i]) /
                     std::abs(*truths[i]));
  }
  return {Median(errors), errors.size()};
}

class IntegrationTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(IntegrationTest, ProgressiveIngestBeatsReservoirBaseline) {
  const DatasetKind kind = GetParam();
  auto ds = GenerateDataset(kind, 40000, 99);
  const DefaultTemplate tmpl = DefaultTemplateFor(kind);

  JanusOptions jopts;
  jopts.spec.agg_column = tmpl.aggregate_column;
  jopts.spec.predicate_columns = {tmpl.predicate_column};
  jopts.num_leaves = 64;
  jopts.sample_rate = 0.01;
  jopts.catchup_rate = 0.10;
  jopts.enable_triggers = false;
  JanusAqp janus_sys(jopts);

  RsOptions ropts;
  ropts.sample_rate = 0.01;
  ReservoirBaseline rs(ropts);

  // 10% historical, then stream to 60%.
  const size_t initial = ds.rows.size() / 10;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(initial));
  janus_sys.LoadInitial(historical);
  rs.LoadInitial(historical);
  janus_sys.Initialize();
  rs.Initialize();
  janus_sys.RunCatchupToGoal();

  const size_t limit = ds.rows.size() * 6 / 10;
  for (size_t i = initial; i < limit; ++i) {
    janus_sys.Insert(ds.rows[i]);
    rs.Insert(ds.rows[i]);
  }
  // Periodic re-initialization, like the Table-2 protocol.
  janus_sys.Reinitialize();
  janus_sys.RunCatchupToGoal();

  std::vector<Tuple> live(ds.rows.begin(),
                          ds.rows.begin() + static_cast<long>(limit));
  WorkloadGenerator gen(live, {tmpl.predicate_column}, tmpl.aggregate_column);
  WorkloadOptions wopts;
  wopts.num_queries = 200;
  // Queries below the sampling resolution are uninformative for every
  // method at unit-test scale (see Sec. 6.7 on near-empty ground truths).
  wopts.min_count = live.size() / 500;
  auto queries = gen.Generate(live, wopts);

  const EvalResult je = Evaluate(janus_sys, live, queries);
  const EvalResult re = Evaluate(rs, live, queries);
  ASSERT_GT(je.evaluated, 100u);
  // Headline claim (Sec. 6.2 / Table 2): JanusAQP beats plain reservoir
  // sampling; we require at least parity at unit-test scale.
  EXPECT_LT(je.median_rel_error, re.median_rel_error * 1.1 + 0.002)
      << "Janus " << je.median_rel_error << " vs RS " << re.median_rel_error;
  // Absolute sanity bound; the heavy-tailed ETF volume predicate is the
  // hardest case at this (40k-row, 1%-sample) scale.
  EXPECT_LT(je.median_rel_error, 0.3);
}

TEST_P(IntegrationTest, MixedInsertDeleteStreamStaysAccurate) {
  const DatasetKind kind = GetParam();
  auto ds = GenerateDataset(kind, 30000, 101);
  const DefaultTemplate tmpl = DefaultTemplateFor(kind);

  JanusOptions jopts;
  jopts.spec.agg_column = tmpl.aggregate_column;
  jopts.spec.predicate_columns = {tmpl.predicate_column};
  jopts.num_leaves = 64;
  jopts.sample_rate = 0.02;
  jopts.enable_triggers = false;
  JanusAqp system(jopts);

  const size_t half = ds.rows.size() / 2;
  std::vector<Tuple> historical(ds.rows.begin(),
                                ds.rows.begin() + static_cast<long>(half));
  system.LoadInitial(historical);
  system.Initialize();
  system.RunCatchupToGoal();

  // Stream the rest with 10% interleaved deletions of random old tuples.
  std::vector<Tuple> live = historical;
  Rng rng(7);
  for (size_t i = half; i < ds.rows.size(); ++i) {
    system.Insert(ds.rows[i]);
    live.push_back(ds.rows[i]);
    if (rng.Bernoulli(0.1) && !live.empty()) {
      const size_t victim = rng.NextUint64(live.size());
      if (system.Delete(live[victim].id)) {
        live[victim] = live.back();
        live.pop_back();
      }
    }
  }

  WorkloadGenerator gen(live, {tmpl.predicate_column}, tmpl.aggregate_column);
  WorkloadOptions wopts;
  wopts.num_queries = 150;
  wopts.min_count = 20;
  auto queries = gen.Generate(live, wopts);
  const EvalResult e = Evaluate(system, live, queries);
  ASSERT_GT(e.evaluated, 80u);
  EXPECT_LT(e.median_rel_error, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         ::testing::Values(DatasetKind::kIntelWireless,
                                           DatasetKind::kNycTaxi,
                                           DatasetKind::kNasdaqEtf),
                         [](const auto& info) {
                           return DatasetName(info.param);
                         });

TEST(IntegrationTest, MultiDimFiveDTemplate) {
  // The Sec. 6.7 scenario at test scale: 5 predicate attributes on ETF.
  auto ds = GenerateDataset(DatasetKind::kNasdaqEtf, 30000, 103);
  JanusOptions jopts;
  jopts.spec.agg_column = 5;                       // volume
  jopts.spec.predicate_columns = {0, 1, 2, 3, 4};  // date + 4 prices
  jopts.num_leaves = 128;
  jopts.sample_rate = 0.03;
  jopts.enable_triggers = false;
  JanusAqp system(jopts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();

  WorkloadGenerator gen(ds.rows, {0, 1, 2, 3, 4}, 5);
  WorkloadOptions wopts;
  wopts.num_queries = 100;
  wopts.min_count = 100;
  auto queries = gen.Generate(ds.rows, wopts);
  ASSERT_GT(queries.size(), 50u);
  const EvalResult e = Evaluate(system, ds.rows, queries);
  EXPECT_LT(e.median_rel_error, 0.35);  // multi-dim queries are harder
}

TEST(IntegrationTest, CountQueriesAreRobustAcrossFunctions) {
  auto ds = GenerateDataset(DatasetKind::kNycTaxi, 20000, 105);
  JanusOptions jopts;
  jopts.spec.agg_column = 2;
  jopts.spec.predicate_columns = {0};
  jopts.num_leaves = 64;
  jopts.sample_rate = 0.02;
  jopts.enable_triggers = false;
  JanusAqp system(jopts);
  system.LoadInitial(ds.rows);
  system.Initialize();
  system.RunCatchupToGoal();
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg}) {
    WorkloadGenerator gen(ds.rows, {0}, 2);
    WorkloadOptions wopts;
    wopts.num_queries = 100;
    wopts.func = f;
    wopts.min_count = 30;
    wopts.seed = 11 + static_cast<uint64_t>(f);
    auto queries = gen.Generate(ds.rows, wopts);
    const EvalResult e = Evaluate(system, ds.rows, queries);
    EXPECT_LT(e.median_rel_error, 0.1) << AggFuncName(f);
  }
}

}  // namespace
}  // namespace janus
