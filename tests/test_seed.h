#ifndef JANUS_TESTS_TEST_SEED_H_
#define JANUS_TESTS_TEST_SEED_H_

// The single seed every test fixture derives its randomness from, so a
// ctest run is reproducible end to end: the default makes every run
// identical, and JANUS_TEST_SEED=<n> reproduces (or explores) a specific
// seeding without recompiling. Fixtures needing several independent streams
// offset the base seed (TestSeed() + k) instead of inventing local
// constants, keeping "which seed produced this failure" a one-liner.

#include <cstdint>
#include <cstdlib>

namespace janus {

inline uint64_t TestSeed() {
  const char* env = std::getenv("JANUS_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

}  // namespace janus

#endif  // JANUS_TESTS_TEST_SEED_H_
