#include "stream/broker.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace janus {
namespace {

Tuple MakeTuple(uint64_t id) {
  Tuple t;
  t.id = id;
  t[0] = static_cast<double>(id);
  return t;
}

TEST(TopicTest, AppendAndPollInOrder) {
  Topic topic("t", /*poll_overhead_ns=*/0);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(topic.Append(MakeTuple(i)), i);
  }
  std::vector<Tuple> out;
  EXPECT_EQ(topic.Poll(0, 10, &out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].id, i);
}

TEST(TopicTest, PollFromOffset) {
  Topic topic("t", 0);
  for (uint64_t i = 0; i < 50; ++i) topic.Append(MakeTuple(i));
  std::vector<Tuple> out;
  EXPECT_EQ(topic.Poll(45, 10, &out), 5u);  // truncated at end
  EXPECT_EQ(out.front().id, 45u);
  out.clear();
  EXPECT_EQ(topic.Poll(50, 10, &out), 0u);  // at end offset
  EXPECT_EQ(topic.Poll(1000, 10, &out), 0u);
}

TEST(TopicTest, EndOffsetTracksAppends) {
  Topic topic("t", 0);
  EXPECT_EQ(topic.EndOffset(), 0u);
  topic.Append(MakeTuple(0));
  EXPECT_EQ(topic.EndOffset(), 1u);
  topic.AppendBatch({MakeTuple(1), MakeTuple(2)});
  EXPECT_EQ(topic.EndOffset(), 3u);
}

TEST(TopicTest, PollCountAccounting) {
  Topic topic("t", 0);
  topic.Append(MakeTuple(0));
  std::vector<Tuple> out;
  topic.Poll(0, 1, &out);
  topic.Poll(0, 1, &out);
  EXPECT_EQ(topic.poll_count(), 2u);
}

TEST(TopicTest, ConcurrentAppendsAllLand) {
  Topic topic("t", 0);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&topic, w] {
      for (uint64_t i = 0; i < 1000; ++i) {
        topic.Append(MakeTuple(static_cast<uint64_t>(w) * 1000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(topic.EndOffset(), 4000u);
}

// Regression (data race): set_poll_overhead_ns used to write a plain
// uint64_t that Poll() read outside the log mutex — retuning the knob while
// consumers poll was UB. The knob is atomic now; this test gives TSan the
// concurrent write/read pair to check.
TEST(TopicTest, ConcurrentOverheadRetuneWhilePolling) {
  Topic topic("t", 0);
  for (uint64_t i = 0; i < 64; ++i) topic.Append(MakeTuple(i));

  std::thread tuner([&topic] {
    for (int i = 0; i < 500; ++i) {
      topic.set_poll_overhead_ns(static_cast<uint64_t>(i % 3));
    }
  });
  std::thread poller([&topic] {
    std::vector<Tuple> out;
    for (int i = 0; i < 500; ++i) {
      out.clear();
      topic.Poll(static_cast<uint64_t>(i) % 64, 8, &out);
    }
  });
  tuner.join();
  poller.join();
  EXPECT_LE(topic.poll_overhead_ns(), 2u);
  EXPECT_EQ(topic.EndOffset(), 64u);
}

TEST(BrokerTest, BuiltInAndNamedTopics) {
  Broker broker;
  EXPECT_EQ(broker.insert_topic()->name(), "insert");
  EXPECT_EQ(broker.delete_topic()->name(), "delete");
  EXPECT_EQ(broker.query_topic()->name(), "query");
  Topic* a = broker.GetTopic("archive");
  Topic* b = broker.GetTopic("archive");
  EXPECT_EQ(a, b);  // same instance
  EXPECT_NE(a, broker.GetTopic("other"));
}

TEST(QueryTopicTest, AppendAndPollQueries) {
  QueryTopic topic("q");
  EXPECT_EQ(topic.EndOffset(), 0u);
  for (int i = 0; i < 20; ++i) {
    AggQuery q;
    q.func = AggFunc::kSum;
    q.agg_column = 1;
    q.predicate_columns = {0};
    q.rect = Rectangle({static_cast<double>(i)}, {static_cast<double>(i + 1)});
    EXPECT_EQ(topic.Append(q), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(topic.EndOffset(), 20u);
  std::vector<AggQuery> out;
  EXPECT_EQ(topic.Poll(0, 5, &out), 5u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[3].rect.lo(0), 3.0);
  out.clear();
  EXPECT_EQ(topic.Poll(15, 50, &out), 5u);  // truncated at end
  EXPECT_EQ(topic.Poll(20, 5, &out), 0u);   // drained
}

}  // namespace
}  // namespace janus
