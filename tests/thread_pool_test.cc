#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace janus {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // WaitIdle must cover the nested submission too (queue drains fully).
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ManyWaitIdleCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

}  // namespace
}  // namespace janus
