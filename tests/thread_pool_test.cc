#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace janus {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // WaitIdle must cover the nested submission too (queue drains fully).
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ManyWaitIdleCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The latch is cleared: the pool stays usable and the next WaitIdle is
  // clean.
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsLatched) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.WaitIdle();
    FAIL() << "WaitIdle did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, DestructionWithPendingWorkDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
    // No WaitIdle: the destructor must run every queued task.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorSwallowsLatchedException) {
  {
    ThreadPool pool(2);
    pool.Submit([] { throw std::runtime_error("dropped"); });
    // Destroying without WaitIdle must not terminate the process.
  }
  SUCCEED();
}

}  // namespace
}  // namespace janus
