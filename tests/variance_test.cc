#include "core/variance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace janus {
namespace {

TreeAgg MakeAgg(std::initializer_list<double> values) {
  TreeAgg agg;
  for (double v : values) {
    agg.count += 1;
    agg.sum += v;
    agg.sumsq += v * v;
  }
  return agg;
}

TEST(VarianceTest, SumQueryVarianceClosedForm) {
  // N_i = 100, m_i = 4, matching values {1, 2}.
  const TreeAgg q = MakeAgg({1, 2});
  // N^2/m^3 * (m * 5 - 9) = 10000 / 64 * 11.
  EXPECT_NEAR(SumQueryVariance(100, 4, q), 10000.0 / 64.0 * 11.0, 1e-9);
}

TEST(VarianceTest, SumVarianceZeroWhenNoSamples) {
  EXPECT_DOUBLE_EQ(SumQueryVariance(100, 0, MakeAgg({})), 0.0);
}

TEST(VarianceTest, SumVarianceZeroWhenAllMatchEqualConstant) {
  // All m_i samples match with identical values: spread m*Σa²-(Σa)² = 0.
  const TreeAgg q = MakeAgg({3, 3, 3, 3});
  EXPECT_NEAR(SumQueryVariance(50, 4, q), 0.0, 1e-9);
}

TEST(VarianceTest, CountQueryVarianceMatchesBinomialShape) {
  // COUNT variance is maximized at half coverage.
  const double half = CountQueryVariance(100, 10, 5);
  const double low = CountQueryVariance(100, 10, 1);
  const double full = CountQueryVariance(100, 10, 10);
  EXPECT_GT(half, low);
  EXPECT_NEAR(full, 0.0, 1e-9);  // all samples match -> no uncertainty
}

TEST(VarianceTest, AvgQueryVarianceClosedForm) {
  const TreeAgg q = MakeAgg({2, 4});
  // w=1: 1/(m*cnt^2) * (m*20 - 36) with m=8: (160-36)/(8*4)=3.875.
  EXPECT_NEAR(AvgQueryVariance(1.0, 8, q), 124.0 / 32.0, 1e-9);
}

TEST(VarianceTest, AvgVarianceScalesWithWeightSquared) {
  const TreeAgg q = MakeAgg({1, 5, 9});
  const double v1 = AvgQueryVariance(1.0, 10, q);
  const double v2 = AvgQueryVariance(2.0, 10, q);
  EXPECT_NEAR(v2, 4.0 * v1, 1e-9);
}

TEST(VarianceTest, CatchupVarianceShrinksWithMoreSamples) {
  // Same per-sample spread, more catch-up samples => smaller variance.
  TreeAgg small = MakeAgg({1, 3});
  TreeAgg large;
  for (int i = 0; i < 100; ++i) {
    const double v = (i % 2 == 0) ? 1 : 3;
    large.count += 1;
    large.sum += v;
    large.sumsq += v * v;
  }
  const double vs = SumCatchupVariance(1000, small.count, small);
  const double vl = SumCatchupVariance(1000, large.count, large);
  EXPECT_GT(vs, vl);
}

TEST(VarianceTest, SumCatchupMatchesSumQueryAlgebra) {
  const TreeAgg h = MakeAgg({1, 2, 3});
  EXPECT_DOUBLE_EQ(SumCatchupVariance(100, 3, h), SumQueryVariance(100, 3, h));
}

TEST(VarianceTest, LeafErrorUsesSamplingRateScale) {
  const TreeAgg q = MakeAgg({1, 2, 5});
  // N_i = m/alpha: quadrupling alpha divides N^2 by 16.
  const double a = SumLeafError(0.01, 3, q);
  const double b = SumLeafError(0.04, 3, q);
  EXPECT_NEAR(a / b, 16.0, 1e-6);
}

TEST(VarianceTest, AvgLeafErrorIndependentOfScale) {
  const TreeAgg q = MakeAgg({1, 2, 5});
  EXPECT_GT(AvgLeafError(10, q), 0.0);
  EXPECT_DOUBLE_EQ(AvgLeafError(10, MakeAgg({})), 0.0);
}

TEST(VarianceTest, NegativeSpreadClampedToZero) {
  // Construct q where floating-point cancellation could go negative.
  TreeAgg q;
  q.count = 2;
  q.sum = 2e8;
  q.sumsq = 2e16 - 1;  // m*sumsq - sum^2 = 4e16 - 2 - 4e16 < 0
  EXPECT_GE(SumQueryVariance(10, 2, q), 0.0);
}

}  // namespace
}  // namespace janus
