// Concurrency stress for re-optimization triggers (ISSUE 8 satellite): the
// race-prone surface is CheckTriggers after the update-mutex release — the
// trigger evaluation pins the tree shared, records or runs a re-partition,
// and in background mode hands the request to the engine's maintenance
// thread, which rebuilds off to the side while producers keep inserting and
// deleting and readers keep querying. Both reopt modes run for "janus"
// (concurrent updaters, one maintenance thread) and "sharded:janus" (one
// maintenance thread per shard).
//
// Runs under ThreadSanitizer in CI, both in the full-suite pass and in the
// pinned JANUS_SCAN_THREADS={2,8} matrix (see .github/workflows/ci.yml).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/engine.h"
#include "api/registry.h"
#include "data/generators.h"
#include "tests/test_seed.h"
#include "util/rng.h"

namespace janus {
namespace {

EngineConfig StressConfig(const std::string& engine, const std::string& mode) {
  EngineConfig cfg;
  cfg.engine = engine;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 16;
  cfg.sample_rate = 0.02;
  // Every evaluation reports starvation: maximal trigger/re-partition
  // pressure while updates and queries flow.
  cfg.enable_triggers = true;
  cfg.trigger_check_interval = 64;
  cfg.starvation_factor = 1e9;
  cfg.reopt_mode = mode;
  cfg.num_shards = 2;
  cfg.seed = TestSeed();
  return cfg;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

void RunStress(const std::string& engine_name, const std::string& mode) {
  SCOPED_TRACE(engine_name + " reopt_mode=" + mode);
  constexpr int kProducers = 3;
  constexpr uint64_t kInsertsPerProducer = 4000;
  constexpr uint64_t kDeletesPerProducer = 800;
  constexpr uint64_t kInitialRows = 6000;

  auto ds = GenerateUniform(kInitialRows, 1, 71);
  auto engine =
      EngineRegistry::Create(engine_name, StressConfig(engine_name, mode));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  std::atomic<bool> done{false};

  // Producers: disjoint id ranges; each deletes a prefix of its own
  // insertions, so every delete targets an id whose insert has returned.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      Rng rng(1000 + static_cast<uint64_t>(p));
      const uint64_t base =
          1000000 + static_cast<uint64_t>(p) * kInsertsPerProducer;
      for (uint64_t i = 0; i < kInsertsPerProducer; ++i) {
        Tuple t;
        t.id = base + i;
        t[0] = rng.NextDouble();
        t[1] = rng.Normal(10, 2);
        engine->Insert(t);
        if (i >= kInsertsPerProducer - kDeletesPerProducer) {
          const uint64_t victim =
              base + (i - (kInsertsPerProducer - kDeletesPerProducer));
          EXPECT_TRUE(engine->Delete(victim)) << victim;
        }
      }
    });
  }

  // Reader: queries and stats race the update storm and — in background
  // mode — the maintenance thread's pointer-swap adoptions.
  std::thread reader([&engine, &done] {
    const std::vector<AggQuery> batch = {
        MakeQuery(AggFunc::kCount, 0.0, 1.0),
        MakeQuery(AggFunc::kSum, 0.2, 0.8),
        MakeQuery(AggFunc::kAvg, 0.1, 0.9),
    };
    EngineStats prev;
    while (!done.load(std::memory_order_acquire)) {
      const auto results = engine->QueryBatch(batch, nullptr);
      ASSERT_EQ(results.size(), batch.size());
      for (const QueryResult& r : results) {
        EXPECT_TRUE(std::isfinite(r.estimate));
        EXPECT_GE(r.ci_half_width, 0.0);
      }
      const EngineStats s = engine->Stats();
      EXPECT_GE(s.inserts, prev.inserts);
      EXPECT_GE(s.deletes, prev.deletes);
      EXPECT_GE(s.trigger_fires, prev.trigger_fires);
      EXPECT_GE(s.repartitions, prev.repartitions);
      EXPECT_GE(s.background_reopts, prev.background_reopts);
      EXPECT_GE(s.delta_ops_replayed, prev.delta_ops_replayed);
      prev = s;
    }
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiesced accounting: every update landed exactly once regardless of how
  // many synopsis swaps happened mid-stream.
  const EngineStats s = engine->Stats();
  EXPECT_EQ(s.inserts, kProducers * kInsertsPerProducer);
  EXPECT_EQ(s.deletes, kProducers * kDeletesPerProducer);
  EXPECT_EQ(s.rows, kInitialRows + kProducers * (kInsertsPerProducer -
                                                 kDeletesPerProducer));
  EXPECT_GT(s.trigger_fires, 0u);
  if (mode == "blocking") {
    EXPECT_GT(s.repartitions, 0u);
  } else {
    // The maintenance thread had fires queued throughout; give the last
    // in-flight pipeline a moment to adopt, then require at least one
    // background adoption and no lost updates.
    for (int i = 0; i < 5000 && engine->Stats().background_reopts == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GT(engine->Stats().background_reopts, 0u);
  }

  engine->RunCatchupToGoal();
  const QueryResult r = engine->Query(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  const double live = static_cast<double>(engine->Stats().rows);
  EXPECT_NEAR(r.estimate, live, live * 0.3);
  engine->CheckInvariants();
}

TEST(ReoptStressTest, JanusBlocking) { RunStress("janus", "blocking"); }
TEST(ReoptStressTest, JanusBackground) { RunStress("janus", "background"); }
TEST(ReoptStressTest, ShardedJanusBlocking) {
  RunStress("sharded:janus", "blocking");
}
TEST(ReoptStressTest, ShardedJanusBackground) {
  RunStress("sharded:janus", "background");
}

}  // namespace
}  // namespace janus
