// Direct unit tests for the small synchronization/timing primitives in
// src/util/ that are otherwise only exercised indirectly through the scan
// and sharding layers: CompletionLatch and the Timer pair.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/completion_latch.h"
#include "util/timer.h"

namespace janus {
namespace {

TEST(CompletionLatchTest, ZeroCountWaitReturnsImmediately) {
  CompletionLatch latch(0);
  latch.Wait();  // must not hang
  SUCCEED();
}

TEST(CompletionLatchTest, WaitBlocksUntilAllArrive) {
  constexpr size_t kWorkers = 4;
  CompletionLatch latch(kWorkers);
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
      latch.Arrive();
    });
  }
  latch.Wait();
  // Every worker's pre-Arrive write must be visible after Wait returns.
  EXPECT_EQ(done.load(), static_cast<int>(kWorkers));
  for (std::thread& t : workers) t.join();
}

TEST(CompletionLatchTest, ArriveBeforeWaitDoesNotBlock) {
  CompletionLatch latch(2);
  latch.Arrive();
  latch.Arrive();
  latch.Wait();  // count already reached zero
  SUCCEED();
}

TEST(CompletionLatchTest, MultipleWaitersAllRelease) {
  CompletionLatch latch(1);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      latch.Wait();
      released.fetch_add(1);
    });
  }
  latch.Arrive();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(TimerTest, ElapsedIsMonotoneAndUnitsAgree) {
  Timer timer;
  const double s0 = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s1 = timer.ElapsedSeconds();
  EXPECT_GE(s0, 0.0);
  EXPECT_GT(s1, s0);
  EXPECT_GE(s1, 0.005);  // slept ~10ms; allow coarse clocks
  // Millis/micros are fixed scalings of the same reading.
  const double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, s1 * 1e3 * 0.5);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.005);
}

TEST(AccumulatingTimerTest, AccumulatesAcrossLaps) {
  AccumulatingTimer acc;
  EXPECT_EQ(acc.laps(), 0u);
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
  for (int lap = 0; lap < 3; ++lap) {
    acc.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    acc.Stop();
  }
  EXPECT_EQ(acc.laps(), 3u);
  EXPECT_GT(acc.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalMillis(), acc.TotalSeconds() * 1e3);
  acc.Reset();
  EXPECT_EQ(acc.laps(), 0u);
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace janus
