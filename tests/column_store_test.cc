// Equivalence of the SoA ColumnStore + vectorized scan kernels against the
// old row semantics: a mirror std::vector<Tuple> applies the same
// insert/delete stream (same swap-remove order), and every read path —
// materialization, sampling, counting, aggregation — must agree with a naive
// tuple loop to 1e-12.

#include "data/column_store.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/scan.h"
#include "data/schema.h"
#include "util/rng.h"

namespace janus {
namespace {

constexpr double kTol = 1e-12;

/// Row-oriented reference implementation with the exact pre-refactor
/// semantics of DynamicTable (swap-remove deletes, positional storage).
class RowMirror {
 public:
  void Insert(const Tuple& t) {
    index_[t.id] = live_.size();
    live_.push_back(t);
  }

  bool Delete(uint64_t id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    const size_t pos = it->second;
    const size_t last = live_.size() - 1;
    if (pos != last) {
      live_[pos] = live_[last];
      index_[live_[pos].id] = pos;
    }
    live_.pop_back();
    index_.erase(it);
    return true;
  }

  const std::vector<Tuple>& live() const { return live_; }

  std::vector<Tuple> SampleUniform(Rng* rng, size_t k) const {
    std::vector<size_t> idx = rng->SampleIndices(live_.size(), k);
    std::vector<Tuple> out;
    for (size_t i : idx) out.push_back(live_[i]);
    return out;
  }

 private:
  std::vector<Tuple> live_;
  std::unordered_map<uint64_t, size_t> index_;
};

Tuple RandomTuple(uint64_t id, Rng* rng, int width) {
  Tuple t;
  t.id = id;
  for (int c = 0; c < width; ++c) t[c] = rng->Uniform(-100, 100);
  return t;
}

std::optional<double> NaiveAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q) {
  double count = 0, sum = 0;
  double mn = std::numeric_limits<double>::max();
  double mx = std::numeric_limits<double>::lowest();
  std::vector<double> point(q.predicate_columns.size());
  for (const Tuple& t : rows) {
    ProjectTuple(t, q.predicate_columns, point.data());
    if (!q.rect.Contains(point.data())) continue;
    const double v = t[q.agg_column];
    count += 1;
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  if (count == 0) return std::nullopt;
  switch (q.func) {
    case AggFunc::kSum:
      return sum;
    case AggFunc::kCount:
      return count;
    case AggFunc::kAvg:
      return sum / count;
    case AggFunc::kMin:
      return mn;
    case AggFunc::kMax:
      return mx;
  }
  return std::nullopt;
}

void ExpectSameTuple(const Tuple& a, const Tuple& b, int width) {
  EXPECT_EQ(a.id, b.id);
  for (int c = 0; c < width; ++c) EXPECT_DOUBLE_EQ(a[c], b[c]);
}

TEST(ColumnStoreTest, RandomizedInsertDeleteEquivalence) {
  const int width = 3;
  ColumnStore store(Schema{{"a", "b", "c"}});
  RowMirror mirror;
  Rng rng(11);
  uint64_t next_id = 0;
  for (int step = 0; step < 30000; ++step) {
    if (store.size() < 50 || rng.NextDouble() < 0.6) {
      const Tuple t = RandomTuple(next_id++, &rng, width);
      store.Insert(t);
      mirror.Insert(t);
    } else {
      // Delete a random live id (drawn by position so both sides agree).
      const uint64_t victim =
          mirror.live()[rng.NextUint64(mirror.live().size())].id;
      EXPECT_TRUE(store.Delete(victim));
      EXPECT_TRUE(mirror.Delete(victim));
    }
    ASSERT_EQ(store.size(), mirror.live().size());
  }
  // Positional equivalence: swap-remove order matches the row semantics.
  for (size_t pos = 0; pos < store.size(); ++pos) {
    ExpectSameTuple(store.RowTuple(pos), mirror.live()[pos], width);
  }
  // Find agrees for live and dead ids.
  for (uint64_t id = 0; id < next_id; id += 7) {
    const auto found = store.Find(id);
    const auto it = std::find_if(mirror.live().begin(), mirror.live().end(),
                                 [&](const Tuple& t) { return t.id == id; });
    ASSERT_EQ(found.has_value(), it != mirror.live().end());
    if (found.has_value()) ExpectSameTuple(*found, *it, width);
  }
}

TEST(ColumnStoreTest, SampleUniformMatchesRowSemantics) {
  ColumnStore store(Schema{{"a", "b"}});
  RowMirror mirror;
  Rng fill(3);
  for (uint64_t i = 0; i < 5000; ++i) {
    const Tuple t = RandomTuple(i, &fill, 2);
    store.Insert(t);
    mirror.Insert(t);
  }
  // Same seed, same positional layout => identical draws.
  Rng a(17), b(17);
  const auto sa = store.SampleUniform(&a, 400);
  const auto sb = mirror.SampleUniform(&b, 400);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) ExpectSameTuple(sa[i], sb[i], 2);
}

TEST(ColumnStoreTest, ScanKernelsMatchNaiveRowLoop) {
  const int width = 4;
  ColumnStore store(Schema{{"a", "b", "c", "d"}});
  std::vector<Tuple> rows;
  Rng rng(29);
  for (uint64_t i = 0; i < 20000; ++i) {
    const Tuple t = RandomTuple(i, &rng, width);
    store.Insert(t);
    rows.push_back(t);
  }
  // Some deletions so positions differ from insertion order.
  for (uint64_t i = 0; i < 2000; ++i) {
    const uint64_t victim = rows[rng.NextUint64(rows.size())].id;
    if (!store.Delete(victim)) continue;
    rows.erase(std::find_if(rows.begin(), rows.end(),
                            [&](const Tuple& t) { return t.id == victim; }));
  }
  for (int trial = 0; trial < 60; ++trial) {
    const int dims = 1 + static_cast<int>(rng.NextUint64(3));
    AggQuery q;
    q.agg_column = static_cast<int>(rng.NextUint64(width));
    std::vector<double> lo, hi;
    std::set<int> cols;
    while (static_cast<int>(cols.size()) < dims) {
      cols.insert(static_cast<int>(rng.NextUint64(width)));
    }
    q.predicate_columns.assign(cols.begin(), cols.end());
    for (int d = 0; d < dims; ++d) {
      double a = rng.Uniform(-100, 100), b = rng.Uniform(-100, 100);
      if (a > b) std::swap(a, b);
      lo.push_back(a);
      hi.push_back(b);
    }
    q.rect = Rectangle(lo, hi);
    for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                      AggFunc::kMin, AggFunc::kMax}) {
      q.func = f;
      const auto naive = NaiveAnswer(rows, q);
      const auto kernel = scan::ExactAnswer(store, q);
      ASSERT_EQ(naive.has_value(), kernel.has_value());
      if (naive.has_value()) {
        const double scale = std::max(1.0, std::abs(*naive));
        EXPECT_NEAR(*naive, *kernel, kTol * scale);
      }
    }
    // CountInRect and the early-exit variant agree with the naive count.
    const auto naive_count =
        NaiveAnswer(rows, [&] {
          AggQuery c = q;
          c.func = AggFunc::kCount;
          return c;
        }());
    const size_t expected =
        naive_count.has_value() ? static_cast<size_t>(*naive_count) : 0;
    EXPECT_EQ(scan::CountInRect(store, q.predicate_columns, q.rect), expected);
    const size_t threshold = 1 + expected / 2;
    EXPECT_EQ(scan::CountInRectAtLeast(store, q.predicate_columns, q.rect,
                                       threshold),
              std::min(expected, threshold));
    // ForEachInRect visits exactly the matching positions.
    size_t visited = 0;
    scan::ForEachInRect(store, q.predicate_columns, q.rect, [&](size_t pos) {
      ++visited;
      std::vector<double> point(q.predicate_columns.size());
      for (size_t d = 0; d < q.predicate_columns.size(); ++d) {
        point[d] = store.value(pos, q.predicate_columns[d]);
      }
      EXPECT_TRUE(q.rect.Contains(point.data()));
    });
    EXPECT_EQ(visited, expected);
  }
}

TEST(ColumnStoreTest, BatchExactAnswersMatchSingleQueryKernels) {
  ColumnStore store(Schema{{"a", "b"}});
  std::vector<Tuple> rows;
  Rng rng(41);
  for (uint64_t i = 0; i < 5000; ++i) {
    const Tuple t = RandomTuple(i, &rng, 2);
    store.Insert(t);
    rows.push_back(t);
  }
  std::vector<AggQuery> queries;
  for (int i = 0; i < 20; ++i) {
    AggQuery q;
    q.func = i % 2 == 0 ? AggFunc::kSum : AggFunc::kAvg;
    q.agg_column = 1;
    q.predicate_columns = {0};
    double a = rng.Uniform(-100, 100), b = rng.Uniform(-100, 100);
    if (a > b) std::swap(a, b);
    q.rect = Rectangle({a}, {b});
    queries.push_back(q);
  }
  const auto batch = scan::ExactAnswers(store, queries);
  // The row-vector entry point must agree: same kernels, transposed input.
  const auto via_rows = scan::ExactAnswers(
      scan::ToColumnStore(rows, queries), queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto single = scan::ExactAnswer(store, queries[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value());
    ASSERT_EQ(batch[i].has_value(), via_rows[i].has_value());
    if (batch[i].has_value()) {
      EXPECT_DOUBLE_EQ(*batch[i], *single);
      const double scale = std::max(1.0, std::abs(*batch[i]));
      EXPECT_NEAR(*batch[i], *via_rows[i], kTol * scale);
    }
  }
}

TEST(ColumnStoreTest, BulkAppendDefersIndexUntilFirstLookup) {
  ColumnStore store(Schema{{"a", "b"}});
  std::vector<Tuple> rows;
  Rng rng(13);
  for (uint64_t i = 0; i < 1000; ++i) rows.push_back(RandomTuple(i, &rng, 2));
  store.BulkAppend(rows);
  ASSERT_EQ(store.size(), rows.size());
  // Scans work without an index...
  EXPECT_EQ(scan::CountInRect(store, {0}, Rectangle::Infinite(1)),
            rows.size());
  // ...and the first id lookup rebuilds it lazily.
  const auto found = store.Find(437);
  ASSERT_TRUE(found.has_value());
  ExpectSameTuple(*found, rows[437], 2);
  EXPECT_TRUE(store.Delete(437));
  EXPECT_FALSE(store.Find(437).has_value());
  EXPECT_EQ(store.size(), rows.size() - 1);
  // WithoutIndex copies only columns + ids; lookups still work (lazily).
  const ColumnStore snap = store.WithoutIndex();
  EXPECT_EQ(snap.size(), store.size());
  EXPECT_LE(snap.MemoryBytes(), store.MemoryBytes());
  EXPECT_TRUE(snap.Find(438).has_value());
}

TEST(ColumnStoreTest, MemoryBytesGrowsWithRowsAndShrinksWithSchema) {
  ColumnStore narrow(Schema{{"a", "b"}});
  ColumnStore wide(Schema{});
  EXPECT_EQ(wide.num_columns(), kMaxColumns);
  Rng rng(5);
  for (uint64_t i = 0; i < 10000; ++i) {
    const Tuple t = RandomTuple(i, &rng, 2);
    narrow.Insert(t);
    wide.Insert(t);
  }
  EXPECT_LT(narrow.MemoryBytes(), wide.MemoryBytes());
  const size_t before = narrow.MemoryBytes();
  for (uint64_t i = 10000; i < 20000; ++i) {
    narrow.Insert(RandomTuple(i, &rng, 2));
  }
  EXPECT_GT(narrow.MemoryBytes(), before);
}

}  // namespace
}  // namespace janus
