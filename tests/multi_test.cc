#include "core/multi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"

namespace janus {
namespace {

JanusOptions BaseOptions() {
  JanusOptions o;
  o.num_leaves = 32;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  o.enable_triggers = false;
  return o;
}

AggQuery MakeQuery(AggFunc f, std::vector<int> preds, int agg,
                   std::vector<double> lo, std::vector<double> hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = agg;
  q.predicate_columns = std::move(preds);
  q.rect = Rectangle(std::move(lo), std::move(hi));
  return q;
}

class MultiTemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(20000, 3, 66);  // cols 0,1,2 predicates; 3 agg
    system_ = std::make_unique<MultiTemplateJanus>(BaseOptions());
    system_->LoadInitial(ds_.rows);
  }
  GeneratedDataset ds_;
  std::unique_ptr<MultiTemplateJanus> system_;
};

TEST_F(MultiTemplateTest, TwoTemplatesShareOneReservoir) {
  SynopsisSpec a, b;
  a.agg_column = 3;
  a.predicate_columns = {0};
  b.agg_column = 3;
  b.predicate_columns = {1};
  EXPECT_EQ(system_->AddTemplate(a), 0);
  EXPECT_EQ(system_->AddTemplate(b), 1);
  EXPECT_EQ(system_->AddTemplate(a), 0);  // dedup
  system_->Initialize();
  system_->RunCatchupToGoal();
  ASSERT_EQ(system_->num_templates(), 2u);
  // Both trees mirror the same pooled sample.
  EXPECT_EQ(system_->dpt(0).sample_size(), system_->reservoir().size());
  EXPECT_EQ(system_->dpt(1).sample_size(), system_->reservoir().size());

  const AggQuery qa =
      MakeQuery(AggFunc::kSum, {0}, 3, {0.2}, {0.8});
  const AggQuery qb =
      MakeQuery(AggFunc::kSum, {1}, 3, {0.1}, {0.6});
  const auto ta = ExactAnswer(ds_.rows, qa);
  const auto tb = ExactAnswer(ds_.rows, qb);
  EXPECT_LT(std::abs(system_->Query(qa).estimate - *ta) / *ta, 0.05);
  EXPECT_LT(std::abs(system_->Query(qb).estimate - *tb) / *tb, 0.05);
}

TEST_F(MultiTemplateTest, UpdatesReachEveryTree) {
  SynopsisSpec a, b;
  a.agg_column = 3;
  a.predicate_columns = {0};
  b.agg_column = 3;
  b.predicate_columns = {1, 2};
  system_->AddTemplate(a);
  system_->AddTemplate(b);
  system_->Initialize();
  system_->RunCatchupToGoal();
  Rng rng(5);
  auto rows = ds_.rows;
  for (int i = 0; i < 5000; ++i) {
    Tuple t;
    t.id = 1000000 + static_cast<uint64_t>(i);
    for (int c = 0; c < 3; ++c) t[c] = rng.NextDouble();
    t[3] = rng.Normal(10, 2);
    system_->Insert(t);
    rows.push_back(t);
  }
  for (uint64_t id = 0; id < 2000; ++id) system_->Delete(id);
  rows.erase(rows.begin(), rows.begin() + 2000);

  const AggQuery qa = MakeQuery(AggFunc::kCount, {0}, 3, {0.0}, {1.0});
  const AggQuery qb =
      MakeQuery(AggFunc::kCount, {1, 2}, 3, {0.0, 0.0}, {1.0, 1.0});
  const double n = static_cast<double>(rows.size());
  EXPECT_NEAR(system_->Query(qa).estimate, n, n * 0.05);
  EXPECT_NEAR(system_->Query(qb).estimate, n, n * 0.05);
}

TEST_F(MultiTemplateTest, NewTemplateBuiltOnDemand) {
  SynopsisSpec a;
  a.agg_column = 3;
  a.predicate_columns = {0};
  system_->AddTemplate(a);
  system_->Initialize();
  system_->RunCatchupToGoal();
  ASSERT_EQ(system_->num_templates(), 1u);
  // A query over a predicate set nobody registered: the manager builds a
  // tree for it on the fly (Sec. 5.5).
  const AggQuery q = MakeQuery(AggFunc::kSum, {2}, 3, {0.3}, {0.9});
  const auto truth = ExactAnswer(ds_.rows, q);
  const QueryResult first = system_->Query(q);
  EXPECT_EQ(system_->num_templates(), 2u);
  EXPECT_LT(std::abs(first.estimate - *truth) / *truth, 0.15);
  // After its catch-up finishes, accuracy tightens.
  system_->RunCatchupToGoal();
  const QueryResult after = system_->Query(q);
  EXPECT_LT(std::abs(after.estimate - *truth) / *truth, 0.05);
  EXPECT_LE(after.ci_half_width, first.ci_half_width + 1e-9);
}

TEST_F(MultiTemplateTest, TemplateRoutingByPredicateColumns) {
  SynopsisSpec a, b;
  a.agg_column = 3;
  a.predicate_columns = {0};
  b.agg_column = 3;
  b.predicate_columns = {1};
  system_->AddTemplate(a);
  system_->AddTemplate(b);
  EXPECT_EQ(system_->TemplateFor({0}), 0);
  EXPECT_EQ(system_->TemplateFor({1}), 1);
  EXPECT_EQ(system_->TemplateFor({2}), -1);
  EXPECT_EQ(system_->TemplateFor({0, 1}), -1);
}

TEST_F(MultiTemplateTest, HeavyDeletionResampleKeepsTreesConsistent) {
  SynopsisSpec a;
  a.agg_column = 3;
  a.predicate_columns = {0};
  system_->AddTemplate(a);
  system_->Initialize();
  system_->RunCatchupToGoal();
  for (uint64_t id = 0; id < 15000; ++id) system_->Delete(id);
  EXPECT_EQ(system_->table().size(), 5000u);
  EXPECT_EQ(system_->dpt(0).sample_size(), system_->reservoir().size());
  // Every mirrored sample is still live.
  for (const auto& [id, t] : system_->dpt(0).sample_tuples()) {
    (void)t;
    EXPECT_TRUE(system_->table().Find(id).has_value());
  }
}

}  // namespace
}  // namespace janus
