#include "core/spt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"
#include "data/workload.h"

namespace janus {
namespace {

class SptAlgorithmTest : public ::testing::TestWithParam<PartitionAlgorithm> {
 protected:
  SptOptions BaseOptions() {
    SptOptions o;
    o.spec.agg_column = 1;
    o.spec.predicate_columns = {0};
    o.num_leaves = 32;
    o.sample_rate = 0.02;
    o.algorithm = GetParam();
    return o;
  }
};

TEST_P(SptAlgorithmTest, BuildsAndAnswersAccurately) {
  auto ds = GenerateUniform(20000, 1, 5);
  SptBuildResult built = BuildSpt(ds.rows, BaseOptions());
  ASSERT_NE(built.synopsis, nullptr);
  EXPECT_GT(built.total_seconds, 0);
  EXPECT_EQ(built.synopsis->mode(), StatMode::kExact);

  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions wopts;
  wopts.num_queries = 100;
  auto queries = gen.Generate(ds.rows, wopts);
  auto truths = ExactAnswers(ds.rows, queries);
  std::vector<double> errors;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!truths[i].has_value() || *truths[i] == 0) continue;
    const QueryResult r = built.synopsis->Query(queries[i]);
    errors.push_back(std::abs(r.estimate - *truths[i]) /
                     std::abs(*truths[i]));
  }
  ASSERT_GT(errors.size(), 50u);
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], 0.05);  // median rel error < 5%
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SptAlgorithmTest,
    ::testing::Values(PartitionAlgorithm::kBinarySearch,
                      PartitionAlgorithm::kDynamicProgram,
                      PartitionAlgorithm::kEqualDepth,
                      PartitionAlgorithm::kKdTree),
    [](const auto& info) {
      switch (info.param) {
        case PartitionAlgorithm::kBinarySearch:
          return "BS";
        case PartitionAlgorithm::kDynamicProgram:
          return "DP";
        case PartitionAlgorithm::kEqualDepth:
          return "EqualDepth";
        case PartitionAlgorithm::kKdTree:
          return "KdTree";
      }
      return "?";
    });

TEST(SptTest, PartitionTimeReportedSeparately) {
  auto ds = GenerateUniform(10000, 1, 7);
  SptOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 16;
  SptBuildResult built = BuildSpt(ds.rows, o);
  EXPECT_GE(built.total_seconds, built.partition_seconds);
}

TEST(SptTest, MultiDimUsesKdPartitioner) {
  auto ds = GenerateUniform(20000, 3, 9);
  SptOptions o;
  o.spec.agg_column = 3;
  o.spec.predicate_columns = {0, 1, 2};
  o.num_leaves = 64;
  o.sample_rate = 0.05;
  o.algorithm = PartitionAlgorithm::kBinarySearch;  // must reroute to kd
  SptBuildResult built = BuildSpt(ds.rows, o);
  ASSERT_NE(built.synopsis, nullptr);
  EXPECT_EQ(built.synopsis->tree().dims, 3);
  EXPECT_GT(built.synopsis->tree().num_leaves(), 8);

  WorkloadGenerator gen(ds.rows, {0, 1, 2}, 3);
  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.min_count = 50;
  auto queries = gen.Generate(ds.rows, wopts);
  auto truths = ExactAnswers(ds.rows, queries);
  std::vector<double> errors;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!truths[i].has_value() || *truths[i] == 0) continue;
    const QueryResult r = built.synopsis->Query(queries[i]);
    errors.push_back(std::abs(r.estimate - *truths[i]) /
                     std::abs(*truths[i]));
  }
  ASSERT_GT(errors.size(), 30u);
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], 0.2);
}

TEST(SptTest, OptimizePartitionStandalone) {
  auto ds = GenerateUniform(5000, 1, 11);
  SptOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 8;
  std::vector<Tuple> sample(ds.rows.begin(), ds.rows.begin() + 500);
  const PartitionResult pr = OptimizePartition(sample, o, ds.rows.size());
  ASSERT_TRUE(pr.ok);
  EXPECT_LE(pr.spec.num_leaves(), 8);
  EXPECT_GE(pr.spec.num_leaves(), 2);
}

}  // namespace
}  // namespace janus
