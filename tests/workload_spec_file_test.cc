// WorkloadSpec::FromFile — the strict line-based phased-spec parser.
//
// The contract: a well-formed file yields exactly the spec it describes; any
// deviation — unknown key, malformed value, unknown distribution or
// aggregate name, out-of-range fraction, missing phases, junk lines — fails
// with ApiException(kBadSpecFile) naming the file (and where possible the
// section/line), never silently keeping a default.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "api/error.h"
#include "workload/spec.h"

namespace janus {
namespace workload {
namespace {

std::string WriteSpec(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

ApiErrorCode ParseError(const std::string& path) {
  try {
    (void)WorkloadSpec::FromFile(path);
    return ApiErrorCode::kOk;
  } catch (const ApiException& e) {
    return e.code();
  }
}

TEST(WorkloadSpecFileTest, ParsesAFullSpec) {
  const std::string path = WriteSpec("full.spec", R"(
# A hotspot-read workload with a zipfian write phase.
name = custom-mix
load_rows = 5000
pred_columns = 2
load_dist = lognormal
load_lognormal_mu = 1.5
load_lognormal_sigma = 0.75

[phase warm]
ops = 1000
insert = 0.5
query = 0.5
key_dist = zipfian
key_zipf_s = 1.2
key_scramble = true

[phase read]
ops = 2000
query = 1.0
func = count
place_dist = hotspot
place_hot_fraction = 0.1
place_hot_probability = 0.9
min_width_frac = 0.01
max_width_frac = 0.2
)");
  const WorkloadSpec spec = WorkloadSpec::FromFile(path);
  EXPECT_EQ(spec.name, "custom-mix");
  EXPECT_EQ(spec.load_rows, 5000u);
  EXPECT_EQ(spec.num_predicate_columns, 2);
  EXPECT_EQ(spec.load_dist.kind, DistKind::kLogNormal);
  EXPECT_EQ(spec.load_dist.lognormal_mu, 1.5);
  EXPECT_EQ(spec.load_dist.lognormal_sigma, 0.75);

  ASSERT_EQ(spec.phases.size(), 2u);
  const PhaseSpec& warm = spec.phases[0];
  EXPECT_EQ(warm.name, "warm");
  EXPECT_EQ(warm.ops, 1000u);
  EXPECT_EQ(warm.mix.insert, 0.5);
  EXPECT_EQ(warm.mix.query, 0.5);
  EXPECT_EQ(warm.key_dist.kind, DistKind::kZipfian);
  EXPECT_EQ(warm.key_dist.zipf_s, 1.2);
  EXPECT_TRUE(warm.key_dist.scramble);

  const PhaseSpec& read = spec.phases[1];
  EXPECT_EQ(read.name, "read");
  EXPECT_EQ(read.ops, 2000u);
  EXPECT_EQ(read.mix.query, 1.0);
  EXPECT_EQ(read.func, AggFunc::kCount);
  EXPECT_EQ(read.rect.placement.kind, DistKind::kHotspot);
  EXPECT_EQ(read.rect.placement.hot_fraction, 0.1);
  EXPECT_EQ(read.rect.placement.hot_probability, 0.9);
  EXPECT_EQ(read.rect.min_width_frac, 0.01);
  EXPECT_EQ(read.rect.max_width_frac, 0.2);
}

TEST(WorkloadSpecFileTest, MissingFileIsTyped) {
  EXPECT_EQ(ParseError(::testing::TempDir() + "/does-not-exist.spec"),
            ApiErrorCode::kBadSpecFile);
}

TEST(WorkloadSpecFileTest, UnknownKeyFailsThePhase) {
  const std::string path = WriteSpec("unknown-key.spec", R"(
[phase run]
ops = 100
zpif_s = 1.1
)");
  EXPECT_EQ(ParseError(path), ApiErrorCode::kBadSpecFile);
  try {
    (void)WorkloadSpec::FromFile(path);
    FAIL();
  } catch (const ApiException& e) {
    // The message names the offending key and its section.
    EXPECT_NE(std::string(e.what()).find("zpif_s"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("phase run"), std::string::npos);
  }
}

TEST(WorkloadSpecFileTest, MalformedValuesAreTyped) {
  EXPECT_EQ(ParseError(WriteSpec("bad-num.spec",
                                 "[phase p]\nops = ten\n")),
            ApiErrorCode::kBadSpecFile);
  EXPECT_EQ(ParseError(WriteSpec("bad-frac.spec",
                                 "[phase p]\ninsert = 1.5\n")),
            ApiErrorCode::kBadSpecFile);
  EXPECT_EQ(ParseError(WriteSpec("bad-dist.spec",
                                 "[phase p]\nkey_dist = gaussianish\n")),
            ApiErrorCode::kBadSpecFile);
  EXPECT_EQ(ParseError(WriteSpec("bad-func.spec",
                                 "[phase p]\nfunc = median\n")),
            ApiErrorCode::kBadSpecFile);
  EXPECT_EQ(ParseError(WriteSpec("bad-width.spec",
                                 "[phase p]\nmin_width_frac = 0.5\n"
                                 "max_width_frac = 0.1\n")),
            ApiErrorCode::kBadSpecFile);
  EXPECT_EQ(ParseError(WriteSpec("bad-cols.spec",
                                 "pred_columns = 99\n[phase p]\nops = 1\n")),
            ApiErrorCode::kBadSpecFile);
}

TEST(WorkloadSpecFileTest, StructuralErrorsAreTyped) {
  // No phases at all.
  EXPECT_EQ(ParseError(WriteSpec("no-phase.spec", "name = empty\n")),
            ApiErrorCode::kBadSpecFile);
  // A line that is neither a section header nor key = value.
  EXPECT_EQ(ParseError(WriteSpec("junk-line.spec",
                                 "[phase p]\nthis is not a kv line\n")),
            ApiErrorCode::kBadSpecFile);
  // Unterminated section header.
  EXPECT_EQ(ParseError(WriteSpec("bad-header.spec", "[phase p\nops = 1\n")),
            ApiErrorCode::kBadSpecFile);
  // A section that is not [phase NAME].
  EXPECT_EQ(ParseError(WriteSpec("bad-section.spec",
                                 "[stage p]\nops = 1\n")),
            ApiErrorCode::kBadSpecFile);
  // Empty key or value.
  EXPECT_EQ(ParseError(WriteSpec("empty-value.spec",
                                 "[phase p]\nops =\n")),
            ApiErrorCode::kBadSpecFile);
}

TEST(WorkloadSpecFileTest, CommentsAndWhitespaceAreIgnored) {
  const std::string path = WriteSpec("comments.spec", R"(
  # indented comment
name = tidy   # trailing comment

[phase only]   # section comment
   ops   =   42
)");
  const WorkloadSpec spec = WorkloadSpec::FromFile(path);
  EXPECT_EQ(spec.name, "tidy");
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_EQ(spec.phases[0].ops, 42u);
}

}  // namespace
}  // namespace workload
}  // namespace janus
