// Concurrency stress for the sharded engine: multi-threaded producers
// stream inserts and deletes into a ShardedEngine while a reader thread
// issues QueryBatch and Stats concurrently — the exact pattern the base
// AqpEngine contract forbids and sharded engines explicitly allow. Also the
// regression test that aggregated EngineStats counters never go backwards
// under concurrent maintenance (coherent per-shard quiesce-point snapshots).
//
// Run under ThreadSanitizer in CI (the tsan job builds this binary with
// -fsanitize=thread).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/workload.h"
#include "util/rng.h"

namespace janus {
namespace {

EngineConfig StressConfig(int shards) {
  EngineConfig cfg;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 16;
  cfg.sample_rate = 0.02;
  cfg.enable_triggers = true;  // exercise repartitions inside shard workers
  cfg.num_shards = shards;
  return cfg;
}

AggQuery MakeQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

TEST(ShardedStressTest, ConcurrentProducersAndReader) {
  constexpr int kProducers = 4;
  constexpr uint64_t kInsertsPerProducer = 8000;
  constexpr uint64_t kDeletesPerProducer = 1000;

  auto ds = GenerateUniform(10000, 1, 71);
  auto engine = EngineRegistry::Create("sharded:janus", StressConfig(4));
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->RunCatchupToGoal();

  std::atomic<bool> done{false};

  // Producers: disjoint id ranges, each inserting fresh tuples and deleting
  // a prefix of its own insertions (so every delete targets a live id).
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      Rng rng(1000 + static_cast<uint64_t>(p));
      const uint64_t base =
          1000000 + static_cast<uint64_t>(p) * kInsertsPerProducer;
      for (uint64_t i = 0; i < kInsertsPerProducer; ++i) {
        Tuple t;
        t.id = base + i;
        t[0] = rng.NextDouble();
        t[1] = rng.Normal(10, 2);
        engine->Insert(t);
        if (i >= kInsertsPerProducer - kDeletesPerProducer) {
          // Deletes are synchronous and quiesce the target shard, so the
          // earlier insert of this id is guaranteed applied.
          const uint64_t victim = base + (i - (kInsertsPerProducer -
                                               kDeletesPerProducer));
          EXPECT_TRUE(engine->Delete(victim)) << victim;
        }
      }
    });
  }

  // Reader: QueryBatch + Stats concurrently with the update storm; counters
  // must be finite, consistent, and monotone.
  std::thread reader([&engine, &done] {
    const std::vector<AggQuery> batch = {
        MakeQuery(AggFunc::kCount, 0.0, 1.0),
        MakeQuery(AggFunc::kSum, 0.2, 0.8),
        MakeQuery(AggFunc::kAvg, 0.1, 0.9),
    };
    EngineStats prev;
    size_t rounds = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto results = engine->QueryBatch(batch, nullptr);
      ASSERT_EQ(results.size(), batch.size());
      for (const QueryResult& r : results) {
        EXPECT_TRUE(std::isfinite(r.estimate));
        EXPECT_GE(r.ci_half_width, 0.0);
      }
      const EngineStats s = engine->Stats();
      // Regression: aggregated counters never go backwards (per-shard
      // snapshots are taken under each shard's quiesce point, then summed).
      EXPECT_GE(s.inserts, prev.inserts);
      EXPECT_GE(s.deletes, prev.deletes);
      EXPECT_GE(s.trigger_checks, prev.trigger_checks);
      EXPECT_GE(s.trigger_fires, prev.trigger_fires);
      EXPECT_GE(s.repartitions, prev.repartitions);
      EXPECT_GE(s.reservoir_resamples, prev.reservoir_resamples);
      // Stats quiesce: rows always equals inserts minus deletes so far,
      // plus the initial load.
      EXPECT_EQ(s.rows, 10000 + s.inserts - s.deletes);
      prev = s;
      ++rounds;
    }
    EXPECT_GT(rounds, 0u);
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Final quiesced snapshot: every update accounted for.
  const EngineStats s = engine->Stats();
  EXPECT_EQ(s.inserts, kProducers * kInsertsPerProducer);
  EXPECT_EQ(s.deletes, kProducers * kDeletesPerProducer);
  EXPECT_EQ(s.rows, 10000 + kProducers * (kInsertsPerProducer -
                                          kDeletesPerProducer));

  // And the synopsis converged to the stream: COUNT over the full domain
  // tracks the live row count.
  const QueryResult r = engine->Query(MakeQuery(AggFunc::kCount, 0.0, 1.0));
  const double live = static_cast<double>(s.rows);
  EXPECT_NEAR(r.estimate, live, live * 0.25);
}

TEST(ShardedStressTest, StatsMonotoneAcrossEveryShardedBackend) {
  // Cheaper spot-check that the quiesce-point snapshot holds for every
  // composition, not just janus: one producer, one stats poller.
  for (const std::string& name : EngineRegistry::Global().Names()) {
    if (name.rfind("sharded:", 0) != 0) continue;
    auto ds = GenerateUniform(2000, 1, 13);
    auto engine = EngineRegistry::Create(name, StressConfig(2));
    engine->LoadInitial(ds.rows);
    engine->Initialize();

    std::atomic<bool> done{false};
    std::thread producer([&engine, &done] {
      Rng rng(5);
      for (uint64_t i = 0; i < 4000; ++i) {
        Tuple t;
        t.id = 500000 + i;
        t[0] = rng.NextDouble();
        t[1] = rng.Normal(10, 2);
        engine->Insert(t);
      }
      done.store(true, std::memory_order_release);
    });

    uint64_t prev_inserts = 0;
    size_t prev_rows = 0;
    while (!done.load(std::memory_order_acquire)) {
      const EngineStats s = engine->Stats();
      EXPECT_GE(s.inserts, prev_inserts) << name;
      EXPECT_GE(s.rows, prev_rows) << name;  // insert-only stream
      prev_inserts = s.inserts;
      prev_rows = s.rows;
    }
    producer.join();
    EXPECT_EQ(engine->Stats().rows, 6000u) << name;
  }
}

}  // namespace
}  // namespace janus
