// End-to-end contract of the networked serving tier (net/server.h).
//
// What's under test, in order:
//  - Round-trip identity: for EVERY registered engine, a query answered over
//    the wire is bit-identical to the same query answered in-process — the
//    serving tier adds transport, not approximation.
//  - Batching equivalence: results with a coalescing window are identical to
//    window=0, under concurrent clients.
//  - Hostile bytes: corrupt headers, bad checksums, truncated frames and
//    unknown message types all produce *typed* error replies (or a clean
//    close), never a crash — and the server keeps serving other connections.
//  - Admission control: a greedy tenant exhausts its own token bucket and
//    collects typed kRejectedRateLimit results; a compliant tenant paced
//    under its rate is never starved. Overloaded connections beyond
//    max_clients get a typed kRejectedOverloaded reply, not a silent RST.
//  - Updates through the server mutate the shared engine in both synchronous
//    and broker-streamed modes.

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/engine.h"
#include "api/error.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/workload.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "stream/broker.h"
#include "tests/test_seed.h"

namespace janus {
namespace net {
namespace {

constexpr size_t kRows = 3000;

EngineConfig SmallConfig(const std::string& name) {
  EngineConfig cfg;
  cfg.engine = name;
  cfg.agg_column = 1;
  cfg.predicate_columns = {0};
  cfg.num_leaves = 16;
  cfg.num_shards = 2;
  cfg.scan_threads = 2;
  cfg.enable_triggers = false;
  cfg.seed = TestSeed();
  return cfg;
}

std::vector<AggQuery> SmallWorkload(const GeneratedDataset& ds, size_t n) {
  WorkloadGenerator gen(ds.rows, {0}, 1);
  WorkloadOptions opts;
  opts.num_queries = n;
  opts.seed = TestSeed() + 3;
  return gen.Generate(ds.rows, opts);
}

void ExpectBitIdentical(const QueryResult& a, const QueryResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.ok, b.ok) << context;
  EXPECT_EQ(a.estimate, b.estimate) << context;
  EXPECT_EQ(a.ci_half_width, b.ci_half_width) << context;
  EXPECT_EQ(a.variance_catchup, b.variance_catchup) << context;
  EXPECT_EQ(a.variance_sample, b.variance_sample) << context;
  EXPECT_EQ(a.covered_nodes, b.covered_nodes) << context;
  EXPECT_EQ(a.partial_leaves, b.partial_leaves) << context;
  EXPECT_EQ(a.exact, b.exact) << context;
  EXPECT_EQ(a.error_code, b.error_code) << context;
}

// ---------------------------------------------------------------------------
// Round-trip identity over the whole engine registry.
// ---------------------------------------------------------------------------

TEST(ServingTest, RoundTripIdentityForEveryRegisteredEngine) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed());
  const std::vector<AggQuery> workload = SmallWorkload(ds, 12);
  for (const std::string& name : EngineRegistry::Global().Names()) {
    auto engine = EngineRegistry::Create(name, SmallConfig(name));
    ASSERT_NE(engine, nullptr) << name;
    engine->LoadInitial(ds.rows);
    engine->Initialize();

    AqpServer server(engine.get(), ServerOptions{});
    server.Start();
    AqpClient client("127.0.0.1", server.port());
    client.Ping();
    for (size_t i = 0; i < workload.size(); ++i) {
      const QueryResult direct = engine->Query(workload[i]);
      const QueryResult wire = client.Query(workload[i]);
      ExpectBitIdentical(wire, direct,
                         name + " query " + std::to_string(i));
    }
    // Batch frames hit the same engine entry point: identical too.
    const std::vector<QueryResult> batched = client.QueryBatch(workload);
    ASSERT_EQ(batched.size(), workload.size()) << name;
    for (size_t i = 0; i < workload.size(); ++i) {
      ExpectBitIdentical(batched[i], engine->Query(workload[i]),
                         name + " batched query " + std::to_string(i));
    }
    server.Stop();
  }
}

TEST(ServingTest, BatchingWindowPreservesResultsUnderConcurrentClients) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 7);
  const std::vector<AggQuery> workload = SmallWorkload(ds, 24);
  auto engine =
      EngineRegistry::Create("sharded:janus", SmallConfig("sharded:janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  ServerOptions opts;
  opts.batch_window_us = 2000;
  opts.batch_max = 4;
  AqpServer server(engine.get(), opts);
  server.Start();

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      AqpClient client("127.0.0.1", server.port(),
                       static_cast<uint64_t>(c));
      for (const AggQuery& q : workload) {
        const QueryResult wire = client.Query(q);
        const QueryResult direct = engine->Query(q);
        if (std::memcmp(&wire.estimate, &direct.estimate, sizeof(double)) !=
                0 ||
            wire.ci_half_width != direct.ci_half_width || !wire.ok) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The coalescing path actually ran (some queries rode a shared batch
  // call; with 4 closed-loop clients at least the singleton batches count).
  const ServingStats stats = server.stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.batched_queries, 0u);
  EXPECT_EQ(stats.queries,
            static_cast<uint64_t>(kClients) * workload.size());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Hostile bytes: typed errors, no crashes, the server keeps serving.
// ---------------------------------------------------------------------------

class HostileFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(kRows, 1, TestSeed() + 11);
    engine_ = EngineRegistry::Create("janus", SmallConfig("janus"));
    engine_->LoadInitial(ds_.rows);
    engine_->Initialize();
    server_ = std::make_unique<AqpServer>(engine_.get(), ServerOptions{});
    server_->Start();
  }

  void TearDown() override { server_->Stop(); }

  /// The server must still answer a fresh well-formed client.
  void ExpectServerHealthy() {
    AqpClient client("127.0.0.1", server_->port());
    client.Ping();
    const QueryResult res = client.Query(SmallWorkload(ds_, 1)[0]);
    EXPECT_TRUE(res.ok);
  }

  GeneratedDataset ds_;
  std::unique_ptr<AqpEngine> engine_;
  std::unique_ptr<AqpServer> server_;
};

TEST_F(HostileFrameTest, GarbageHeaderGetsTypedErrorThenClose) {
  Socket raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  std::vector<uint8_t> junk(kFrameHeaderBytes, 0xAB);
  raw.SendAll(junk.data(), junk.size());

  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type, kErrorReply);
  persist::Reader r(payload.data(), payload.size());
  const ApiError err = ReadApiError(&r);
  EXPECT_EQ(err.code, ApiErrorCode::kMalformedFrame);
  // The byte stream cannot be resynced: the server closes after replying.
  EXPECT_FALSE(RecvFrame(&raw, &header, &payload));
  ExpectServerHealthy();
  EXPECT_GE(server_->stats().malformed_frames, 1u);
}

TEST_F(HostileFrameTest, CorruptChecksumGetsTypedErrorThenClose) {
  Socket raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  persist::Writer w;
  WriteAggQuery(SmallWorkload(ds_, 1)[0], &w);
  std::vector<uint8_t> frame = EncodeFrame(
      static_cast<uint8_t>(MsgType::kQuery), 0, 1, w.buffer());
  frame.back() ^= 0x40;  // flip a payload bit; the header checksum catches it
  raw.SendAll(frame.data(), frame.size());

  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type, kErrorReply);
  persist::Reader r(payload.data(), payload.size());
  EXPECT_EQ(ReadApiError(&r).code, ApiErrorCode::kMalformedFrame);
  ExpectServerHealthy();
}

TEST_F(HostileFrameTest, TruncatedFrameThenCloseDoesNotWedgeTheServer) {
  {
    Socket raw = Socket::ConnectTcp("127.0.0.1", server_->port());
    const std::vector<uint8_t> partial(10, 0x5A);
    raw.SendAll(partial.data(), partial.size());
    // Destructor closes mid-header; the server sees EOF mid-read.
  }
  ExpectServerHealthy();
}

TEST_F(HostileFrameTest, UnknownMessageTypeIsTypedAndConnectionSurvives) {
  Socket raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  // Valid framing, nonsense type: the request is identifiable, so the
  // server replies typed and keeps the connection open.
  SendFrame(&raw, /*type=*/0x42, /*tenant_id=*/0, /*request_id=*/9, {});
  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type, kErrorReply);
  EXPECT_EQ(header.request_id, 9u);
  persist::Reader r(payload.data(), payload.size());
  EXPECT_EQ(ReadApiError(&r).code, ApiErrorCode::kMalformedFrame);

  // Same connection, now a well-formed ping: it must still be served.
  SendFrame(&raw, static_cast<uint8_t>(MsgType::kPing), 0, 10, {});
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type,
            static_cast<uint8_t>(MsgType::kPing) | kReplyBit);
  EXPECT_EQ(header.request_id, 10u);
}

TEST_F(HostileFrameTest, GarbageQueryBodyIsTypedAndConnectionSurvives) {
  Socket raw = Socket::ConnectTcp("127.0.0.1", server_->port());
  // Correct frame envelope (checksum matches) around a body that is not a
  // valid AggQuery: the bounds-checked Reader rejects it in the handler.
  const std::vector<uint8_t> body = {0xDE, 0xAD, 0xBE, 0xEF};
  SendFrame(&raw, static_cast<uint8_t>(MsgType::kQuery), 0, 11, body);
  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type, kErrorReply);
  persist::Reader r(payload.data(), payload.size());
  EXPECT_EQ(ReadApiError(&r).code, ApiErrorCode::kMalformedFrame);

  SendFrame(&raw, static_cast<uint8_t>(MsgType::kPing), 0, 12, {});
  ASSERT_TRUE(RecvFrame(&raw, &header, &payload));
  EXPECT_EQ(header.type,
            static_cast<uint8_t>(MsgType::kPing) | kReplyBit);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(ServingTest, GreedyTenantCannotStarveCompliantOne) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 13);
  const AggQuery q = SmallWorkload(ds, 1)[0];
  auto engine = EngineRegistry::Create("janus", SmallConfig("janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  ServerOptions opts;
  opts.tenant_rate = 1000;  // queries/sec
  opts.tenant_burst = 10;
  AqpServer server(engine.get(), opts);
  server.Start();

  std::atomic<uint64_t> compliant_ok{0}, compliant_rejected{0};
  std::atomic<uint64_t> greedy_ok{0}, greedy_rejected{0};

  // The compliant tenant paces itself at ~200 queries/sec — a fifth of its
  // admitted rate — while two greedy tenants hammer without pacing. The
  // property: per-tenant buckets mean the greedy load never causes a single
  // compliant rejection.
  std::thread compliant([&] {
    AqpClient client("127.0.0.1", server.port(), /*tenant_id=*/1);
    for (int i = 0; i < 20; ++i) {
      const QueryResult res = client.Query(q);
      if (res.ok) {
        compliant_ok.fetch_add(1);
      } else {
        compliant_rejected.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::vector<std::thread> greedy;
  for (uint64_t tenant = 2; tenant <= 3; ++tenant) {
    greedy.emplace_back([&, tenant] {
      AqpClient client("127.0.0.1", server.port(), tenant);
      for (int i = 0; i < 400; ++i) {
        const QueryResult res = client.Query(q);
        if (res.ok) {
          greedy_ok.fetch_add(1);
        } else {
          EXPECT_EQ(res.error_code,
                    static_cast<uint32_t>(ApiErrorCode::kRejectedRateLimit));
          greedy_rejected.fetch_add(1);
        }
      }
    });
  }
  compliant.join();
  for (std::thread& t : greedy) t.join();

  EXPECT_EQ(compliant_rejected.load(), 0u)
      << "a compliant tenant was starved by greedy load";
  EXPECT_EQ(compliant_ok.load(), 20u);
  EXPECT_GT(greedy_rejected.load(), 0u)
      << "greedy tenants were never throttled — admission control inert";
  EXPECT_GT(greedy_ok.load(), 0u)
      << "rejections must be rate-shaping, not a blanket ban";
  EXPECT_EQ(server.stats().rejected_rate_limit, greedy_rejected.load());
  server.Stop();
}

TEST(ServingTest, RateLimitedBatchIsRejectedAtomically) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 17);
  const std::vector<AggQuery> workload = SmallWorkload(ds, 8);
  auto engine = EngineRegistry::Create("janus", SmallConfig("janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  ServerOptions opts;
  opts.tenant_rate = 0.001;  // effectively: the initial burst is all you get
  opts.tenant_burst = 4;
  AqpServer server(engine.get(), opts);
  server.Start();
  AqpClient client("127.0.0.1", server.port(), /*tenant_id=*/5);

  // A batch of 8 costs 8 tokens against a burst of 4: every query in it is
  // rejected as a unit (no partial admission), each with the typed code.
  const std::vector<QueryResult> results = client.QueryBatch(workload);
  ASSERT_EQ(results.size(), workload.size());
  for (const QueryResult& res : results) {
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error_code,
              static_cast<uint32_t>(ApiErrorCode::kRejectedRateLimit));
  }
  // A batch within the burst is admitted whole.
  const std::vector<AggQuery> small(workload.begin(), workload.begin() + 3);
  for (const QueryResult& res : client.QueryBatch(small)) {
    EXPECT_TRUE(res.ok);
  }
  server.Stop();
}

TEST(ServingTest, ConnectionsBeyondMaxClientsGetTypedOverloadReply) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 19);
  auto engine = EngineRegistry::Create("janus", SmallConfig("janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  ServerOptions opts;
  opts.max_clients = 1;
  AqpServer server(engine.get(), opts);
  server.Start();

  AqpClient first("127.0.0.1", server.port());
  first.Ping();  // the slot is held once the server accepted the connection

  // The second connection is rejected with a typed error frame — reading it
  // does not require sending anything first.
  Socket second = Socket::ConnectTcp("127.0.0.1", server.port());
  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&second, &header, &payload));
  EXPECT_EQ(header.type, kErrorReply);
  persist::Reader r(payload.data(), payload.size());
  EXPECT_EQ(ReadApiError(&r).code, ApiErrorCode::kRejectedOverloaded);
  EXPECT_GE(server.stats().rejected_overloaded, 1u);

  first.Ping();  // the admitted client is unaffected
  server.Stop();
}

// ---------------------------------------------------------------------------
// Updates through the server.
// ---------------------------------------------------------------------------

std::vector<Tuple> FreshRows(size_t n, uint64_t first_id) {
  std::vector<Tuple> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].id = first_id + i;
    rows[i][0] = 0.5;
    rows[i][1] = 10.0;
  }
  return rows;
}

TEST(ServingTest, SynchronousInsertDeleteMutateTheSharedEngine) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 23);
  auto engine = EngineRegistry::Create("janus", SmallConfig("janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  AqpServer server(engine.get(), ServerOptions{});
  server.Start();
  AqpClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.Insert(FreshRows(100, 900000)), 100u);
  EXPECT_EQ(client.Stats().engine.rows, kRows + 100);

  // 50 live ids plus 50 misses: the reply counts only applied deletes.
  std::vector<uint64_t> ids;
  for (uint64_t id = 900000; id < 900050; ++id) ids.push_back(id);
  for (uint64_t id = 77000000; id < 77000050; ++id) ids.push_back(id);
  EXPECT_EQ(client.Delete(ids), 50u);
  EXPECT_EQ(client.Stats().engine.rows, kRows + 50);
  server.Stop();
}

TEST(ServingTest, StreamedInsertsApplyThroughTheBrokerPump) {
  const GeneratedDataset ds = GenerateUniform(kRows, 1, TestSeed() + 29);
  auto engine = EngineRegistry::Create("janus", SmallConfig("janus"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  Broker broker;
  AqpServer server(engine.get(), ServerOptions{}, &broker);
  server.Start();
  {
    AqpClient client("127.0.0.1", server.port());
    // "Accepted" means enqueued; the pump applies in arrival order.
    EXPECT_EQ(client.Insert(FreshRows(200, 900000)), 200u);
    EXPECT_EQ(client.Delete({900000, 900001}), 2u);

    // The pump applies asynchronously; poll the engine stats over the wire
    // until the tail is absorbed (bounded by the deadline below).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (client.Stats().engine.rows != kRows + 198) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "pump never applied the streamed updates; rows="
          << client.Stats().engine.rows;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  // Stop() drains the topics: everything acknowledged is applied.
  server.Stop();
  EXPECT_EQ(engine->Stats().rows, kRows + 198);
}

// ---------------------------------------------------------------------------
// Config echo & option validation.
// ---------------------------------------------------------------------------

TEST(ServingTest, ConfigEchoListsEngineAndServingKeys) {
  const GeneratedDataset ds = GenerateUniform(256, 1, TestSeed() + 31);
  auto engine = EngineRegistry::Create("rs", SmallConfig("rs"));
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  AqpServer server(engine.get(), ServerOptions{});
  server.Start();
  AqpClient client("127.0.0.1", server.port());

  const ConfigKeyEcho echo = client.ConfigEcho();
  auto has = [&echo](const std::string& key) {
    for (const auto& [k, summary] : echo) {
      if (k == key) return !summary.empty();
    }
    return false;
  };
  for (const auto& info : EngineConfig::KnownKeys()) {
    EXPECT_TRUE(has(info.key)) << "engine key missing: " << info.key;
  }
  for (const auto& info : ServerOptions::KnownKeys()) {
    EXPECT_TRUE(has(info.key)) << "serving key missing: " << info.key;
  }
  server.Stop();
}

TEST(ServingTest, ServerOptionsFromArgsRejectsInvalidValues) {
  EXPECT_EQ(ServerOptions::FromArgs(ArgMap({"listen_port=0"})).listen_port,
            0);
  const ServerOptions parsed = ServerOptions::FromArgs(
      ArgMap({"batch_window_us=250", "batch_max=8", "tenant_rate=100",
              "tenant_burst=25", "max_inflight=64", "max_clients=32"}));
  EXPECT_EQ(parsed.batch_window_us, 250);
  EXPECT_EQ(parsed.batch_max, 8u);
  EXPECT_EQ(parsed.tenant_rate, 100.0);
  EXPECT_EQ(parsed.tenant_burst, 25.0);
  EXPECT_EQ(parsed.max_inflight, 64u);
  EXPECT_EQ(parsed.max_clients, 32u);

  auto code_of = [](const std::vector<std::string>& tokens) {
    try {
      (void)ServerOptions::FromArgs(ArgMap(tokens));
      return ApiErrorCode::kOk;
    } catch (const ApiException& e) {
      return e.code();
    }
  };
  EXPECT_EQ(code_of({"listen_port=70000"}), ApiErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of({"batch_max=0"}), ApiErrorCode::kInvalidArgument);
  EXPECT_EQ(code_of({"tenant_rate=-3"}), ApiErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace net
}  // namespace janus
