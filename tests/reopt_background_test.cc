// Background re-optimization equivalence (ISSUE 8 satellite): the three-stage
// Begin/Build/Finish pipeline with updates interleaved into the build window
// must produce exactly the state a *blocking* re-optimization at the Begin()
// snapshot would have produced followed by the same update stream — delta
// replay preserves live op order and the catch-up engine gets the same seed,
// archive snapshot and goal. Counts compare bit-identically; FP aggregates to
// 1e-12 relative. The interleaved streams deliberately include deletes heavy
// enough to force reservoir resamples mid-build (the kSampleReset delta op).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/config.h"
#include "api/engine.h"
#include "api/registry.h"
#include "core/janus.h"
#include "core/multi.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "tests/test_seed.h"
#include "util/rng.h"

namespace janus {
namespace {

/// Relative FP tolerance of the equivalence contract.
constexpr double kRelTol = 1e-12;

void ExpectClose(double a, double b, const std::string& what) {
  if (a == b) return;  // covers exact zeros and bit-identical paths
  const double denom = std::max({std::abs(a), std::abs(b), 1e-300});
  EXPECT_LE(std::abs(a - b) / denom, kRelTol) << what << ": " << a
                                              << " vs " << b;
}

/// Deterministic mixed update stream applied to N systems in lockstep, so
/// every instance sees the identical op sequence (and therefore identical
/// reservoir decisions and RNG draws).
template <typename System>
class LockstepStream {
 public:
  LockstepStream(uint64_t seed, uint64_t first_id, std::vector<uint64_t> live)
      : rng_(seed), next_id_(first_id), live_(std::move(live)) {}

  /// `delete_prob` in [0,1]; deletes pick a random live id.
  void Apply(std::vector<System*> systems, int ops, double delete_prob,
             int dims) {
    for (int i = 0; i < ops; ++i) {
      if (!live_.empty() && rng_.NextDouble() < delete_prob) {
        const size_t pick =
            static_cast<size_t>(rng_.Next() % live_.size());
        const uint64_t id = live_[pick];
        live_[pick] = live_.back();
        live_.pop_back();
        for (System* s : systems) ASSERT_TRUE(s->Delete(id));
        continue;
      }
      Tuple t;
      t.id = next_id_++;
      for (int d = 0; d < dims; ++d) t[d] = rng_.NextDouble();
      t[dims] = rng_.Normal(10, 3);
      live_.push_back(t.id);
      for (System* s : systems) s->Insert(t);
    }
  }

  const std::vector<uint64_t>& live() const { return live_; }

 private:
  Rng rng_;
  uint64_t next_id_;
  std::vector<uint64_t> live_;
};

// --- JanusAqp core equivalence ----------------------------------------------

JanusOptions JanusEquivOptions() {
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 16;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  // Triggers stay armed but silent: the check interval is larger than any
  // update count this test applies, so the only evaluation is the manual
  // CheckTriggers() loop that drives the *blocking* instance — and with this
  // starvation factor that evaluation always reports starvation, i.e. an
  // unconditional FullRepartition.
  o.enable_triggers = true;
  o.trigger_check_interval = 1u << 20;
  o.starvation_factor = 1e9;
  o.beta = 1e18;
  o.partial_repartition_psi = 0;
  // Small tail: the pre-drain and the exclusive tail replay both execute.
  o.reopt_delta_tail = 16;
  o.seed = TestSeed();
  return o;
}

AggQuery JanusQuery(AggFunc f, double lo, double hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

void ExpectSameAnswers(const JanusAqp& blocking, const JanusAqp& background) {
  Rng rng(TestSeed() + 77);
  const AggFunc funcs[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                           AggFunc::kMin, AggFunc::kMax};
  for (int round = 0; round < 25; ++round) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    for (AggFunc f : funcs) {
      const AggQuery q = JanusQuery(f, std::min(a, b), std::max(a, b));
      const QueryResult ra = blocking.Query(q);
      const QueryResult rb = background.Query(q);
      const std::string what =
          "round " + std::to_string(round) + " func " +
          std::to_string(static_cast<int>(f));
      if (f == AggFunc::kCount) {
        // Counts are integral sums over identical op sequences: bit-exact.
        EXPECT_EQ(ra.estimate, rb.estimate) << what;
      } else {
        ExpectClose(ra.estimate, rb.estimate, what + " estimate");
      }
      ExpectClose(ra.ci_half_width, rb.ci_half_width, what + " ci");
    }
  }
}

void ExpectSameTree(const JanusAqp& blocking, const JanusAqp& background) {
  const PartitionTreeSpec& ta = blocking.dpt().tree();
  const PartitionTreeSpec& tb = background.dpt().tree();
  ASSERT_EQ(ta.nodes.size(), tb.nodes.size());
  ASSERT_EQ(ta.leaves, tb.leaves);
  for (size_t i = 0; i < ta.nodes.size(); ++i) {
    EXPECT_EQ(ta.nodes[i].split_dim, tb.nodes[i].split_dim) << "node " << i;
    EXPECT_EQ(ta.nodes[i].split_val, tb.nodes[i].split_val) << "node " << i;
    EXPECT_EQ(ta.nodes[i].left, tb.nodes[i].left) << "node " << i;
    EXPECT_EQ(ta.nodes[i].right, tb.nodes[i].right) << "node " << i;
  }
}

TEST(ReoptBackgroundTest, PipelineMatchesBlockingRepartitionWithInterleaving) {
  auto ds = GenerateUniform(4000, 1, static_cast<int>(TestSeed() % 1000));
  JanusAqp blocking(JanusEquivOptions());
  // Same knobs, but trigger evaluations on the background instance must only
  // record requests (an inline rebuild there would break the lockstep).
  JanusOptions bg_opts = JanusEquivOptions();
  bg_opts.reopt_mode = ReoptMode::kBackground;
  JanusAqp background(bg_opts);
  for (JanusAqp* s : {&blocking, &background}) {
    s->LoadInitial(ds.rows);
    s->Initialize();
  }

  std::vector<uint64_t> live;
  for (const Tuple& t : ds.rows) live.push_back(t.id);
  LockstepStream<JanusAqp> stream(TestSeed() + 1, 1000000, std::move(live));

  // Phase 1: identical pre-pipeline history (total ops stay far below the
  // check interval, so no spontaneous trigger evaluation ever runs).
  stream.Apply({&blocking, &background}, 600, 0.3, 1);

  // Point P. Background: stage 1 under (single-threaded) update exclusion.
  // Blocking: drive CheckTriggers until the interval elapses and the starved
  // evaluation runs FullRepartition inline. Both draw exactly one RNG value
  // (the catch-up seed), so the streams stay aligned.
  ASSERT_TRUE(background.BeginBackgroundReopt());
  EXPECT_TRUE(background.BackgroundReoptActive());
  Tuple probe;
  probe.id = 999999999;
  probe[0] = 0.5;
  probe[1] = 0.0;
  bool fired = false;
  for (int i = 0; i < (1 << 21) && !fired; ++i) {
    fired = blocking.CheckTriggers(probe);
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(blocking.counters().repartitions, 1u);

  // Phase 2: updates land while the side tree builds — the blocking instance
  // applies them to its already-swapped tree, the background instance
  // double-applies them to the delta buffer. Heavy deletes force at least one
  // reservoir resample inside the capture window (kSampleReset coverage).
  // Pure deletes: insertions below capacity refill the reservoir
  // immediately, so only a delete-only run shrinks it to its lower bound.
  const uint64_t resamples_before = background.counters().reservoir_resamples;
  stream.Apply({&blocking, &background}, 3000, 1.0, 1);
  EXPECT_GT(background.counters().reservoir_resamples, resamples_before)
      << "stream did not force a mid-build reservoir resample";

  background.BuildBackgroundReopt();

  // Phase 3: more updates after the pre-drain; these form the delta tail
  // replayed inside the exclusive adoption step.
  stream.Apply({&blocking, &background}, 100, 0.3, 1);

  ASSERT_TRUE(background.FinishBackgroundReopt());
  EXPECT_FALSE(background.BackgroundReoptActive());
  EXPECT_EQ(background.counters().background_reopts, 1u);
  EXPECT_GT(background.counters().delta_ops_replayed, 0u);

  // Phase 4: the pipelines are over; both instances keep absorbing updates
  // and then drive catch-up to the same goal with the same seed.
  stream.Apply({&blocking, &background}, 200, 0.3, 1);
  blocking.RunCatchupToGoal();
  background.RunCatchupToGoal();

  ExpectSameTree(blocking, background);
  ExpectSameAnswers(blocking, background);
  blocking.CheckInvariants();
  background.CheckInvariants();
}

TEST(ReoptBackgroundTest, StaleSideTreeIsDiscardedNotAdopted) {
  auto ds = GenerateUniform(2000, 1, 21);
  JanusOptions o = JanusEquivOptions();
  o.enable_triggers = false;
  JanusAqp system(o);
  system.LoadInitial(ds.rows);
  system.Initialize();

  ASSERT_TRUE(system.BeginBackgroundReopt());
  system.BuildBackgroundReopt();
  // The synopsis is replaced by another path mid-pipeline: the side tree's
  // snapshot, delta stream and catch-up seed now describe a dead tree.
  system.Reinitialize();
  EXPECT_FALSE(system.FinishBackgroundReopt());
  EXPECT_EQ(system.counters().background_discards, 1u);
  EXPECT_EQ(system.counters().background_reopts, 0u);
  system.CheckInvariants();

  // The pipeline is reusable after a discard.
  ASSERT_TRUE(system.BeginBackgroundReopt());
  system.BuildBackgroundReopt();
  EXPECT_TRUE(system.FinishBackgroundReopt());
  EXPECT_EQ(system.counters().background_reopts, 1u);
  system.CheckInvariants();
}

// --- MultiTemplateJanus equivalence -----------------------------------------

JanusOptions MultiEquivOptions() {
  JanusOptions o;
  o.num_leaves = 16;
  o.sample_rate = 0.02;
  o.catchup_rate = 0.10;
  o.enable_triggers = false;
  o.reopt_delta_tail = 16;
  o.seed = TestSeed();
  return o;
}

AggQuery MultiQuery(AggFunc f, std::vector<int> preds, std::vector<double> lo,
                    std::vector<double> hi) {
  AggQuery q;
  q.func = f;
  q.agg_column = 2;
  q.predicate_columns = std::move(preds);
  q.rect = Rectangle(std::move(lo), std::move(hi));
  return q;
}

TEST(ReoptBackgroundTest, MultiPipelineMatchesBlockingRebuild) {
  auto ds = GenerateUniform(5000, 2, static_cast<int>(TestSeed() % 997));
  MultiTemplateJanus blocking(MultiEquivOptions());
  MultiTemplateJanus background(MultiEquivOptions());
  SynopsisSpec s0, s1;
  s0.agg_column = 2;
  s0.predicate_columns = {0};
  s1.agg_column = 2;
  s1.predicate_columns = {1};
  for (MultiTemplateJanus* s : {&blocking, &background}) {
    s->AddTemplate(s0);
    s->AddTemplate(s1);
    s->LoadInitial(ds.rows);
    s->Initialize();
  }

  std::vector<uint64_t> live;
  for (const Tuple& t : ds.rows) live.push_back(t.id);
  LockstepStream<MultiTemplateJanus> stream(TestSeed() + 2, 2000000,
                                            std::move(live));
  stream.Apply({&blocking, &background}, 400, 0.3, 2);

  // Point P: blocking instance rebuilds every template inline; background
  // instance opens the pipeline. Both draw one catch-up seed per template in
  // entry order, keeping the RNG streams aligned.
  blocking.Rebuild();
  ASSERT_TRUE(background.BeginBackgroundRebuild());
  EXPECT_TRUE(background.BackgroundRebuildActive());

  // Mid-build updates (heavy deletes: enough evictions to resample the
  // shared reservoir inside the window) plus an on-demand template discovered
  // by a query DURING the build. The discovered tree is built from the live
  // reservoir on both instances and must not be swapped at adoption.
  stream.Apply({&blocking, &background}, 3200, 1.0, 2);
  const AggQuery discover =
      MultiQuery(AggFunc::kSum, {0, 1}, {0.1, 0.1}, {0.9, 0.9});
  (void)blocking.Query(discover);
  (void)background.Query(discover);
  ASSERT_EQ(blocking.num_templates(), 3u);
  ASSERT_EQ(background.num_templates(), 3u);

  background.BuildBackgroundRebuild();
  stream.Apply({&blocking, &background}, 100, 0.3, 2);

  uint64_t replayed = 0;
  ASSERT_TRUE(background.FinishBackgroundRebuild(&replayed));
  EXPECT_GT(replayed, 0u);
  EXPECT_FALSE(background.BackgroundRebuildActive());

  stream.Apply({&blocking, &background}, 150, 0.3, 2);
  blocking.RunCatchupToGoal();
  background.RunCatchupToGoal();

  Rng rng(TestSeed() + 5);
  for (int round = 0; round < 20; ++round) {
    const double a = rng.NextDouble() * 0.5, b = 0.5 + rng.NextDouble() * 0.5;
    const std::vector<AggQuery> queries = {
        MultiQuery(AggFunc::kCount, {0}, {a}, {b}),
        MultiQuery(AggFunc::kSum, {0}, {a}, {b}),
        MultiQuery(AggFunc::kCount, {1}, {a}, {b}),
        MultiQuery(AggFunc::kAvg, {1}, {a}, {b}),
        MultiQuery(AggFunc::kSum, {0, 1}, {a, a}, {b, b}),
    };
    for (const AggQuery& q : queries) {
      const QueryResult ra = blocking.Query(q);
      const QueryResult rb = background.Query(q);
      const std::string what = "round " + std::to_string(round);
      if (q.func == AggFunc::kCount) {
        EXPECT_EQ(ra.estimate, rb.estimate) << what;
      } else {
        ExpectClose(ra.estimate, rb.estimate, what + " estimate");
      }
      ExpectClose(ra.ci_half_width, rb.ci_half_width, what + " ci");
    }
  }
}

// --- Engine-level plumbing ---------------------------------------------------

EngineConfig BackgroundEngineConfig() {
  EngineConfig c;
  c.engine = "janus";
  c.num_leaves = 16;
  c.sample_rate = 0.02;
  c.enable_triggers = true;
  c.trigger_check_interval = 16;
  c.starvation_factor = 1e9;  // every evaluation requests a re-optimization
  c.reopt_mode = "background";
  c.seed = TestSeed();
  return c;
}

/// Poll an engine stat until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitForStats(const AqpEngine& e, Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred(e.Stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(ReoptBackgroundTest, JanusEngineRunsRequestsOnMaintenanceThread) {
  auto ds = GenerateUniform(8000, 1, 31);
  auto engine = EngineRegistry::Create(BackgroundEngineConfig());
  engine->LoadInitial(ds.rows);
  engine->Initialize();

  auto rows = ds.rows;
  Rng rng(TestSeed() + 9);
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = 3000000 + static_cast<uint64_t>(i);
    t[0] = rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    engine->Insert(t);
    rows.push_back(t);
  }
  // Trigger fires were recorded throughout; the maintenance thread must have
  // adopted at least one side tree by now (or shortly).
  EXPECT_TRUE(WaitForStats(
      *engine, [](const EngineStats& s) { return s.background_reopts > 0; }))
      << "maintenance thread never adopted a background re-optimization";
  engine->RunCatchupToGoal();

  const AggQuery q = JanusQuery(AggFunc::kSum, 0.2, 0.8);
  const auto truth = ExactAnswer(rows, q);
  const QueryResult r = engine->Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.1);

  const EngineStats s = engine->Stats();
  EXPECT_GT(s.trigger_fires, 0u);
  EXPECT_GT(s.repartitions, 0u);
  engine->CheckInvariants();
}

TEST(ReoptBackgroundTest, MultiEngineReinitializeIsAsyncInBackgroundMode) {
  EngineConfig c = BackgroundEngineConfig();
  c.engine = "multi";
  c.enable_triggers = false;
  auto ds = GenerateUniform(6000, 1, 41);
  auto engine = EngineRegistry::Create(c);
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  engine->Reinitialize();  // background mode: kicks the maintenance thread
  EXPECT_TRUE(WaitForStats(
      *engine, [](const EngineStats& s) { return s.background_reopts > 0; }))
      << "multi maintenance thread never finished the background rebuild";
  engine->RunCatchupToGoal();
  const AggQuery q = JanusQuery(AggFunc::kSum, 0.2, 0.8);
  const auto truth = ExactAnswer(ds.rows, q);
  EXPECT_LT(std::abs(engine->Query(q).estimate - *truth) / *truth, 0.1);
  engine->CheckInvariants();
}

TEST(ReoptBackgroundTest, PartialRepartitionFallbackIsCounted) {
  // Deterministic thin-region setup: the tree goes stale while the data
  // distribution shifts into a cluster and the original uniform mass is
  // drained down to two tuples. The probed leaf's psi=1 region then holds at
  // most those two reservoir samples (< 4), so the partial re-partition MUST
  // degrade to a full rebuild — and count the fallback instead of hiding it.
  JanusOptions o;
  o.spec.agg_column = 1;
  o.spec.predicate_columns = {0};
  o.num_leaves = 32;
  o.sample_rate = 0.02;
  o.enable_triggers = true;
  o.trigger_check_interval = 1u << 20;  // no organic evaluations
  o.starvation_factor = 1e9;
  o.partial_repartition_psi = 1;
  o.seed = TestSeed();
  JanusAqp system(o);
  auto ds = GenerateUniform(4000, 1, static_cast<int>(TestSeed() % 991));
  system.LoadInitial(ds.rows);
  system.Initialize();
  Rng rng(TestSeed() + 13);
  for (int i = 0; i < 8000; ++i) {
    Tuple t;
    t.id = 5000000 + static_cast<uint64_t>(i);
    t[0] = 0.99 + 0.01 * rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    system.Insert(t);
  }
  auto sorted = ds.rows;
  std::sort(sorted.begin(), sorted.end(),
            [](const Tuple& a, const Tuple& b) { return a[0] < b[0]; });
  for (size_t i = 2; i < sorted.size(); ++i) {
    ASSERT_TRUE(system.Delete(sorted[i].id));
  }
  bool fired = false;
  for (int i = 0; i < (1 << 21) && !fired; ++i) {
    fired = system.CheckTriggers(sorted[0]);
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(system.counters().partial_repartition_fallbacks, 1u);
  EXPECT_EQ(system.counters().partial_repartitions, 0u);
  EXPECT_EQ(system.counters().repartitions, 1u);  // the degraded full rebuild
}

TEST(ReoptBackgroundTest, FallbackCounterSurfacesInEngineStats) {
  // Same distribution-shift shape driven end-to-end through the engine API
  // (fixed seeds: the scenario is reproducible, organic fires every 8
  // updates). The counter must flow JanusCounters -> EngineStats.
  EngineConfig c;
  c.engine = "janus";
  c.num_leaves = 32;
  c.sample_rate = 0.02;
  c.enable_triggers = true;
  c.trigger_check_interval = 8;
  c.starvation_factor = 1e9;
  c.partial_repartition_psi = 1;
  c.reopt_mode = "blocking";
  c.seed = 42;
  auto ds = GenerateUniform(4000, 1, 51);
  auto engine = EngineRegistry::Create(c);
  engine->LoadInitial(ds.rows);
  engine->Initialize();
  Rng rng(9);
  for (int i = 0; i < 8000; ++i) {
    Tuple t;
    t.id = 5000000 + static_cast<uint64_t>(i);
    t[0] = 0.99 + 0.01 * rng.NextDouble();
    t[1] = rng.Normal(10, 2);
    engine->Insert(t);
  }
  for (const Tuple& t : ds.rows) {
    if (t.id % 40 != 0) {
      ASSERT_TRUE(engine->Delete(t.id));
    }
  }
  const EngineStats s = engine->Stats();
  EXPECT_GT(s.trigger_fires, 0u);
  EXPECT_GT(s.partial_repartition_fallbacks, 0u)
      << "no fallback surfaced across " << s.trigger_fires << " fires";
}

}  // namespace
}  // namespace janus
