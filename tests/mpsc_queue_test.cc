// Unit tests for the bounded MPSC queue feeding the sharded engine's
// maintenance threads: FIFO delivery, backpressure at capacity, close
// semantics, and lossless delivery under concurrent producers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mpsc_queue.h"

namespace janus {
namespace {

TEST(BoundedMpscQueueTest, FifoWithinCapacity) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&out, 100), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedMpscQueueTest, PushBlocksAtCapacityUntilConsumed) {
  BoundedMpscQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);  // must block until the consumer drains one slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());

  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 1), 1u);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.PopBatch(&out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedMpscQueueTest, CloseDrainsRemainderThenSignalsZero) {
  BoundedMpscQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close

  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 1), 1u);
  EXPECT_EQ(q.PopBatch(&out, 8), 1u);
  EXPECT_EQ(q.PopBatch(&out, 8), 0u);  // closed and drained
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedMpscQueueTest, CloseWakesBlockedProducer) {
  BoundedMpscQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] { rejected = !q.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(BoundedMpscQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  BoundedMpscQueue<uint64_t> q(256);  // small: forces backpressure

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<uint64_t>(p) * kPerProducer + i));
      }
    });
  }

  uint64_t received = 0, sum = 0;
  std::thread consumer([&] {
    std::vector<uint64_t> batch;
    for (;;) {
      batch.clear();
      if (q.PopBatch(&batch, 128) == 0) return;
      received += batch.size();
      for (uint64_t v : batch) sum += v;
    }
  });

  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();

  const uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(received, total);
  EXPECT_EQ(sum, total * (total - 1) / 2);  // every value exactly once
}

}  // namespace
}  // namespace janus
