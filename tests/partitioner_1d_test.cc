#include "core/partitioner_1d.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace janus {
namespace {

std::unique_ptr<MaxVarianceIndex> MakeIndex(const std::vector<double>& keys,
                                            const std::vector<double>& vals,
                                            AggFunc focus) {
  MaxVarianceIndex::Options o;
  o.dims = 1;
  o.focus = focus;
  o.sampling_rate = 0.01;
  auto idx = std::make_unique<MaxVarianceIndex>(o);
  std::vector<KdPoint> pts;
  for (size_t i = 0; i < keys.size(); ++i) {
    KdPoint p;
    p.id = i;
    p.x[0] = keys[i];
    p.a = vals[i];
    pts.push_back(p);
  }
  idx->Build(pts);
  return idx;
}

std::unique_ptr<MaxVarianceIndex> RandomIndex(size_t n, AggFunc focus,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> keys, vals;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(rng.NextDouble());
    vals.push_back(rng.LogNormal(0, 1));
  }
  return MakeIndex(keys, vals, focus);
}

void CheckTreeInvariants(const PartitionTreeSpec& spec) {
  ASSERT_FALSE(spec.nodes.empty());
  std::set<int> leaf_set(spec.leaves.begin(), spec.leaves.end());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const PartitionNode& n = spec.nodes[i];
    if (n.IsLeaf()) {
      EXPECT_TRUE(leaf_set.contains(static_cast<int>(i)))
          << "leaf " << i << " missing from leaves list";
      continue;
    }
    const PartitionNode& l = spec.nodes[static_cast<size_t>(n.left)];
    const PartitionNode& r = spec.nodes[static_cast<size_t>(n.right)];
    // Children tile the parent on the split dimension.
    EXPECT_DOUBLE_EQ(l.rect.hi(n.split_dim), n.split_val);
    EXPECT_DOUBLE_EQ(r.rect.lo(n.split_dim), n.split_val);
    // Children are subsets of the parent.
    EXPECT_TRUE(n.rect.Covers(l.rect));
    EXPECT_TRUE(n.rect.Covers(r.rect));
    EXPECT_EQ(l.parent, static_cast<int>(i));
    EXPECT_EQ(r.parent, static_cast<int>(i));
  }
}

TEST(BuildBalanced1dTreeTest, SingleBucketIsRootLeaf) {
  const PartitionTreeSpec spec = BuildBalanced1dTree({});
  ASSERT_EQ(spec.nodes.size(), 1u);
  EXPECT_EQ(spec.num_leaves(), 1);
  EXPECT_TRUE(spec.nodes[0].IsLeaf());
}

TEST(BuildBalanced1dTreeTest, LeavesTileTheLine) {
  const PartitionTreeSpec spec = BuildBalanced1dTree({1.0, 2.0, 3.0});
  EXPECT_EQ(spec.num_leaves(), 4);
  CheckTreeInvariants(spec);
  // Every point maps to exactly one leaf and boundaries route right.
  for (double x : {-5.0, 0.99, 1.0, 1.5, 2.0, 2.5, 3.0, 100.0}) {
    const int leaf = spec.LeafFor(&x);
    EXPECT_TRUE(spec.nodes[static_cast<size_t>(leaf)].IsLeaf());
    EXPECT_GE(x, spec.nodes[static_cast<size_t>(leaf)].rect.lo(0));
    EXPECT_LE(x, spec.nodes[static_cast<size_t>(leaf)].rect.hi(0));
  }
  // Balanced: height is ceil(log2(4)) + 1 nodes on any path.
  EXPECT_EQ(spec.nodes.size(), 7u);
}

TEST(BuildBalanced1dTreeTest, LeafOrderIsLeftToRight) {
  const PartitionTreeSpec spec = BuildBalanced1dTree({1.0, 2.0, 3.0, 4.0});
  double prev = -std::numeric_limits<double>::infinity();
  for (int leaf : spec.leaves) {
    const Rectangle& r = spec.nodes[static_cast<size_t>(leaf)].rect;
    EXPECT_GE(r.lo(0), prev);
    prev = r.lo(0);
  }
}

class BsPartitionerTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(BsPartitionerTest, ProducesRequestedLeavesWithValidTree) {
  auto idx = RandomIndex(1024, GetParam(), 3);
  Partitioner1dOptions opts;
  opts.num_leaves = 16;
  opts.focus = GetParam();
  opts.data_size = 100000;
  const PartitionResult result = BuildPartition1D(*idx, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_LE(result.spec.num_leaves(), 16);
  EXPECT_GE(result.spec.num_leaves(), 2);
  CheckTreeInvariants(result.spec);
}

TEST_P(BsPartitionerTest, AchievedErrorNearOptimal) {
  // The BS partitioning's worst bucket error must be within the theoretical
  // factor (2*rho*sqrt(2) for SUM) of the best equal-depth alternative —
  // a cheap proxy lower bound for sanity.
  auto idx = RandomIndex(512, GetParam(), 5);
  Partitioner1dOptions opts;
  opts.num_leaves = 8;
  opts.focus = GetParam();
  opts.rho = 2.0;
  opts.data_size = 51200;
  const PartitionResult bs = BuildPartition1D(*idx, opts);
  const PartitionResult ed = BuildEqualDepth1D(*idx, 8);
  ASSERT_TRUE(bs.ok);
  ASSERT_TRUE(ed.ok);
  if (GetParam() == AggFunc::kCount) {
    // COUNT routes to equal depth: identical result.
    EXPECT_NEAR(bs.achieved_error, ed.achieved_error, 1e-9);
  } else {
    // BS should not be drastically worse than equal depth.
    EXPECT_LE(bs.achieved_error, ed.achieved_error * 4.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Funcs, BsPartitionerTest,
                         ::testing::Values(AggFunc::kSum, AggFunc::kCount,
                                           AggFunc::kAvg),
                         [](const auto& info) {
                           return AggFuncName(info.param);
                         });

TEST(BsPartitionerTest, MoreLeavesNeverHurts) {
  auto idx = RandomIndex(2048, AggFunc::kSum, 7);
  double prev = 1e300;
  for (int k : {4, 16, 64}) {
    Partitioner1dOptions opts;
    opts.num_leaves = k;
    opts.focus = AggFunc::kSum;
    opts.data_size = 204800;
    const PartitionResult r = BuildPartition1D(*idx, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_LE(r.achieved_error, prev * 1.05);
    prev = r.achieved_error;
  }
}

TEST(BsPartitionerTest, EmptyIndexYieldsTrivialTree) {
  MaxVarianceIndex::Options o;
  o.dims = 1;
  MaxVarianceIndex idx(o);
  Partitioner1dOptions opts;
  opts.num_leaves = 8;
  const PartitionResult r = BuildPartition1D(idx, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.num_leaves(), 1);
}

TEST(BsPartitionerTest, AllZeroValuesHandled) {
  auto idx = MakeIndex({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
                       {0, 0, 0, 0, 0, 0, 0, 0}, AggFunc::kSum);
  Partitioner1dOptions opts;
  opts.num_leaves = 4;
  opts.focus = AggFunc::kSum;
  opts.data_size = 800;
  const PartitionResult r = BuildPartition1D(*idx, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.achieved_error, 0.0, 1e-12);
}

TEST(BsPartitionerTest, DuplicateKeysDoNotBreakBoundaries) {
  std::vector<double> keys(64, 5.0);  // all identical keys
  std::vector<double> vals;
  Rng rng(9);
  for (int i = 0; i < 64; ++i) vals.push_back(rng.NextDouble());
  auto idx = MakeIndex(keys, vals, AggFunc::kSum);
  Partitioner1dOptions opts;
  opts.num_leaves = 8;
  opts.data_size = 6400;
  const PartitionResult r = BuildPartition1D(*idx, opts);
  ASSERT_TRUE(r.ok);
  CheckTreeInvariants(r.spec);
}

TEST(EqualDepthTest, BucketsHoldEqualSampleCounts) {
  auto idx = RandomIndex(1000, AggFunc::kCount, 11);
  const PartitionResult r = BuildEqualDepth1D(*idx, 10);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.spec.num_leaves(), 10);
  for (int leaf : r.spec.leaves) {
    const Rectangle& rect = r.spec.nodes[static_cast<size_t>(leaf)].rect;
    const TreeAgg agg = idx->kd().RangeAggregate(rect);
    EXPECT_NEAR(agg.count, 100.0, 2.0);
  }
}

TEST(EqualDepthTest, SkewedDataStillBalancedByCount) {
  Rng rng(13);
  std::vector<double> keys, vals;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.LogNormal(0, 2));  // heavily skewed keys
    vals.push_back(1.0);
  }
  auto idx = MakeIndex(keys, vals, AggFunc::kCount);
  const PartitionResult r = BuildEqualDepth1D(*idx, 8);
  for (int leaf : r.spec.leaves) {
    const TreeAgg agg = idx->kd().RangeAggregate(
        r.spec.nodes[static_cast<size_t>(leaf)].rect);
    EXPECT_NEAR(agg.count, 125.0, 5.0);
  }
}

}  // namespace
}  // namespace janus
