#include "core/catchup.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/partitioner_1d.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace janus {
namespace {

class CatchupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = GenerateUniform(20000, 1, 4);
    SynopsisSpec spec;
    spec.agg_column = 1;
    spec.predicate_columns = {0};
    DptOptions opts;
    opts.spec = spec;
    std::vector<double> boundaries;
    for (int b = 1; b < 16; ++b) boundaries.push_back(b / 16.0);
    dpt_ = std::make_unique<Dpt>(opts, BuildBalanced1dTree(boundaries));
    Rng rng(1);
    std::vector<size_t> idx = rng.SampleIndices(ds_.rows.size(), 400);
    std::vector<Tuple> sample;
    for (size_t i : idx) sample.push_back(ds_.rows[i]);
    dpt_->InitializeFromReservoir(sample, ds_.rows.size());
  }

  GeneratedDataset ds_;
  std::unique_ptr<Dpt> dpt_;
};

TEST_F(CatchupTest, StepsAccumulateTowardGoal) {
  CatchupEngine engine(dpt_.get(), ds_.rows, 1000, 2);
  EXPECT_EQ(engine.goal(), 1000u);
  EXPECT_FALSE(engine.Done());
  EXPECT_EQ(engine.Step(300), 300u);
  EXPECT_EQ(engine.processed(), 300u);
  EXPECT_EQ(engine.Step(900), 700u);  // clamped at the goal
  EXPECT_TRUE(engine.Done());
  EXPECT_EQ(engine.Step(100), 0u);
}

TEST_F(CatchupTest, RunToGoalFeedsDpt) {
  const double before = dpt_->catchup_count();
  CatchupEngine engine(dpt_.get(), ds_.rows, 2000, 3);
  engine.RunToGoal();
  EXPECT_DOUBLE_EQ(dpt_->catchup_count(), before + 2000);
  EXPECT_GT(engine.processing_seconds(), 0.0);
}

TEST_F(CatchupTest, EmptySnapshotIsDone) {
  CatchupEngine engine(dpt_.get(), std::vector<Tuple>{}, 1000, 4);
  EXPECT_TRUE(engine.Done());
  EXPECT_EQ(engine.Step(10), 0u);
}

TEST_F(CatchupTest, EstimatesConvergeWithCatchup) {
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.1}, {0.8});
  const auto truth = ExactAnswer(ds_.rows, q);
  ASSERT_TRUE(truth.has_value());

  CatchupEngine engine(dpt_.get(), ds_.rows, 8000, 5);
  double prev_ci = dpt_->Query(q).ci_half_width;
  // CI must shrink monotonically (in expectation) as catch-up progresses.
  int shrank = 0, rounds = 0;
  while (!engine.Done()) {
    engine.Step(2000);
    const QueryResult r = dpt_->Query(q);
    shrank += (r.ci_half_width <= prev_ci);
    prev_ci = r.ci_half_width;
    ++rounds;
  }
  EXPECT_GE(shrank, (rounds + 1) / 2);
  const QueryResult final = dpt_->Query(q);
  EXPECT_LT(std::abs(final.estimate - *truth) / *truth, 0.05);
}

TEST_F(CatchupTest, MidCatchupEstimatesAreUsable) {
  // Queries issued mid-catch-up must still be valid (unbiased, finite CI) —
  // Sec. 4.3's "queries close to the beginning will have a higher error".
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 1;
  q.predicate_columns = {0};
  q.rect = Rectangle({0.0}, {0.5});
  const auto truth = ExactAnswer(ds_.rows, q);
  CatchupEngine engine(dpt_.get(), ds_.rows, 4000, 6);
  engine.Step(100);  // barely started
  const QueryResult r = dpt_->Query(q);
  EXPECT_GT(r.estimate, 0);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.25);
}

}  // namespace
}  // namespace janus
