#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace janus {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextUint64BoundedAndCoversRange) {
  Rng rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextUint64(10);
    ASSERT_LT(v, 10u);
    hits[static_cast<size_t>(v)]++;
  }
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(RngTest, NextInt64Inclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt64(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(23);
  int ones = 0, twos = 0, rest = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Zipf(100, 1.5);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    ones += (v == 1);
    twos += (v == 2);
    rest += (v > 10);
  }
  // Rank 1 dominates rank 2 dominates the tail under s = 1.5.
  EXPECT_GT(ones, n / 5);
  EXPECT_GT(ones, twos);
  EXPECT_LT(rest, n / 2);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(29);
  auto idx = rng.SampleIndices(1000, 100);
  ASSERT_EQ(idx.size(), 100u);
  std::sort(idx.begin(), idx.end());
  EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
  EXPECT_LT(idx.back(), 1000u);
}

TEST(RngTest, SampleIndicesAllWhenKExceedsN) {
  Rng rng(31);
  auto idx = rng.SampleIndices(5, 10);
  ASSERT_EQ(idx.size(), 5u);
}

TEST(RngTest, SampleIndicesUniformity) {
  // Each index should appear with probability k/n.
  Rng rng(37);
  std::vector<int> hits(20, 0);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    for (size_t i : rng.SampleIndices(20, 5)) hits[i]++;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / reps, 0.25, 0.02);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace janus
