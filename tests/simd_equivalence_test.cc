// Scalar-vs-AVX2 equivalence for the SIMD kernel table (data/simd.h), with
// emphasis on the two kernels behind the threshold-crossing and min/max scan
// paths: count_in_bounds_limited (limit clamp makes early exit invisible)
// and min_max_gather (NaN-ignoring, order-insensitive). Counting/selection
// kernels must be bit-identical across implementations; min/max too (they
// only ever copy input values). When the build carries no AVX2 table the
// cross-implementation cases self-skip and the scalar table is checked
// against straight-line reference loops only.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/column_store.h"
#include "data/scan.h"
#include "data/schema.h"
#include "data/simd.h"
#include "tests/test_seed.h"
#include "util/rng.h"

namespace janus {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Reference in-bounds test: closed interval, NaN matches (the semantics
/// every kernel implementation must share).
bool RefInBounds(double x, double lo, double hi) {
  return !(x < lo) && !(x > hi);
}

size_t RefCount(const std::vector<double>& v, double lo, double hi) {
  size_t c = 0;
  for (double x : v) c += RefInBounds(x, lo, hi) ? 1 : 0;
  return c;
}

/// Lengths around the AVX2 lane width (4) and unroll boundaries, plus a
/// block-sized tail.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 257};

std::vector<double> MakeValues(size_t n, uint64_t seed, bool with_nans) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng.NextDouble() * 2.0 - 0.5;
    if (with_nans && rng.NextDouble() < 0.1) v[i] = kNaN;
  }
  return v;
}

/// Every kernel table available in this build, scalar always first.
std::vector<const scan::simd::Kernels*> AllTables() {
  std::vector<const scan::simd::Kernels*> tables = {
      &scan::simd::ScalarKernels()};
  if (const scan::simd::Kernels* avx2 = scan::simd::Avx2KernelsIfCompiled()) {
    tables.push_back(avx2);
  }
  return tables;
}

TEST(SimdEquivalenceTest, CountInBoundsLimitedIsClampedFullCount) {
  for (bool with_nans : {false, true}) {
    for (size_t len : kLengths) {
      const std::vector<double> v =
          MakeValues(len, TestSeed() + len + (with_nans ? 1000 : 0),
                     with_nans);
      const double lo = 0.2, hi = 0.8;
      const size_t full = RefCount(v, lo, hi);
      // Limits at, below, above and far past the true count, plus 0/1.
      std::vector<size_t> limits = {0, 1, len / 2, full, full + 1,
                                    std::numeric_limits<size_t>::max()};
      if (full > 0) limits.push_back(full - 1);
      for (const scan::simd::Kernels* k : AllTables()) {
        EXPECT_EQ(k->count_in_bounds(v.data(), len, lo, hi), full)
            << k->name << " len=" << len;
        for (size_t limit : limits) {
          EXPECT_EQ(k->count_in_bounds_limited(v.data(), len, lo, hi, limit),
                    std::min(full, limit))
              << k->name << " len=" << len << " limit=" << limit;
        }
      }
    }
  }
}

TEST(SimdEquivalenceTest, MinMaxGatherMatchesReferenceBitExactly) {
  Rng rng(TestSeed() + 7);
  for (bool with_nans : {false, true}) {
    for (size_t len : kLengths) {
      const std::vector<double> v =
          MakeValues(len, TestSeed() + 31 * len + (with_nans ? 5000 : 0),
                     with_nans);
      // A random selection over the rows, in row order (as FilterBlock
      // produces), including the empty and the all-rows selections.
      std::vector<std::vector<uint32_t>> selections;
      selections.emplace_back();  // n == 0: identity values
      std::vector<uint32_t> all(len);
      for (size_t i = 0; i < len; ++i) all[i] = static_cast<uint32_t>(i);
      selections.push_back(all);
      std::vector<uint32_t> some;
      for (size_t i = 0; i < len; ++i) {
        if (rng.NextDouble() < 0.4) some.push_back(static_cast<uint32_t>(i));
      }
      selections.push_back(some);
      for (const std::vector<uint32_t>& sel : selections) {
        double ref_mn = std::numeric_limits<double>::max();
        double ref_mx = std::numeric_limits<double>::lowest();
        for (uint32_t p : sel) {
          // std::min/max ordering: a NaN argument never replaces the
          // accumulator.
          ref_mn = std::min(ref_mn, v[p]);
          ref_mx = std::max(ref_mx, v[p]);
        }
        for (const scan::simd::Kernels* k : AllTables()) {
          double mn = 0, mx = 0;
          k->min_max_gather(v.data(), sel.data(), sel.size(), &mn, &mx);
          EXPECT_EQ(mn, ref_mn) << k->name << " len=" << len
                                << " sel=" << sel.size();
          EXPECT_EQ(mx, ref_mx) << k->name << " len=" << len
                                << " sel=" << sel.size();
        }
      }
    }
  }
}

TEST(SimdEquivalenceTest, DenseMinMaxAgreesAcrossImplementations) {
  for (bool with_nans : {false, true}) {
    for (size_t len : kLengths) {
      const std::vector<double> v =
          MakeValues(len, TestSeed() + 17 * len + (with_nans ? 9000 : 0),
                     with_nans);
      double ref_mn = std::numeric_limits<double>::max();
      double ref_mx = std::numeric_limits<double>::lowest();
      for (double x : v) {
        ref_mn = std::min(ref_mn, x);
        ref_mx = std::max(ref_mx, x);
      }
      for (const scan::simd::Kernels* k : AllTables()) {
        double mn = 0, mx = 0;
        k->min_max(v.data(), len, &mn, &mx);
        EXPECT_EQ(mn, ref_mn) << k->name << " len=" << len;
        EXPECT_EQ(mx, ref_mx) << k->name << " len=" << len;
      }
    }
  }
}

/// Scan-level checks: the rewired CountRangeAtLeast crossing tails and the
/// AggregateRange min/max gather path must agree with brute-force row loops
/// regardless of which kernel table the process resolved.
class ScanEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(TestSeed() + 101);
    rows_.resize(20000);
    for (size_t i = 0; i < rows_.size(); ++i) {
      Tuple& t = rows_[i];
      t.id = i;
      t[0] = rng.NextDouble();
      t[1] = rng.Normal(10, 3);
      t[2] = rng.NextDouble() * 5;
      if (rng.NextDouble() < 0.01) t[2] = kNaN;
    }
    store_ = std::make_unique<ColumnStore>(3);
    store_->BulkAppend(rows_);
  }

  std::vector<Tuple> rows_;
  std::unique_ptr<ColumnStore> store_;
};

TEST_F(ScanEquivalenceTest, CountAtLeastMatchesBruteForceAtEveryThreshold) {
  const std::vector<int> one_pred = {0};
  const std::vector<int> two_pred = {0, 2};
  Rng rng(TestSeed() + 202);
  for (int round = 0; round < 20; ++round) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    Rectangle rect1({std::min(a, b)}, {std::max(a, b)});
    Rectangle rect2({std::min(a, b), 1.0}, {std::max(a, b), 4.0});
    size_t brute1 = 0, brute2 = 0;
    for (const Tuple& t : rows_) {
      brute1 += RefInBounds(t[0], rect1.lo(0), rect1.hi(0)) ? 1 : 0;
      brute2 += (RefInBounds(t[0], rect2.lo(0), rect2.hi(0)) &&
                 RefInBounds(t[2], rect2.lo(1), rect2.hi(1)))
                    ? 1
                    : 0;
    }
    // Thresholds straddling the true count force the limit-clamped kernels
    // through their early-exit branches at many block offsets.
    for (size_t thr :
         {size_t{1}, brute1 / 2 + 1, brute1, brute1 + 1,
          std::numeric_limits<size_t>::max()}) {
      EXPECT_EQ(scan::CountInRectAtLeast(*store_, one_pred, rect1, thr),
                std::min(brute1, thr))
          << "round=" << round << " thr=" << thr;
    }
    for (size_t thr :
         {size_t{1}, brute2 / 2 + 1, brute2, brute2 + 1,
          std::numeric_limits<size_t>::max()}) {
      EXPECT_EQ(scan::CountInRectAtLeast(*store_, two_pred, rect2, thr),
                std::min(brute2, thr))
          << "round=" << round << " thr=" << thr;
    }
  }
}

TEST_F(ScanEquivalenceTest, AggregateMinMaxMatchesBruteForce) {
  const std::vector<int> pred = {0};
  Rng rng(TestSeed() + 303);
  for (int round = 0; round < 20; ++round) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    Rectangle rect({std::min(a, b)}, {std::max(a, b)});
    double ref_mn = std::numeric_limits<double>::max();
    double ref_mx = std::numeric_limits<double>::lowest();
    size_t matched = 0;
    for (const Tuple& t : rows_) {
      if (!RefInBounds(t[0], rect.lo(0), rect.hi(0))) continue;
      ++matched;
      ref_mn = std::min(ref_mn, t[1]);
      ref_mx = std::max(ref_mx, t[1]);
    }
    const std::optional<double> mn =
        scan::AggregateInRect(*store_, AggFunc::kMin, 1, pred, rect);
    const std::optional<double> mx =
        scan::AggregateInRect(*store_, AggFunc::kMax, 1, pred, rect);
    ASSERT_EQ(mn.has_value(), matched > 0) << "round=" << round;
    if (matched > 0) {
      EXPECT_EQ(*mn, ref_mn) << "round=" << round;
      EXPECT_EQ(*mx, ref_mx) << "round=" << round;
    }
  }
}

}  // namespace
}  // namespace janus
