#include "core/partitioner_kd.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace janus {
namespace {

std::unique_ptr<MaxVarianceIndex> RandomIndex(int dims, size_t n,
                                              AggFunc focus, uint64_t seed) {
  MaxVarianceIndex::Options o;
  o.dims = dims;
  o.focus = focus;
  o.sampling_rate = 0.01;
  auto idx = std::make_unique<MaxVarianceIndex>(o);
  Rng rng(seed);
  std::vector<KdPoint> pts;
  for (size_t i = 0; i < n; ++i) {
    KdPoint p;
    p.id = i;
    for (int d = 0; d < dims; ++d) p.x[d] = rng.NextDouble();
    p.a = rng.LogNormal(0, 1);
    pts.push_back(p);
  }
  idx->Build(pts);
  return idx;
}

class KdPartitionerDimTest : public ::testing::TestWithParam<int> {};

TEST_P(KdPartitionerDimTest, BuildsKLeavesWithTreeInvariants) {
  const int dims = GetParam();
  auto idx = RandomIndex(dims, 2000, AggFunc::kSum, 3);
  PartitionerKdOptions opts;
  opts.num_leaves = 32;
  opts.focus = AggFunc::kSum;
  const PartitionResult r = BuildPartitionKd(*idx, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.num_leaves(), 32);
  EXPECT_EQ(r.spec.dims, dims);
  // Invariants: children tile parents; leaves are disjoint up to the shared
  // boundary and their union covers space (probe random points).
  Rng rng(7);
  for (int probe = 0; probe < 200; ++probe) {
    std::vector<double> x(static_cast<size_t>(dims));
    for (int d = 0; d < dims; ++d) x[static_cast<size_t>(d)] = rng.NextDouble();
    const int leaf = r.spec.LeafFor(x.data());
    ASSERT_GE(leaf, 0);
    ASSERT_TRUE(r.spec.nodes[static_cast<size_t>(leaf)].IsLeaf());
    EXPECT_TRUE(r.spec.nodes[static_cast<size_t>(leaf)].rect.Contains(x.data()));
  }
}

TEST_P(KdPartitionerDimTest, LeavesPartitionSampleSet) {
  const int dims = GetParam();
  auto idx = RandomIndex(dims, 1000, AggFunc::kSum, 5);
  PartitionerKdOptions opts;
  opts.num_leaves = 16;
  const PartitionResult r = BuildPartitionKd(*idx, opts);
  // Sample counts over the leaves must sum to the total (no loss/overlap;
  // the LeafFor routing decides boundary ties, the rectangles themselves
  // overlap only on measure-zero boundaries).
  std::vector<KdPoint> all;
  idx->kd().Dump(&all);
  std::vector<int> per_leaf(r.spec.nodes.size(), 0);
  for (const KdPoint& p : all) {
    per_leaf[static_cast<size_t>(r.spec.LeafFor(p.x.data()))]++;
  }
  int total = 0;
  for (int leaf : r.spec.leaves) total += per_leaf[static_cast<size_t>(leaf)];
  EXPECT_EQ(total, 1000);
}

INSTANTIATE_TEST_SUITE_P(Dims, KdPartitionerDimTest,
                         ::testing::Values(1, 2, 3, 5));

TEST(KdPartitionerTest, SplitsReduceWorstVariance) {
  auto idx = RandomIndex(2, 2000, AggFunc::kSum, 9);
  PartitionerKdOptions small;
  small.num_leaves = 4;
  PartitionerKdOptions large;
  large.num_leaves = 64;
  const double e4 = BuildPartitionKd(*idx, small).achieved_error;
  const double e64 = BuildPartitionKd(*idx, large).achieved_error;
  EXPECT_LT(e64, e4);
}

TEST(KdPartitionerTest, FewSamplesStopEarly) {
  auto idx = RandomIndex(2, 8, AggFunc::kSum, 11);
  PartitionerKdOptions opts;
  opts.num_leaves = 64;  // far more than samples can support
  const PartitionResult r = BuildPartitionKd(*idx, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.spec.num_leaves(), 9);
  EXPECT_GE(r.spec.num_leaves(), 1);
}

TEST(KdPartitionerTest, DegenerateIdenticalPoints) {
  MaxVarianceIndex::Options o;
  o.dims = 2;
  MaxVarianceIndex idx(o);
  std::vector<KdPoint> pts;
  for (size_t i = 0; i < 100; ++i) {
    KdPoint p;
    p.id = i;
    p.x[0] = 0.5;
    p.x[1] = 0.5;
    p.a = 1.0;
    pts.push_back(p);
  }
  idx.Build(pts);
  PartitionerKdOptions opts;
  opts.num_leaves = 8;
  const PartitionResult r = BuildPartitionKd(idx, opts);
  ASSERT_TRUE(r.ok);
  // Identical coordinates are unsplittable: the tree stays a single leaf.
  EXPECT_EQ(r.spec.num_leaves(), 1);
}

TEST(KdPartitionerTest, CountFocusBalancesLeafCounts) {
  auto idx = RandomIndex(2, 4096, AggFunc::kCount, 13);
  PartitionerKdOptions opts;
  opts.num_leaves = 16;
  opts.focus = AggFunc::kCount;
  const PartitionResult r = BuildPartitionKd(*idx, opts);
  // Median splits on the max-count leaf: counts should be fairly even.
  double min_c = 1e18, max_c = 0;
  for (int leaf : r.spec.leaves) {
    const double c = idx->kd()
                         .RangeAggregate(
                             r.spec.nodes[static_cast<size_t>(leaf)].rect)
                         .count;
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  EXPECT_LE(max_c / std::max(1.0, min_c), 4.0);
}

}  // namespace
}  // namespace janus
