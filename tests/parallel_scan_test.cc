// Randomized equivalence suite for the morsel-parallel execution layer
// (data/parallel_scan.h): every parallel kernel must agree with its serial
// counterpart — bit-identical counts, 1e-12-relative aggregates — across
// worker counts 1/2/8, on stores with deletes mid-store (swap-remove holes),
// and the parallel consumers (Dpt exact init, batched catch-up, SRS-style
// membership) must match their serial runs. Seeded via JANUS_TEST_SEED; the
// worker count of each case is pinned explicitly, so CI runs reproduce.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/catchup.h"
#include "core/dpt.h"
#include "core/spt.h"
#include "data/generators.h"
#include "data/parallel_scan.h"
#include "data/scan.h"
#include "data/table.h"
#include "tests/test_seed.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace janus {
namespace {

constexpr size_t kRows = 60000;
const std::vector<size_t> kThreadCounts = {1, 2, 8};

/// Relative difference with a 0/0 == 0 convention.
double RelDiff(double a, double b) {
  if (a == b) return 0;
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0 ? std::abs(a - b) / scale : 0;
}

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratedDataset ds = GenerateUniform(kRows, 2, TestSeed());
    schema_ = ds.schema;
    table_ = std::make_unique<DynamicTable>(ds.schema);
    for (const Tuple& t : ds.rows) table_->Insert(t);
    // Deletes mid-store: swap-remove punches holes so the physical order no
    // longer matches insertion order.
    Rng rng(TestSeed() + 1);
    for (size_t i = 0; i < kRows / 5; ++i) {
      table_->Delete(rng.NextUint64(kRows));
    }
    rows_live_ = table_->size();
  }

  /// Context pinned to exactly `threads` workers with a tiny cutoff, so the
  /// parallel path engages even on a test-sized store.
  scan::ExecContext Ctx(ThreadPool* pool, size_t threads) const {
    scan::ExecContext ctx;
    ctx.pool = threads > 1 ? pool : nullptr;
    ctx.max_workers = threads;
    ctx.parallel_min_rows = 1024;
    return ctx;
  }

  const ColumnStore& store() const { return table_->store(); }

  Schema schema_;
  std::unique_ptr<DynamicTable> table_;
  size_t rows_live_ = 0;
};

TEST_F(ParallelScanTest, CountKernelsMatchSerialBitExactly) {
  Rng rng(TestSeed() + 2);
  const std::vector<int> pred1 = {0};
  const std::vector<int> pred2 = {0, 1};
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const scan::ExecContext ctx = Ctx(&pool, threads);
    for (int i = 0; i < 25; ++i) {
      double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
      if (a > b) std::swap(a, b);
      double c = rng.Uniform(0, 1), d = rng.Uniform(0, 1);
      if (c > d) std::swap(c, d);
      const Rectangle r1({a}, {b});
      const Rectangle r2({a, c}, {b, d});
      EXPECT_EQ(scan::CountInRect(store(), pred1, r1),
                scan::CountInRect(store(), pred1, r1, ctx))
          << "threads=" << threads;
      EXPECT_EQ(scan::CountInRect(store(), pred2, r2),
                scan::CountInRect(store(), pred2, r2, ctx))
          << "threads=" << threads;
    }
  }
}

TEST_F(ParallelScanTest, CountAtLeastMatchesSerialAtEveryThreshold) {
  const std::vector<int> pred = {0};
  const Rectangle half({0.25}, {0.75});
  const size_t exact = scan::CountInRect(store(), pred, half);
  ASSERT_GT(exact, 0u);
  // Thresholds around block boundaries, the exact count, and beyond — the
  // mid-block clamp must behave identically on every path.
  const std::vector<size_t> thresholds = {
      1, 7, scan::kBlockRows - 1, scan::kBlockRows, scan::kBlockRows + 1,
      exact / 2, exact - 1, exact, exact + 1,
      std::numeric_limits<size_t>::max()};
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const scan::ExecContext ctx = Ctx(&pool, threads);
    for (size_t th : thresholds) {
      if (th == 0) continue;
      const size_t expected = std::min(exact, th);
      EXPECT_EQ(expected,
                scan::CountInRectAtLeast(store(), pred, half, th))
          << "serial threshold=" << th;
      EXPECT_EQ(expected,
                scan::CountInRectAtLeast(store(), pred, half, th, ctx))
          << "threads=" << threads << " threshold=" << th;
    }
  }
  // Multi-predicate threshold path (scalar tail rows).
  const std::vector<int> pred2 = {0, 1};
  const Rectangle box({0.1, 0.2}, {0.9, 0.8});
  const size_t exact2 = scan::CountInRect(store(), pred2, box);
  ASSERT_GT(exact2, 0u);
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const scan::ExecContext ctx = Ctx(&pool, threads);
    for (size_t th : {size_t{1}, exact2 / 3, exact2, exact2 + 5}) {
      if (th == 0) continue;
      EXPECT_EQ(std::min(exact2, th),
                scan::CountInRectAtLeast(store(), pred2, box, th, ctx));
    }
  }
}

TEST_F(ParallelScanTest, AggregateKernelsMatchSerialTo1e12) {
  Rng rng(TestSeed() + 3);
  const std::vector<int> pred = {0, 1};
  const std::vector<AggFunc> funcs = {AggFunc::kSum, AggFunc::kCount,
                                      AggFunc::kAvg, AggFunc::kMin,
                                      AggFunc::kMax};
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const scan::ExecContext ctx = Ctx(&pool, threads);
    for (int i = 0; i < 20; ++i) {
      double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
      if (a > b) std::swap(a, b);
      double c = rng.Uniform(0, 1), d = rng.Uniform(0, 1);
      if (c > d) std::swap(c, d);
      const Rectangle rect({a, c}, {b, d});
      for (AggFunc f : funcs) {
        const auto serial = scan::AggregateInRect(store(), f, 2, pred, rect);
        const auto parallel =
            scan::AggregateInRect(store(), f, 2, pred, rect, ctx);
        ASSERT_EQ(serial.has_value(), parallel.has_value())
            << "threads=" << threads;
        if (serial.has_value()) {
          EXPECT_LE(RelDiff(*serial, *parallel), 1e-12)
              << "threads=" << threads << " func=" << static_cast<int>(f);
        }
      }
    }
  }
}

TEST_F(ParallelScanTest, ExactAnswersBatchMatchesSerial) {
  Rng rng(TestSeed() + 4);
  std::vector<AggQuery> queries;
  for (int i = 0; i < 64; ++i) {
    AggQuery q;
    q.func = static_cast<AggFunc>(i % 5);
    q.agg_column = 2;
    q.predicate_columns = {0};
    double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
    if (a > b) std::swap(a, b);
    q.rect = Rectangle({a}, {b});
    queries.push_back(std::move(q));
  }
  const auto serial = scan::ExactAnswers(store(), queries);
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const auto parallel =
        scan::ExactAnswers(store(), queries, Ctx(&pool, threads));
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].has_value(), parallel[i].has_value());
      if (serial[i].has_value()) {
        EXPECT_LE(RelDiff(*serial[i], *parallel[i]), 1e-12) << "query " << i;
      }
    }
  }
}

TEST_F(ParallelScanTest, ColumnMinMaxMatchesSerialScan) {
  for (int col = 0; col < 3; ++col) {
    const ColumnSpan span = store().column(col);
    double mn = std::numeric_limits<double>::max();
    double mx = std::numeric_limits<double>::lowest();
    for (double v : span) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    for (size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      const auto [lo, hi] =
          scan::ColumnMinMax(store(), col, Ctx(&pool, threads));
      EXPECT_EQ(mn, lo);
      EXPECT_EQ(mx, hi);
    }
  }
}

/// Build one exact-mode Dpt over the store under the given context.
std::unique_ptr<Dpt> BuildExactDpt(const ColumnStore& store,
                                   const scan::ExecContext& exec,
                                   uint64_t seed) {
  SptOptions opts;
  opts.spec.agg_column = 2;
  opts.spec.predicate_columns = {0, 1};
  opts.num_leaves = 64;
  opts.algorithm = PartitionAlgorithm::kKdTree;
  opts.seed = seed;
  opts.exec = exec;
  SptBuildResult b = BuildSpt(store, opts);
  return std::move(b.synopsis);
}

TEST_F(ParallelScanTest, DptInitializeExactMatchesSerialAcrossThreadCounts) {
  const std::unique_ptr<Dpt> serial =
      BuildExactDpt(store(), scan::ExecContext{}, TestSeed());
  Rng rng(TestSeed() + 5);
  std::vector<AggQuery> queries;
  for (int i = 0; i < 32; ++i) {
    AggQuery q;
    q.func = static_cast<AggFunc>(i % 5);
    q.agg_column = 2;
    q.predicate_columns = {0, 1};
    double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
    if (a > b) std::swap(a, b);
    double c = rng.Uniform(0, 1), d = rng.Uniform(0, 1);
    if (c > d) std::swap(c, d);
    q.rect = Rectangle({a, c}, {b, d});
    queries.push_back(std::move(q));
  }
  for (size_t threads : kThreadCounts) {
    if (threads <= 1) continue;
    ThreadPool pool(threads);
    const std::unique_ptr<Dpt> parallel =
        BuildExactDpt(store(), Ctx(&pool, threads), TestSeed());
    // Same tree (the optimizer is seed-deterministic and serial), so node
    // estimates are directly comparable.
    ASSERT_EQ(serial->tree().nodes.size(), parallel->tree().nodes.size());
    for (size_t node = 0; node < serial->tree().nodes.size(); ++node) {
      EXPECT_LE(RelDiff(serial->NodeCountEstimate(static_cast<int>(node)),
                        parallel->NodeCountEstimate(static_cast<int>(node))),
                1e-12);
      EXPECT_LE(RelDiff(serial->NodeSumEstimate(static_cast<int>(node), 2),
                        parallel->NodeSumEstimate(static_cast<int>(node), 2)),
                1e-12);
    }
    for (const AggQuery& q : queries) {
      const QueryResult rs = serial->Query(q);
      const QueryResult rp = parallel->Query(q);
      EXPECT_LE(RelDiff(rs.estimate, rp.estimate), 1e-12)
          << "threads=" << threads;
      EXPECT_LE(RelDiff(rs.ci_half_width, rp.ci_half_width), 1e-9);
    }
  }
}

TEST_F(ParallelScanTest, BatchedCatchupIsBitIdenticalToSerial) {
  // Catch-up mode: the leaf-partitioned parallel batch path must reproduce
  // the one-sample-at-a-time serial loop exactly — same draws, same
  // per-leaf application order, so estimates and CI widths are bit-equal.
  const auto run = [&](const scan::ExecContext& exec) {
    DptOptions dopts;
    dopts.spec.agg_column = 2;
    dopts.spec.predicate_columns = {0};
    dopts.exec = exec;
    SptOptions opts;
    opts.spec = dopts.spec;
    opts.num_leaves = 32;
    opts.seed = TestSeed();
    SptBuildResult built = BuildSpt(store(), opts);
    auto dpt = std::make_unique<Dpt>(dopts, built.synopsis->tree());
    Rng rng(TestSeed() + 6);
    dpt->InitializeFromReservoir(store().SampleUniform(&rng, 512),
                                 store().size());
    CatchupEngine catchup(dpt.get(), store().WithoutIndex(), 20000,
                          TestSeed() + 7);
    catchup.RunToGoal();
    EXPECT_EQ(20000u, catchup.processed());
    return dpt;
  };
  const auto serial_dpt = run(scan::ExecContext{});
  Rng qrng(TestSeed() + 8);
  std::vector<AggQuery> queries;
  for (int i = 0; i < 16; ++i) {
    AggQuery q;
    q.func = static_cast<AggFunc>(i % 5);
    q.agg_column = 2;
    q.predicate_columns = {0};
    double a = qrng.Uniform(0, 1), b = qrng.Uniform(0, 1);
    if (a > b) std::swap(a, b);
    q.rect = Rectangle({a}, {b});
    queries.push_back(std::move(q));
  }
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    const auto parallel_dpt = run(Ctx(&pool, threads));
    EXPECT_EQ(serial_dpt->catchup_count(), parallel_dpt->catchup_count());
    for (const AggQuery& q : queries) {
      const QueryResult rs = serial_dpt->Query(q);
      const QueryResult rp = parallel_dpt->Query(q);
      EXPECT_DOUBLE_EQ(rs.estimate, rp.estimate) << "threads=" << threads;
      EXPECT_DOUBLE_EQ(rs.ci_half_width, rp.ci_half_width);
    }
  }
}

TEST(MorselStealingTest, SkewedMorselCostDoesNotStallTheScan) {
  // One morsel "costs" as much as the entire rest of the scan: its body
  // cannot finish until every other morsel has been processed. A static
  // range split assigns the expensive chunk and roughly half the remaining
  // morsels to the same worker, which would deadlock this loop; with a
  // shared cursor the other participant drains everything the blocked
  // worker cannot reach.
  ThreadPool pool(2);
  scan::ExecContext ctx;
  ctx.pool = &pool;
  ctx.max_workers = 2;
  ctx.parallel_min_rows = 1;
  constexpr size_t kMorsels = 8;
  const size_t rows = kMorsels * scan::kBlockRows;
  scan::MorselPlan plan;
  plan.workers = 2;
  plan.morsel_rows = scan::kBlockRows;
  plan.morsels = kMorsels;
  std::atomic<size_t> others{0};
  std::atomic<bool> timed_out{false};
  scan::ForEachMorsel(
      ctx, rows, plan, [&](size_t, size_t chunk, size_t, size_t) {
        if (chunk == 0) {
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(60);
          while (others.load(std::memory_order_acquire) < kMorsels - 1) {
            if (std::chrono::steady_clock::now() > deadline) {
              timed_out.store(true);
              break;
            }
            std::this_thread::yield();
          }
        } else {
          others.fetch_add(1, std::memory_order_release);
        }
      });
  EXPECT_FALSE(timed_out.load()) << "the scan stalled on the skewed morsel: "
                                    "no other worker stole the rest";
  EXPECT_EQ(kMorsels - 1, others.load());
}

TEST(ParseScanThreadsTest, ValidatesClampsAndWarns) {
  std::string warning;
  // Unset / empty fall back to hardware concurrency without complaint.
  EXPECT_EQ(8u, scan::ParseScanThreads(nullptr, 8, &warning));
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(8u, scan::ParseScanThreads("", 8, &warning));
  EXPECT_TRUE(warning.empty());
  // Plain numbers parse; leading/trailing blanks are tolerated.
  EXPECT_EQ(6u, scan::ParseScanThreads("6", 8, &warning));
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(6u, scan::ParseScanThreads("  6  ", 8, &warning));
  EXPECT_TRUE(warning.empty());
  // Garbage, trailing junk, zero and negatives warn and fall back.
  EXPECT_EQ(8u, scan::ParseScanThreads("lots", 8, &warning));
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(8u, scan::ParseScanThreads("6x", 8, &warning));
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(8u, scan::ParseScanThreads("0", 8, &warning));
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(8u, scan::ParseScanThreads("-2", 8, &warning));
  EXPECT_FALSE(warning.empty());
  // Out-of-range numerics (ERANGE) fall back rather than truncating.
  EXPECT_EQ(8u, scan::ParseScanThreads("999999999999999999999999999", 8,
                                       &warning));
  EXPECT_FALSE(warning.empty());
  // Oversubscription clamps at 4x hardware; exactly 4x is allowed.
  EXPECT_EQ(32u, scan::ParseScanThreads("32", 8, &warning));
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(32u, scan::ParseScanThreads("33", 8, &warning));
  EXPECT_FALSE(warning.empty());
  // Unknown hardware concurrency (0) degrades to a floor of one.
  EXPECT_EQ(1u, scan::ParseScanThreads(nullptr, 0, &warning));
  EXPECT_EQ(4u, scan::ParseScanThreads("9", 0, &warning));
  EXPECT_FALSE(warning.empty());
}

TEST_F(ParallelScanTest, NestedScansStaySerialAndAreCounted) {
  ThreadPool pool(2);
  scan::ScanCounters counters;
  scan::ExecContext ctx = Ctx(&pool, 2);
  ctx.counters = &counters;
  const std::vector<int> pred = {0};
  const Rectangle half({0.25}, {0.75});
  const size_t expected = scan::CountInRect(store(), pred, half);
  const scan::MorselPlan plan = scan::PlanMorsels(ctx, store().size());
  ASSERT_GT(plan.workers, 1u);
  // A consumer callback that itself scans: the nested call must not try to
  // fan out again (the pool may be saturated with its own callers), but it
  // must still return the exact answer — and be visible in telemetry.
  std::atomic<size_t> nested_total{0};
  scan::ForEachMorsel(ctx, store().size(), plan,
                      [&](size_t, size_t chunk, size_t, size_t) {
                        if (chunk != 0) return;
                        nested_total.store(
                            scan::CountInRect(store(), pred, half, ctx));
                      });
  EXPECT_EQ(expected, nested_total.load());
  EXPECT_GE(counters.nested_serial_scans.load(), 1u);
  EXPECT_EQ(1u, counters.parallel_scans.load());
}

}  // namespace
}  // namespace janus
