#include "baselines/spn.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/rng.h"

namespace janus {
namespace {

AggQuery MakeQuery(AggFunc f, double lo, double hi, int pred_col,
                   int agg_col) {
  AggQuery q;
  q.func = f;
  q.agg_column = agg_col;
  q.predicate_columns = {pred_col};
  q.rect = Rectangle({lo}, {hi});
  return q;
}

TEST(SpnTest, TrainsAndCountsOnUniformData) {
  auto ds = GenerateUniform(20000, 1, 21);
  Spn spn(SpnOptions{}, {0, 1});
  std::vector<Tuple> train(ds.rows.begin(), ds.rows.begin() + 2000);
  spn.Train(train, ds.rows.size());
  EXPECT_GT(spn.train_seconds(), 0.0);
  EXPECT_GT(spn.num_nodes(), 1u);
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.2, 0.7, 0, 1);
  const auto truth = ExactAnswer(ds.rows, q);
  const QueryResult r = spn.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.1);
}

TEST(SpnTest, SumAndAvgEstimates) {
  auto ds = GenerateUniform(20000, 1, 22);
  Spn spn(SpnOptions{}, {0, 1});
  std::vector<Tuple> train(ds.rows.begin(), ds.rows.begin() + 2000);
  spn.Train(train, ds.rows.size());
  for (AggFunc f : {AggFunc::kSum, AggFunc::kAvg}) {
    const AggQuery q = MakeQuery(f, 0.1, 0.9, 0, 1);
    const auto truth = ExactAnswer(ds.rows, q);
    const QueryResult r = spn.Query(q);
    EXPECT_LT(std::abs(r.estimate - *truth) / std::abs(*truth), 0.15)
        << AggFuncName(f);
  }
}

TEST(SpnTest, CorrelatedColumnsStayJoint) {
  // Build data with strong correlation between col 0 and col 1; the model
  // must capture it (conditional expectation shifts with the predicate).
  Rng rng(23);
  std::vector<Tuple> rows;
  for (uint64_t i = 0; i < 20000; ++i) {
    Tuple t;
    t.id = i;
    t[0] = rng.NextDouble();
    t[1] = 100.0 * t[0] + rng.Normal(0, 1);  // strongly correlated
    rows.push_back(t);
  }
  Spn spn(SpnOptions{}, {0, 1});
  std::vector<Tuple> train(rows.begin(), rows.begin() + 2000);
  spn.Train(train, rows.size());
  const AggQuery low = MakeQuery(AggFunc::kAvg, 0.0, 0.2, 0, 1);
  const AggQuery high = MakeQuery(AggFunc::kAvg, 0.8, 1.0, 0, 1);
  const double avg_low = spn.Query(low).estimate;
  const double avg_high = spn.Query(high).estimate;
  EXPECT_GT(avg_high, avg_low + 40.0);  // truth: ~10 vs ~90
}

TEST(SpnTest, FixedResolutionDoesNotImproveWithPopulation) {
  // The defining DeepDB behaviour (Table 2): growing the table only rescales
  // N; the density model is frozen, so relative error stays flat.
  auto ds = GenerateUniform(40000, 1, 24);
  Spn spn(SpnOptions{}, {0, 1});
  std::vector<Tuple> train(ds.rows.begin(), ds.rows.begin() + 2000);
  spn.Train(train, 20000);
  const AggQuery q = MakeQuery(AggFunc::kCount, 0.3, 0.6, 0, 1);
  std::vector<Tuple> first(ds.rows.begin(), ds.rows.begin() + 20000);
  const auto truth1 = ExactAnswer(first, q);
  const double rel1 =
      std::abs(spn.Query(q).estimate - *truth1) / *truth1;
  // Double the data; update only the population scale.
  spn.set_population(40000);
  const auto truth2 = ExactAnswer(ds.rows, q);
  const double rel2 =
      std::abs(spn.Query(q).estimate - *truth2) / *truth2;
  EXPECT_LT(std::abs(rel1 - rel2), 0.05);  // error plateau
}

TEST(SpnTest, RetrainCostScalesWithTrainingSize) {
  // Wall-clock at millisecond scale is noisy under load: compare the best
  // of three runs on each side so a single descheduled run cannot flip the
  // 16x-data / >2x-time assertion.
  auto ds = GenerateUniform(60000, 2, 25);
  std::vector<Tuple> t1(ds.rows.begin(), ds.rows.begin() + 2000);
  std::vector<Tuple> t2(ds.rows.begin(), ds.rows.begin() + 32000);
  double small_best = 1e300, large_best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Spn small(SpnOptions{}, {0, 1, 2});
    Spn large(SpnOptions{}, {0, 1, 2});
    small.Train(t1, ds.rows.size());
    large.Train(t2, ds.rows.size());
    small_best = std::min(small_best, small.train_seconds());
    large_best = std::min(large_best, large.train_seconds());
  }
  EXPECT_GT(large_best, small_best * 2);
}

TEST(SpnTest, MinMaxFallBackToTrainingExtrema) {
  auto ds = GenerateUniform(5000, 1, 26);
  Spn spn(SpnOptions{}, {0, 1});
  spn.Train(ds.rows, ds.rows.size());
  const AggQuery q = MakeQuery(AggFunc::kMax, 0.4, 0.6, 0, 1);
  double true_max = -1e300;
  for (const Tuple& t : ds.rows) true_max = std::max(true_max, t[1]);
  EXPECT_DOUBLE_EQ(spn.Query(q).estimate, true_max);
}

TEST(SpnTest, EmptyPredicateRangeGivesZeroCount) {
  auto ds = GenerateUniform(5000, 1, 27);
  Spn spn(SpnOptions{}, {0, 1});
  spn.Train(ds.rows, ds.rows.size());
  const AggQuery q = MakeQuery(AggFunc::kCount, 5.0, 6.0, 0, 1);
  EXPECT_NEAR(spn.Query(q).estimate, 0.0, 1.0);
}

TEST(SpnTest, MultiDimPredicates) {
  auto ds = GenerateUniform(30000, 3, 28);
  Spn spn(SpnOptions{}, {0, 1, 2, 3});
  std::vector<Tuple> train(ds.rows.begin(), ds.rows.begin() + 3000);
  spn.Train(train, ds.rows.size());
  AggQuery q;
  q.func = AggFunc::kCount;
  q.agg_column = 3;
  q.predicate_columns = {0, 1, 2};
  q.rect = Rectangle({0.2, 0.2, 0.2}, {0.8, 0.8, 0.8});
  const auto truth = ExactAnswer(ds.rows, q);
  const QueryResult r = spn.Query(q);
  EXPECT_LT(std::abs(r.estimate - *truth) / *truth, 0.2);
}

}  // namespace
}  // namespace janus
