// Internet-of-things monitoring (Sec. 1): a sensor fleet appends readings to
// a Kafka-like broker; JanusAQP consumes the insert topic, keeps its synopsis
// current, and serves dashboard aggregations (average light level over time
// windows) at millisecond latency. Demonstrates the full streaming path:
// broker -> samplers -> synopsis -> queries.

#include <algorithm>
#include <cstdio>

#include "core/janus.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "stream/broker.h"
#include "stream/samplers.h"
#include "util/timer.h"

using namespace janus;

int main() {
  GeneratedDataset ds =
      GenerateDataset(DatasetKind::kIntelWireless, 120000, 11);
  const int kTime = 0;
  const int kLight = 1;

  // The sensor gateway publishes readings to the broker.
  Broker broker;
  Topic* feed = broker.insert_topic();
  feed->AppendBatch(ds.rows);

  // Bootstrap the synopsis by sampling the historical topic through the
  // singleton sampler (Appendix A: best for low-rate initialization).
  JanusOptions options;
  options.spec.agg_column = kLight;
  options.spec.predicate_columns = {kTime};
  options.num_leaves = 128;
  options.sample_rate = 0.01;
  options.catchup_rate = 0.10;
  JanusAqp monitor(options);

  // Consume the topic in polls, as a real consumer group would. The first
  // half is historical bulk load; then the synopsis goes live and the rest
  // streams through Insert().
  const uint64_t go_live = ds.rows.size() / 2;
  std::vector<Tuple> batch;
  uint64_t offset = 0;
  Timer ingest;
  while (offset < go_live) {
    batch.clear();
    const size_t n =
        feed->Poll(offset, std::min<size_t>(8192, go_live - offset), &batch);
    if (n == 0) break;
    offset += n;
    monitor.LoadInitial(batch);
  }
  monitor.Initialize();
  while (true) {
    batch.clear();
    const size_t n = feed->Poll(offset, 8192, &batch);
    if (n == 0) break;
    offset += n;
    for (const Tuple& t : batch) monitor.Insert(t);
  }
  monitor.RunCatchupToGoal();
  std::printf("Ingested %llu readings from topic '%s' in %.2fs\n",
              static_cast<unsigned long long>(offset), feed->name().c_str(),
              ingest.ElapsedSeconds());

  // Dashboard: average light level per day.
  const double day = 86400.0;
  std::printf("\n%-12s %14s %12s %14s\n", "window", "AVG(light)", "+/-",
              "exact");
  for (int d = 0; d < 5; ++d) {
    AggQuery q;
    q.func = AggFunc::kAvg;
    q.agg_column = kLight;
    q.predicate_columns = {kTime};
    q.rect = Rectangle({d * day}, {(d + 1) * day});
    const QueryResult r = monitor.Query(q);
    const auto truth = ExactAnswer(monitor.table().live(), q);
    if (!truth.has_value()) continue;
    std::printf("day %-8d %14.2f %12.2f %14.2f\n", d, r.estimate,
                r.ci_half_width, *truth);
  }
  return 0;
}
