// Internet-of-things monitoring (Sec. 1): a sensor fleet appends readings to
// a Kafka-like broker; the engine consumes the insert topic, keeps its
// synopsis current, and serves dashboard aggregations (average light level
// over time windows) published on the query topic. Demonstrates the full
// streaming path: broker -> EngineDriver -> any AqpEngine -> results. Run
// with engine=rs / srs / multi / ... to stream into a different backend.

#include <cstdio>
#include <memory>

#include "api/driver.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/timer.h"

using namespace janus;

int main(int argc, char** argv) {
  const ArgMap args(argc, argv);
  GeneratedDataset ds =
      GenerateDataset(DatasetKind::kIntelWireless, 120000, 11);
  const int kTime = 0;
  const int kLight = 1;

  // The sensor gateway wrote the first half of the readings to an archival
  // topic before the synopsis goes live; the rest arrives on the insert
  // request stream.
  Broker broker;
  Topic* archive = broker.GetTopic("archive");
  const uint64_t go_live = ds.rows.size() / 2;
  archive->AppendBatch({ds.rows.begin(),
                        ds.rows.begin() + static_cast<long>(go_live)});
  broker.insert_topic()->AppendBatch(
      {ds.rows.begin() + static_cast<long>(go_live), ds.rows.end()});

  EngineConfig config = EngineConfig::FromArgs(args);
  config.schema = ds.schema;
  config.agg_column = kLight;
  config.predicate_columns = {kTime};
  auto monitor = EngineRegistry::Create(config);

  // Bootstrap from the archive topic in polls, as a real consumer would.
  Timer ingest;
  std::vector<Tuple> batch;
  uint64_t offset = 0;
  while (true) {
    batch.clear();
    const size_t n = archive->Poll(offset, 8192, &batch);
    if (n == 0) break;
    offset += n;
    monitor->LoadInitial(batch);
  }
  monitor->Initialize();

  // Live phase: the driver consumes the insert/delete/query request streams
  // against the engine until they are drained.
  EngineDriverOptions dopts;
  dopts.poll_batch = 8192;
  EngineDriver driver(monitor.get(), &broker, dopts);
  driver.Drain();
  monitor->RunCatchupToGoal();

  // The dashboard publishes its queries on the query topic — average light
  // level per day — and the driver answers them on its next rounds.
  const double day = 86400.0;
  std::vector<AggQuery> dashboard;
  for (int d = 0; d < 5; ++d) {
    AggQuery q;
    q.func = AggFunc::kAvg;
    q.agg_column = kLight;
    q.predicate_columns = {kTime};
    q.rect = Rectangle({d * day}, {(d + 1) * day});
    dashboard.push_back(q);
    broker.query_topic()->Append(q);
  }
  driver.Drain();
  std::printf("Ingested %llu archived + %llu streamed readings in %.2fs, "
              "answered %llu dashboard queries\n",
              static_cast<unsigned long long>(offset),
              static_cast<unsigned long long>(driver.stats().inserts),
              ingest.ElapsedSeconds(),
              static_cast<unsigned long long>(driver.stats().queries));

  // Drain the answers out of the driver — a monitoring loop that runs
  // forever must not let the result buffer grow with every dashboard
  // refresh.
  const std::vector<QueryResult> answers = driver.TakeResults();

  std::printf("\n%-12s %14s %12s %14s\n", "window", "AVG(light)", "+/-",
              "exact");
  for (size_t d = 0; d < dashboard.size(); ++d) {
    const QueryResult& r = answers[d];
    // Sharded engines keep the archive inside their shards (table() is
    // null); the exact column then reads n/a rather than a fabricated
    // number. Windows with an undefined truth are skipped as before.
    if (monitor->table() == nullptr) {
      std::printf("day %-8zu %14.2f %12.2f %14s\n", d, r.estimate,
                  r.ci_half_width, "n/a");
      continue;
    }
    const auto truth = ExactAnswer(monitor->table()->store(), dashboard[d]);
    if (!truth.has_value()) continue;
    std::printf("day %-8zu %14.2f %12.2f %14.2f\n", d, r.estimate,
                r.ci_half_width, *truth);
  }
  return 0;
}
