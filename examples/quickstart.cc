// Quickstart: build a JanusAQP synopsis over a small table, stream some
// updates and ask approximate queries with confidence intervals.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/janus.h"
#include "data/generators.h"
#include "data/ground_truth.h"

using namespace janus;

int main() {
  // 1. Some data: 100k rows with one predicate column (col 0, uniform in
  //    [0,1)) and one aggregate column (col 1, N(10, 2)).
  GeneratedDataset ds = GenerateUniform(100000, /*predicate columns=*/1,
                                        /*seed=*/42);

  // 2. Configure a synopsis for the template
  //      SELECT SUM(col1) FROM D WHERE lo <= col0 <= hi
  JanusOptions options;
  options.spec.agg_column = 1;
  options.spec.predicate_columns = {0};
  options.num_leaves = 128;    // partition-tree buckets
  options.sample_rate = 0.01;  // 1% stratified reservoir
  options.catchup_rate = 0.10; // refine node statistics with 10% of |D|

  JanusAqp system(options);
  system.LoadInitial(ds.rows);  // historical data (archival storage)
  system.Initialize();          // optimize partitioning + populate synopsis
  system.RunCatchupToGoal();    // background statistics refinement

  // 3. Stream some new data and a deletion.
  Tuple fresh;
  fresh.id = 1000000;
  fresh[0] = 0.5;
  fresh[1] = 12.0;
  system.Insert(fresh);
  system.Delete(/*id=*/7);

  // 4. Ask queries. Results come with a 95% confidence interval and never
  //    touch the base table.
  AggQuery query;
  query.agg_column = 1;
  query.predicate_columns = {0};
  query.rect = Rectangle({0.25}, {0.75});

  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    query.func = f;
    const QueryResult r = system.Query(query);
    const auto truth = ExactAnswer(system.table().live(), query);
    std::printf("%-6s estimate=%14.2f  +/- %10.2f   (exact: %14.2f)\n",
                AggFuncName(f), r.estimate, r.ci_half_width,
                truth.value_or(0));
  }

  std::printf("\nSynopsis: %d leaves, %zu pooled samples, %zu catch-up "
              "samples absorbed\n",
              system.dpt().tree().num_leaves(), system.dpt().sample_size(),
              system.catchup_processed());
  return 0;
}
