// Quickstart: create any synopsis engine from the registry, stream some
// updates and ask approximate queries with confidence intervals.
//
//   $ ./build/quickstart                       # JanusAQP
//   $ ./build/quickstart engine=rs             # reservoir-sampling baseline
//   $ ./build/quickstart engine=srs leaves=64  # any engine, any knob
//   $ ./build/quickstart engine=sharded:janus shards=4   # hash-sharded

#include <cstdio>
#include <memory>

#include "api/config.h"
#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/thread_pool.h"

using namespace janus;

int main(int argc, char** argv) {
  // 1. Some data: 100k rows with one predicate column (col 0, uniform in
  //    [0,1)) and one aggregate column (col 1, N(10, 2)).
  const ArgMap args(argc, argv);
  GeneratedDataset ds = GenerateUniform(args.GetSize("rows", 100000),
                                        /*predicate columns=*/1,
                                        /*seed=*/42);

  // 2. Configure a synopsis for the template
  //      SELECT SUM(col1) FROM D WHERE lo <= col0 <= hi
  //    and create the engine by name. Every key=value flag maps onto the
  //    same EngineConfig, whatever the backend.
  EngineConfig config = EngineConfig::FromArgs(args, {"rows", "threads"});
  config.schema = ds.schema;
  config.agg_column = 1;
  config.predicate_columns = {0};
  auto engine = EngineRegistry::Create(config);
  std::printf("engine: %s (%s)\n", engine->name(), config.ToString().c_str());

  engine->LoadInitial(ds.rows);  // historical data (archival storage)
  engine->Initialize();          // optimize partitioning + populate synopsis
  engine->RunCatchupToGoal();    // background statistics refinement

  // 3. Stream some new data and a deletion.
  Tuple fresh;
  fresh.id = 1000000;
  fresh[0] = 0.5;
  fresh[1] = 12.0;
  engine->Insert(fresh);
  engine->Delete(/*id=*/7);

  // 4. Ask queries. Results come with a 95% confidence interval and never
  //    touch the base table. A whole workload goes through QueryBatch,
  //    which fans out over a thread pool.
  AggQuery query;
  query.agg_column = 1;
  query.predicate_columns = {0};
  query.rect = Rectangle({0.25}, {0.75});

  std::vector<AggQuery> workload;
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg,
                    AggFunc::kMin, AggFunc::kMax}) {
    query.func = f;
    workload.push_back(query);
  }
  ThreadPool pool(args.GetSize("threads", 4));
  const std::vector<QueryResult> results = engine->QueryBatch(workload, &pool);
  for (size_t i = 0; i < workload.size(); ++i) {
    // Sharded engines keep the archive inside their shards; exact ground
    // truths are only scannable when the engine exposes a single table.
    if (engine->table() != nullptr) {
      const auto truth = ExactAnswer(engine->table()->store(), workload[i]);
      std::printf("%-6s estimate=%14.2f  +/- %10.2f   (exact: %14.2f)\n",
                  AggFuncName(workload[i].func), results[i].estimate,
                  results[i].ci_half_width, truth.value_or(0));
    } else {
      std::printf("%-6s estimate=%14.2f  +/- %10.2f\n",
                  AggFuncName(workload[i].func), results[i].estimate,
                  results[i].ci_half_width);
    }
  }

  const EngineStats stats = engine->Stats();
  std::printf("\nSynopsis: %zu rows, %zu pooled samples, %zu catch-up "
              "samples absorbed\n",
              stats.rows, stats.sample_size, stats.catchup_processed);
  return 0;
}
