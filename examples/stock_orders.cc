// The paper's motivating scenario (Sec. 1): a low-latency approximate SQL
// interface over a highly dynamic stock-order stream — a large volume of new
// orders plus a small but significant stream of cancellations (deletions).
// The engine keeps its synopsis fresh while the exchange feed runs,
// re-optimizing itself when the variance profile drifts. Created through the
// registry, so engine=rs / srs / spn compares baselines on the same feed.

#include <cstdio>
#include <deque>
#include <memory>

#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/timer.h"

using namespace janus;

int main(int argc, char** argv) {
  const ArgMap args(argc, argv);
  // ETF trades: volume is the aggregate, close price the predicate.
  GeneratedDataset ds = GenerateDataset(DatasetKind::kNasdaqEtf, 150000, 7);
  const int kClose = 2;
  const int kVolume = 5;

  EngineConfig config = EngineConfig::FromArgs(args);
  config.schema = ds.schema;
  config.agg_column = kVolume;
  config.predicate_columns = {kClose};
  config.enable_triggers = true;  // self-re-optimization on drift
  // Heavy-tailed order volumes move per-leaf variances a lot; a generous
  // beta and a coarse check interval keep re-partitioning meaningful rather
  // than constant (Sec. 5.4 leaves beta to the user; 10 is the default).
  config.beta = 50.0;
  config.trigger_check_interval = 1024;

  auto exchange = EngineRegistry::Create(config);
  // Bootstrap with the first trading week.
  const size_t bootstrap = ds.rows.size() / 5;
  std::vector<Tuple> history(ds.rows.begin(),
                             ds.rows.begin() + static_cast<long>(bootstrap));
  exchange->LoadInitial(history);
  exchange->Initialize();
  exchange->RunCatchupToGoal();

  // Live feed: new orders stream in; ~5% of recent orders get cancelled.
  Rng rng(3);
  std::deque<uint64_t> recent;
  Timer feed_timer;
  size_t orders = 0, cancels = 0;
  for (size_t i = bootstrap; i < ds.rows.size(); ++i) {
    exchange->Insert(ds.rows[i]);
    recent.push_back(ds.rows[i].id);
    if (recent.size() > 2000) recent.pop_front();
    ++orders;
    if (rng.Bernoulli(0.05) && !recent.empty()) {
      const size_t pick = rng.NextUint64(recent.size());
      if (exchange->Delete(recent[pick])) ++cancels;
    }
  }
  const double feed_seconds = feed_timer.ElapsedSeconds();
  exchange->RunCatchupToGoal();

  const EngineStats stats = exchange->Stats();
  std::printf("Processed %zu orders and %zu cancellations in %.2fs "
              "(%.0f req/s)\n",
              orders, cancels, feed_seconds,
              static_cast<double>(orders + cancels) / feed_seconds);
  std::printf("Automatic re-partitions: %lu full, %lu partial\n",
              static_cast<unsigned long>(stats.repartitions),
              static_cast<unsigned long>(stats.partial_repartitions));

  // Analyst queries: total traded volume by price band.
  std::printf("\n%-28s %16s %14s %16s\n", "price band", "est. volume",
              "+/- (95%)", "exact volume");
  for (double band_lo : {5.0, 20.0, 40.0, 80.0}) {
    AggQuery q;
    q.func = AggFunc::kSum;
    q.agg_column = kVolume;
    q.predicate_columns = {kClose};
    q.rect = Rectangle({band_lo}, {band_lo * 2});
    Timer latency;
    const QueryResult r = exchange->Query(q);
    const double ms = latency.ElapsedMillis();
    // Sharded engines expose no single archive table to scan; the exact
    // column then reads n/a rather than a fabricated number.
    const auto truth = exchange->table() != nullptr
                           ? ExactAnswer(exchange->table()->store(), q)
                           : std::nullopt;
    if (truth.has_value()) {
      std::printf("$%-6.0f - $%-6.0f (%6.3fms) %16.3e %14.3e %16.3e\n",
                  band_lo, band_lo * 2, ms, r.estimate, r.ci_half_width,
                  *truth);
    } else {
      std::printf("$%-6.0f - $%-6.0f (%6.3fms) %16.3e %14.3e %16s\n",
                  band_lo, band_lo * 2, ms, r.estimate, r.ci_half_width,
                  "n/a");
    }
  }
  return 0;
}
