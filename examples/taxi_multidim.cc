// Multi-attribute analytics on the taxi feed: a 2-D synopsis over
// (pickup_time_of_day, trip_distance) answering fare aggregations — the
// higher-dimensional k-d partitioning path (Sec. 5.3), plus the
// multi-template fallbacks of Sec. 5.5 when an analyst asks something the
// synopsis was not built for. Run with engine=multi to build the mismatched
// template on demand from the pooled sample instead of falling back.

#include <cstdio>
#include <memory>

#include "api/registry.h"
#include "data/generators.h"
#include "data/ground_truth.h"

using namespace janus;

int main(int argc, char** argv) {
  const ArgMap args(argc, argv);
  GeneratedDataset ds = GenerateDataset(DatasetKind::kNycTaxi, 120000, 13);
  const int kDistance = 2;
  const int kPassengers = 3;
  const int kFare = 4;
  const int kTimeOfDay = 5;

  EngineConfig config = EngineConfig::FromArgs(args);
  config.schema = ds.schema;
  config.agg_column = kFare;
  config.predicate_columns = {kTimeOfDay, kDistance};  // 2-D template
  config.num_leaves = 256;
  config.sample_rate = 0.02;
  config.catchup_rate = 0.10;
  config.extra_tracked_columns = {kPassengers};  // Sec. 5.5, method 2.i

  auto city = EngineRegistry::Create(config);
  city->LoadInitial(ds.rows);
  city->Initialize();
  city->RunCatchupToGoal();

  auto report = [&](const char* label, const AggQuery& q) {
    const QueryResult r = city->Query(q);
    // Sharded engines expose no single archive table to scan for an exact
    // answer; the column then reads n/a rather than a fabricated number.
    const auto truth = city->table() != nullptr
                           ? ExactAnswer(city->table()->store(), q)
                           : std::nullopt;
    if (truth.has_value()) {
      std::printf("%-44s %12.2f +/- %8.2f   (exact %12.2f)\n", label,
                  r.estimate, r.ci_half_width, *truth);
    } else {
      std::printf("%-44s %12.2f +/- %8.2f   (exact %12s)\n", label,
                  r.estimate, r.ci_half_width, "n/a");
    }
  };

  // Native template: fare revenue of short evening trips.
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = kFare;
  q.predicate_columns = {kTimeOfDay, kDistance};
  q.rect = Rectangle({18 * 3600.0, 0.0}, {22 * 3600.0, 2.0});
  report("SUM(fare) evening, short trips", q);

  q.func = AggFunc::kAvg;
  report("AVG(fare) evening, short trips", q);

  // Different aggregation attribute, tracked: passenger volume.
  q.func = AggFunc::kSum;
  q.agg_column = kPassengers;
  report("SUM(passengers) evening, short trips", q);

  // Morning rush, any distance.
  q.agg_column = kFare;
  q.func = AggFunc::kCount;
  q.rect = Rectangle({7 * 3600.0, 0.0}, {10 * 3600.0, 1e9});
  report("COUNT(*) morning rush", q);

  // A template the synopsis was NOT built for (predicate on distance only):
  // answered through the uniform-sample fallback of Sec. 5.5 ("janus"), or
  // by a tree built on demand from the pooled sample ("multi").
  AggQuery other;
  other.func = AggFunc::kAvg;
  other.agg_column = kFare;
  other.predicate_columns = {kDistance};
  other.rect = Rectangle({5.0}, {50.0});
  report("AVG(fare) long trips [fallback template]", other);

  return 0;
}
