// Multi-attribute analytics on the taxi feed: a 2-D synopsis over
// (pickup_time_of_day, trip_distance) answering fare aggregations — the
// higher-dimensional k-d partitioning path (Sec. 5.3), plus the
// multi-template fallbacks of Sec. 5.5 when an analyst asks something the
// synopsis was not built for.

#include <cstdio>

#include "core/janus.h"
#include "data/generators.h"
#include "data/ground_truth.h"

using namespace janus;

int main() {
  GeneratedDataset ds = GenerateDataset(DatasetKind::kNycTaxi, 120000, 13);
  const int kDistance = 2;
  const int kPassengers = 3;
  const int kFare = 4;
  const int kTimeOfDay = 5;

  JanusOptions options;
  options.spec.agg_column = kFare;
  options.spec.predicate_columns = {kTimeOfDay, kDistance};  // 2-D template
  options.num_leaves = 256;
  options.sample_rate = 0.02;
  options.catchup_rate = 0.10;
  options.extra_tracked_columns = {kPassengers};  // Sec. 5.5, method 2.i

  JanusAqp city(options);
  city.LoadInitial(ds.rows);
  city.Initialize();
  city.RunCatchupToGoal();

  auto report = [&](const char* label, const AggQuery& q) {
    const QueryResult r = city.Query(q);
    const auto truth = ExactAnswer(city.table().live(), q);
    std::printf("%-44s %12.2f +/- %8.2f   (exact %12.2f)\n", label,
                r.estimate, r.ci_half_width, truth.value_or(0));
  };

  // Native template: fare revenue of short evening trips.
  AggQuery q;
  q.func = AggFunc::kSum;
  q.agg_column = kFare;
  q.predicate_columns = {kTimeOfDay, kDistance};
  q.rect = Rectangle({18 * 3600.0, 0.0}, {22 * 3600.0, 2.0});
  report("SUM(fare) evening, short trips", q);

  q.func = AggFunc::kAvg;
  report("AVG(fare) evening, short trips", q);

  // Different aggregation attribute, tracked: passenger volume.
  q.func = AggFunc::kSum;
  q.agg_column = kPassengers;
  report("SUM(passengers) evening, short trips", q);

  // Morning rush, any distance.
  q.agg_column = kFare;
  q.func = AggFunc::kCount;
  q.rect = Rectangle({7 * 3600.0, 0.0}, {10 * 3600.0, 1e9});
  report("COUNT(*) morning rush", q);

  // A template the synopsis was NOT built for (predicate on distance only):
  // answered through the uniform-sample fallback of Sec. 5.5.
  AggQuery other;
  other.func = AggFunc::kAvg;
  other.agg_column = kFare;
  other.predicate_columns = {kDistance};
  other.rect = Rectangle({5.0}, {50.0});
  report("AVG(fare) long trips [fallback template]", other);

  return 0;
}
