#ifndef JANUS_INDEX_DYNAMIC_KD_TREE_H_
#define JANUS_INDEX_DYNAMIC_KD_TREE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/schema.h"
#include "index/order_stat_tree.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// A point in predicate space with an aggregation value. `id` addresses
/// deletions (reservoir evictions name a specific sample).
struct KdPoint {
  std::array<double, kMaxColumns> x{};
  double a = 0;
  uint64_t id = 0;
};

/// Dynamic multi-dimensional index over the pooled sample S. Replaces the
/// paper's dynamic range tree (see DESIGN.md): a bucketed k-d tree with
/// subtree aggregates (count, sum a, sum a^2) and partial-rebuild
/// rebalancing. Supports:
///  * Insert / Delete in O(log m) amortized,
///  * rectangle aggregate queries (count, sum, sumsq),
///  * rectangle reporting (leaf-stratum access for the multi-template mode),
///  * enumeration of maximal "canonical cells" with at most `cap` points
///    inside a rectangle — the building block of the AVG max-variance index
///    (Appendix D.1).
class DynamicKdTree {
 public:
  explicit DynamicKdTree(int dims);
  ~DynamicKdTree();

  DynamicKdTree(const DynamicKdTree&) = delete;
  DynamicKdTree& operator=(const DynamicKdTree&) = delete;

  int dims() const { return dims_; }
  size_t size() const { return size_; }

  /// Bulk-load, replacing current contents. O(n log n).
  void Build(std::vector<KdPoint> points);

  void Insert(const KdPoint& p);

  /// Delete the point with the given id located at coordinates `x`.
  /// Returns false if no such point exists.
  bool Delete(const double* x, uint64_t id);

  /// Aggregates over all points inside `rect` (closed intervals).
  TreeAgg RangeAggregate(const Rectangle& rect) const;

  /// Append every point inside `rect` to `out`.
  void Report(const Rectangle& rect, std::vector<KdPoint>* out) const;

  /// Among subtrees ("canonical cells") fully inside `rect` whose point count
  /// is <= cap and whose parent exceeds cap (i.e. maximal small cells),
  /// return the aggregate of the one with the largest sumsq. Returns a
  /// zero-count aggregate when the rectangle is empty.
  TreeAgg MaxSumsqCell(const Rectangle& rect, size_t cap) const;

  /// All points (arbitrary order). O(n).
  void Dump(std::vector<KdPoint>* out) const;

  /// Bounding box of all stored points (the empty tree yields an
  /// inverted/degenerate box).
  Rectangle BoundingBox() const;

  /// Snapshot persistence. The tree's subtree statistics and bounding boxes
  /// are maintained incrementally (a delete subtracts from cached sums), so
  /// they are serialized verbatim rather than recomputed: a restored tree is
  /// bit-identical to the saved one, including the floating-point state of
  /// every cache and the exact report/traversal order.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: internal nodes have two children and no points,
  /// every point lies inside its leaf's (possibly loose) bounding box and
  /// every non-empty child box inside its parent's, subtree counts add up
  /// exactly, cached sum/sumsq match a recompute within floating-point
  /// tolerance (they are maintained incrementally, so bit-equality is not an
  /// invariant), and size() matches the root count. Throws
  /// InvariantViolation on the first inconsistency.
  void CheckInvariants() const;

 private:
  struct Node;

  /// Recursive worker for CheckInvariants(); verifies `n`'s subtree and
  /// returns its recomputed aggregate.
  TreeAgg CheckNode(const Node* n) const;

  static constexpr size_t kLeafCapacity = 16;
  static constexpr double kRebuildFactor = 0.65;

  Node* BuildRec(std::vector<KdPoint>* pts, size_t lo, size_t hi, int depth);
  void FreeTree(Node* n);
  void SaveNode(const Node* n, persist::Writer* w) const;
  Node* LoadNode(persist::Reader* r, int depth);
  void CollectPoints(Node* n, std::vector<KdPoint>* out) const;
  void MaybeRebuild(std::vector<Node*>* path);

  int dims_;
  size_t size_ = 0;
  Node* root_ = nullptr;
};

}  // namespace janus

#endif  // JANUS_INDEX_DYNAMIC_KD_TREE_H_
