#include "index/order_stat_tree.h"

#include <cassert>
#include <limits>
#include <string>

#include "persist/serde.h"
#include "util/invariants.h"

namespace janus {

struct OrderStatTree::Node {
  double key;
  double value;
  uint64_t priority;
  size_t count = 1;  // subtree node count
  double sum = 0;    // subtree sum of values
  double sumsq = 0;  // subtree sum of squared values
  Node* left = nullptr;
  Node* right = nullptr;

  Node(double k, double v, uint64_t pri) : key(k), value(v), priority(pri) {}

  void Pull() {
    count = 1;
    sum = value;
    sumsq = value * value;
    if (left) {
      count += left->count;
      sum += left->sum;
      sumsq += left->sumsq;
    }
    if (right) {
      count += right->count;
      sum += right->sum;
      sumsq += right->sumsq;
    }
  }
};

OrderStatTree::OrderStatTree() : rng_(0xC0FFEE) {}

OrderStatTree::~OrderStatTree() { FreeTree(root_); }

void OrderStatTree::FreeTree(Node* t) {
  if (!t) return;
  FreeTree(t->left);
  FreeTree(t->right);
  delete t;
}

void OrderStatTree::Clear() {
  FreeTree(root_);
  root_ = nullptr;
  size_ = 0;
}

OrderStatTree::Node* OrderStatTree::Merge(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->priority > b->priority) {
    a->right = Merge(a->right, b);
    a->Pull();
    return a;
  }
  b->left = Merge(a, b->left);
  b->Pull();
  return b;
}

void OrderStatTree::SplitByKey(Node* t, double key, bool or_equal, Node** l,
                               Node** r) {
  if (!t) {
    *l = *r = nullptr;
    return;
  }
  const bool go_right = or_equal ? (t->key <= key) : (t->key < key);
  if (go_right) {
    SplitByKey(t->right, key, or_equal, &t->right, r);
    *l = t;
    t->Pull();
  } else {
    SplitByKey(t->left, key, or_equal, l, &t->left);
    *r = t;
    t->Pull();
  }
}

void OrderStatTree::SplitByRank(Node* t, size_t r, Node** l, Node** r_out) {
  if (!t) {
    *l = *r_out = nullptr;
    return;
  }
  const size_t left_count = t->left ? t->left->count : 0;
  if (r <= left_count) {
    SplitByRank(t->left, r, l, &t->left);
    *r_out = t;
    t->Pull();
  } else {
    SplitByRank(t->right, r - left_count - 1, &t->right, r_out);
    *l = t;
    t->Pull();
  }
}

void OrderStatTree::Insert(double key, double a) {
  Node* node = new Node(key, a, rng_.Next());
  node->Pull();
  Node *l, *r;
  SplitByKey(root_, key, /*or_equal=*/false, &l, &r);
  root_ = Merge(Merge(l, node), r);
  ++size_;
}

bool OrderStatTree::Delete(double key, double a) {
  // Split out the run of nodes with this key, remove one with value a.
  Node *l, *mid, *r;
  SplitByKey(root_, key, /*or_equal=*/false, &l, &mid);
  SplitByKey(mid, key, /*or_equal=*/true, &mid, &r);
  // mid now holds all nodes with key == key. Find one with value == a.
  bool found = false;
  // Rebuild mid without one matching node via an explicit walk.
  std::vector<Node*> stack;
  Node* target = nullptr;
  if (mid) stack.push_back(mid);
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!found && n->value == a) {
      target = n;
      found = true;
      break;
    }
    if (n->left) stack.push_back(n->left);
    if (n->right) stack.push_back(n->right);
  }
  if (found) {
    // Remove target by splitting mid around its rank. Simpler: collect all
    // nodes, rebuild without target. The run of equal keys is almost always
    // tiny, so this costs O(run length).
    std::vector<Node*> nodes;
    std::vector<Node*> st;
    if (mid) st.push_back(mid);
    while (!st.empty()) {
      Node* n = st.back();
      st.pop_back();
      if (n->left) st.push_back(n->left);
      if (n->right) st.push_back(n->right);
      n->left = n->right = nullptr;
      if (n != target) {
        n->Pull();
        nodes.push_back(n);
      }
    }
    delete target;
    mid = nullptr;
    for (Node* n : nodes) mid = Merge(mid, n);
    --size_;
  }
  root_ = Merge(Merge(l, mid), r);
  return found;
}

size_t OrderStatTree::RankOf(double key) const {
  size_t rank = 0;
  const Node* t = root_;
  while (t) {
    if (t->key < key) {
      rank += (t->left ? t->left->count : 0) + 1;
      t = t->right;
    } else {
      t = t->left;
    }
  }
  return rank;
}

double OrderStatTree::Select(size_t r) const {
  assert(r < size_);
  const Node* t = root_;
  while (true) {
    const size_t lc = t->left ? t->left->count : 0;
    if (r < lc) {
      t = t->left;
    } else if (r == lc) {
      return t->key;
    } else {
      r -= lc + 1;
      t = t->right;
    }
  }
}

double OrderStatTree::SelectValue(size_t r) const {
  assert(r < size_);
  const Node* t = root_;
  while (true) {
    const size_t lc = t->left ? t->left->count : 0;
    if (r < lc) {
      t = t->left;
    } else if (r == lc) {
      return t->value;
    } else {
      r -= lc + 1;
      t = t->right;
    }
  }
}

TreeAgg OrderStatTree::PrefixAggregate(size_t r) const {
  TreeAgg agg;
  const Node* t = root_;
  size_t remaining = r;
  while (t && remaining > 0) {
    const size_t lc = t->left ? t->left->count : 0;
    if (remaining <= lc) {
      t = t->left;
    } else {
      if (t->left) {
        agg.count += static_cast<double>(t->left->count);
        agg.sum += t->left->sum;
        agg.sumsq += t->left->sumsq;
      }
      agg.count += 1;
      agg.sum += t->value;
      agg.sumsq += t->value * t->value;
      remaining -= lc + 1;
      t = t->right;
    }
  }
  return agg;
}

TreeAgg OrderStatTree::RankRangeAggregate(size_t lo, size_t hi) const {
  if (hi <= lo) return TreeAgg{};
  TreeAgg a = PrefixAggregate(hi);
  TreeAgg b = PrefixAggregate(lo);
  TreeAgg out;
  out.count = a.count - b.count;
  out.sum = a.sum - b.sum;
  out.sumsq = a.sumsq - b.sumsq;
  return out;
}

TreeAgg OrderStatTree::KeyRangeAggregate(double lo, double hi) const {
  const size_t rlo = RankOf(lo);
  // Rank of first key strictly greater than hi: count of keys <= hi.
  size_t rhi = 0;
  const Node* t = root_;
  while (t) {
    if (t->key <= hi) {
      rhi += (t->left ? t->left->count : 0) + 1;
      t = t->right;
    } else {
      t = t->left;
    }
  }
  return RankRangeAggregate(rlo, rhi);
}

void OrderStatTree::SaveTo(persist::Writer* w) const {
  w->Size(size_);
  rng_.SaveTo(w);
  SaveNode(root_, w);
}

void OrderStatTree::LoadFrom(persist::Reader* r) {
  FreeTree(root_);
  root_ = nullptr;
  size_ = r->Size();
  rng_.LoadFrom(r);
  root_ = LoadNode(r, 0);
}

void OrderStatTree::SaveNode(const Node* n, persist::Writer* w) const {
  if (n == nullptr) {
    w->Bool(false);
    return;
  }
  w->Bool(true);
  w->F64(n->key);
  w->F64(n->value);
  w->U64(n->priority);
  SaveNode(n->left, w);
  SaveNode(n->right, w);
}

OrderStatTree::Node* OrderStatTree::LoadNode(persist::Reader* r, int depth) {
  // Depth bound against forged payloads (see DynamicKdTree::LoadNode); a
  // treap with random priorities stays within O(log n) with overwhelming
  // probability, so 512 levels never occur legitimately.
  if (depth > 512) {
    throw persist::PersistError("snapshot corrupt: treap too deep");
  }
  if (!r->Bool()) return nullptr;
  const double key = r->F64();
  const double value = r->F64();
  const uint64_t pri = r->U64();
  Node* n = new Node(key, value, pri);
  n->left = LoadNode(r, depth + 1);
  n->right = LoadNode(r, depth + 1);
  // Children are fully pulled before the parent, so every cached subtree
  // aggregate is recomputed by the same bottom-up arithmetic the live tree's
  // split/merge path used — bit-identical to the saved instance.
  n->Pull();
  return n;
}

void OrderStatTree::Dump(std::vector<std::pair<double, double>>* out) const {
  out->clear();
  out->reserve(size_);
  std::vector<const Node*> stack;
  const Node* t = root_;
  while (t || !stack.empty()) {
    while (t) {
      stack.push_back(t);
      t = t->left;
    }
    t = stack.back();
    stack.pop_back();
    out->emplace_back(t->key, t->value);
    t = t->right;
  }
}

size_t OrderStatTree::CheckSubtree(const Node* n, double lo, double hi) const {
  if (!n) return 0;
  invariants::Require(lo <= n->key && n->key <= hi, "OrderStatTree",
                      "key " + std::to_string(n->key) +
                          " violates the in-order bounds [" +
                          std::to_string(lo) + ", " + std::to_string(hi) + "]");
  for (const Node* child : {n->left, n->right}) {
    invariants::Require(
        child == nullptr || child->priority <= n->priority, "OrderStatTree",
        "treap heap property violated: child priority above its parent's");
  }
  const size_t nl = CheckSubtree(n->left, lo, n->key);
  const size_t nr = CheckSubtree(n->right, n->key, hi);
  // Re-pull from the (already verified) children with Pull()'s arithmetic;
  // any mismatch means a rotation or rebuild forgot to refresh this node.
  TreeAgg expect{1.0, n->value, n->value * n->value};
  if (n->left) expect.Add({static_cast<double>(n->left->count), n->left->sum,
                           n->left->sumsq});
  if (n->right) expect.Add({static_cast<double>(n->right->count),
                            n->right->sum, n->right->sumsq});
  invariants::Require(n->count == nl + nr + 1 &&
                          static_cast<double>(n->count) == expect.count &&
                          n->sum == expect.sum && n->sumsq == expect.sumsq,
                      "OrderStatTree",
                      "cached subtree aggregate differs from a re-pull "
                      "(count " +
                          std::to_string(n->count) + " vs " +
                          std::to_string(nl + nr + 1) + ")");
  return nl + nr + 1;
}

void OrderStatTree::CheckInvariants() const {
  const double inf = std::numeric_limits<double>::infinity();
  const size_t n = CheckSubtree(root_, -inf, inf);
  invariants::Require(n == size_, "OrderStatTree",
                      "root holds " + std::to_string(n) + " nodes, size() is " +
                          std::to_string(size_));
}

}  // namespace janus
