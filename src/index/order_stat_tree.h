#ifndef JANUS_INDEX_ORDER_STAT_TREE_H_
#define JANUS_INDEX_ORDER_STAT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Aggregate statistics of a set of (key, value) points: the moments the
/// variance formulas of Appendix C need.
struct TreeAgg {
  double count = 0;
  double sum = 0;    ///< sum of aggregation values a
  double sumsq = 0;  ///< sum of a^2

  void Add(const TreeAgg& o) {
    count += o.count;
    sum += o.sum;
    sumsq += o.sumsq;
  }
};

/// Dynamic 1-D index over samples: a treap keyed by predicate value, with
/// subtree (count, sum a, sum a^2) aggregates. This is the "simple dynamic
/// search binary tree of space O(m)" of Sec. 4.2 / Sec. 5.2:
///   * O(log m) insert / delete,
///   * O(log m) rank / select (k-th smallest key),
///   * O(log m) aggregates over a key range or a rank range.
/// Duplicate keys are allowed.
class OrderStatTree {
 public:
  OrderStatTree();
  ~OrderStatTree();

  OrderStatTree(const OrderStatTree&) = delete;
  OrderStatTree& operator=(const OrderStatTree&) = delete;

  /// Insert a point with key `key` and aggregation value `a`.
  void Insert(double key, double a);

  /// Delete one point equal to (key, a). Returns false if absent.
  bool Delete(double key, double a);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Number of points with key < `key`.
  size_t RankOf(double key) const;

  /// Key of the r-th smallest point (0-based). Requires r < size().
  double Select(size_t r) const;

  /// Aggregation value of the r-th smallest point (0-based).
  double SelectValue(size_t r) const;

  /// Aggregates over the first `r` points in key order (a "prefix").
  TreeAgg PrefixAggregate(size_t r) const;

  /// Aggregates over rank range [lo, hi) in key order.
  TreeAgg RankRangeAggregate(size_t lo, size_t hi) const;

  /// Aggregates over key range [lo, hi] (closed).
  TreeAgg KeyRangeAggregate(double lo, double hi) const;

  /// In-order dump of (key, value) pairs; O(n). For tests and rebuilds.
  void Dump(std::vector<std::pair<double, double>>* out) const;

  /// Snapshot persistence. Serializes the exact treap shape (keys, values,
  /// priorities) plus the priority RNG; subtree aggregates are recomputed on
  /// load with the same Pull() arithmetic the live tree uses, so restored
  /// aggregates (and all future rebalances) are bit-identical.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: in-order keys are non-decreasing (the BST property
  /// with duplicates), every node's priority is >= its children's (the treap
  /// heap property), every cached subtree aggregate equals a re-pull from
  /// its children (same arithmetic as Pull(), so equality is exact), and
  /// size() matches the root count. Throws InvariantViolation on the first
  /// inconsistency.
  void CheckInvariants() const;

 private:
  struct Node;

  /// Recursive worker for CheckInvariants(); returns the verified node count
  /// of `n` and checks keys stay within [lo, hi].
  size_t CheckSubtree(const Node* n, double lo, double hi) const;

  Node* Merge(Node* a, Node* b);
  /// Splits by key: left subtree gets keys < key (or <= key if or_equal).
  void SplitByKey(Node* t, double key, bool or_equal, Node** l, Node** r);
  /// Splits by rank: left subtree gets the first r nodes.
  void SplitByRank(Node* t, size_t r, Node** l, Node** r_out);
  void FreeTree(Node* t);
  void SaveNode(const Node* n, persist::Writer* w) const;
  Node* LoadNode(persist::Reader* r, int depth);

  Node* root_ = nullptr;
  size_t size_ = 0;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_INDEX_ORDER_STAT_TREE_H_
