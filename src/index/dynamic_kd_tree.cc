#include "index/dynamic_kd_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "persist/common.h"
#include "util/invariants.h"

namespace janus {

struct DynamicKdTree::Node {
  // Internal node: children non-null, leaf_points empty.
  // Leaf: children null, points in leaf_points.
  int split_dim = -1;
  double split_val = 0;
  Node* left = nullptr;
  Node* right = nullptr;
  std::vector<KdPoint> leaf_points;

  // Subtree statistics.
  size_t count = 0;
  double sum = 0;
  double sumsq = 0;
  // Bounding box of the subtree's points (tight at build, grows on insert).
  std::array<double, kMaxColumns> bb_lo{};
  std::array<double, kMaxColumns> bb_hi{};

  bool IsLeaf() const { return left == nullptr; }

  void InitBox(int dims) {
    for (int d = 0; d < dims; ++d) {
      bb_lo[d] = std::numeric_limits<double>::max();
      bb_hi[d] = std::numeric_limits<double>::lowest();
    }
  }
  void GrowBox(const KdPoint& p, int dims) {
    for (int d = 0; d < dims; ++d) {
      bb_lo[d] = std::min(bb_lo[d], p.x[d]);
      bb_hi[d] = std::max(bb_hi[d], p.x[d]);
    }
  }
  void AddStats(const KdPoint& p) {
    ++count;
    sum += p.a;
    sumsq += p.a * p.a;
  }
  void RemoveStats(const KdPoint& p) {
    --count;
    sum -= p.a;
    sumsq -= p.a * p.a;
  }
};

namespace {

enum class BoxRelation { kDisjoint, kInside, kPartial };

BoxRelation Classify(const Rectangle& rect, const double* lo, const double* hi,
                     int dims) {
  bool inside = true;
  for (int d = 0; d < dims; ++d) {
    if (hi[d] < rect.lo(d) || lo[d] > rect.hi(d)) return BoxRelation::kDisjoint;
    if (lo[d] < rect.lo(d) || hi[d] > rect.hi(d)) inside = false;
  }
  return inside ? BoxRelation::kInside : BoxRelation::kPartial;
}

bool PointInRect(const Rectangle& rect, const KdPoint& p, int dims) {
  for (int d = 0; d < dims; ++d) {
    if (p.x[d] < rect.lo(d) || p.x[d] > rect.hi(d)) return false;
  }
  return true;
}

}  // namespace

DynamicKdTree::DynamicKdTree(int dims) : dims_(dims) {}

DynamicKdTree::~DynamicKdTree() { FreeTree(root_); }

void DynamicKdTree::FreeTree(Node* n) {
  if (!n) return;
  FreeTree(n->left);
  FreeTree(n->right);
  delete n;
}

DynamicKdTree::Node* DynamicKdTree::BuildRec(std::vector<KdPoint>* pts,
                                             size_t lo, size_t hi, int depth) {
  Node* n = new Node;
  n->InitBox(dims_);
  for (size_t i = lo; i < hi; ++i) {
    n->AddStats((*pts)[i]);
    n->GrowBox((*pts)[i], dims_);
  }
  if (hi - lo <= kLeafCapacity) {
    n->leaf_points.assign(pts->begin() + static_cast<ptrdiff_t>(lo),
                          pts->begin() + static_cast<ptrdiff_t>(hi));
    return n;
  }
  // Split on the widest dimension of the box (round-robin degenerates on
  // strongly clustered data).
  int dim = 0;
  double best_extent = -1;
  for (int d = 0; d < dims_; ++d) {
    const double extent = n->bb_hi[d] - n->bb_lo[d];
    if (extent > best_extent) {
      best_extent = extent;
      dim = d;
    }
  }
  if (best_extent <= 0) dim = depth % dims_;  // all points identical in box
  const size_t mid = lo + (hi - lo) / 2;
  std::nth_element(pts->begin() + static_cast<ptrdiff_t>(lo),
                   pts->begin() + static_cast<ptrdiff_t>(mid),
                   pts->begin() + static_cast<ptrdiff_t>(hi),
                   [dim](const KdPoint& a, const KdPoint& b) {
                     return a.x[dim] < b.x[dim];
                   });
  n->split_dim = dim;
  n->split_val = (*pts)[mid].x[dim];
  n->left = BuildRec(pts, lo, mid, depth + 1);
  n->right = BuildRec(pts, mid, hi, depth + 1);
  return n;
}

void DynamicKdTree::Build(std::vector<KdPoint> points) {
  FreeTree(root_);
  size_ = points.size();
  root_ = points.empty() ? nullptr
                         : BuildRec(&points, 0, points.size(), 0);
}

void DynamicKdTree::CollectPoints(Node* n, std::vector<KdPoint>* out) const {
  if (!n) return;
  if (n->IsLeaf()) {
    out->insert(out->end(), n->leaf_points.begin(), n->leaf_points.end());
    return;
  }
  CollectPoints(n->left, out);
  CollectPoints(n->right, out);
}

void DynamicKdTree::MaybeRebuild(std::vector<Node*>* path) {
  // Find the highest node on the insertion path that is out of balance and
  // rebuild its whole subtree (scapegoat strategy).
  for (size_t i = 0; i < path->size(); ++i) {
    Node* n = (*path)[i];
    if (n->IsLeaf()) continue;
    const size_t lc = n->left->count;
    const size_t rc = n->right->count;
    const size_t total = lc + rc;
    if (total > 2 * kLeafCapacity &&
        (static_cast<double>(std::max(lc, rc)) >
         kRebuildFactor * static_cast<double>(total))) {
      std::vector<KdPoint> pts;
      pts.reserve(n->count);
      CollectPoints(n, &pts);
      Node* rebuilt = BuildRec(&pts, 0, pts.size(), 0);
      // Graft rebuilt subtree in place of n.
      FreeTree(n->left);
      FreeTree(n->right);
      *n = std::move(*rebuilt);
      rebuilt->left = rebuilt->right = nullptr;
      rebuilt->leaf_points.clear();
      delete rebuilt;
      return;
    }
  }
}

void DynamicKdTree::Insert(const KdPoint& p) {
  ++size_;
  if (!root_) {
    root_ = new Node;
    root_->InitBox(dims_);
    root_->AddStats(p);
    root_->GrowBox(p, dims_);
    root_->leaf_points.push_back(p);
    return;
  }
  std::vector<Node*> path;
  Node* n = root_;
  while (true) {
    path.push_back(n);
    n->AddStats(p);
    n->GrowBox(p, dims_);
    if (n->IsLeaf()) break;
    n = (p.x[n->split_dim] < n->split_val) ? n->left : n->right;
  }
  n->leaf_points.push_back(p);
  if (n->leaf_points.size() > 2 * kLeafCapacity) {
    // Split the overflowing leaf in place.
    std::vector<KdPoint> pts = std::move(n->leaf_points);
    Node* rebuilt = BuildRec(&pts, 0, pts.size(), 0);
    *n = std::move(*rebuilt);
    rebuilt->left = rebuilt->right = nullptr;
    rebuilt->leaf_points.clear();
    delete rebuilt;
  }
  MaybeRebuild(&path);
}

bool DynamicKdTree::Delete(const double* x, uint64_t id) {
  if (!root_) return false;
  // Descend guided by splits; equal-to-split coordinates may live on either
  // side of older splits, so fall back to exploring both when on the
  // boundary. In practice the fast path almost always succeeds.
  std::vector<Node*> path;
  Node* leaf = nullptr;
  size_t leaf_idx = 0;
  // First locate the leaf containing the point (bounded search with box
  // pruning).
  std::vector<Node*> visit{root_};
  std::vector<std::vector<Node*>> parents{{}};
  while (!visit.empty()) {
    Node* n = visit.back();
    visit.pop_back();
    std::vector<Node*> par = parents.back();
    parents.pop_back();
    bool in_box = true;
    for (int d = 0; d < dims_; ++d) {
      if (x[d] < n->bb_lo[d] || x[d] > n->bb_hi[d]) {
        in_box = false;
        break;
      }
    }
    if (!in_box) continue;
    if (n->IsLeaf()) {
      for (size_t i = 0; i < n->leaf_points.size(); ++i) {
        if (n->leaf_points[i].id == id) {
          leaf = n;
          leaf_idx = i;
          path = par;
          path.push_back(n);
          break;
        }
      }
      if (leaf) break;
      continue;
    }
    par.push_back(n);
    visit.push_back(n->left);
    parents.push_back(par);
    visit.push_back(n->right);
    parents.push_back(par);
  }
  if (!leaf) return false;
  const KdPoint p = leaf->leaf_points[leaf_idx];
  leaf->leaf_points[leaf_idx] = leaf->leaf_points.back();
  leaf->leaf_points.pop_back();
  for (Node* n : path) n->RemoveStats(p);
  --size_;
  // Emptied subtrees are left in place: query traversals skip count == 0
  // nodes and the next scapegoat rebuild on an insertion path reclaims them.
  return true;
}

TreeAgg DynamicKdTree::RangeAggregate(const Rectangle& rect) const {
  TreeAgg agg;
  if (!root_) return agg;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->count == 0) continue;
    const BoxRelation rel =
        Classify(rect, n->bb_lo.data(), n->bb_hi.data(), dims_);
    if (rel == BoxRelation::kDisjoint) continue;
    if (rel == BoxRelation::kInside) {
      agg.count += static_cast<double>(n->count);
      agg.sum += n->sum;
      agg.sumsq += n->sumsq;
      continue;
    }
    if (n->IsLeaf()) {
      for (const KdPoint& p : n->leaf_points) {
        if (PointInRect(rect, p, dims_)) {
          agg.count += 1;
          agg.sum += p.a;
          agg.sumsq += p.a * p.a;
        }
      }
      continue;
    }
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return agg;
}

void DynamicKdTree::Report(const Rectangle& rect,
                           std::vector<KdPoint>* out) const {
  if (!root_) return;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->count == 0) continue;
    const BoxRelation rel =
        Classify(rect, n->bb_lo.data(), n->bb_hi.data(), dims_);
    if (rel == BoxRelation::kDisjoint) continue;
    if (n->IsLeaf()) {
      for (const KdPoint& p : n->leaf_points) {
        if (rel == BoxRelation::kInside || PointInRect(rect, p, dims_)) {
          out->push_back(p);
        }
      }
      continue;
    }
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
}

TreeAgg DynamicKdTree::MaxSumsqCell(const Rectangle& rect, size_t cap) const {
  TreeAgg best;
  if (!root_) return best;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->count == 0) continue;
    const BoxRelation rel =
        Classify(rect, n->bb_lo.data(), n->bb_hi.data(), dims_);
    if (rel == BoxRelation::kDisjoint) continue;
    if (rel == BoxRelation::kInside && n->count <= cap) {
      if (n->sumsq > best.sumsq) {
        best.count = static_cast<double>(n->count);
        best.sum = n->sum;
        best.sumsq = n->sumsq;
      }
      continue;  // maximal cell; no need to descend
    }
    if (n->IsLeaf()) {
      // Partially covered leaf (or an inside leaf above cap, impossible as
      // leaves hold <= 2*kLeafCapacity points): scan matching points as a
      // single candidate cell if they fit under the cap.
      TreeAgg agg;
      for (const KdPoint& p : n->leaf_points) {
        if (PointInRect(rect, p, dims_)) {
          agg.count += 1;
          agg.sum += p.a;
          agg.sumsq += p.a * p.a;
        }
      }
      if (agg.count > 0 && agg.count <= static_cast<double>(cap) &&
          agg.sumsq > best.sumsq) {
        best = agg;
      }
      continue;
    }
    stack.push_back(n->left);
    stack.push_back(n->right);
  }
  return best;
}

Rectangle DynamicKdTree::BoundingBox() const {
  std::vector<double> lo(static_cast<size_t>(dims_), 0.0);
  std::vector<double> hi(static_cast<size_t>(dims_), 0.0);
  if (root_) {
    for (int d = 0; d < dims_; ++d) {
      lo[static_cast<size_t>(d)] = root_->bb_lo[d];
      hi[static_cast<size_t>(d)] = root_->bb_hi[d];
    }
  }
  return Rectangle(std::move(lo), std::move(hi));
}

void DynamicKdTree::Dump(std::vector<KdPoint>* out) const {
  out->clear();
  out->reserve(size_);
  CollectPoints(root_, out);
}

void DynamicKdTree::SaveNode(const Node* n, persist::Writer* w) const {
  if (n == nullptr) {
    w->Bool(false);
    return;
  }
  w->Bool(true);
  w->Bool(n->IsLeaf());
  w->I32(n->split_dim);
  w->F64(n->split_val);
  w->Size(n->count);
  w->F64(n->sum);
  w->F64(n->sumsq);
  for (int d = 0; d < kMaxColumns; ++d) {
    w->F64(n->bb_lo[static_cast<size_t>(d)]);
    w->F64(n->bb_hi[static_cast<size_t>(d)]);
  }
  if (n->IsLeaf()) {
    w->Size(n->leaf_points.size());
    for (const KdPoint& p : n->leaf_points) persist::SaveKdPoint(p, w);
  } else {
    SaveNode(n->left, w);
    SaveNode(n->right, w);
  }
}

DynamicKdTree::Node* DynamicKdTree::LoadNode(persist::Reader* r, int depth) {
  // Depth bound: the checksum catches accidental corruption, but a forged
  // payload could encode a pathologically deep chain and blow the stack
  // before any structural validation fires. Legitimate trees are scapegoat-
  // balanced (depth ~1.6*log2(n)), so 512 is unreachable in practice.
  if (depth > 512) {
    throw persist::PersistError("snapshot corrupt: kd-tree too deep");
  }
  if (!r->Bool()) return nullptr;
  const bool is_leaf = r->Bool();
  Node* n = new Node;
  n->split_dim = r->I32();
  n->split_val = r->F64();
  n->count = r->Size();
  n->sum = r->F64();
  n->sumsq = r->F64();
  for (int d = 0; d < kMaxColumns; ++d) {
    n->bb_lo[static_cast<size_t>(d)] = r->F64();
    n->bb_hi[static_cast<size_t>(d)] = r->F64();
  }
  if (is_leaf) {
    n->leaf_points.resize(r->Size());
    for (KdPoint& p : n->leaf_points) p = persist::LoadKdPoint(r);
  } else {
    n->left = LoadNode(r, depth + 1);
    n->right = LoadNode(r, depth + 1);
    if (n->left == nullptr || n->right == nullptr) {
      FreeTree(n);
      throw persist::PersistError(
          "snapshot corrupt: kd internal node missing a child");
    }
  }
  return n;
}

void DynamicKdTree::SaveTo(persist::Writer* w) const {
  w->I32(dims_);
  w->Size(size_);
  SaveNode(root_, w);
}

void DynamicKdTree::LoadFrom(persist::Reader* r) {
  const int dims = r->I32();
  if (dims != dims_) {
    throw persist::PersistError(
        "snapshot corrupt: kd-tree dimensionality mismatch");
  }
  FreeTree(root_);
  root_ = nullptr;
  size_ = r->Size();
  root_ = LoadNode(r, 0);
}

namespace {

/// Incrementally maintained sums drift from a fresh recompute by rounding;
/// accept a relative error proportional to the recomputed magnitude.
bool CloseEnough(double cached, double fresh) {
  const double tol = 1e-6 * std::max({1.0, std::abs(cached), std::abs(fresh)});
  return std::abs(cached - fresh) <= tol;
}

}  // namespace

TreeAgg DynamicKdTree::CheckNode(const Node* n) const {
  TreeAgg fresh;
  if (n->IsLeaf()) {
    for (const KdPoint& p : n->leaf_points) {
      for (int d = 0; d < dims_; ++d) {
        invariants::Require(n->bb_lo[d] <= p.x[d] && p.x[d] <= n->bb_hi[d],
                            "DynamicKdTree",
                            "leaf point outside its bounding box in dim " +
                                std::to_string(d));
      }
      fresh.Add({1.0, p.a, p.a * p.a});
    }
  } else {
    invariants::Require(n->left != nullptr && n->right != nullptr &&
                            n->leaf_points.empty(),
                        "DynamicKdTree",
                        "internal node missing a child or holding points");
    invariants::Require(0 <= n->split_dim && n->split_dim < dims_,
                        "DynamicKdTree",
                        "split dimension " + std::to_string(n->split_dim) +
                            " out of range for " + std::to_string(dims_) +
                            " dims");
    for (const Node* child : {n->left, n->right}) {
      if (child->count > 0) {
        for (int d = 0; d < dims_; ++d) {
          invariants::Require(
              n->bb_lo[d] <= child->bb_lo[d] && child->bb_hi[d] <= n->bb_hi[d],
              "DynamicKdTree",
              "child bounding box escapes its parent's in dim " +
                  std::to_string(d));
        }
      }
      fresh.Add(CheckNode(child));
    }
  }
  invariants::Require(static_cast<double>(n->count) == fresh.count,
                      "DynamicKdTree",
                      "cached subtree count " + std::to_string(n->count) +
                          " differs from recount " +
                          std::to_string(fresh.count));
  invariants::Require(
      CloseEnough(n->sum, fresh.sum) && CloseEnough(n->sumsq, fresh.sumsq),
      "DynamicKdTree", "cached subtree sum/sumsq differ from a recompute");
  return fresh;
}

void DynamicKdTree::CheckInvariants() const {
  const size_t n =
      root_ ? static_cast<size_t>(CheckNode(root_).count) : size_t{0};
  invariants::Require(n == size_, "DynamicKdTree",
                      "root holds " + std::to_string(n) +
                          " points, size() is " + std::to_string(size_));
}

}  // namespace janus
