#ifndef JANUS_UTIL_INVARIANTS_H_
#define JANUS_UTIL_INVARIANTS_H_

#include <stdexcept>
#include <string>

namespace janus {

/// Thrown by the structural self-audits (CheckInvariants() on engines and
/// on the index/sample structures) when a structure's internal consistency
/// contract is broken — a cached aggregate that no longer matches a re-pull,
/// an id→position index entry pointing at the wrong row, a treap violating
/// its heap property. An InvariantViolation always means a bug in this
/// codebase (or deliberate corruption in a negative test), never bad user
/// input.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace invariants {

/// Throws InvariantViolation("<structure>: <detail>").
[[noreturn]] void Fail(const char* structure, const std::string& detail);

/// Throws unless `ok`.
inline void Require(bool ok, const char* structure, const std::string& detail) {
  if (!ok) Fail(structure, detail);
}

/// Whether the test suites should audit after mutations. Controlled by the
/// JANUS_AUDIT_INVARIANTS environment knob: "1"/"on"/"true" forces audits
/// on, "0"/"off"/"false" forces them off, unset defaults to on in debug
/// (!NDEBUG) builds and off in release builds. The CheckInvariants() entry
/// points themselves always run when called — this gate only decides whether
/// the suites call them. Read once; cached.
bool AuditEnabled();

/// Audit `structure` (anything with a CheckInvariants() const method) iff
/// AuditEnabled(). The hook the conformance and property suites call after
/// mutation phases.
template <typename T>
void MaybeAudit(const T& structure) {
  if (AuditEnabled()) structure.CheckInvariants();
}

}  // namespace invariants
}  // namespace janus

#endif  // JANUS_UTIL_INVARIANTS_H_
