#ifndef JANUS_UTIL_MPSC_QUEUE_H_
#define JANUS_UTIL_MPSC_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

/// Bounded multi-producer queue feeding one consumer thread: the update
/// channel between client threads and a shard's maintenance thread in the
/// sharded engine. Push() applies backpressure (blocks while the queue is
/// full), so a burst of producers can never outrun a shard's apply rate by
/// more than the queue capacity. The consumer drains in batches to amortize
/// wakeups and lock acquisitions.
///
/// Mutex-based rather than lock-free on purpose: the consumer's per-item
/// work (synopsis maintenance) dwarfs queue overhead, and a mutex keeps the
/// queue trivially ThreadSanitizer-clean. Any thread may call Close(); after
/// it, Push() rejects and PopBatch() drains the remainder then returns 0.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueue one item, blocking while the queue is at capacity. Returns
  /// false (and drops the item) once the queue is closed.
  bool Push(T item) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) cv_not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_not_empty_.NotifyOne();
    return true;
  }

  /// Append up to `max_items` items to `*out`. Blocks while the queue is
  /// empty and open; returns 0 only when the queue is closed and fully
  /// drained (the consumer's termination signal).
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    size_t n = 0;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) cv_not_empty_.Wait(&mu_);
      n = std::min(max_items, items_.size());
      for (size_t i = 0; i < n; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (n > 0) cv_not_full_.NotifyAll();
    return n;
  }

  /// Reject further pushes and wake all waiters. Idempotent.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    cv_not_empty_.NotifyAll();
    cv_not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_not_full_;
  CondVar cv_not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace janus

#endif  // JANUS_UTIL_MPSC_QUEUE_H_
