#ifndef JANUS_UTIL_MPSC_QUEUE_H_
#define JANUS_UTIL_MPSC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace janus {

/// Bounded multi-producer queue feeding one consumer thread: the update
/// channel between client threads and a shard's maintenance thread in the
/// sharded engine. Push() applies backpressure (blocks while the queue is
/// full), so a burst of producers can never outrun a shard's apply rate by
/// more than the queue capacity. The consumer drains in batches to amortize
/// wakeups and lock acquisitions.
///
/// Mutex-based rather than lock-free on purpose: the consumer's per-item
/// work (synopsis maintenance) dwarfs queue overhead, and a mutex keeps the
/// queue trivially ThreadSanitizer-clean. Any thread may call Close(); after
/// it, Push() rejects and PopBatch() drains the remainder then returns 0.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueue one item, blocking while the queue is at capacity. Returns
  /// false (and drops the item) once the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_not_full_.wait(lock,
                      [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    cv_not_empty_.notify_one();
    return true;
  }

  /// Append up to `max_items` items to `*out`. Blocks while the queue is
  /// empty and open; returns 0 only when the queue is closed and fully
  /// drained (the consumer's termination signal).
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    const size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) cv_not_full_.notify_all();
    return n;
  }

  /// Reject further pushes and wake all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_not_empty_.notify_all();
    cv_not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace janus

#endif  // JANUS_UTIL_MPSC_QUEUE_H_
