#ifndef JANUS_UTIL_ROOM_LOCK_H_
#define JANUS_UTIL_ROOM_LOCK_H_

#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

/// Group mutual exclusion ("room") lock for the AqpEngine concurrency
/// contract: any number of *readers* (queries, stats, snapshot writes) share
/// the read room, any number of *updaters* (inserts, deletes, catch-up)
/// share the update room, the two rooms exclude each other, and *exclusive*
/// entrants (initialization, re-optimization, snapshot restore) exclude
/// everything.
///
/// Unlike std::shared_mutex this gives engines whose maintenance path is
/// internally thread-safe (janus: per-leaf statistic locks) full update
/// concurrency while still fencing queries off the half-applied state.
///
/// Fairness: cohort hand-off with admission budgets. While a room is
/// uncontested its budget is unlimited, so same-room entrants run fully
/// concurrently. The first *opposite* arrival freezes the active room's
/// budget (no new entrants join the running cohort), the cohort drains, and
/// the drain admits the entire waiting opposite cohort in one turn (budget =
/// number waiting, or unlimited again if nobody waits). Under sustained
/// mixed load the rooms therefore alternate cohort-by-cohort — full
/// intra-room concurrency, and neither a steady update stream nor a steady
/// query stream can starve the other side, no matter when a waiter arrived.
/// A waiting exclusive entrant blocks all new room entries. Entries are not
/// thread-bound (a lock may be released by a different thread than acquired
/// it) and not reentrant.
///
/// To the static analysis the whole lock is one capability: the read room
/// acquires it shared, the update and exclusive rooms acquire it
/// exclusively. That is deliberately stricter than the runtime semantics
/// (concurrent updaters DO share the update room at runtime) — the analysis
/// only needs the property that read-room holders never coexist with
/// mutators, which shared-vs-exclusive models exactly; update-room
/// concurrency is a runtime admission policy the analysis need not track.
class CAPABILITY("room_lock") RoomLock {
 public:
  void LockRead() ACQUIRE_SHARED() {
    MutexLock lock(&mu_);
    // Contesting an active, free-running update cohort bounds it: no new
    // updaters join, so it drains and the turn flips.
    if (updaters_ > 0 && updater_pass_ == kUnlimited) updater_pass_ = 0;
    ++waiting_readers_;
    while (!(!exclusive_ && waiting_exclusive_ == 0 && updaters_ == 0 &&
             reader_pass_ > 0)) {
      cv_.Wait(&mu_);
    }
    --waiting_readers_;
    ++readers_;
    if (reader_pass_ != kUnlimited) --reader_pass_;
  }

  void UnlockRead() RELEASE_SHARED() {
    MutexLock lock(&mu_);
    if (--readers_ == 0) {
      // Hand the turn over: admit the whole waiting updater cohort, or —
      // with no updater interest — reopen our own side so late readers
      // stuck behind an exhausted budget proceed.
      updater_pass_ = waiting_updaters_ > 0
                          ? static_cast<size_t>(waiting_updaters_)
                          : kUnlimited;
      if (waiting_updaters_ == 0) reader_pass_ = kUnlimited;
      cv_.NotifyAll();
    }
  }

  void LockUpdate() ACQUIRE() {
    MutexLock lock(&mu_);
    if (readers_ > 0 && reader_pass_ == kUnlimited) reader_pass_ = 0;
    ++waiting_updaters_;
    while (!(!exclusive_ && waiting_exclusive_ == 0 && readers_ == 0 &&
             updater_pass_ > 0)) {
      cv_.Wait(&mu_);
    }
    --waiting_updaters_;
    ++updaters_;
    if (updater_pass_ != kUnlimited) --updater_pass_;
  }

  void UnlockUpdate() RELEASE() {
    MutexLock lock(&mu_);
    if (--updaters_ == 0) {
      reader_pass_ = waiting_readers_ > 0
                         ? static_cast<size_t>(waiting_readers_)
                         : kUnlimited;
      if (waiting_readers_ == 0) updater_pass_ = kUnlimited;
      cv_.NotifyAll();
    }
  }

  void LockExclusive() ACQUIRE() {
    MutexLock lock(&mu_);
    ++waiting_exclusive_;
    while (!(!exclusive_ && readers_ == 0 && updaters_ == 0)) {
      cv_.Wait(&mu_);
    }
    --waiting_exclusive_;
    exclusive_ = true;
  }

  void UnlockExclusive() RELEASE() {
    MutexLock lock(&mu_);
    exclusive_ = false;
    // Fresh start: admit whoever waited out the exclusive section.
    reader_pass_ = waiting_readers_ > 0 ? static_cast<size_t>(waiting_readers_)
                                        : kUnlimited;
    updater_pass_ = waiting_updaters_ > 0
                        ? static_cast<size_t>(waiting_updaters_)
                        : kUnlimited;
    cv_.NotifyAll();
  }

 private:
  static constexpr size_t kUnlimited = static_cast<size_t>(-1);

  Mutex mu_;
  CondVar cv_;
  int readers_ GUARDED_BY(mu_) = 0;
  int updaters_ GUARDED_BY(mu_) = 0;
  int waiting_readers_ GUARDED_BY(mu_) = 0;
  int waiting_updaters_ GUARDED_BY(mu_) = 0;
  int waiting_exclusive_ GUARDED_BY(mu_) = 0;
  bool exclusive_ GUARDED_BY(mu_) = false;
  /// Remaining admissions for each room this turn. A budget is zeroed only
  /// while the other room is occupied, and every drain grants the opposite
  /// side a fresh budget (and reopens its own side when unopposed), so at
  /// least one side can always make progress — no deadlock.
  size_t reader_pass_ GUARDED_BY(mu_) = kUnlimited;
  size_t updater_pass_ GUARDED_BY(mu_) = kUnlimited;
};

// Scoped room guards. Each accepts nullptr as "no lock" — the path used by
// engines that synchronize internally (sharded) — and the analysis handles
// the conditional acquisition through the null check, as with
// absl::MutexLockMaybe.

/// Shared (read-room) hold for the guard's scope.
class SCOPED_CAPABILITY ReadRoom {
 public:
  explicit ReadRoom(RoomLock* lock) ACQUIRE_SHARED(lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockRead();
  }
  ~ReadRoom() RELEASE() {
    if (lock_ != nullptr) lock_->UnlockRead();
  }
  ReadRoom(const ReadRoom&) = delete;
  ReadRoom& operator=(const ReadRoom&) = delete;

 private:
  RoomLock* const lock_;
};

/// Update-room hold: exclusive to the analysis (see the RoomLock comment),
/// concurrent with other updaters at runtime.
class SCOPED_CAPABILITY UpdateRoom {
 public:
  explicit UpdateRoom(RoomLock* lock) ACQUIRE(lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockUpdate();
  }
  ~UpdateRoom() RELEASE() {
    if (lock_ != nullptr) lock_->UnlockUpdate();
  }
  UpdateRoom(const UpdateRoom&) = delete;
  UpdateRoom& operator=(const UpdateRoom&) = delete;

 private:
  RoomLock* const lock_;
};

/// Exclusive hold: fences out both rooms.
class SCOPED_CAPABILITY ExclusiveRoom {
 public:
  explicit ExclusiveRoom(RoomLock* lock) ACQUIRE(lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockExclusive();
  }
  ~ExclusiveRoom() RELEASE() {
    if (lock_ != nullptr) lock_->UnlockExclusive();
  }
  ExclusiveRoom(const ExclusiveRoom&) = delete;
  ExclusiveRoom& operator=(const ExclusiveRoom&) = delete;

 private:
  RoomLock* const lock_;
};

}  // namespace janus

#endif  // JANUS_UTIL_ROOM_LOCK_H_
