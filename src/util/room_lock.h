#ifndef JANUS_UTIL_ROOM_LOCK_H_
#define JANUS_UTIL_ROOM_LOCK_H_

#include <condition_variable>
#include <mutex>

namespace janus {

/// Group mutual exclusion ("room") lock for the AqpEngine concurrency
/// contract: any number of *readers* (queries, stats, snapshot writes) share
/// the read room, any number of *updaters* (inserts, deletes, catch-up)
/// share the update room, the two rooms exclude each other, and *exclusive*
/// entrants (initialization, re-optimization, snapshot restore) exclude
/// everything.
///
/// Unlike std::shared_mutex this gives engines whose maintenance path is
/// internally thread-safe (janus: per-leaf statistic locks) full update
/// concurrency while still fencing queries off the half-applied state.
///
/// Fairness: cohort hand-off with admission budgets. While a room is
/// uncontested its budget is unlimited, so same-room entrants run fully
/// concurrently. The first *opposite* arrival freezes the active room's
/// budget (no new entrants join the running cohort), the cohort drains, and
/// the drain admits the entire waiting opposite cohort in one turn (budget =
/// number waiting, or unlimited again if nobody waits). Under sustained
/// mixed load the rooms therefore alternate cohort-by-cohort — full
/// intra-room concurrency, and neither a steady update stream nor a steady
/// query stream can starve the other side, no matter when a waiter arrived.
/// A waiting exclusive entrant blocks all new room entries. Entries are not
/// thread-bound (a lock may be released by a different thread than acquired
/// it) and not reentrant.
class RoomLock {
 public:
  void LockRead() {
    std::unique_lock<std::mutex> lock(mu_);
    // Contesting an active, free-running update cohort bounds it: no new
    // updaters join, so it drains and the turn flips.
    if (updaters_ > 0 && updater_pass_ == kUnlimited) updater_pass_ = 0;
    ++waiting_readers_;
    cv_.wait(lock, [this] {
      return !exclusive_ && waiting_exclusive_ == 0 && updaters_ == 0 &&
             reader_pass_ > 0;
    });
    --waiting_readers_;
    ++readers_;
    if (reader_pass_ != kUnlimited) --reader_pass_;
  }

  void UnlockRead() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--readers_ == 0) {
      // Hand the turn over: admit the whole waiting updater cohort, or —
      // with no updater interest — reopen our own side so late readers
      // stuck behind an exhausted budget proceed.
      updater_pass_ = waiting_updaters_ > 0
                          ? static_cast<size_t>(waiting_updaters_)
                          : kUnlimited;
      if (waiting_updaters_ == 0) reader_pass_ = kUnlimited;
      cv_.notify_all();
    }
  }

  void LockUpdate() {
    std::unique_lock<std::mutex> lock(mu_);
    if (readers_ > 0 && reader_pass_ == kUnlimited) reader_pass_ = 0;
    ++waiting_updaters_;
    cv_.wait(lock, [this] {
      return !exclusive_ && waiting_exclusive_ == 0 && readers_ == 0 &&
             updater_pass_ > 0;
    });
    --waiting_updaters_;
    ++updaters_;
    if (updater_pass_ != kUnlimited) --updater_pass_;
  }

  void UnlockUpdate() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--updaters_ == 0) {
      reader_pass_ = waiting_readers_ > 0
                         ? static_cast<size_t>(waiting_readers_)
                         : kUnlimited;
      if (waiting_readers_ == 0) updater_pass_ = kUnlimited;
      cv_.notify_all();
    }
  }

  void LockExclusive() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_exclusive_;
    cv_.wait(lock,
             [this] { return !exclusive_ && readers_ == 0 && updaters_ == 0; });
    --waiting_exclusive_;
    exclusive_ = true;
  }

  void UnlockExclusive() {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_ = false;
    // Fresh start: admit whoever waited out the exclusive section.
    reader_pass_ = waiting_readers_ > 0 ? static_cast<size_t>(waiting_readers_)
                                        : kUnlimited;
    updater_pass_ = waiting_updaters_ > 0
                        ? static_cast<size_t>(waiting_updaters_)
                        : kUnlimited;
    cv_.notify_all();
  }

 private:
  static constexpr size_t kUnlimited = static_cast<size_t>(-1);

  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int updaters_ = 0;
  int waiting_readers_ = 0;
  int waiting_updaters_ = 0;
  int waiting_exclusive_ = 0;
  bool exclusive_ = false;
  /// Remaining admissions for each room this turn. A budget is zeroed only
  /// while the other room is occupied, and every drain grants the opposite
  /// side a fresh budget (and reopens its own side when unopposed), so at
  /// least one side can always make progress — no deadlock.
  size_t reader_pass_ = kUnlimited;
  size_t updater_pass_ = kUnlimited;
};

/// Scoped guards.
class ReadRoom {
 public:
  explicit ReadRoom(RoomLock* lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockRead();
  }
  ~ReadRoom() {
    if (lock_ != nullptr) lock_->UnlockRead();
  }
  ReadRoom(const ReadRoom&) = delete;
  ReadRoom& operator=(const ReadRoom&) = delete;

 private:
  RoomLock* lock_;
};

class UpdateRoom {
 public:
  explicit UpdateRoom(RoomLock* lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockUpdate();
  }
  ~UpdateRoom() {
    if (lock_ != nullptr) lock_->UnlockUpdate();
  }
  UpdateRoom(const UpdateRoom&) = delete;
  UpdateRoom& operator=(const UpdateRoom&) = delete;

 private:
  RoomLock* lock_;
};

class ExclusiveRoom {
 public:
  explicit ExclusiveRoom(RoomLock* lock) : lock_(lock) {
    if (lock_ != nullptr) lock_->LockExclusive();
  }
  ~ExclusiveRoom() {
    if (lock_ != nullptr) lock_->UnlockExclusive();
  }
  ExclusiveRoom(const ExclusiveRoom&) = delete;
  ExclusiveRoom& operator=(const ExclusiveRoom&) = delete;

 private:
  RoomLock* lock_;
};

}  // namespace janus

#endif  // JANUS_UTIL_ROOM_LOCK_H_
