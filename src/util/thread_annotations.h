#ifndef JANUS_UTIL_THREAD_ANNOTATIONS_H_
#define JANUS_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis capability attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), compiled away on
/// toolchains without the attribute (GCC, MSVC). The CI `static-analysis` job
/// builds with clang and `-Wthread-safety -Werror`, turning every violation
/// of the locking discipline declared through these macros into a build
/// break.
///
/// Vocabulary:
///  - CAPABILITY / SCOPED_CAPABILITY mark a lock type / RAII guard type.
///  - GUARDED_BY / PT_GUARDED_BY tie data (or a pointee) to its lock.
///  - ACQUIRE / RELEASE (and *_SHARED) annotate lock & unlock methods.
///  - REQUIRES / REQUIRES_SHARED declare locks a function needs held.
///  - EXCLUDES declares locks a function must NOT hold (non-reentrancy).
///  - NO_THREAD_SAFETY_ANALYSIS opts a function out; every use in this
///    codebase must carry a comment justifying why the analysis cannot see
///    the synchronization (e.g. fencing provided by a higher layer).

#if defined(__clang__) && defined(__has_attribute)
#define JANUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define JANUS_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) JANUS_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY JANUS_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) JANUS_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) JANUS_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) JANUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) JANUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) JANUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  JANUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) JANUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  JANUS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) JANUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  JANUS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  JANUS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  JANUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  JANUS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) JANUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) JANUS_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  JANUS_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) JANUS_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  JANUS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // JANUS_UTIL_THREAD_ANNOTATIONS_H_
