#ifndef JANUS_UTIL_TIMER_H_
#define JANUS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace janus {

/// Simple monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time across repeated Start/Stop intervals.
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); ++laps_; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }
  uint64_t laps() const { return laps_; }
  void Reset() { total_seconds_ = 0; laps_ = 0; }

 private:
  Timer timer_;
  double total_seconds_ = 0;
  uint64_t laps_ = 0;
};

}  // namespace janus

#endif  // JANUS_UTIL_TIMER_H_
