#include "util/timer.h"

// Header-only implementation; this translation unit exists so the target has
// at least one object file and to keep the build layout uniform.
