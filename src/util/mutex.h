#ifndef JANUS_UTIL_MUTEX_H_
#define JANUS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace janus {

/// Thin wrappers over the std synchronization primitives carrying the
/// capability attributes from util/thread_annotations.h. libstdc++'s
/// std::mutex / std::lock_guard are not annotated, so clang's thread-safety
/// analysis cannot see their acquisitions; every lock that guards state
/// checked by GUARDED_BY must be one of these types instead. The wrappers
/// are zero-cost: each is exactly the std primitive plus attributes.

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII exclusive lock over a Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to Mutex. Wait() atomically releases and
/// re-acquires the caller's lock; to the static analysis the capability is
/// held throughout, which matches the caller's view (guarded state may only
/// be observed to change across the wait, never while the caller runs).
/// Predicate waits are deliberately absent: clang analyzes a lambda body as
/// a separate function that does not inherit the caller's capability set, so
/// callers write explicit `while (!cond) cv.Wait(&mu);` loops the analysis
/// can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Timed wait: returns false on timeout, true when notified (spurious
  /// wakeups report true too — callers re-check their predicate either
  /// way). Used by the serving tier's batch window and pump loops.
  bool WaitFor(Mutex* mu, int64_t micros) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const auto status = cv_.wait_for(lock, std::chrono::microseconds(micros));
    lock.release();  // the caller still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated std::shared_mutex: exclusive writers, shared readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace janus

#endif  // JANUS_UTIL_MUTEX_H_
