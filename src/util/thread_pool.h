#ifndef JANUS_UTIL_THREAD_POOL_H_
#define JANUS_UTIL_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

class ThreadPool;

/// One shared fan-out published to a ThreadPool with SubmitGang(): up to
/// `max_helpers` idle workers each claim a distinct slot in
/// [1, max_helpers] and run body(slot) once. This is the persistent-worker
/// dispatch path of the morsel-parallel scan layer: publishing a gang is a
/// single queue operation plus one NotifyAll, instead of one Submit()
/// (lock + wakeup) per helper, and workers that wake after the caller has
/// already closed the gang never touch it at all — a late helper costs
/// nothing instead of stalling the scan.
///
/// Lifetime: the GangTask lives on the caller's stack. The caller must call
/// ThreadPool::CloseGang() before destroying it; CloseGang blocks only on
/// helpers that actually entered the body (in-flight), not on unclaimed
/// slots.
class GangTask {
 public:
  GangTask(std::function<void(size_t)> body, size_t max_helpers)
      : body_(std::move(body)), max_helpers_(max_helpers) {}

  GangTask(const GangTask&) = delete;
  GangTask& operator=(const GangTask&) = delete;

 private:
  friend class ThreadPool;

  const std::function<void(size_t)> body_;
  const size_t max_helpers_;
  // All mutable state is guarded by the owning pool's mu_.
  size_t started_ = 0;  ///< slots handed out so far
  size_t active_ = 0;   ///< helpers currently inside body_
  bool closed_ = false;  ///< no new entrants (CloseGang ran)
  std::exception_ptr first_error_;
};

/// Fixed-size worker pool used for multi-threaded update processing (Fig. 5)
/// and for the parallel phase of DPT re-initialization (Sec. 4.3).
///
/// Tasks are plain std::function<void()>. WaitIdle() blocks until every
/// submitted task has completed; it is the synchronization point between the
/// re-initialization optimizer thread and the maintenance threads.
///
/// Exception contract: a task that throws does not kill its worker. The
/// first uncaught task exception is latched and rethrown by the next
/// WaitIdle() call (subsequent ones until then are dropped); the destructor
/// discards any latched exception rather than throw. A gang body that
/// throws latches into its GangTask and is rethrown by CloseGang().
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task);

  /// Publish a gang: idle workers start claiming slots immediately. The
  /// caller keeps running (typically draining the same shared morsel cursor
  /// as the helpers) and must CloseGang() before `gang` goes out of scope.
  void SubmitGang(GangTask* gang);

  /// Withdraw the gang (no new helpers may enter), wait for the in-flight
  /// ones to leave the body, and rethrow the first exception any of them
  /// raised. Idempotent per gang; must be called exactly once before the
  /// GangTask is destroyed.
  void CloseGang(GangTask* gang);

  /// Block until the queue is empty and all workers are idle. Rethrows the
  /// first exception any task raised since the last WaitIdle().
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  CondVar cv_gang_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Published gangs still accepting helpers, in publication order.
  std::deque<GangTask*> gangs_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// First uncaught exception from a task since the last WaitIdle().
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

}  // namespace janus

#endif  // JANUS_UTIL_THREAD_POOL_H_
