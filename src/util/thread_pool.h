#ifndef JANUS_UTIL_THREAD_POOL_H_
#define JANUS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace janus {

/// Fixed-size worker pool used for multi-threaded update processing (Fig. 5)
/// and for the parallel phase of DPT re-initialization (Sec. 4.3).
///
/// Tasks are plain std::function<void()>. WaitIdle() blocks until every
/// submitted task has completed; it is the synchronization point between the
/// re-initialization optimizer thread and the maintenance threads.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace janus

#endif  // JANUS_UTIL_THREAD_POOL_H_
