#ifndef JANUS_UTIL_THREAD_POOL_H_
#define JANUS_UTIL_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

/// Fixed-size worker pool used for multi-threaded update processing (Fig. 5)
/// and for the parallel phase of DPT re-initialization (Sec. 4.3).
///
/// Tasks are plain std::function<void()>. WaitIdle() blocks until every
/// submitted task has completed; it is the synchronization point between the
/// re-initialization optimizer thread and the maintenance threads.
///
/// Exception contract: a task that throws does not kill its worker. The
/// first uncaught task exception is latched and rethrown by the next
/// WaitIdle() call (subsequent ones until then are dropped); the destructor
/// discards any latched exception rather than throw.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle. Rethrows the
  /// first exception any task raised since the last WaitIdle().
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// First uncaught exception from a task since the last WaitIdle().
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

}  // namespace janus

#endif  // JANUS_UTIL_THREAD_POOL_H_
