#ifndef JANUS_UTIL_STATS_H_
#define JANUS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace janus {

/// Streaming first/second moment accumulator over scalar observations.
/// Supports removal, which the DPT node statistics need for deletions.
struct MomentAccumulator {
  double count = 0;
  double sum = 0;
  double sum_sq = 0;

  void Add(double x) {
    count += 1;
    sum += x;
    sum_sq += x * x;
  }
  void Remove(double x) {
    count -= 1;
    sum -= x;
    sum_sq -= x * x;
  }
  void Merge(const MomentAccumulator& o) {
    count += o.count;
    sum += o.sum;
    sum_sq += o.sum_sq;
  }
  void Subtract(const MomentAccumulator& o) {
    count -= o.count;
    sum -= o.sum;
    sum_sq -= o.sum_sq;
  }
  void Clear() { count = sum = sum_sq = 0; }

  double Mean() const { return count > 0 ? sum / count : 0.0; }
  /// Population variance (biased, divides by n). Clamped at zero to absorb
  /// floating-point cancellation.
  double Variance() const;
};

/// Percentile of a sample by linear interpolation between closest ranks at
/// rank p/100*(n-1) — the Hyndman–Fan type-7 estimator, NOT nearest-rank:
/// Percentile({1,2,3,4}, 50) is 2.5, not 2. Sorts a copy (v may be
/// unsorted). p in [0, 100]; p <= 0 returns the minimum, p >= 100 the
/// maximum, and an empty sample returns 0.
double Percentile(std::vector<double> v, double p);

/// Median convenience wrapper.
double Median(std::vector<double> v);

/// Arithmetic mean of a vector (0 for empty input).
double Mean(const std::vector<double>& v);

/// Normal quantile for two-sided confidence level, e.g. 0.95 -> 1.959964.
double NormalZ(double confidence);

}  // namespace janus

#endif  // JANUS_UTIL_STATS_H_
