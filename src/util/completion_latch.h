#ifndef JANUS_UTIL_COMPLETION_LATCH_H_
#define JANUS_UTIL_COMPLETION_LATCH_H_

#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

/// Per-call completion latch for fan-outs on a *shared* ThreadPool:
/// ThreadPool::WaitIdle() is pool-global, so concurrent fan-outs would wait
/// on each other's tasks (and a fan-out issued from a pool worker would
/// deadlock on itself). Each fan-out counts down its own latch instead.
///
/// Arrive() performs the whole count-down under the mutex, so the waiter
/// cannot observe zero and destroy the latch while a worker still holds a
/// reference to it.
class CompletionLatch {
 public:
  explicit CompletionLatch(size_t count) : remaining_(count) {}

  CompletionLatch(const CompletionLatch&) = delete;
  CompletionLatch& operator=(const CompletionLatch&) = delete;

  void Arrive() {
    MutexLock lock(&mu_);
    if (--remaining_ == 0) done_.NotifyAll();
  }

  void Wait() {
    MutexLock lock(&mu_);
    while (remaining_ != 0) done_.Wait(&mu_);
  }

 private:
  Mutex mu_;
  CondVar done_;
  size_t remaining_ GUARDED_BY(mu_);
};

}  // namespace janus

#endif  // JANUS_UTIL_COMPLETION_LATCH_H_
