#include "util/thread_pool.h"

#include <utility>

namespace janus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
  // A latched task exception nobody collected dies with the pool; the
  // destructor must not throw.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  std::exception_ptr err;
  {
    MutexLock lock(&mu_);
    while (!(queue_.empty() && active_ == 0)) cv_idle_.Wait(&mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!(stop_ || !queue_.empty())) cv_task_.Wait(&mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      MutexLock lock(&mu_);
      if (err && first_error_ == nullptr) first_error_ = err;
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace janus
