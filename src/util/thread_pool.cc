#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace janus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
  // A latched task exception nobody collected dies with the pool; the
  // destructor must not throw. Gangs must already be closed — CloseGang is
  // part of every fan-out's epilogue, and fan-outs never outlive the pool.
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::SubmitGang(GangTask* gang) {
  if (gang->max_helpers_ == 0) return;  // caller-only fan-out, nothing to do
  {
    MutexLock lock(&mu_);
    gangs_.push_back(gang);
  }
  // One wakeup for the whole fan-out: every sleeping worker races to claim a
  // slot, the losers go back to sleep. With per-helper Submit() this was one
  // lock + one NotifyOne per helper per scan.
  cv_task_.NotifyAll();
}

void ThreadPool::CloseGang(GangTask* gang) {
  std::exception_ptr err;
  {
    MutexLock lock(&mu_);
    if (!gang->closed_) {
      gang->closed_ = true;
      const auto it = std::find(gangs_.begin(), gangs_.end(), gang);
      if (it != gangs_.end()) gangs_.erase(it);
    }
    // Only in-flight helpers are waited on; slots nobody claimed are simply
    // never run (the caller has already drained the shared cursor).
    while (gang->active_ != 0) cv_gang_.Wait(&mu_);
    err = std::exchange(gang->first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WaitIdle() {
  std::exception_ptr err;
  {
    MutexLock lock(&mu_);
    while (!(queue_.empty() && active_ == 0)) cv_idle_.Wait(&mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    GangTask* gang = nullptr;
    size_t slot = 0;
    {
      MutexLock lock(&mu_);
      while (!(stop_ || !queue_.empty() || !gangs_.empty())) {
        cv_task_.Wait(&mu_);
      }
      if (stop_ && queue_.empty()) return;
      if (!gangs_.empty()) {
        // Gangs first: they are the latency-sensitive scan fan-outs and one
        // claim either helps immediately or retires the gang.
        gang = gangs_.front();
        slot = ++gang->started_;
        if (gang->started_ >= gang->max_helpers_) gangs_.pop_front();
        ++gang->active_;
        ++active_;
      } else {
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
    }
    std::exception_ptr err;
    try {
      if (gang != nullptr) {
        gang->body_(slot);
      } else {
        task();
      }
    } catch (...) {
      err = std::current_exception();
    }
    {
      MutexLock lock(&mu_);
      if (gang != nullptr) {
        if (err && gang->first_error_ == nullptr) gang->first_error_ = err;
        if (--gang->active_ == 0 && gang->closed_) cv_gang_.NotifyAll();
      } else if (err && first_error_ == nullptr) {
        first_error_ = err;
      }
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace janus
