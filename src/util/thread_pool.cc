#include "util/thread_pool.h"

namespace janus {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace janus
