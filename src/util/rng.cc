#include "util/rng.h"

#include <cmath>

#include "persist/serde.h"

namespace janus {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Rejection-inversion sampling (Hormann & Derflinger).
  const double b = std::pow(n, 1.0 - s);
  while (true) {
    const double u = NextDouble();
    const double x = std::pow((b - 1.0) * u + 1.0, 1.0 / (1.0 - s));
    const uint64_t k = static_cast<uint64_t>(x);
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (k >= 1 && k <= n && NextDouble() < ratio) return k;
  }
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Reservoir sampling over [0, n).
  for (size_t i = 0; i < n; ++i) {
    if (out.size() < k) {
      out.push_back(i);
    } else {
      size_t j = NextUint64(i + 1);
      if (j < k) out[j] = i;
    }
  }
  return out;
}

void Rng::SaveTo(persist::Writer* w) const {
  for (uint64_t s : s_) w->U64(s);
  w->Bool(have_cached_normal_);
  w->F64(cached_normal_);
}

void Rng::LoadFrom(persist::Reader* r) {
  for (uint64_t& s : s_) s = r->U64();
  have_cached_normal_ = r->Bool();
  cached_normal_ = r->F64();
}

}  // namespace janus
