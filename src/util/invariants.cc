#include "util/invariants.h"

#include <cstdlib>
#include <cstring>

namespace janus {
namespace invariants {

void Fail(const char* structure, const std::string& detail) {
  throw InvariantViolation(std::string(structure) + ": " + detail);
}

namespace {

bool ReadAuditKnob() {
  const char* v = std::getenv("JANUS_AUDIT_INVARIANTS");
  if (v == nullptr || *v == '\0') {
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace

bool AuditEnabled() {
  static const bool enabled = ReadAuditKnob();
  return enabled;
}

}  // namespace invariants
}  // namespace janus
