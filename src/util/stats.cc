#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace janus {

double MomentAccumulator::Variance() const {
  if (count <= 0) return 0.0;
  const double mean = sum / count;
  const double v = sum_sq / count - mean * mean;
  return v > 0 ? v : 0.0;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0) return v.front();
  if (p >= 100) return v.back();
  const double rank = p / 100.0 * (static_cast<double>(v.size()) - 1.0);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::vector<double> v) { return Percentile(std::move(v), 50.0); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

namespace {

// Acklam's rational approximation to the inverse normal CDF.
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

double NormalZ(double confidence) {
  const double alpha = 1.0 - confidence;
  return InverseNormalCdf(1.0 - alpha / 2.0);
}

}  // namespace janus
