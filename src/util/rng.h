#ifndef JANUS_UTIL_RNG_H_
#define JANUS_UTIL_RNG_H_

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Deterministic, seedable pseudo-random number generator used throughout the
/// library. Wraps a xoshiro256** core so that experiments are reproducible
/// across platforms (std::mt19937 would also work, but the distributions in
/// libstdc++ are not guaranteed to be portable; we implement our own
/// uniform/normal transforms on top of the raw core).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given underlying normal parameters.
  double LogNormal(double mu, double sigma);

  /// Exponential with rate lambda.
  double Exponential(double lambda);

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [1, n] with exponent s (rejection sampling).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Reservoir-style choice of k distinct indices from [0, n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Snapshot persistence: captures the full generator state (xoshiro core
  /// plus the cached Box-Muller normal), so a restored stream continues
  /// bit-identically to the uninterrupted one.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace janus

#endif  // JANUS_UTIL_RNG_H_
