#ifndef JANUS_PERSIST_COMMON_H_
#define JANUS_PERSIST_COMMON_H_

// Serializers for the small value types shared by every engine's snapshot
// (tuples, rectangles, schemas, moment accumulators). Classes with private
// state (ColumnStore, Dpt, the index trees, ...) implement their own
// SaveTo/LoadFrom members instead; this header covers the plain structs.

#include "data/schema.h"
#include "index/dynamic_kd_tree.h"
#include "persist/serde.h"
#include "util/stats.h"

namespace janus {
namespace persist {

inline void SaveTuple(const Tuple& t, Writer* w) {
  w->U64(t.id);
  for (int c = 0; c < kMaxColumns; ++c) w->F64(t.values[static_cast<size_t>(c)]);
}

inline Tuple LoadTuple(Reader* r) {
  Tuple t;
  t.id = r->U64();
  for (int c = 0; c < kMaxColumns; ++c) {
    t.values[static_cast<size_t>(c)] = r->F64();
  }
  return t;
}

inline void SaveTupleVec(const std::vector<Tuple>& v, Writer* w) {
  w->Size(v.size());
  for (const Tuple& t : v) SaveTuple(t, w);
}

inline std::vector<Tuple> LoadTupleVec(Reader* r) {
  std::vector<Tuple> v(r->Size());
  for (Tuple& t : v) t = LoadTuple(r);
  return v;
}

inline void SaveRectangle(const Rectangle& rect, Writer* w) {
  const int d = rect.dims();
  w->I32(d);
  for (int i = 0; i < d; ++i) w->F64(rect.lo(i));
  for (int i = 0; i < d; ++i) w->F64(rect.hi(i));
}

inline Rectangle LoadRectangle(Reader* r) {
  const int d = r->I32();
  if (d < 0 || static_cast<size_t>(d) > r->remaining()) {
    throw PersistError("snapshot corrupt: bad rectangle dimensionality");
  }
  std::vector<double> lo(static_cast<size_t>(d)), hi(static_cast<size_t>(d));
  for (double& x : lo) x = r->F64();
  for (double& x : hi) x = r->F64();
  return Rectangle(std::move(lo), std::move(hi));
}

inline void SaveSchema(const Schema& s, Writer* w) {
  w->StrVec(s.column_names);
}

inline Schema LoadSchema(Reader* r) {
  Schema s;
  s.column_names = r->StrVec();
  return s;
}

inline void SaveMoments(const MomentAccumulator& m, Writer* w) {
  w->F64(m.count);
  w->F64(m.sum);
  w->F64(m.sum_sq);
}

inline MomentAccumulator LoadMoments(Reader* r) {
  MomentAccumulator m;
  m.count = r->F64();
  m.sum = r->F64();
  m.sum_sq = r->F64();
  return m;
}

inline void SaveTreeAgg(const TreeAgg& a, Writer* w) {
  w->F64(a.count);
  w->F64(a.sum);
  w->F64(a.sumsq);
}

inline TreeAgg LoadTreeAgg(Reader* r) {
  TreeAgg a;
  a.count = r->F64();
  a.sum = r->F64();
  a.sumsq = r->F64();
  return a;
}

inline void SaveKdPoint(const KdPoint& p, Writer* w) {
  for (int d = 0; d < kMaxColumns; ++d) w->F64(p.x[static_cast<size_t>(d)]);
  w->F64(p.a);
  w->U64(p.id);
}

inline KdPoint LoadKdPoint(Reader* r) {
  KdPoint p;
  for (int d = 0; d < kMaxColumns; ++d) {
    p.x[static_cast<size_t>(d)] = r->F64();
  }
  p.a = r->F64();
  p.id = r->U64();
  return p;
}

}  // namespace persist
}  // namespace janus

#endif  // JANUS_PERSIST_COMMON_H_
