#ifndef JANUS_PERSIST_SERDE_H_
#define JANUS_PERSIST_SERDE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace janus {
namespace persist {

/// Every persistence failure — I/O, bad magic, version or engine mismatch,
/// truncation, checksum — surfaces as this exception. Callers that must not
/// die on a corrupt snapshot catch it and fall back to a cold start.
class PersistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only binary encoder for snapshot payloads. Fixed-width
/// little-endian primitives (the format is not cross-endian portable;
/// snapshots are host-local operational state, not an interchange format).
/// Doubles round-trip bit-exactly through their IEEE-754 representation,
/// including NaN, infinities and signed zero — recovery must be
/// bit-identical, so no text formatting anywhere.
class Writer {
 public:
  void Bytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  void U8(uint8_t v) { Bytes(&v, 1); }
  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Size(size_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Str(const std::string& s) {
    Size(s.size());
    Bytes(s.data(), s.size());
  }

  void F64Vec(const std::vector<double>& v) {
    Size(v.size());
    for (double x : v) F64(x);
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    Size(v.size());
    for (uint64_t x : v) U64(x);
  }
  void IntVec(const std::vector<int>& v) {
    Size(v.size());
    for (int x : v) I32(x);
  }
  void StrVec(const std::vector<std::string>& v) {
    Size(v.size());
    for (const std::string& s : v) Str(s);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked decoder over a snapshot payload. Any read past the end
/// (a truncated or garbage file) throws PersistError instead of reading
/// out of bounds, which is what turns file corruption into a clean error.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  void Bytes(void* out, size_t n) {
    if (n > size_ - pos_) {
      throw PersistError("snapshot truncated: need " + std::to_string(n) +
                         " bytes at offset " + std::to_string(pos_) +
                         ", only " + std::to_string(size_ - pos_) + " left");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  uint8_t U8() {
    uint8_t v;
    Bytes(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v;
    Bytes(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v;
    Bytes(&v, 8);
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  /// size_t with a sanity bound against hostile/corrupt length prefixes:
  /// a length can never exceed the bytes remaining in the payload.
  size_t Size() {
    const uint64_t v = U64();
    if (v > size_) {
      throw PersistError("snapshot corrupt: length " + std::to_string(v) +
                         " exceeds payload size " + std::to_string(size_));
    }
    return static_cast<size_t>(v);
  }
  std::string Str() {
    const size_t n = Size();
    std::string s(n, '\0');
    Bytes(s.data(), n);
    return s;
  }

  std::vector<double> F64Vec() {
    std::vector<double> v(Size());
    for (double& x : v) x = F64();
    return v;
  }
  std::vector<uint64_t> U64Vec() {
    std::vector<uint64_t> v(Size());
    for (uint64_t& x : v) x = U64();
    return v;
  }
  std::vector<int> IntVec() {
    std::vector<int> v(Size());
    for (int& x : v) x = I32();
    return v;
  }
  std::vector<std::string> StrVec() {
    std::vector<std::string> v(Size());
    for (std::string& s : v) s = Str();
    return v;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit, the payload checksum of the snapshot format.
uint64_t Fnv1a(const uint8_t* data, size_t n);

}  // namespace persist
}  // namespace janus

#endif  // JANUS_PERSIST_SERDE_H_
