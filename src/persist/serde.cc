#include "persist/serde.h"

namespace janus {
namespace persist {

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace persist
}  // namespace janus
