#ifndef JANUS_PERSIST_SNAPSHOT_H_
#define JANUS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/serde.h"

namespace janus {

/// Recovery metadata stored alongside the engine state: which backend wrote
/// the snapshot and how far it had consumed each broker request stream when
/// the state was captured. On restore, EngineDriver resumes its consumer
/// offsets from these and replays the tail of the streams to catch up —
/// the recovery contract is "snapshot + replayed tail == uninterrupted run".
struct SnapshotMeta {
  std::string engine;
  uint64_t insert_offset = 0;
  uint64_t delete_offset = 0;
  uint64_t query_offset = 0;
};

namespace persist {

/// Snapshot file layout (all integers little-endian):
///   bytes 0-3   magic "JAQS"
///   bytes 4-7   format version (u32, currently 1)
///   bytes 8-15  payload byte count (u64)
///   bytes 16-23 FNV-1a 64 checksum of the payload (u64)
///   bytes 24-   payload: SnapshotMeta, then the engine's SaveState bytes
/// Readers verify magic, version, declared size and checksum before any
/// payload byte reaches an engine, so wrong-magic / truncated / bit-flipped
/// files fail with a clean PersistError and never a crash.
inline constexpr uint32_t kSnapshotMagic = 0x53514A41u;  // "JAQS"
inline constexpr uint32_t kSnapshotVersion = 1;

/// Serialize `meta` at the front of a payload writer.
void WriteMeta(const SnapshotMeta& meta, Writer* w);
SnapshotMeta ReadMeta(Reader* r);

/// Atomically write a snapshot file (tmp + fsync + rename): header + payload.
/// Throws PersistError on I/O failure.
void WriteSnapshotFile(const std::string& path, const Writer& payload);

/// A verified snapshot file held in one buffer; the payload is the suffix
/// starting at `payload_offset` (no second copy of a potentially huge
/// payload just to drop the header).
struct SnapshotFile {
  std::vector<uint8_t> bytes;
  size_t payload_offset = 0;

  const uint8_t* payload() const { return bytes.data() + payload_offset; }
  size_t payload_size() const { return bytes.size() - payload_offset; }
};

/// Read and verify a snapshot file. Throws PersistError on missing file,
/// bad magic, unsupported version, truncation, or checksum mismatch.
SnapshotFile ReadSnapshotFile(const std::string& path);

}  // namespace persist
}  // namespace janus

#endif  // JANUS_PERSIST_SNAPSHOT_H_
