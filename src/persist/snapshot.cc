#include "persist/snapshot.h"

#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

namespace janus {
namespace persist {

void WriteMeta(const SnapshotMeta& meta, Writer* w) {
  w->Str(meta.engine);
  w->U64(meta.insert_offset);
  w->U64(meta.delete_offset);
  w->U64(meta.query_offset);
}

SnapshotMeta ReadMeta(Reader* r) {
  SnapshotMeta meta;
  meta.engine = r->Str();
  meta.insert_offset = r->U64();
  meta.delete_offset = r->U64();
  meta.query_offset = r->U64();
  return meta;
}

void WriteSnapshotFile(const std::string& path, const Writer& payload) {
  const std::vector<uint8_t>& body = payload.buffer();
  Writer header;
  header.U32(kSnapshotMagic);
  header.U32(kSnapshotVersion);
  header.U64(body.size());
  header.U64(Fnv1a(body.data(), body.size()));

  // Write to a temp file and rename so a crash mid-write never leaves a
  // half-written snapshot under the published name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw PersistError("cannot open snapshot file for writing: " + tmp);
  }
  const std::vector<uint8_t>& head = header.buffer();
  // Flush + fsync before the rename: the publish must not outrun the data,
  // or an OS crash could leave the published name pointing at cached-only
  // bytes after the previous good snapshot is already gone.
  const bool ok =
      std::fwrite(head.data(), 1, head.size(), f) == head.size() &&
      (body.empty() ||
       std::fwrite(body.data(), 1, body.size(), f) == body.size()) &&
      std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    throw PersistError("short write to snapshot file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw PersistError("cannot publish snapshot file: " + path);
  }
}

SnapshotFile ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw PersistError("cannot open snapshot file: " + path);
  }
  // One right-sized read: engine snapshots can be hundreds of MB, so no
  // chunked growth reallocations and no second payload copy below.
  std::vector<uint8_t> raw;
  struct stat st{};
  if (fstat(fileno(f), &st) == 0 && st.st_size > 0) {
    raw.resize(static_cast<size_t>(st.st_size));
    const size_t got = std::fread(raw.data(), 1, raw.size(), f);
    raw.resize(got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw PersistError("read error on snapshot file: " + path);

  Reader header(raw.data(), raw.size());
  uint32_t magic = 0;
  try {
    magic = header.U32();
  } catch (const PersistError&) {
    throw PersistError("snapshot file too short for a header: " + path);
  }
  if (magic != kSnapshotMagic) {
    throw PersistError("bad snapshot magic in " + path +
                       " (not a snapshot file?)");
  }
  const uint32_t version = header.U32();
  if (version != kSnapshotVersion) {
    throw PersistError("unsupported snapshot format version " +
                       std::to_string(version) + " in " + path +
                       " (this build reads version " +
                       std::to_string(kSnapshotVersion) + ")");
  }
  const uint64_t declared = header.U64();
  const uint64_t checksum = header.U64();
  if (declared != header.remaining()) {
    throw PersistError("snapshot payload truncated: " + path + " declares " +
                       std::to_string(declared) + " bytes, has " +
                       std::to_string(header.remaining()));
  }
  SnapshotFile file;
  file.payload_offset = header.pos();
  file.bytes = std::move(raw);
  if (Fnv1a(file.payload(), file.payload_size()) != checksum) {
    throw PersistError("snapshot checksum mismatch in " + path +
                       " (file corrupted)");
  }
  return file;
}

}  // namespace persist
}  // namespace janus
