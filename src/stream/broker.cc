#include "stream/broker.h"

#include <chrono>

namespace janus {

namespace detail {

void SpinFor(uint64_t ns) {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace detail

Broker::Broker()
    : insert_topic_("insert"),
      delete_topic_("delete"),
      query_topic_("query") {}

Topic* Broker::GetTopic(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    it = topics_.emplace(name, std::make_unique<Topic>(name)).first;
  }
  return it->second.get();
}

}  // namespace janus
