#include "stream/broker.h"

#include <chrono>

namespace janus {

namespace {

// Busy-wait for the simulated broker round-trip; sleep_for would be far too
// coarse at microsecond scales.
void SpinFor(uint64_t ns) {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

uint64_t Topic::Append(const Tuple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(t);
  return log_.size() - 1;
}

void Topic::AppendBatch(const std::vector<Tuple>& ts) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.insert(log_.end(), ts.begin(), ts.end());
}

size_t Topic::Poll(uint64_t offset, size_t max_records,
                   std::vector<Tuple>* out) const {
  SpinFor(poll_overhead_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  ++poll_count_;
  if (offset >= log_.size()) return 0;
  const size_t n = std::min(max_records, log_.size() - offset);
  out->insert(out->end(), log_.begin() + static_cast<ptrdiff_t>(offset),
              log_.begin() + static_cast<ptrdiff_t>(offset + n));
  return n;
}

uint64_t Topic::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

uint64_t Topic::poll_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poll_count_;
}

Broker::Broker() : insert_topic_("insert"), delete_topic_("delete") {}

Topic* Broker::GetTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    it = topics_.emplace(name, std::make_unique<Topic>(name)).first;
  }
  return it->second.get();
}

}  // namespace janus
