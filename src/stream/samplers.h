#ifndef JANUS_STREAM_SAMPLERS_H_
#define JANUS_STREAM_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "stream/broker.h"
#include "util/rng.h"

namespace janus {

/// Result of a sampling run against a broker topic (Appendix A).
struct SamplerStats {
  size_t polls = 0;
  size_t tuples_transferred = 0;  ///< total records pulled off the topic
  double seconds = 0;             ///< wall clock spent polling
};

/// Singleton sampler: each poll requests exactly one tuple from a random
/// offset. Minimal network traffic, maximal per-poll overhead; samples are
/// available incrementally (Appendix A).
class SingletonSampler {
 public:
  SingletonSampler(Topic* topic, uint64_t seed) : topic_(topic), rng_(seed) {}

  /// Draw k uniform samples (with replacement across polls).
  std::vector<Tuple> Sample(size_t k, SamplerStats* stats);

  /// Draw a single uniform sample.
  bool SampleOne(Tuple* out);

 private:
  Topic* topic_;
  Rng rng_;
};

/// Sequential sampler: scans the topic with large polls of `poll_size`
/// records and keeps a uniform subsample of each batch. Transfers the whole
/// topic but amortizes the per-poll overhead (Appendix A).
class SequentialSampler {
 public:
  SequentialSampler(Topic* topic, size_t poll_size, uint64_t seed)
      : topic_(topic), poll_size_(poll_size), rng_(seed) {}

  /// Scan the entire topic and return ~k uniform samples.
  std::vector<Tuple> Sample(size_t k, SamplerStats* stats);

 private:
  Topic* topic_;
  size_t poll_size_;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_STREAM_SAMPLERS_H_
