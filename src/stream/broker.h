#ifndef JANUS_STREAM_BROKER_H_
#define JANUS_STREAM_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/schema.h"

namespace janus {

/// A Kafka-like append-only topic of tuples: consumers address data only by
/// offset through batched poll() calls — there is no random-access API, which
/// is exactly the constraint the Appendix-A samplers are designed around.
///
/// `poll_overhead_ns` models the fixed per-poll cost of a real broker
/// round-trip (API call, batch framing). It defaults to a small value so
/// that the singleton-vs-sequential tradeoff of Table 4 is measurable in an
/// in-process setting; benches may raise it.
class Topic {
 public:
  explicit Topic(std::string name, uint64_t poll_overhead_ns = 2000)
      : name_(std::move(name)), poll_overhead_ns_(poll_overhead_ns) {}

  const std::string& name() const { return name_; }

  /// Append one record; returns its offset.
  uint64_t Append(const Tuple& t);

  /// Append many records.
  void AppendBatch(const std::vector<Tuple>& ts);

  /// Poll up to `max_records` starting at `offset`; appends them to `out`
  /// and returns the number of records delivered. Simulates the per-poll
  /// broker overhead.
  size_t Poll(uint64_t offset, size_t max_records,
              std::vector<Tuple>* out) const;

  /// Number of records in the log (the end offset).
  uint64_t EndOffset() const;

  void set_poll_overhead_ns(uint64_t ns) { poll_overhead_ns_ = ns; }
  uint64_t poll_overhead_ns() const { return poll_overhead_ns_; }

  /// Cumulative number of Poll() calls served (for experiment accounting).
  uint64_t poll_count() const;

 private:
  std::string name_;
  uint64_t poll_overhead_ns_;
  mutable std::mutex mu_;
  std::vector<Tuple> log_;
  mutable uint64_t poll_count_ = 0;
};

/// The three request streams of the PSoup-style data/query API (Sec. 3.2):
/// insert(tuple), delete(tuple) and execute(query) topics, plus arbitrary
/// named data topics for archival storage.
class Broker {
 public:
  Broker();

  Topic* insert_topic() { return &insert_topic_; }
  Topic* delete_topic() { return &delete_topic_; }

  /// Get or create a named data topic.
  Topic* GetTopic(const std::string& name);

 private:
  Topic insert_topic_;
  Topic delete_topic_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

}  // namespace janus

#endif  // JANUS_STREAM_BROKER_H_
