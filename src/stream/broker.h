#ifndef JANUS_STREAM_BROKER_H_
#define JANUS_STREAM_BROKER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/workload.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

namespace detail {
/// Busy-wait for the simulated broker round-trip; sleep_for would be far too
/// coarse at microsecond scales.
void SpinFor(uint64_t ns);
}  // namespace detail

/// A Kafka-like append-only log: consumers address records only by offset
/// through batched poll() calls — there is no random-access API, which is
/// exactly the constraint the Appendix-A samplers are designed around.
///
/// `poll_overhead_ns` models the fixed per-poll cost of a real broker
/// round-trip (API call, batch framing).
template <typename Record>
class TopicLog {
 public:
  explicit TopicLog(std::string name, uint64_t poll_overhead_ns = 0)
      : name_(std::move(name)), poll_overhead_ns_(poll_overhead_ns) {}

  const std::string& name() const { return name_; }

  /// Append one record; returns its offset.
  uint64_t Append(const Record& r) {
    MutexLock lock(&mu_);
    log_.push_back(r);
    appended_cv_.NotifyAll();
    return log_.size() - 1;
  }

  /// Append many records.
  void AppendBatch(const std::vector<Record>& rs) {
    MutexLock lock(&mu_);
    log_.insert(log_.end(), rs.begin(), rs.end());
    if (!rs.empty()) appended_cv_.NotifyAll();
  }

  /// Block until the log holds records past `offset` (i.e. a Poll(offset)
  /// would deliver something) or `timeout_us` elapses; returns whether
  /// records are available. The serving tier's pump thread parks here
  /// between drains instead of busy-polling an empty topic.
  bool WaitForRecords(uint64_t offset, int64_t timeout_us) const {
    MutexLock lock(&mu_);
    while (log_.size() <= offset) {
      if (!appended_cv_.WaitFor(&mu_, timeout_us)) {
        return log_.size() > offset;
      }
    }
    return true;
  }

  /// Poll up to `max_records` starting at `offset`; appends them to `out`
  /// and returns the number of records delivered. Simulates the per-poll
  /// broker overhead.
  size_t Poll(uint64_t offset, size_t max_records,
              std::vector<Record>* out) const {
    detail::SpinFor(poll_overhead_ns_.load(std::memory_order_relaxed));
    MutexLock lock(&mu_);
    ++poll_count_;
    if (offset >= log_.size()) return 0;
    const size_t n = std::min(max_records, log_.size() - offset);
    out->insert(out->end(), log_.begin() + static_cast<ptrdiff_t>(offset),
                log_.begin() + static_cast<ptrdiff_t>(offset + n));
    return n;
  }

  /// Number of records in the log (the end offset).
  uint64_t EndOffset() const {
    MutexLock lock(&mu_);
    return log_.size();
  }

  /// Retune the simulated round-trip cost; safe to call while consumers are
  /// polling (atomic — Poll() reads the knob outside the log mutex).
  void set_poll_overhead_ns(uint64_t ns) {
    poll_overhead_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t poll_overhead_ns() const {
    return poll_overhead_ns_.load(std::memory_order_relaxed);
  }

  /// Cumulative number of Poll() calls served (for experiment accounting).
  uint64_t poll_count() const {
    MutexLock lock(&mu_);
    return poll_count_;
  }

 private:
  std::string name_;
  /// Tuning knob, readable/retunable concurrently with Poll(); relaxed
  /// atomic because Poll() deliberately spins outside mu_ and any torn or
  /// stale read would only mis-time the simulated overhead.
  std::atomic<uint64_t> poll_overhead_ns_;
  mutable Mutex mu_;
  /// Signaled on every append; WaitForRecords() parks on it. Mutable so the
  /// logically-const blocking read can wait.
  mutable CondVar appended_cv_;
  std::vector<Record> log_ GUARDED_BY(mu_);
  mutable uint64_t poll_count_ GUARDED_BY(mu_) = 0;
};

/// A topic of tuples (data records). The default overhead is a small value
/// so that the singleton-vs-sequential tradeoff of Table 4 is measurable in
/// an in-process setting; benches may raise it.
class Topic : public TopicLog<Tuple> {
 public:
  explicit Topic(std::string name, uint64_t poll_overhead_ns = 2000)
      : TopicLog(std::move(name), poll_overhead_ns) {}
};

/// A topic of query requests: the execute(query) request stream of the
/// PSoup-style API (Sec. 3.2). In-process query submission is free, so the
/// poll overhead defaults to zero.
class QueryTopic : public TopicLog<AggQuery> {
 public:
  explicit QueryTopic(std::string name, uint64_t poll_overhead_ns = 0)
      : TopicLog(std::move(name), poll_overhead_ns) {}
};

/// The three request streams of the PSoup-style data/query API (Sec. 3.2):
/// insert(tuple), delete(tuple) and execute(query) topics, plus arbitrary
/// named data topics for archival storage. EngineDriver consumes all three
/// against any AqpEngine.
class Broker {
 public:
  Broker();

  Topic* insert_topic() { return &insert_topic_; }
  Topic* delete_topic() { return &delete_topic_; }
  QueryTopic* query_topic() { return &query_topic_; }

  /// Get or create a named data topic.
  Topic* GetTopic(const std::string& name);

 private:
  Topic insert_topic_;
  Topic delete_topic_;
  QueryTopic query_topic_;
  Mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_ GUARDED_BY(mu_);
};

}  // namespace janus

#endif  // JANUS_STREAM_BROKER_H_
