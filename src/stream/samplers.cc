#include "stream/samplers.h"

#include "util/timer.h"

namespace janus {

std::vector<Tuple> SingletonSampler::Sample(size_t k, SamplerStats* stats) {
  Timer timer;
  std::vector<Tuple> out;
  out.reserve(k);
  const uint64_t end = topic_->EndOffset();
  if (end == 0) return out;
  std::vector<Tuple> batch;
  size_t polls = 0;
  while (out.size() < k) {
    batch.clear();
    const uint64_t offset = rng_.NextUint64(end);
    topic_->Poll(offset, 1, &batch);
    ++polls;
    if (!batch.empty()) out.push_back(batch[0]);
  }
  if (stats) {
    stats->polls += polls;
    stats->tuples_transferred += out.size();
    stats->seconds += timer.ElapsedSeconds();
  }
  return out;
}

bool SingletonSampler::SampleOne(Tuple* out) {
  const uint64_t end = topic_->EndOffset();
  if (end == 0) return false;
  std::vector<Tuple> batch;
  topic_->Poll(rng_.NextUint64(end), 1, &batch);
  if (batch.empty()) return false;
  *out = batch[0];
  return true;
}

std::vector<Tuple> SequentialSampler::Sample(size_t k, SamplerStats* stats) {
  Timer timer;
  std::vector<Tuple> out;
  const uint64_t end = topic_->EndOffset();
  if (end == 0) return out;
  const double rate =
      std::min(1.0, static_cast<double>(k) / static_cast<double>(end));
  std::vector<Tuple> batch;
  uint64_t offset = 0;
  size_t polls = 0;
  size_t transferred = 0;
  while (offset < end) {
    batch.clear();
    const size_t n = topic_->Poll(offset, poll_size_, &batch);
    if (n == 0) break;
    ++polls;
    transferred += n;
    offset += n;
    // Keep a binomial subsample of the batch: every record independently
    // with probability `rate`, which yields a uniform sample overall.
    for (const Tuple& t : batch) {
      if (rng_.Bernoulli(rate)) out.push_back(t);
    }
  }
  if (stats) {
    stats->polls += polls;
    stats->tuples_transferred += transferred;
    stats->seconds += timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace janus
