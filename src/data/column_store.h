#ifndef JANUS_DATA_COLUMN_STORE_H_
#define JANUS_DATA_COLUMN_STORE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/exec_context.h"
#include "data/schema.h"
#include "util/rng.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Zero-copy view of one column: a contiguous run of doubles, one value per
/// live row, positionally aligned with ColumnStore::ids().
struct ColumnSpan {
  const double* data = nullptr;
  size_t size = 0;

  const double* begin() const { return data; }
  const double* end() const { return data + size; }
  double operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

/// Structure-of-arrays tuple storage: one contiguous std::vector<double> per
/// schema column plus an id column and an id→position index. Live rows are
/// kept dense (swap-remove on delete), so archival scans are sequential reads
/// of exactly the columns a kernel touches and uniform sampling is O(1) per
/// draw.
///
/// Only `schema.num_columns()` columns are allocated (an empty schema falls
/// back to kMaxColumns so schema-less callers keep the full Tuple width).
/// Inserting a tuple stores its first num_columns() values; reads of columns
/// outside the schema return 0.0, matching Tuple's zero-initialized slots.
class ColumnStore {
 public:
  explicit ColumnStore(Schema schema);
  /// Anonymous schema of `num_columns` columns (scratch stores built from
  /// row vectors by the scan kernels and tests).
  explicit ColumnStore(int num_columns);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  void Reserve(size_t rows);

  /// Insert a tuple. Ids must be unique among live rows.
  void Insert(const Tuple& t);

  /// Append rows without maintaining the id index — the fast path for
  /// scan-only scratch stores and snapshots (the index is the dominant cost
  /// of a bulk load). The index is rebuilt lazily by the first id lookup
  /// (Find/Contains/PositionOf/Delete/Insert).
  void BulkAppend(const std::vector<Tuple>& rows);

  /// Copy of this store carrying only the columns and ids (snapshots that
  /// only scan or sample never pay for the id index).
  ColumnStore WithoutIndex() const;

  /// Delete a live row by id (swap-remove). Returns false if not live.
  bool Delete(uint64_t id);

  bool Contains(uint64_t id) const {
    EnsureIndex();
    return index_.contains(id);
  }

  /// Materialize a live row by id; nullopt if absent.
  std::optional<Tuple> Find(uint64_t id) const;

  /// Position of a live row by id; SIZE_MAX if absent.
  size_t PositionOf(uint64_t id) const;

  uint64_t id_at(size_t pos) const { return ids_[pos]; }
  double value(size_t pos, int col) const {
    return static_cast<size_t>(col) < columns_.size()
               ? columns_[static_cast<size_t>(col)][pos]
               : 0.0;
  }

  /// Materialize the row at `pos` as a Tuple (columns outside the schema
  /// stay zero).
  Tuple RowTuple(size_t pos) const;

  /// Zero-copy view of one column. Columns outside the schema yield an empty
  /// span.
  ColumnSpan column(int col) const {
    if (static_cast<size_t>(col) >= columns_.size()) return {};
    return {columns_[static_cast<size_t>(col)].data(), ids_.size()};
  }

  const std::vector<uint64_t>& ids() const { return ids_; }

  /// Uniform random sample (without replacement) of k live rows,
  /// materialized.
  std::vector<Tuple> SampleUniform(Rng* rng, size_t k) const;

  /// SampleUniform with morsel-parallel row materialization. The index
  /// draws stay serial — the persisted RNG stream must be independent of
  /// the thread count — and each drawn row fills its own output slot, so
  /// the result is bit-identical to the serial overload.
  std::vector<Tuple> SampleUniform(Rng* rng, size_t k,
                                   const scan::ExecContext& exec) const;

  /// One uniform random live row (with replacement semantics across calls).
  Tuple SampleOne(Rng* rng) const;

  /// Heap footprint of the archive: column data + id column + id index.
  size_t MemoryBytes() const;

  /// Snapshot persistence. Rows serialize in physical position order, so a
  /// restored store has the identical layout (swap-remove history included)
  /// and every position-based scan or sample replays bit-identically. The id
  /// index is not serialized; it is rebuilt lazily by the first id lookup.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: every column is exactly ids().size() long, ids are
  /// unique, and — when the id index has been built — it is a bijection onto
  /// the live positions (index[id] == pos && ids[pos] == id, one entry per
  /// row). Throws InvariantViolation on the first inconsistency.
  void CheckInvariants() const;

 private:
  /// Test-only backdoor (tests/invariant_audit_test.cc) for corrupting the
  /// private index so the negative audit tests can prove CheckInvariants()
  /// actually detects damage.
  friend struct InvariantTestPeer;
  /// Rebuild the id index after BulkAppend left it stale. Not thread-safe
  /// with concurrent readers; stores shared across threads (DynamicTable)
  /// never go through BulkAppend, so their index is always current.
  void EnsureIndex() const;

  Schema schema_;
  std::vector<std::vector<double>> columns_;  // [col][row]
  std::vector<uint64_t> ids_;                 // [row]
  mutable std::unordered_map<uint64_t, size_t> index_;  // id -> row position
  mutable bool indexed_ = true;
};

}  // namespace janus

#endif  // JANUS_DATA_COLUMN_STORE_H_
