#include "data/scan.h"

#include "data/simd.h"

namespace janus {

std::optional<double> AggAccumulator::Finish(AggFunc f) const {
  if (count == 0) return std::nullopt;
  switch (f) {
    case AggFunc::kSum:
      return sum;
    case AggFunc::kCount:
      return count;
    case AggFunc::kAvg:
      return sum / count;
    case AggFunc::kMin:
      return min;
    case AggFunc::kMax:
      return max;
  }
  return std::nullopt;
}

namespace scan {

namespace {

/// Closed-interval test with the same NaN semantics as Rectangle::Contains
/// (a NaN coordinate never fails the bound checks, so it matches).
inline bool InBounds(double x, double lo, double hi) {
  return !(x < lo) & !(x > hi);
}

}  // namespace

size_t FilterBlock(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, size_t begin, size_t end,
                   uint32_t* sel) {
  const size_t len = end - begin;
  size_t matched = 0;
  bool first = true;
  for (size_t d = 0; d < predicate_columns.size(); ++d) {
    const double lo = rect.lo(static_cast<int>(d));
    const double hi = rect.hi(static_cast<int>(d));
    const ColumnSpan col = store.column(predicate_columns[d]);
    if (col.data == nullptr) {
      // Column outside the schema: every row reads 0.0 (Tuple's
      // zero-initialized slots).
      if (InBounds(0.0, lo, hi)) continue;
      return 0;
    }
    const simd::Kernels& k = simd::Active();
    if (first) {
      // First dimension: dense branch-free scan of the contiguous column.
      matched = k.filter_in_bounds(col.data + begin, len, lo, hi,
                                   static_cast<uint32_t>(begin), sel);
      first = false;
      continue;
    }
    // Subsequent dimensions: compact the selection vector in place.
    matched = k.compact_in_bounds(col.data, sel, matched, lo, hi);
    if (matched == 0) return 0;
  }
  if (first) {
    // No predicate columns: every row in the block matches.
    for (size_t i = 0; i < len; ++i) {
      sel[i] = static_cast<uint32_t>(begin + i);
    }
    matched = len;
  }
  return matched;
}

size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect) {
  return CountInRectAtLeast(store, predicate_columns, rect,
                            std::numeric_limits<size_t>::max());
}

size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold) {
  return CountRangeAtLeast(store, predicate_columns, rect, 0, store.size(),
                           threshold);
}

size_t CountRangeAtLeast(const ColumnStore& store,
                         const std::vector<int>& predicate_columns,
                         const Rectangle& rect, size_t begin, size_t end,
                         size_t limit) {
  if (begin >= end || limit == 0) return 0;
  const size_t len = end - begin;
  if (predicate_columns.empty()) return std::min(len, limit);
  if (predicate_columns.size() == 1) {
    // Pure counting needs no selection vector: one dense pass per block. A
    // block that cannot cross the limit runs branch-free over the whole
    // block; the crossing block runs the limit-clamped kernel, which stops
    // as soon as the limit is met (rejection sampling pays per row scanned).
    const double lo = rect.lo(0);
    const double hi = rect.hi(0);
    const ColumnSpan col = store.column(predicate_columns[0]);
    if (col.data == nullptr) {
      return InBounds(0.0, lo, hi) ? std::min(len, limit) : 0;
    }
    const double* v = col.data;
    const simd::Kernels& k = simd::Active();
    size_t count = 0;
    for (size_t bs = begin; bs < end; bs += kBlockRows) {
      const size_t be = std::min(end, bs + kBlockRows);
      if (limit - count > be - bs) {
        count += k.count_in_bounds(v + bs, be - bs, lo, hi);
      } else {
        count += k.count_in_bounds_limited(v + bs, be - bs, lo, hi,
                                           limit - count);
        if (count >= limit) return limit;
      }
    }
    return count;
  }
  uint32_t sel[kBlockRows];
  size_t count = 0;
  for (size_t bs = begin; bs < end; bs += kBlockRows) {
    const size_t be = std::min(end, bs + kBlockRows);
    if (limit - count > be - bs) {
      count += FilterBlock(store, predicate_columns, rect, bs, be, sel);
    } else {
      // The limit can be hit inside this block: filter short sub-chunks
      // through the SIMD kernels and stop at the first chunk that crosses,
      // instead of scanning the whole block past the threshold (or falling
      // back to a scalar row-at-a-time loop).
      constexpr size_t kCrossingChunkRows = 256;
      for (size_t cs = bs; cs < be; cs += kCrossingChunkRows) {
        const size_t ce = std::min(be, cs + kCrossingChunkRows);
        count += FilterBlock(store, predicate_columns, rect, cs, ce, sel);
        if (count >= limit) return limit;
      }
    }
  }
  return count;
}

AggAccumulator AggregateRange(const ColumnStore& store, AggFunc func,
                              int agg_column,
                              const std::vector<int>& predicate_columns,
                              const Rectangle& rect, size_t begin,
                              size_t end) {
  AggAccumulator acc;
  const ColumnSpan agg = store.column(agg_column);
  uint32_t sel[kBlockRows];
  for (size_t bs = begin; bs < end; bs += kBlockRows) {
    const size_t be = std::min(end, bs + kBlockRows);
    const size_t matched =
        FilterBlock(store, predicate_columns, rect, bs, be, sel);
    if (matched == 0) continue;
    acc.count += static_cast<double>(matched);
    if (agg.data == nullptr) {
      // Aggregate column outside the schema reads 0.0 everywhere.
      acc.min = std::min(acc.min, 0.0);
      acc.max = std::max(acc.max, 0.0);
      continue;
    }
    const double* v = agg.data;
    const simd::Kernels& k = simd::Active();
    switch (func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (matched == be - bs) {
          // Saturated block: skip the gather and sum the column directly.
          acc.sum += k.sum_dense(v + bs, be - bs);
        } else {
          acc.sum += k.sum_gather(v, sel, matched);
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax: {
        double block_min, block_max;
        if (matched == be - bs) {
          // Saturated block: skip the gather and scan the column directly.
          k.min_max(v + bs, be - bs, &block_min, &block_max);
        } else {
          k.min_max_gather(v, sel, matched, &block_min, &block_max);
        }
        acc.min = std::min(acc.min, block_min);
        acc.max = std::max(acc.max, block_max);
        break;
      }
      case AggFunc::kCount:
        break;  // counting needs no aggregate-column pass
    }
  }
  return acc;
}

std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect) {
  if (func == AggFunc::kCount) {
    const size_t c = CountInRect(store, predicate_columns, rect);
    if (c == 0) return std::nullopt;
    return static_cast<double>(c);
  }
  return AggregateRange(store, func, agg_column, predicate_columns, rect, 0,
                        store.size())
      .Finish(func);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q) {
  return AggregateInRect(store, q.func, q.agg_column, q.predicate_columns,
                         q.rect);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries) {
  std::vector<std::optional<double>> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = ExactAnswer(store, queries[i]);
  }
  return out;
}

ColumnStore ToColumnStore(const std::vector<Tuple>& rows,
                          const std::vector<AggQuery>& queries) {
  int width = queries.empty() ? kMaxColumns : 1;
  for (const AggQuery& q : queries) {
    width = std::max(width, q.agg_column + 1);
    for (int c : q.predicate_columns) width = std::max(width, c + 1);
  }
  ColumnStore store(width);
  // Index-free append: the scan kernels never look rows up by id, and the
  // id index would dominate the cost of the transposition.
  store.BulkAppend(rows);
  return store;
}

}  // namespace scan
}  // namespace janus
