#include "data/schema.h"

#include <limits>
#include <sstream>

namespace janus {

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (column_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

Rectangle::Rectangle(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {}

Rectangle Rectangle::Infinite(int d) {
  const double inf = std::numeric_limits<double>::infinity();
  return Rectangle(std::vector<double>(static_cast<size_t>(d), -inf),
                   std::vector<double>(static_cast<size_t>(d), inf));
}

bool Rectangle::Contains(const double* point) const {
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

bool Rectangle::Covers(const Rectangle& other) const {
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rectangle::Intersects(const Rectangle& other) const {
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

std::string Rectangle::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (i) os << " x ";
    os << "(" << lo_[i] << "," << hi_[i] << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace janus
