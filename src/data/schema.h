#ifndef JANUS_DATA_SCHEMA_H_
#define JANUS_DATA_SCHEMA_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace janus {

/// Maximum number of columns a tuple can carry. The paper always assumes a
/// constant number of attributes (Sec. 5.5); eight covers every dataset and
/// experiment in the evaluation.
inline constexpr int kMaxColumns = 8;

/// A relational tuple: a unique id (used to address deletions) plus a fixed
/// row of numeric attribute values. Categorical attributes are dictionary
/// encoded into doubles by the generators.
struct Tuple {
  uint64_t id = 0;
  std::array<double, kMaxColumns> values{};

  double operator[](int col) const { return values[static_cast<size_t>(col)]; }
  double& operator[](int col) { return values[static_cast<size_t>(col)]; }
};

/// Column metadata for a dataset.
struct Schema {
  std::vector<std::string> column_names;

  int num_columns() const { return static_cast<int>(column_names.size()); }

  /// Index of a column by name; -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Supported aggregate functions (Sec. 3.1).
enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

/// Human-readable name ("SUM", "COUNT", ...).
const char* AggFuncName(AggFunc f);

/// An axis-aligned (hyper-)rectangle over a subset of columns; the predicate
/// region of a query template (Sec. 3.1). Intervals are closed: [lo, hi].
class Rectangle {
 public:
  Rectangle() = default;
  Rectangle(std::vector<double> lo, std::vector<double> hi);

  /// Unbounded rectangle over d dimensions.
  static Rectangle Infinite(int d);

  int dims() const { return static_cast<int>(lo_.size()); }
  double lo(int d) const { return lo_[static_cast<size_t>(d)]; }
  double hi(int d) const { return hi_[static_cast<size_t>(d)]; }
  void set_lo(int d, double v) { lo_[static_cast<size_t>(d)] = v; }
  void set_hi(int d, double v) { hi_[static_cast<size_t>(d)] = v; }

  /// Does the rectangle contain the point (projected onto its dims)?
  bool Contains(const double* point) const;

  /// Does `this` fully contain `other`?
  bool Covers(const Rectangle& other) const;

  /// Do the two rectangles overlap (closed-interval semantics)?
  bool Intersects(const Rectangle& other) const;

  bool operator==(const Rectangle& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

  std::string ToString() const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Projection of a tuple onto a set of predicate columns.
inline void ProjectTuple(const Tuple& t, const std::vector<int>& cols,
                         double* out) {
  for (size_t i = 0; i < cols.size(); ++i) out[i] = t[cols[i]];
}

}  // namespace janus

#endif  // JANUS_DATA_SCHEMA_H_
