#ifndef JANUS_DATA_GROUND_TRUTH_H_
#define JANUS_DATA_GROUND_TRUTH_H_

#include <optional>
#include <vector>

#include "data/schema.h"
#include "data/workload.h"

namespace janus {

/// Exact answer of one aggregate query over a set of live rows. Returns
/// nullopt when the predicate selects no tuples (AVG/MIN/MAX undefined;
/// SUM/COUNT would be 0 but relative error is then undefined too, so the
/// experiment harness skips those queries, matching Sec. 6.7).
std::optional<double> ExactAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q);

/// Batch evaluation: one pass over the rows for all queries. Much faster
/// than per-query scans when |queries| is large.
std::vector<std::optional<double>> ExactAnswers(
    const std::vector<Tuple>& rows, const std::vector<AggQuery>& queries);

/// Relative error |est - truth| / |truth|; nullopt when the truth is zero or
/// undefined.
std::optional<double> RelativeError(std::optional<double> truth, double est);

}  // namespace janus

#endif  // JANUS_DATA_GROUND_TRUTH_H_
