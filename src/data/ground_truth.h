#ifndef JANUS_DATA_GROUND_TRUTH_H_
#define JANUS_DATA_GROUND_TRUTH_H_

#include <optional>
#include <vector>

#include "data/column_store.h"
#include "data/exec_context.h"
#include "data/schema.h"
#include "data/workload.h"

namespace janus {

/// Exact answer of one aggregate query over a set of live rows. Returns
/// nullopt when the predicate selects no tuples (AVG/MIN/MAX undefined;
/// SUM/COUNT would be 0 but relative error is then undefined too, so the
/// experiment harness skips those queries, matching Sec. 6.7).
std::optional<double> ExactAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q);

/// Columnar variant: runs the vectorized scan kernels (data/scan.h) directly
/// over an archive — the implementation both row paths delegate to.
std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q);

/// Batch evaluation over rows: the rows are transposed into a scratch
/// ColumnStore once, then each query runs one vectorized kernel scan over
/// only its own predicate/aggregate columns. Much faster than per-query
/// tuple scans when |queries| is large.
std::vector<std::optional<double>> ExactAnswers(
    const std::vector<Tuple>& rows, const std::vector<AggQuery>& queries);

/// Batch evaluation over a columnar archive (no transposition needed).
std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries);

/// Morsel-parallel variants (data/parallel_scan.h): a large batch fans out
/// one query per worker slot, a small batch over a big archive parallelizes
/// inside each scan. Pass scan::DefaultExec() for the shared pool.
std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const scan::ExecContext& exec);
std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const scan::ExecContext& exec);

/// Relative error |est - truth| / |truth|; nullopt when the truth is zero or
/// undefined.
std::optional<double> RelativeError(std::optional<double> truth, double est);

}  // namespace janus

#endif  // JANUS_DATA_GROUND_TRUTH_H_
