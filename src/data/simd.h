#ifndef JANUS_DATA_SIMD_H_
#define JANUS_DATA_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace janus {
namespace scan {
namespace simd {

/// Vector kernel table behind the hot scan loops (data/scan.cc). Two
/// implementations exist: a portable scalar one (always available, loop
/// bodies identical to the historical scan code so non-SIMD behavior is
/// unchanged) and an AVX2 one compiled into its own translation unit with
/// -mavx2 when the toolchain supports it. The active table is chosen once
/// per process at first use: AVX2 when it was compiled in *and* the CPU
/// reports it, overridable with JANUS_SIMD=scalar|avx2.
///
/// Semantics shared by every implementation:
///  - "in bounds" is the closed-interval test !(x < lo) & !(x > hi), so a
///    NaN coordinate matches (same as Rectangle::Contains);
///  - counting and selection kernels are bit-identical across
///    implementations (integer results, selection prefixes in row order);
///  - sums may associate additions differently (lane-wise accumulators), so
///    scalar and AVX2 sums agree only to floating-point reassociation —
///    within any one process the dispatch is fixed, so results stay
///    deterministic run to run;
///  - min/max ignore NaN values (min(NaN, acc) keeps acc, matching
///    std::min's ordering) and are order-insensitive, hence bit-identical
///    across implementations.
struct Kernels {
  /// Implementation tag ("scalar" or "avx2") for stats/bench surfacing.
  const char* name;

  /// Number of i in [0, len) with v[i] in [lo, hi].
  size_t (*count_in_bounds)(const double* v, size_t len, double lo, double hi);

  /// First-dimension filter: for each matching i in [0, len) append
  /// base + i to sel (in row order). Returns how many matched. sel must
  /// have room for len entries; the vector path may scribble up to 3
  /// entries past the returned count (within sel[len]).
  size_t (*filter_in_bounds)(const double* v, size_t len, double lo,
                             double hi, uint32_t base, uint32_t* sel);

  /// Subsequent-dimension compaction: keep the positions p = sel[i] with
  /// v[p] in [lo, hi], compacting sel in place (order preserved). `v` is
  /// the column base pointer (sel holds absolute row positions). Returns
  /// how many survive.
  size_t (*compact_in_bounds)(const double* v, uint32_t* sel, size_t n,
                              double lo, double hi);

  /// Sum of v[0..len).
  double (*sum_dense)(const double* v, size_t len);

  /// Sum of v[sel[i]] for i in [0, n).
  double (*sum_gather)(const double* v, const uint32_t* sel, size_t n);

  /// Min/max of v[0..len) ignoring NaNs; {+DBL_MAX, -DBL_MAX-ish lowest}
  /// when len == 0 or all values are NaN (the caller's identity values).
  void (*min_max)(const double* v, size_t len, double* mn, double* mx);

  /// Limit-clamped count: min(#{i in [0, len) : v[i] in [lo, hi]}, limit).
  /// The clamp makes the result order-insensitive, so implementations are
  /// free to stop scanning once `limit` matches have been seen (the
  /// threshold-crossing tail of CountRangeAtLeast) while staying
  /// bit-identical to a full count followed by std::min.
  size_t (*count_in_bounds_limited)(const double* v, size_t len, double lo,
                                    double hi, size_t limit);

  /// Min/max of v[sel[i]] for i in [0, n) — the selection-vector companion
  /// of min_max, with the same NaN-ignoring, order-insensitive semantics
  /// and identity values for n == 0.
  void (*min_max_gather)(const double* v, const uint32_t* sel, size_t n,
                         double* mn, double* mx);
};

/// Portable implementation; always available.
const Kernels& ScalarKernels();

/// AVX2 table when this build compiled src/data/simd_avx2.cc with -mavx2,
/// nullptr otherwise. Does NOT check the running CPU — Active() does.
const Kernels* Avx2KernelsIfCompiled();

/// The table every scan kernel should use: resolved once (build support +
/// runtime CPUID + JANUS_SIMD override), then fixed for the process.
const Kernels& Active();

}  // namespace simd
}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_SIMD_H_
