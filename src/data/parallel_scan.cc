#include "data/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <thread>

#include "util/completion_latch.h"
#include "util/thread_pool.h"

namespace janus {
namespace scan {

namespace {

/// Set while a thread is executing a morsel body: nested scans issued from
/// inside a worker (a consumer callback that itself scans) stay serial
/// instead of deadlocking on pool capacity.
thread_local bool t_in_scan_worker = false;

size_t DefaultScanThreads() {
  if (const char* env = std::getenv("JANUS_SCAN_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Contiguous block-aligned range of worker `w` in a `workers`-way split of
/// [0, rows).
std::pair<size_t, size_t> WorkerRange(size_t rows, size_t workers, size_t w) {
  const size_t blocks = (rows + kBlockRows - 1) / kBlockRows;
  const size_t per = (blocks + workers - 1) / workers;
  const size_t begin = std::min(rows, w * per * kBlockRows);
  const size_t end = std::min(rows, (w + 1) * per * kBlockRows);
  return {begin, end};
}

}  // namespace

ThreadPool* SharedScanPool() {
  // Lazily built, thread-safe by C++ magic-static initialization; no lock
  // of our own to annotate. The pool's internal state carries its own
  // capability annotations (util/thread_pool.h).
  static ThreadPool pool(DefaultScanThreads());
  return &pool;
}

ScanCounters& GlobalScanCounters() {
  static ScanCounters counters;
  return counters;
}

ExecContext DefaultExec() {
  ExecContext ctx;
  ctx.pool = SharedScanPool();
  ctx.counters = &GlobalScanCounters();
  return ctx;
}

namespace {

/// The plan decision without the telemetry side effect (used when a caller
/// plans once for a composite operation and counts it itself).
size_t PlanNoCount(const ExecContext& ctx, size_t items, size_t min_items) {
  size_t workers = 1;
  if (ctx.pool != nullptr && !t_in_scan_worker && items >= min_items &&
      ctx.max_workers != 1) {
    workers = ctx.pool->num_threads();
    if (ctx.max_workers > 0) workers = std::min(workers, ctx.max_workers);
    // Never hand a worker less than a quarter of the cutoff's worth of
    // items (for the kernel cutoff that is exactly one morsel), so small
    // eligible scans don't shatter into dispatch overhead.
    const size_t per_worker_min = std::max<size_t>(1, min_items / 4);
    workers = std::min(workers, std::max<size_t>(1, items / per_worker_min));
  }
  return workers;
}

}  // namespace

size_t PlanWorkersAtCutoff(const ExecContext& ctx, size_t items,
                           size_t min_items) {
  const size_t workers = PlanNoCount(ctx, items, min_items);
  if (ctx.counters != nullptr) {
    if (workers > 1) {
      ctx.counters->parallel_scans.fetch_add(1, std::memory_order_relaxed);
      ctx.counters->worker_ranges.fetch_add(workers,
                                            std::memory_order_relaxed);
    } else {
      ctx.counters->serial_scans.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return workers;
}

size_t PlanWorkers(const ExecContext& ctx, size_t rows) {
  return PlanWorkersAtCutoff(ctx, rows, ctx.parallel_min_rows);
}

namespace {

/// RAII scope marking the current thread as a scan worker (nested ctx scans
/// stay serial; the caller's inline share counts too).
class ScanWorkerScope {
 public:
  ScanWorkerScope() : prev_(t_in_scan_worker) { t_in_scan_worker = true; }
  ~ScanWorkerScope() { t_in_scan_worker = prev_; }

 private:
  bool prev_;
};

}  // namespace

void ForEachRange(const ExecContext& ctx, size_t rows, size_t workers,
                  const std::function<void(size_t, size_t, size_t)>& fn) {
  // Defensive clamp mirroring PlanWorkers: a fan-out issued from inside a
  // scan worker runs inline (its helpers could never be scheduled if the
  // pool is saturated with waiters).
  if (t_in_scan_worker) workers = 1;
  if (workers <= 1) {
    fn(0, 0, rows);
    return;
  }
  CompletionLatch latch(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    const auto [begin, end] = WorkerRange(rows, workers, w);
    ctx.pool->Submit([&, w, begin = begin, end = end] {
      {
        ScanWorkerScope scope;
        fn(w, begin, end);
      }
      latch.Arrive();
    });
  }
  {
    // The caller contributes worker 0's share instead of blocking idle.
    ScanWorkerScope scope;
    const auto [begin, end] = WorkerRange(rows, workers, 0);
    fn(0, begin, end);
  }
  latch.Wait();
}

void ForEachIndex(const ExecContext& ctx, size_t count, size_t workers,
                  const std::function<void(size_t)>& fn) {
  if (t_in_scan_worker) workers = 1;
  if (workers <= 1 || count < 2) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  workers = std::min(workers, count);
  std::atomic<size_t> cursor{0};
  auto drain = [&] {
    ScanWorkerScope scope;
    for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < count;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  CompletionLatch latch(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    ctx.pool->Submit([&] {
      drain();
      latch.Arrive();
    });
  }
  drain();
  latch.Wait();
}

size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, const ExecContext& ctx) {
  const size_t n = store.size();
  const size_t workers = PlanWorkers(ctx, n);
  if (workers <= 1) {
    return scan::CountInRect(store, predicate_columns, rect);
  }
  std::vector<size_t> partial(workers, 0);
  ForEachRange(ctx, n, workers, [&](size_t w, size_t begin, size_t end) {
    partial[w] = CountRangeAtLeast(store, predicate_columns, rect, begin, end,
                                   std::numeric_limits<size_t>::max());
  });
  size_t total = 0;
  for (size_t c : partial) total += c;
  return total;
}

size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold,
                          const ExecContext& ctx) {
  const size_t n = store.size();
  // Early exit bounds the useful work at roughly `threshold` scanned rows
  // (exactly that when matches are dense), so plan on that bound — a small
  // threshold over a huge store is a fast serial scan, not a fan-out whose
  // workers mostly burn rows past the crossing point.
  const size_t workers = PlanWorkers(ctx, std::min(n, threshold));
  if (workers <= 1) {
    return scan::CountInRectAtLeast(store, predicate_columns, rect, threshold);
  }
  // Shared early-exit: each worker counts one block at a time and folds its
  // progress into `found`; once the fleet total crosses the threshold every
  // worker stops at its next block boundary. The returned value is clamped,
  // so overshoot from blocks in flight never leaks out. The counter is an
  // atomic (self-synchronizing), so it needs no mutex capability; the
  // CompletionLatch inside ForEachRange orders the final read.
  std::atomic<size_t> found{0};
  ForEachRange(ctx, n, workers, [&](size_t, size_t begin, size_t end) {
    for (size_t bs = begin; bs < end; bs += kBlockRows) {
      const size_t done = found.load(std::memory_order_relaxed);
      if (done >= threshold) return;
      const size_t be = std::min(end, bs + kBlockRows);
      // `threshold - done` may be stale-high; the clamp only ever bites when
      // the fleet total crosses the threshold, so the unclamped path still
      // counts exactly.
      const size_t block = CountRangeAtLeast(store, predicate_columns, rect,
                                             bs, be, threshold - done);
      if (block > 0) {
        found.fetch_add(block, std::memory_order_relaxed);
      }
    }
  });
  return std::min(found.load(std::memory_order_relaxed), threshold);
}

std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect,
                                      const ExecContext& ctx) {
  const size_t n = store.size();
  if (func == AggFunc::kCount) {
    const size_t c = CountInRect(store, predicate_columns, rect, ctx);
    if (c == 0) return std::nullopt;
    return static_cast<double>(c);
  }
  const size_t workers = PlanWorkers(ctx, n);
  if (workers <= 1) {
    return scan::AggregateInRect(store, func, agg_column, predicate_columns,
                                 rect);
  }
  std::vector<AggAccumulator> partial(workers);
  ForEachRange(ctx, n, workers, [&](size_t w, size_t begin, size_t end) {
    partial[w] = AggregateRange(store, func, agg_column, predicate_columns,
                                rect, begin, end);
  });
  AggAccumulator acc;
  for (const AggAccumulator& p : partial) acc.Merge(p);
  return acc.Finish(func);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const ExecContext& ctx) {
  return AggregateInRect(store, q.func, q.agg_column, q.predicate_columns,
                         q.rect, ctx);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const ExecContext& ctx) {
  std::vector<std::optional<double>> out(queries.size());
  // Queries are the better fan-out axis once there are at least two per
  // worker: each runs the serial kernel in one task, so the batch scales
  // without any merge step. A small batch over a big store parallelizes
  // inside each query instead.
  const size_t workers = PlanNoCount(
      ctx, queries.size() * std::max<size_t>(store.size(), 1),
      ctx.parallel_min_rows);
  if (workers > 1 && queries.size() >= 2 * workers) {
    if (ctx.counters != nullptr) {
      ctx.counters->parallel_scans.fetch_add(1, std::memory_order_relaxed);
      ctx.counters->worker_ranges.fetch_add(workers,
                                            std::memory_order_relaxed);
    }
    ForEachIndex(ctx, queries.size(), workers, [&](size_t i) {
      out[i] = scan::ExactAnswer(store, queries[i]);
    });
    return out;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = ExactAnswer(store, queries[i], ctx);
  }
  return out;
}

std::pair<double, double> ColumnMinMax(const ColumnStore& store, int column,
                                       const ExecContext& ctx) {
  const size_t n = store.size();
  const ColumnSpan col = store.column(column);
  if (col.data == nullptr) {
    if (n == 0) {
      return {std::numeric_limits<double>::max(),
              std::numeric_limits<double>::lowest()};
    }
    return {0.0, 0.0};  // column outside the schema reads 0.0 everywhere
  }
  const size_t workers = PlanWorkers(ctx, n);
  std::vector<double> lo(workers, std::numeric_limits<double>::max());
  std::vector<double> hi(workers, std::numeric_limits<double>::lowest());
  ForEachRange(ctx, n, workers, [&](size_t w, size_t begin, size_t end) {
    double mn = std::numeric_limits<double>::max();
    double mx = std::numeric_limits<double>::lowest();
    for (size_t i = begin; i < end; ++i) {
      mn = std::min(mn, col[i]);
      mx = std::max(mx, col[i]);
    }
    lo[w] = mn;
    hi[w] = mx;
  });
  double mn = lo[0], mx = hi[0];
  for (size_t w = 1; w < workers; ++w) {
    mn = std::min(mn, lo[w]);
    mx = std::max(mx, hi[w]);
  }
  return {mn, mx};
}

}  // namespace scan
}  // namespace janus
