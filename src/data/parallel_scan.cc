#include "data/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

#include "data/simd.h"
#include "util/thread_pool.h"

namespace janus {
namespace scan {

namespace {

/// Set while a thread is executing a morsel body: nested scans issued from
/// inside a worker (a consumer callback that itself scans) stay serial
/// instead of deadlocking on pool capacity.
thread_local bool t_in_scan_worker = false;

}  // namespace

size_t ParseScanThreads(const char* text, size_t hardware,
                        std::string* warning) {
  warning->clear();
  const size_t fallback = hardware > 0 ? hardware : 1;
  if (text == nullptr || *text == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == text || end == nullptr || *end != '\0') {
    *warning = "JANUS_SCAN_THREADS=\"" + std::string(text) +
               "\" is not a number; using " + std::to_string(fallback);
    return fallback;
  }
  if (errno == ERANGE || n <= 0) {
    *warning = "JANUS_SCAN_THREADS=\"" + std::string(text) +
               "\" is out of range (want a positive thread count); using " +
               std::to_string(fallback);
    return fallback;
  }
  // More threads than 4x the hardware only adds context-switch overhead to
  // a CPU-bound scan pool; clamp instead of letting a stray value (e.g. a
  // core *mask* pasted as a count) spawn thousands of threads.
  const size_t max_threads = 4 * fallback;
  if (static_cast<unsigned long>(n) > max_threads) {
    *warning = "JANUS_SCAN_THREADS=" + std::to_string(n) + " exceeds 4x " +
               "hardware concurrency; clamping to " +
               std::to_string(max_threads);
    return max_threads;
  }
  return static_cast<size_t>(n);
}

namespace {

size_t DefaultScanThreads() {
  std::string warning;
  const size_t n =
      ParseScanThreads(std::getenv("JANUS_SCAN_THREADS"),
                       std::thread::hardware_concurrency(), &warning);
  // SharedScanPool() builds the pool inside a magic static, so a bad value
  // is warned about exactly once per process.
  if (!warning.empty()) std::fprintf(stderr, "[janus] %s\n", warning.c_str());
  return n;
}

}  // namespace

ThreadPool* SharedScanPool() {
  // Lazily built, thread-safe by C++ magic-static initialization; no lock
  // of our own to annotate. The pool's internal state carries its own
  // capability annotations (util/thread_pool.h).
  static ThreadPool pool(DefaultScanThreads());
  return &pool;
}

ScanCounters& GlobalScanCounters() {
  static ScanCounters counters;
  return counters;
}

ExecContext DefaultExec() {
  ExecContext ctx;
  ctx.pool = SharedScanPool();
  ctx.counters = &GlobalScanCounters();
  return ctx;
}

namespace {

/// The plan decision without the telemetry side effect (used when a caller
/// plans once for a composite operation and counts it itself).
size_t PlanNoCount(const ExecContext& ctx, size_t items, size_t min_items) {
  size_t workers = 1;
  if (ctx.pool != nullptr && !t_in_scan_worker && items >= min_items &&
      ctx.max_workers != 1) {
    workers = ctx.pool->num_threads();
    if (ctx.max_workers > 0) workers = std::min(workers, ctx.max_workers);
    // Never hand a worker less than a quarter of the cutoff's worth of
    // items (for the kernel cutoff that is exactly one morsel), so small
    // eligible scans don't shatter into dispatch overhead.
    const size_t per_worker_min = std::max<size_t>(1, min_items / 4);
    workers = std::min(workers, std::max<size_t>(1, items / per_worker_min));
  }
  return workers;
}

void CountPlan(const ExecContext& ctx, size_t workers) {
  if (ctx.counters == nullptr) return;
  if (workers > 1) {
    ctx.counters->parallel_scans.fetch_add(1, std::memory_order_relaxed);
    ctx.counters->worker_ranges.fetch_add(workers, std::memory_order_relaxed);
  } else if (t_in_scan_worker) {
    ctx.counters->nested_serial_scans.fetch_add(1, std::memory_order_relaxed);
  } else {
    ctx.counters->serial_scans.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- adaptive morsel sizing -------------------------------------------------
//
// One process-wide EWMA of observed scan cost per MorselCost class, in
// ns-per-row fixed point (<< 10). Every ForEachMorsel feeds the calling
// thread's own timed share back into its class, so each estimate tracks its
// own workload mix (SIMD kernel rows and materialized-tuple items differ by
// 100x+ per unit and must never share an estimate); 0 means "no observation
// yet". Races between concurrent updates just lose one sample.

std::atomic<uint64_t> g_ns_per_row_q10[2] = {{0}, {0}};

size_t AdaptiveMorselRows(MorselCost cls) {
  const uint64_t cost =
      g_ns_per_row_q10[static_cast<int>(cls)].load(std::memory_order_relaxed);
  if (cost == 0) return kMorselRows;
  const uint64_t rows = kTargetMorselNanos * 1024 / cost;
  const size_t blocks =
      static_cast<size_t>(std::max<uint64_t>(1, rows / kBlockRows));
  return std::min(kMaxMorselRows, blocks * kBlockRows);
}

void RecordMorselCost(MorselCost cls, size_t rows, uint64_t nanos) {
  if (rows == 0 || nanos == 0) return;
  uint64_t sample = nanos * 1024 / rows;
  if (sample == 0) sample = 1;
  std::atomic<uint64_t>& ewma = g_ns_per_row_q10[static_cast<int>(cls)];
  const uint64_t prev = ewma.load(std::memory_order_relaxed);
  const uint64_t next = prev == 0 ? sample : (3 * prev + sample) / 4;
  ewma.store(next, std::memory_order_relaxed);
}

}  // namespace

size_t PlanWorkersAtCutoff(const ExecContext& ctx, size_t items,
                           size_t min_items) {
  const size_t workers = PlanNoCount(ctx, items, min_items);
  CountPlan(ctx, workers);
  return workers;
}

size_t PlanWorkers(const ExecContext& ctx, size_t rows) {
  return PlanWorkersAtCutoff(ctx, rows, ctx.parallel_min_rows);
}

MorselPlan PlanMorselsAtCutoff(const ExecContext& ctx, size_t rows,
                               size_t min_items, MorselCost cost) {
  MorselPlan plan;
  plan.cost = cost;
  plan.workers = PlanWorkersAtCutoff(ctx, rows, min_items);
  if (plan.workers <= 1 || rows == 0) {
    plan.workers = 1;
    plan.morsel_rows = rows;
    plan.morsels = rows > 0 ? 1 : 0;
    return plan;
  }
  size_t mrows = AdaptiveMorselRows(cost);
  // Keep at least ~4 morsels per worker so stealing has slack to rebalance
  // a skewed chunk, but never shrink below one vectorized block.
  const size_t cap_blocks =
      std::max<size_t>(1, rows / (4 * plan.workers * kBlockRows));
  mrows = std::min(mrows, cap_blocks * kBlockRows);
  mrows = std::max(mrows, kBlockRows);
  plan.morsel_rows = mrows;
  plan.morsels = (rows + mrows - 1) / mrows;
  return plan;
}

MorselPlan PlanMorsels(const ExecContext& ctx, size_t rows, MorselCost cost) {
  return PlanMorselsAtCutoff(ctx, rows, ctx.parallel_min_rows, cost);
}

namespace {

/// RAII scope marking the current thread as a scan worker (nested ctx scans
/// stay serial; the caller's inline share counts too).
class ScanWorkerScope {
 public:
  ScanWorkerScope() : prev_(t_in_scan_worker) { t_in_scan_worker = true; }
  ~ScanWorkerScope() { t_in_scan_worker = prev_; }

 private:
  bool prev_;
};

}  // namespace

void ForEachMorsel(const ExecContext& ctx, size_t rows, const MorselPlan& plan,
                   const std::function<void(size_t, size_t, size_t, size_t)>&
                       fn) {
  if (rows == 0) return;
  size_t workers = plan.workers;
  // Defensive clamp mirroring PlanWorkers: a fan-out issued from inside a
  // scan worker runs inline (its helpers could never be scheduled if the
  // pool is saturated with waiters).
  if (t_in_scan_worker) workers = 1;
  if (workers <= 1 || plan.morsels <= 1) {
    ScanWorkerScope scope;
    fn(0, 0, 0, rows);
    return;
  }
  const size_t mrows = plan.morsel_rows;
  const size_t morsels = plan.morsels;
  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> stolen{0};
  auto claim = [&](size_t slot) {
    ScanWorkerScope scope;
    uint64_t mine = 0;
    for (size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
         c < morsels; c = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const size_t begin = c * mrows;
      fn(slot, c, begin, std::min(rows, begin + mrows));
      ++mine;
    }
    if (mine > 0 && slot != 0) {
      stolen.fetch_add(mine, std::memory_order_relaxed);
    }
  };
  GangTask gang(claim, workers - 1);
  ctx.pool->SubmitGang(&gang);
  {
    // The caller drains the cursor like everyone else (slot 0), timing its
    // own share to feed the adaptive sizer. Helpers that wake late find an
    // empty cursor and cost nothing — the caller never waits on a wakeup.
    ScanWorkerScope scope;
    const auto t0 = std::chrono::steady_clock::now();
    size_t my_rows = 0;
    for (size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
         c < morsels; c = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const size_t begin = c * mrows;
      const size_t end = std::min(rows, begin + mrows);
      fn(0, c, begin, end);
      my_rows += end - begin;
    }
    const auto t1 = std::chrono::steady_clock::now();
    RecordMorselCost(
        plan.cost, my_rows,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
  }
  ctx.pool->CloseGang(&gang);
  if (ctx.counters != nullptr) {
    const uint64_t s = stolen.load(std::memory_order_relaxed);
    if (s > 0) {
      ctx.counters->stolen_morsels.fetch_add(s, std::memory_order_relaxed);
    }
  }
}

void ForEachIndex(const ExecContext& ctx, size_t count, size_t workers,
                  const std::function<void(size_t)>& fn) {
  if (t_in_scan_worker) workers = 1;
  if (workers <= 1 || count < 2) {
    ScanWorkerScope scope;
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  workers = std::min(workers, count);
  std::atomic<size_t> cursor{0};
  auto drain = [&] {
    ScanWorkerScope scope;
    for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < count;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  GangTask gang([&](size_t) { drain(); }, workers - 1);
  ctx.pool->SubmitGang(&gang);
  drain();
  ctx.pool->CloseGang(&gang);
}

size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, const ExecContext& ctx) {
  const size_t n = store.size();
  const MorselPlan plan = PlanMorsels(ctx, n);
  if (plan.workers <= 1) {
    return scan::CountInRect(store, predicate_columns, rect);
  }
  // Integer counts are associative: a single shared total is bit-identical
  // to the serial count no matter which worker claims which morsel.
  std::atomic<size_t> total{0};
  ForEachMorsel(ctx, n, plan,
                [&](size_t, size_t, size_t begin, size_t end) {
                  const size_t c =
                      CountRangeAtLeast(store, predicate_columns, rect, begin,
                                        end,
                                        std::numeric_limits<size_t>::max());
                  if (c > 0) total.fetch_add(c, std::memory_order_relaxed);
                });
  return total.load(std::memory_order_relaxed);
}

size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold,
                          const ExecContext& ctx) {
  const size_t n = store.size();
  // Early exit bounds the useful work at roughly `threshold` scanned rows
  // (exactly that when matches are dense), so plan on that bound — a small
  // threshold over a huge store is a fast serial scan, not a fan-out whose
  // workers mostly burn rows past the crossing point.
  MorselPlan plan = PlanMorsels(ctx, std::min(n, threshold));
  if (plan.workers <= 1) {
    return scan::CountInRectAtLeast(store, predicate_columns, rect, threshold);
  }
  // The worker count and morsel size were sized from the threshold-bounded
  // work estimate, but the chunk grid must still cover the whole store — a
  // sparse predicate legitimately scans far past `threshold` rows before
  // the early exit can fire.
  plan.morsels = (n + plan.morsel_rows - 1) / plan.morsel_rows;
  // Shared early-exit: each worker counts one block at a time and folds its
  // progress into `found`; once the fleet total crosses the threshold every
  // worker — stealing ones included — stops at its next morsel claim or
  // block boundary. The returned value is clamped, so overshoot from blocks
  // in flight never leaks out. The counter is an atomic
  // (self-synchronizing), so it needs no mutex capability; CloseGang inside
  // ForEachMorsel orders the final read.
  std::atomic<size_t> found{0};
  ForEachMorsel(ctx, n, plan, [&](size_t, size_t, size_t begin, size_t end) {
    for (size_t bs = begin; bs < end; bs += kBlockRows) {
      const size_t done = found.load(std::memory_order_relaxed);
      if (done >= threshold) return;
      const size_t be = std::min(end, bs + kBlockRows);
      // `threshold - done` may be stale-high; the clamp only ever bites when
      // the fleet total crosses the threshold, so the unclamped path still
      // counts exactly.
      const size_t block = CountRangeAtLeast(store, predicate_columns, rect,
                                             bs, be, threshold - done);
      if (block > 0) {
        found.fetch_add(block, std::memory_order_relaxed);
      }
    }
  });
  return std::min(found.load(std::memory_order_relaxed), threshold);
}

std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect,
                                      const ExecContext& ctx) {
  const size_t n = store.size();
  if (func == AggFunc::kCount) {
    const size_t c = CountInRect(store, predicate_columns, rect, ctx);
    if (c == 0) return std::nullopt;
    return static_cast<double>(c);
  }
  const MorselPlan plan = PlanMorsels(ctx, n);
  if (plan.workers <= 1) {
    return scan::AggregateInRect(store, func, agg_column, predicate_columns,
                                 rect);
  }
  // Floating-point partials live per *chunk* and merge in chunk order, so
  // the summation tree depends only on the plan, not on which worker stole
  // which morsel.
  std::vector<AggAccumulator> partial(plan.morsels);
  ForEachMorsel(ctx, n, plan,
                [&](size_t, size_t chunk, size_t begin, size_t end) {
                  partial[chunk] = AggregateRange(
                      store, func, agg_column, predicate_columns, rect, begin,
                      end);
                });
  AggAccumulator acc;
  for (const AggAccumulator& p : partial) acc.Merge(p);
  return acc.Finish(func);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const ExecContext& ctx) {
  return AggregateInRect(store, q.func, q.agg_column, q.predicate_columns,
                         q.rect, ctx);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const ExecContext& ctx) {
  std::vector<std::optional<double>> out(queries.size());
  // Queries are the better fan-out axis once there are at least two per
  // worker: each runs the serial kernel in one cursor claim, so the batch
  // scales without any merge step. A small batch over a big store
  // parallelizes inside each query instead.
  const size_t workers = PlanNoCount(
      ctx, queries.size() * std::max<size_t>(store.size(), 1),
      ctx.parallel_min_rows);
  if (workers > 1 && queries.size() >= 2 * workers) {
    if (ctx.counters != nullptr) {
      ctx.counters->parallel_scans.fetch_add(1, std::memory_order_relaxed);
      ctx.counters->worker_ranges.fetch_add(workers,
                                            std::memory_order_relaxed);
    }
    ForEachIndex(ctx, queries.size(), workers, [&](size_t i) {
      out[i] = scan::ExactAnswer(store, queries[i]);
    });
    return out;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = ExactAnswer(store, queries[i], ctx);
  }
  return out;
}

std::pair<double, double> ColumnMinMax(const ColumnStore& store, int column,
                                       const ExecContext& ctx) {
  const size_t n = store.size();
  const ColumnSpan col = store.column(column);
  if (col.data == nullptr) {
    if (n == 0) {
      return {std::numeric_limits<double>::max(),
              std::numeric_limits<double>::lowest()};
    }
    return {0.0, 0.0};  // column outside the schema reads 0.0 everywhere
  }
  const MorselPlan plan = PlanMorsels(ctx, n);
  // Min/max folds are order-insensitive, so per-slot partials are
  // bit-identical to serial under any stealing pattern.
  std::vector<double> lo(plan.workers, std::numeric_limits<double>::max());
  std::vector<double> hi(plan.workers, std::numeric_limits<double>::lowest());
  ForEachMorsel(ctx, n, plan,
                [&](size_t slot, size_t, size_t begin, size_t end) {
                  double mn;
                  double mx;
                  simd::Active().min_max(col.data + begin, end - begin, &mn,
                                         &mx);
                  lo[slot] = std::min(lo[slot], mn);
                  hi[slot] = std::max(hi[slot], mx);
                });
  double mn = lo[0];
  double mx = hi[0];
  for (size_t w = 1; w < plan.workers; ++w) {
    mn = std::min(mn, lo[w]);
    mx = std::max(mx, hi[w]);
  }
  return {mn, mx};
}

}  // namespace scan
}  // namespace janus
