#include "data/table.h"

namespace janus {

std::vector<Tuple> DynamicTable::live() const {
  std::vector<Tuple> rows;
  rows.reserve(store_.size());
  for (size_t pos = 0; pos < store_.size(); ++pos) {
    rows.push_back(store_.RowTuple(pos));
  }
  return rows;
}

}  // namespace janus
