#include "data/table.h"

#include <cassert>

namespace janus {

void DynamicTable::Insert(const Tuple& t) {
  assert(index_.find(t.id) == index_.end());
  index_[t.id] = live_.size();
  live_.push_back(t);
}

bool DynamicTable::Delete(uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const size_t pos = it->second;
  const size_t last = live_.size() - 1;
  if (pos != last) {
    live_[pos] = live_[last];
    index_[live_[pos].id] = pos;
  }
  live_.pop_back();
  index_.erase(it);
  return true;
}

const Tuple* DynamicTable::Find(uint64_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &live_[it->second];
}

std::vector<Tuple> DynamicTable::SampleUniform(Rng* rng, size_t k) const {
  std::vector<size_t> idx = rng->SampleIndices(live_.size(), k);
  std::vector<Tuple> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(live_[i]);
  return out;
}

const Tuple& DynamicTable::SampleOne(Rng* rng) const {
  assert(!live_.empty());
  return live_[rng->NextUint64(live_.size())];
}

}  // namespace janus
