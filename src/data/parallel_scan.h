#ifndef JANUS_DATA_PARALLEL_SCAN_H_
#define JANUS_DATA_PARALLEL_SCAN_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "data/exec_context.h"
#include "data/scan.h"

namespace janus {
namespace scan {

/// Default morsel size when the scheduler has no cost observation yet: a
/// multiple of kBlockRows so morsels stay block-aligned and each claim
/// amortizes several vectorized blocks.
inline constexpr size_t kMorselRows = 4 * kBlockRows;

/// Largest morsel the adaptive sizer will hand out (cheap kernels would
/// otherwise ask for huge morsels and lose the stealing granularity).
inline constexpr size_t kMaxMorselRows = 64 * kBlockRows;

/// Morsel duration the adaptive sizer targets: long enough that the shared
/// cursor fetch_add is noise, short enough that a straggler holds at most
/// ~0.1ms of unstolen work.
inline constexpr uint64_t kTargetMorselNanos = 64 * 1000;

/// Cost class of a morsel body, keying the adaptive sizer's per-row-cost
/// EWMA. Kernel row scans (~1-10ns/row through the SIMD kernels) and heavy
/// per-item loops (tuple materialization, per-row tree descent — easily
/// 100x+ the per-unit cost) must not share one estimate: a heavy consumer
/// would shrink kernel morsels to single blocks and drown the scan in claim
/// overhead, a cheap one would hand heavy loops morsels seconds long.
enum class MorselCost {
  kScanRows = 0,   ///< vectorized column-kernel rows
  kHeavyItems = 1  ///< materialized tuples / per-item tree work
};

/// One scan's fan-out decision. `workers` includes the calling thread
/// (slot 0); `morsels` is the number of block-aligned chunks the row range
/// splits into. A serial plan (workers == 1) is a single chunk covering the
/// whole range. The chunk *boundaries* are fixed at plan time — which slot
/// runs which chunk is decided dynamically by the work-stealing cursor.
struct MorselPlan {
  size_t workers = 1;
  size_t morsel_rows = 0;
  size_t morsels = 0;
  MorselCost cost = MorselCost::kScanRows;
};

/// Number of workers a scan over `rows` items should fan out to under `ctx`:
/// 1 (serial) when there is no pool, the scan is below the cost cutoff, the
/// caller is itself a scan worker (nested scans stay serial and count as
/// nested_serial_scans), or the plan ends up single-threaded; otherwise
/// min(max_workers, pool threads, items/chunk floor). Records the decision
/// in ctx.counters.
size_t PlanWorkersAtCutoff(const ExecContext& ctx, size_t items,
                           size_t min_items);

/// PlanWorkersAtCutoff at the kernel cutoff (ctx.parallel_min_rows).
size_t PlanWorkers(const ExecContext& ctx, size_t rows);

/// Full morsel plan for a row-range scan: workers via PlanWorkersAtCutoff
/// plus an adaptively sized, block-aligned morsel grid over [0, rows). The
/// morsel size targets kTargetMorselNanos of work per claim using a global
/// per-cost-class EWMA of observed per-row cost, clamped so every worker
/// sees at least ~4 morsels (stealing needs slack to balance skew).
MorselPlan PlanMorselsAtCutoff(const ExecContext& ctx, size_t rows,
                               size_t min_items,
                               MorselCost cost = MorselCost::kScanRows);

/// PlanMorselsAtCutoff at the kernel cutoff (ctx.parallel_min_rows).
MorselPlan PlanMorsels(const ExecContext& ctx, size_t rows,
                       MorselCost cost = MorselCost::kScanRows);

/// Work-stealing morsel loop: fn(slot, chunk, begin, end) runs once per
/// morsel of `plan` over [0, rows). All workers — the caller (slot 0) and
/// up to workers-1 pool helpers dispatched as one GangTask — pull chunks
/// from a shared atomic cursor, so a stalled or late-waking helper never
/// strands work: whoever is running simply claims the next chunk.
///
/// Determinism contract:
///  - chunk boundaries depend only on (rows, plan), never on scheduling;
///  - `chunk` indexes are dense in [0, plan.morsels): per-chunk partials
///    merged in chunk order are deterministic for a fixed plan;
///  - `slot` is stable per worker in [0, plan.workers): per-slot partials
///    merged in slot order give order-insensitive merges (integer sums,
///    min/max) bit-identical results, floating-point sums results within
///    reassociation of the serial answer;
///  - a serial plan runs fn(0, 0, 0, rows) inline — bit-identical to the
///    serial kernel by construction.
///
/// The caller's share of claimed rows is timed and fed back into the
/// adaptive morsel sizer.
void ForEachMorsel(const ExecContext& ctx, size_t rows, const MorselPlan& plan,
                   const std::function<void(size_t, size_t, size_t, size_t)>&
                       fn);

/// Run fn(index) for every index of [0, count) across `workers` pullers of
/// a shared cursor (one gang dispatch; use only when per-index results are
/// order-independent, e.g. one output slot per query).
void ForEachIndex(const ExecContext& ctx, size_t count, size_t workers,
                  const std::function<void(size_t)>& fn);

// --- parallel kernels -------------------------------------------------------
//
// Each kernel plans once, runs the serial range kernel (data/scan.h) per
// claimed morsel, and merges partials either associatively (counts, min/max
// — bit-identical under any scheduling) or in chunk order (floating-point
// aggregates — deterministic for a fixed plan, within 1e-12 of serial). A
// one-worker plan calls the serial kernel directly and is bit-identical.

size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, const ExecContext& ctx);

/// Early-exit parallel count: workers publish per-block progress into a
/// shared atomic; every worker re-checks it before claiming a morsel and
/// before each block, so the fleet (stealing workers included) stops as
/// soon as `threshold` matches exist. Returns min(matches, threshold) —
/// bit-identical regardless of in-flight overshoot.
size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold,
                          const ExecContext& ctx);

std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect,
                                      const ExecContext& ctx);

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const ExecContext& ctx);

/// Batch evaluation: many queries fan out one-per-cursor-claim (each query
/// runs the serial kernel, so answers are independent of scheduling); a
/// small batch over a large store parallelizes inside each query instead.
std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const ExecContext& ctx);

/// Min/max of one column over the live rows ({+inf, -inf} when empty;
/// {0, 0} for a column outside the schema of a non-empty store). Min/max
/// merges are order-insensitive, so the result is bit-identical to serial
/// under any scheduling.
std::pair<double, double> ColumnMinMax(const ColumnStore& store, int column,
                                       const ExecContext& ctx);

}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_PARALLEL_SCAN_H_
