#ifndef JANUS_DATA_PARALLEL_SCAN_H_
#define JANUS_DATA_PARALLEL_SCAN_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "data/exec_context.h"
#include "data/scan.h"

namespace janus {
namespace scan {

/// Morsel size of the parallel layer: a multiple of kBlockRows so worker
/// ranges stay block-aligned and each worker amortizes several vectorized
/// blocks per dispatch.
inline constexpr size_t kMorselRows = 4 * kBlockRows;

/// Number of workers a scan over `rows` items should fan out to under `ctx`:
/// 1 (serial) when there is no pool, the scan is below the cost cutoff, the
/// caller is itself a scan worker (nested scans stay serial), or the plan
/// ends up single-threaded; otherwise min(max_workers, pool threads,
/// rows/kMorselRows). Records the serial/parallel decision in ctx.counters.
/// The plan depends only on (rows, ctx, pool size), never on scheduling, so
/// repeated runs partition identically.
size_t PlanWorkers(const ExecContext& ctx, size_t rows);

/// PlanWorkers with an explicit cost cutoff, for consumers whose per-item
/// work is much heavier than a scan kernel's per-row work (catch-up sample
/// absorption, leaf routing).
size_t PlanWorkersAtCutoff(const ExecContext& ctx, size_t items,
                           size_t min_items);

/// Run fn(worker, begin, end) for `workers` contiguous block-aligned ranges
/// covering [0, rows). Worker 0 runs on the calling thread; the rest are
/// dispatched on ctx.pool and completion is tracked per call (scans sharing
/// the pool never wait on each other's tasks). With workers == 1 this is a
/// plain inline call over the whole range.
void ForEachRange(const ExecContext& ctx, size_t rows, size_t workers,
                  const std::function<void(size_t, size_t, size_t)>& fn);

/// Run fn(index) for every index of [0, count) across `workers` tasks that
/// pull from a shared cursor (work-stealing; use only when per-index results
/// are order-independent, e.g. one slot per query).
void ForEachIndex(const ExecContext& ctx, size_t count, size_t workers,
                  const std::function<void(size_t)>& fn);

// --- parallel kernels -------------------------------------------------------
//
// Each kernel plans once, runs the serial range kernel (data/scan.h) per
// worker range, and merges the partials in worker order, so results are
// deterministic for a fixed configuration and a one-worker plan is
// bit-identical to the serial kernel.

size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, const ExecContext& ctx);

/// Early-exit parallel count: workers publish per-block progress into a
/// shared atomic and stop as soon as the fleet has `threshold` matches.
/// Returns min(matches, threshold).
size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold,
                          const ExecContext& ctx);

std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect,
                                      const ExecContext& ctx);

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const ExecContext& ctx);

/// Batch evaluation: many queries fan out one-per-worker-slot (each query
/// runs the serial kernel, so answers are independent of scheduling); a
/// small batch over a large store parallelizes inside each query instead.
std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const ExecContext& ctx);

/// Min/max of one column over the live rows ({+inf, -inf} when empty;
/// {0, 0} for a column outside the schema of a non-empty store).
std::pair<double, double> ColumnMinMax(const ColumnStore& store, int column,
                                       const ExecContext& ctx);

}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_PARALLEL_SCAN_H_
