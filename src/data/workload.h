#ifndef JANUS_DATA_WORKLOAD_H_
#define JANUS_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "data/column_store.h"
#include "data/exec_context.h"
#include "data/schema.h"
#include "util/rng.h"

namespace janus {

/// One aggregate query with a rectangular predicate (Sec. 3.1):
///   SELECT func(agg_column) FROM D WHERE Rectangle(predicate_columns).
struct AggQuery {
  AggFunc func = AggFunc::kSum;
  int agg_column = 0;
  std::vector<int> predicate_columns;
  Rectangle rect;
};

/// Options for the random workload generator (Sec. 6.1: "query workloads of
/// 2000 queries by uniformly sampling from rectangular range queries over
/// the predicates").
struct WorkloadOptions {
  size_t num_queries = 2000;
  AggFunc func = AggFunc::kSum;
  /// Queries whose true COUNT is below this are rejected and re-drawn
  /// (mirrors the paper's observation that empty ground truths are
  /// uninformative, Sec. 6.7).
  size_t min_count = 10;
  uint64_t seed = 7;
  /// Morsel-parallel execution of the rejection-count scans. Default:
  /// serial.
  scan::ExecContext exec;
};

/// Outcome of one Generate() call. The generator rejection-samples against
/// a bounded attempts budget, so an unsatisfiable opts.min_count (tiny
/// table, degenerate domain) produces *fewer* queries than requested — the
/// report makes that shortfall explicit instead of leaving callers to
/// notice a short vector.
struct WorkloadGenReport {
  size_t requested = 0;  ///< opts.num_queries
  size_t generated = 0;  ///< queries actually produced
  size_t rejected = 0;   ///< draws discarded below opts.min_count
  /// True when the attempts budget ran out before `requested` queries were
  /// accepted (generated < requested).
  bool budget_exhausted = false;

  size_t shortfall() const { return requested - generated; }
};

/// Generates random rectangular range queries. Each per-dimension interval is
/// obtained by sorting two uniform draws from the observed attribute domain.
/// Rejection counts run through the vectorized CountInRectAtLeast kernel
/// (data/scan.h) with an early exit at min_count.
///
/// Empty or constant inputs clamp the domain to a valid degenerate interval
/// (RandomRect never sees inverted bounds), and a generation that exhausts
/// its rejection budget reports the shortfall via WorkloadGenReport and a
/// one-time process warning rather than silently returning a short workload.
class WorkloadGenerator {
 public:
  /// Domain is estimated from `rows` (min/max of each predicate column).
  WorkloadGenerator(const std::vector<Tuple>& rows,
                    std::vector<int> predicate_columns, int agg_column);

  /// Columnar variant: domain min/max come from contiguous column scans.
  WorkloadGenerator(const ColumnStore& store,
                    std::vector<int> predicate_columns, int agg_column);

  /// Generate a workload; rejection-samples queries below opts.min_count
  /// over `rows` (transposed once into a scratch ColumnStore). When fewer
  /// than opts.num_queries could be produced, `report` (if given) carries
  /// the shortfall; the first short generation in the process also warns on
  /// stderr.
  std::vector<AggQuery> Generate(const std::vector<Tuple>& rows,
                                 const WorkloadOptions& opts,
                                 WorkloadGenReport* report = nullptr) const;

  /// Columnar variant: rejection counts scan the store's columns directly.
  std::vector<AggQuery> Generate(const ColumnStore& store,
                                 const WorkloadOptions& opts,
                                 WorkloadGenReport* report = nullptr) const;

  /// Generate a single random rectangle (no rejection).
  Rectangle RandomRect(Rng* rng) const;

 private:
  std::vector<int> predicate_columns_;
  int agg_column_;
  std::vector<double> domain_lo_;
  std::vector<double> domain_hi_;
};

}  // namespace janus

#endif  // JANUS_DATA_WORKLOAD_H_
