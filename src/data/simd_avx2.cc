// AVX2 implementations of the scan vector kernels. This translation unit is
// the only one compiled with -mavx2 (CMake sets the flag and
// JANUS_SIMD_COMPILE_AVX2 per-file when the compiler supports it), so the
// rest of the binary stays portable; simd.cc only dereferences this table
// after a runtime CPUID check.
#include "data/simd.h"

#if defined(JANUS_SIMD_COMPILE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <limits>

namespace janus {
namespace scan {
namespace simd {

namespace {

inline bool InBounds(double x, double lo, double hi) {
  return !(x < lo) & !(x > hi);
}

/// Closed-interval lane mask with NaN-matches semantics: NLT/NGT unordered
/// compares are true for NaN lanes, exactly like !(x < lo) & !(x > hi).
inline __m256d BoundsMask(__m256d x, __m256d vlo, __m256d vhi) {
  return _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_NLT_UQ),
                       _mm256_cmp_pd(x, vhi, _CMP_NGT_UQ));
}

inline double HorizontalSum(__m256d a) {
  const __m128d lo = _mm256_castpd256_pd128(a);
  const __m128d hi = _mm256_extractf128_pd(a, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// pshufb control bytes that left-pack the selected 32-bit lanes of an
/// __m128i for each 4-bit keep mask (bit i set = keep dword i); dropped
/// output lanes read 0x80 (zeroed — harmless, the cursor only advances by
/// popcount).
struct CompressLut {
  alignas(16) uint8_t b[16][16];
  CompressLut() {
    for (int m = 0; m < 16; ++m) {
      int out = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((m & (1 << lane)) == 0) continue;
        for (int k = 0; k < 4; ++k) {
          b[m][4 * out + k] = static_cast<uint8_t>(4 * lane + k);
        }
        ++out;
      }
      for (; out < 4; ++out) {
        for (int k = 0; k < 4; ++k) b[m][4 * out + k] = 0x80;
      }
    }
  }
};
const CompressLut kLut;

size_t Avx2CountInBounds(const double* v, size_t len, double lo, double hi) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  // Count by subtracting the all-ones (-1) mask lanes from 64-bit
  // accumulators; no per-lane popcount needed.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256d m0 = BoundsMask(_mm256_loadu_pd(v + i), vlo, vhi);
    const __m256d m1 = BoundsMask(_mm256_loadu_pd(v + i + 4), vlo, vhi);
    acc0 = _mm256_sub_epi64(acc0, _mm256_castpd_si256(m0));
    acc1 = _mm256_sub_epi64(acc1, _mm256_castpd_si256(m1));
  }
  for (; i + 4 <= len; i += 4) {
    const __m256d m = BoundsMask(_mm256_loadu_pd(v + i), vlo, vhi);
    acc0 = _mm256_sub_epi64(acc0, _mm256_castpd_si256(m));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc0, acc1));
  size_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < len; ++i) {
    count += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return count;
}

size_t Avx2FilterInBounds(const double* v, size_t len, double lo, double hi,
                          uint32_t base, uint32_t* sel) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  __m128i idx = _mm_setr_epi32(
      static_cast<int>(base), static_cast<int>(base + 1),
      static_cast<int>(base + 2), static_cast<int>(base + 3));
  const __m128i step = _mm_set1_epi32(4);
  size_t matched = 0;
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d m = BoundsMask(_mm256_loadu_pd(v + i), vlo, vhi);
    const int bits = _mm256_movemask_pd(m);
    const __m128i shuf =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kLut.b[bits]));
    // Unconditional 16-byte store; only the first popcount lanes are live.
    // The scratch room past `matched` stays within sel[len] because
    // matched <= i and i + 4 <= len.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + matched),
                     _mm_shuffle_epi8(idx, shuf));
    matched += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(bits)));
    idx = _mm_add_epi32(idx, step);
  }
  for (; i < len; ++i) {
    sel[matched] = base + static_cast<uint32_t>(i);
    matched += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return matched;
}

size_t Avx2CompactInBounds(const double* v, uint32_t* sel, size_t n,
                           double lo, double hi) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t out = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __m256d x = _mm256_i32gather_pd(v, p, 8);
    const int bits = _mm256_movemask_pd(BoundsMask(x, vlo, vhi));
    const __m128i shuf =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kLut.b[bits]));
    // In-place left-pack is safe: the write window [out, out+4) never
    // reaches past [i, i+4), whose values are already loaded into `p`.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + out),
                     _mm_shuffle_epi8(p, shuf));
    out += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(bits)));
  }
  for (; i < n; ++i) {
    const uint32_t p = sel[i];
    sel[out] = p;
    out += static_cast<size_t>(InBounds(v[p], lo, hi));
  }
  return out;
}

double Avx2SumDense(const double* v, size_t len) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(v + i + 4));
  }
  for (; i + 4 <= len; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(v + i));
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < len; ++i) sum += v[i];
  return sum;
}

double Avx2SumGather(const double* v, const uint32_t* sel, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    acc = _mm256_add_pd(acc, _mm256_i32gather_pd(v, p, 8));
  }
  double sum = HorizontalSum(acc);
  for (; i < n; ++i) sum += v[sel[i]];
  return sum;
}

void Avx2MinMax(const double* v, size_t len, double* mn, double* mx) {
  // minpd/maxpd return the *second* operand when either input is NaN, so
  // feeding the running extreme as the second operand ignores NaN values —
  // the same behavior as the scalar std::min/std::max loop.
  __m256d vmn = _mm256_set1_pd(std::numeric_limits<double>::max());
  __m256d vmx = _mm256_set1_pd(std::numeric_limits<double>::lowest());
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    vmn = _mm256_min_pd(x, vmn);
    vmx = _mm256_max_pd(x, vmx);
  }
  alignas(32) double lo_lanes[4];
  alignas(32) double hi_lanes[4];
  _mm256_store_pd(lo_lanes, vmn);
  _mm256_store_pd(hi_lanes, vmx);
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (int lane = 0; lane < 4; ++lane) {
    lo = std::min(lo, lo_lanes[lane]);
    hi = std::max(hi, hi_lanes[lane]);
  }
  for (; i < len; ++i) {
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  *mn = lo;
  *mx = hi;
}

size_t Avx2CountInBoundsLimited(const double* v, size_t len, double lo,
                                double hi, size_t limit) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t count = 0;
  size_t i = 0;
  // The clamp check runs per 4-lane group; a group may overshoot `limit`,
  // which the final std::min folds back — the clamped result is
  // order-insensitive, so this matches the scalar early-exit loop exactly.
  for (; i + 4 <= len && count < limit; i += 4) {
    const int bits =
        _mm256_movemask_pd(BoundsMask(_mm256_loadu_pd(v + i), vlo, vhi));
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(bits)));
  }
  for (; i < len && count < limit; ++i) {
    count += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return std::min(count, limit);
}

void Avx2MinMaxGather(const double* v, const uint32_t* sel, size_t n,
                      double* mn, double* mx) {
  // Same NaN-ignoring trick as Avx2MinMax (running extreme as the second
  // minpd/maxpd operand), fed by the same index gather as Avx2SumGather.
  __m256d vmn = _mm256_set1_pd(std::numeric_limits<double>::max());
  __m256d vmx = _mm256_set1_pd(std::numeric_limits<double>::lowest());
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    const __m256d x = _mm256_i32gather_pd(v, p, 8);
    vmn = _mm256_min_pd(x, vmn);
    vmx = _mm256_max_pd(x, vmx);
  }
  alignas(32) double lo_lanes[4];
  alignas(32) double hi_lanes[4];
  _mm256_store_pd(lo_lanes, vmn);
  _mm256_store_pd(hi_lanes, vmx);
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (int lane = 0; lane < 4; ++lane) {
    lo = std::min(lo, lo_lanes[lane]);
    hi = std::max(hi, hi_lanes[lane]);
  }
  for (; i < n; ++i) {
    lo = std::min(lo, v[sel[i]]);
    hi = std::max(hi, v[sel[i]]);
  }
  *mn = lo;
  *mx = hi;
}

}  // namespace

const Kernels* Avx2KernelsIfCompiled() {
  static const Kernels k = {
      "avx2",           Avx2CountInBounds, Avx2FilterInBounds,
      Avx2CompactInBounds, Avx2SumDense,   Avx2SumGather,
      Avx2MinMax,       Avx2CountInBoundsLimited,
      Avx2MinMaxGather,
  };
  return &k;
}

}  // namespace simd
}  // namespace scan
}  // namespace janus

#else  // !JANUS_SIMD_COMPILE_AVX2

namespace janus {
namespace scan {
namespace simd {

const Kernels* Avx2KernelsIfCompiled() { return nullptr; }

}  // namespace simd
}  // namespace scan
}  // namespace janus

#endif  // JANUS_SIMD_COMPILE_AVX2
