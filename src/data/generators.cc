#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace janus {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kIntelWireless:
      return "Intel";
    case DatasetKind::kNycTaxi:
      return "NYC";
    case DatasetKind::kNasdaqEtf:
      return "ETF";
  }
  return "?";
}

DefaultTemplate DefaultTemplateFor(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kIntelWireless:
      return {/*predicate=time*/ 0, /*aggregate=light*/ 1};
    case DatasetKind::kNycTaxi:
      return {/*predicate=pickup_time*/ 0, /*aggregate=trip_distance*/ 2};
    case DatasetKind::kNasdaqEtf:
      return {/*predicate=volume*/ 5, /*aggregate=close*/ 2};
  }
  return {0, 1};
}

namespace {

GeneratedDataset GenerateIntel(size_t n, uint64_t seed) {
  GeneratedDataset ds;
  ds.kind = DatasetKind::kIntelWireless;
  ds.schema.column_names = {"time", "light", "temperature", "humidity",
                            "voltage"};
  ds.rows.reserve(n);
  Rng rng(seed);
  // 31-second epochs over ~1 month, like the Berkeley lab deployment.
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.id = i;
    t += rng.Exponential(1.0 / 31.0);
    const double day_phase =
        std::sin(2.0 * M_PI * std::fmod(t, 86400.0) / 86400.0 - M_PI / 2.0);
    // Light is zero at night and bursty during the day (zero-inflated).
    double light = 0.0;
    if (day_phase > -0.2) {
      light = std::max(0.0, (day_phase + 0.2) * 400.0 +
                                rng.LogNormal(2.0, 1.0));
    }
    const double temperature = 19.0 + 4.0 * day_phase + rng.Normal(0, 0.8);
    const double humidity = 45.0 - 6.0 * day_phase + rng.Normal(0, 2.5);
    const double voltage = 2.7 - 3e-7 * t + rng.Normal(0, 0.01);
    row[0] = t;
    row[1] = light;
    row[2] = temperature;
    row[3] = humidity;
    row[4] = voltage;
    ds.rows.push_back(row);
  }
  return ds;
}

GeneratedDataset GenerateNycTaxi(size_t n, uint64_t seed) {
  GeneratedDataset ds;
  ds.kind = DatasetKind::kNycTaxi;
  ds.schema.column_names = {"pickup_time", "dropoff_time",  "trip_distance",
                            "passenger_count", "fare", "pickup_time_of_day"};
  ds.rows.reserve(n);
  Rng rng(seed);
  double t = 0.0;  // seconds since Jan 1 2019
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.id = i;
    // Arrival intensity follows a diurnal cycle: few trips at 4am, rush at
    // 8am/6pm.
    const double tod = std::fmod(t, 86400.0) / 3600.0;  // hours
    const double intensity =
        0.35 + 0.65 * (std::exp(-0.5 * std::pow((tod - 8.5) / 2.0, 2)) +
                       std::exp(-0.5 * std::pow((tod - 18.5) / 2.5, 2)) +
                       0.4 * std::exp(-0.5 * std::pow((tod - 13.0) / 3.0, 2)));
    t += rng.Exponential(intensity);
    const double distance = rng.LogNormal(0.8, 0.9);  // miles, median ~2.2
    const double speed_mph = 8.0 + 14.0 * rng.NextDouble();
    const double duration = distance / speed_mph * 3600.0 + rng.Uniform(30, 120);
    const double fare = 2.5 + 2.5 * distance + 0.35 * duration / 60.0 +
                        rng.Normal(0, 0.5);
    row[0] = t;
    row[1] = t + duration;
    row[2] = distance;
    row[3] = static_cast<double>(1 + rng.Zipf(6, 1.8));
    row[4] = std::max(2.5, fare);
    row[5] = std::fmod(t, 86400.0);
    ds.rows.push_back(row);
  }
  return ds;
}

GeneratedDataset GenerateEtf(size_t n, uint64_t seed) {
  GeneratedDataset ds;
  ds.kind = DatasetKind::kNasdaqEtf;
  ds.schema.column_names = {"date", "open", "close", "high", "low", "volume"};
  ds.rows.reserve(n);
  Rng rng(seed);
  // Simulate a pool of ETFs, each a geometric random walk; rows arrive
  // day-major like the Kaggle dump (one row per ETF per day).
  const size_t num_etfs = std::max<size_t>(16, n / 2048);
  std::vector<double> price(num_etfs);
  std::vector<double> vol_scale(num_etfs);
  std::vector<double> sigma(num_etfs);
  for (size_t e = 0; e < num_etfs; ++e) {
    price[e] = rng.LogNormal(3.3, 0.8);          // ~$27 median
    vol_scale[e] = rng.LogNormal(10.0, 1.6);     // heavy-tailed base volume
    sigma[e] = 0.008 + 0.025 * rng.NextDouble();  // daily volatility
  }
  double day = 0.0;
  size_t e = 0;
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.id = i;
    if (e == num_etfs) {
      e = 0;
      day += 1.0;
    }
    const double open = price[e];
    const double ret = rng.Normal(0.0002, sigma[e]);
    const double close = open * std::exp(ret);
    const double wiggle_hi = std::abs(rng.Normal(0, sigma[e] / 2));
    const double wiggle_lo = std::abs(rng.Normal(0, sigma[e] / 2));
    const double high = std::max(open, close) * (1.0 + wiggle_hi);
    const double low = std::min(open, close) * (1.0 - wiggle_lo);
    // Volume spikes with absolute return (volume-volatility correlation).
    const double volume =
        vol_scale[e] * std::exp(8.0 * std::abs(ret)) * rng.LogNormal(0, 0.5);
    price[e] = close;
    row[0] = day;
    row[1] = open;
    row[2] = close;
    row[3] = high;
    row[4] = low;
    row[5] = volume;
    ds.rows.push_back(row);
    ++e;
  }
  return ds;
}

}  // namespace

GeneratedDataset GenerateDataset(DatasetKind kind, size_t n, uint64_t seed) {
  switch (kind) {
    case DatasetKind::kIntelWireless:
      return GenerateIntel(n, seed);
    case DatasetKind::kNycTaxi:
      return GenerateNycTaxi(n, seed);
    case DatasetKind::kNasdaqEtf:
      return GenerateEtf(n, seed);
  }
  return GenerateIntel(n, seed);
}

GeneratedDataset GenerateUniform(size_t n, int num_predicate_columns,
                                 uint64_t seed) {
  GeneratedDataset ds;
  ds.kind = DatasetKind::kIntelWireless;  // kind is irrelevant for tests
  ds.schema.column_names.clear();
  for (int c = 0; c < num_predicate_columns; ++c) {
    ds.schema.column_names.push_back("p" + std::to_string(c));
  }
  ds.schema.column_names.push_back("agg");
  ds.rows.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Tuple row;
    row.id = i;
    for (int c = 0; c < num_predicate_columns; ++c) {
      row[c] = rng.NextDouble();
    }
    row[num_predicate_columns] = rng.Normal(10.0, 2.0);
    ds.rows.push_back(row);
  }
  return ds;
}

}  // namespace janus
