#include "data/simd.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace janus {
namespace scan {
namespace simd {

namespace {

/// Same closed-interval/NaN semantics as scan.cc's InBounds.
inline bool InBounds(double x, double lo, double hi) {
  return !(x < lo) & !(x > hi);
}

size_t ScalarCountInBounds(const double* v, size_t len, double lo, double hi) {
  size_t count = 0;
  for (size_t i = 0; i < len; ++i) {
    count += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return count;
}

size_t ScalarFilterInBounds(const double* v, size_t len, double lo, double hi,
                            uint32_t base, uint32_t* sel) {
  size_t matched = 0;
  for (size_t i = 0; i < len; ++i) {
    sel[matched] = base + static_cast<uint32_t>(i);
    matched += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return matched;
}

size_t ScalarCompactInBounds(const double* v, uint32_t* sel, size_t n,
                             double lo, double hi) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = sel[i];
    sel[out] = p;
    out += static_cast<size_t>(InBounds(v[p], lo, hi));
  }
  return out;
}

double ScalarSumDense(const double* v, size_t len) {
  double sum = 0.0;
  for (size_t i = 0; i < len; ++i) sum += v[i];
  return sum;
}

double ScalarSumGather(const double* v, const uint32_t* sel, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += v[sel[i]];
  return sum;
}

void ScalarMinMax(const double* v, size_t len, double* mn, double* mx) {
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (size_t i = 0; i < len; ++i) {
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  *mn = lo;
  *mx = hi;
}

size_t ScalarCountInBoundsLimited(const double* v, size_t len, double lo,
                                  double hi, size_t limit) {
  size_t count = 0;
  for (size_t i = 0; i < len && count < limit; ++i) {
    count += static_cast<size_t>(InBounds(v[i], lo, hi));
  }
  return count;
}

void ScalarMinMaxGather(const double* v, const uint32_t* sel, size_t n,
                        double* mn, double* mx) {
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (size_t i = 0; i < n; ++i) {
    lo = std::min(lo, v[sel[i]]);
    hi = std::max(hi, v[sel[i]]);
  }
  *mn = lo;
  *mx = hi;
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& ResolveActive() {
  const Kernels* avx2 = Avx2KernelsIfCompiled();
  const bool cpu_ok = CpuHasAvx2();
  if (const char* env = std::getenv("JANUS_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return ScalarKernels();
    if (std::strcmp(env, "avx2") == 0) {
      if (avx2 != nullptr && cpu_ok) return *avx2;
      std::fprintf(stderr,
                   "[janus] JANUS_SIMD=avx2 requested but AVX2 is %s; using "
                   "scalar kernels\n",
                   avx2 == nullptr ? "not compiled into this build"
                                   : "not supported by this CPU");
      return ScalarKernels();
    }
    std::fprintf(stderr,
                 "[janus] ignoring unknown JANUS_SIMD=\"%s\" (expected "
                 "\"scalar\" or \"avx2\"); auto-detecting\n",
                 env);
  }
  return (avx2 != nullptr && cpu_ok) ? *avx2 : ScalarKernels();
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels k = {
      "scalar",          ScalarCountInBounds, ScalarFilterInBounds,
      ScalarCompactInBounds, ScalarSumDense,  ScalarSumGather,
      ScalarMinMax,      ScalarCountInBoundsLimited,
      ScalarMinMaxGather,
  };
  return k;
}

const Kernels& Active() {
  // Resolved once, first use; magic static makes the choice thread-safe and
  // immutable for the rest of the process (determinism depends on that).
  static const Kernels& k = ResolveActive();
  return k;
}

}  // namespace simd
}  // namespace scan
}  // namespace janus
