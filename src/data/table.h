#ifndef JANUS_DATA_TABLE_H_
#define JANUS_DATA_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/column_store.h"
#include "data/schema.h"
#include "util/rng.h"

namespace janus {

/// The evolving database D(i) of Sec. 2.1: a table modified by a stream of
/// insertions and deletions, with "cold/archival storage" access for
/// initialization, re-optimization and catch-up (slow, offline reads are
/// allowed; query processing must not touch it).
///
/// Storage is columnar (ColumnStore): one contiguous array per schema column
/// with swap-remove deletes, so archival scans run through the vectorized
/// kernels in data/scan.h instead of materializing row tuples. Hot paths read
/// columns zero-copy via store()/column(); live() materializes rows and is
/// kept only for the stream boundary and tests.
class DynamicTable {
 public:
  explicit DynamicTable(Schema schema) : store_(std::move(schema)) {}

  const Schema& schema() const { return store_.schema(); }

  /// Insert a tuple. Ids must be unique among live tuples.
  void Insert(const Tuple& t) { store_.Insert(t); }

  /// Delete a live tuple by id. Returns false if the id is not live.
  bool Delete(uint64_t id) { return store_.Delete(id); }

  /// Materialize a live tuple by id; nullopt if absent.
  std::optional<Tuple> Find(uint64_t id) const { return store_.Find(id); }

  size_t size() const { return store_.size(); }
  bool empty() const { return store_.empty(); }

  /// Zero-copy columnar view of the archive (the scan-kernel entry point).
  const ColumnStore& store() const { return store_; }

  /// Zero-copy view of one column, positionally aligned with store().ids().
  ColumnSpan column(int col) const { return store_.column(col); }

  /// Live tuples materialized into rows, in arbitrary order. O(n * width):
  /// archival scans should use store() + data/scan.h kernels instead; this
  /// exists for the stream boundary and test assertions.
  std::vector<Tuple> live() const;

  /// Uniform random sample (without replacement) of k live tuples.
  std::vector<Tuple> SampleUniform(Rng* rng, size_t k) const {
    return store_.SampleUniform(rng, k);
  }

  /// SampleUniform with morsel-parallel row materialization (serial index
  /// draws, bit-identical results; see ColumnStore::SampleUniform).
  std::vector<Tuple> SampleUniform(Rng* rng, size_t k,
                                   const scan::ExecContext& exec) const {
    return store_.SampleUniform(rng, k, exec);
  }

  /// One uniform random live tuple (with replacement semantics across calls).
  Tuple SampleOne(Rng* rng) const { return store_.SampleOne(rng); }

  /// Heap footprint of the archive (columns + ids + id index).
  size_t MemoryBytes() const { return store_.MemoryBytes(); }

  /// Snapshot persistence (delegates to the columnar store).
  void SaveTo(persist::Writer* w) const { store_.SaveTo(w); }
  void LoadFrom(persist::Reader* r) { store_.LoadFrom(r); }

 private:
  ColumnStore store_;
};

}  // namespace janus

#endif  // JANUS_DATA_TABLE_H_
