#ifndef JANUS_DATA_TABLE_H_
#define JANUS_DATA_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"

namespace janus {

/// The evolving database D(i) of Sec. 2.1: a table modified by a stream of
/// insertions and deletions, with "cold/archival storage" access for
/// initialization, re-optimization and catch-up (slow, offline reads are
/// allowed; query processing must not touch it).
///
/// Internally keeps the live tuples contiguous (swap-remove on delete) so
/// that archival uniform sampling and exact ground-truth scans are cheap.
class DynamicTable {
 public:
  explicit DynamicTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Insert a tuple. Ids must be unique among live tuples.
  void Insert(const Tuple& t);

  /// Delete a live tuple by id. Returns false if the id is not live.
  bool Delete(uint64_t id);

  /// Fetch a live tuple by id; nullptr if absent. The pointer is invalidated
  /// by subsequent mutations.
  const Tuple* Find(uint64_t id) const;

  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  /// Live tuples, in arbitrary order (archival scan).
  const std::vector<Tuple>& live() const { return live_; }

  /// Uniform random sample (without replacement) of k live tuples.
  std::vector<Tuple> SampleUniform(Rng* rng, size_t k) const;

  /// One uniform random live tuple (with replacement semantics across calls).
  const Tuple& SampleOne(Rng* rng) const;

 private:
  Schema schema_;
  std::vector<Tuple> live_;
  std::unordered_map<uint64_t, size_t> index_;  // id -> position in live_
};

}  // namespace janus

#endif  // JANUS_DATA_TABLE_H_
