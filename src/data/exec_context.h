#ifndef JANUS_DATA_EXEC_CONTEXT_H_
#define JANUS_DATA_EXEC_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace janus {

class ThreadPool;

namespace scan {

/// Telemetry of the parallel execution layer: how many scans chose the
/// morsel-parallel path vs stayed serial, and how the work-stealing
/// scheduler behaved. Engines own one instance each and surface the numbers
/// through EngineStats.
struct ScanCounters {
  std::atomic<uint64_t> parallel_scans{0};
  /// Scans that stayed serial for a top-level reason: cost cutoff, no pool,
  /// or a one-thread plan.
  std::atomic<uint64_t> serial_scans{0};
  /// Scans issued from *inside* a morsel worker (a consumer callback that
  /// itself scans). They always run serial — a nested fan-out could never be
  /// scheduled on a saturated pool — but they are a distinct signal: a high
  /// count means a hot path hides a fan-out opportunity behind another scan,
  /// not that the planner chose serial.
  std::atomic<uint64_t> nested_serial_scans{0};
  /// Worker slots dispatched across all parallel scans.
  std::atomic<uint64_t> worker_ranges{0};
  /// Morsels claimed by pool helpers rather than the calling thread — the
  /// direct measure of how much work stealing actually moved.
  std::atomic<uint64_t> stolen_morsels{0};
};

/// Default cost cutoff: scans below this many rows stay serial. Dispatching
/// a worker costs roughly a queue push + wakeup (~µs); a 4096-row block
/// filters in ~1µs, so parallelism only pays once a scan spans many blocks.
inline constexpr size_t kDefaultParallelMinRows = 64 * 1024;

/// Execution context threaded through every archival scan consumer. A
/// default-constructed context is the serial path (no pool); engines build
/// theirs from EngineConfig (scan_threads / parallel_min_rows) against the
/// process-wide shared pool.
struct ExecContext {
  /// Pool the morsels are dispatched on; nullptr pins the scan serial.
  ThreadPool* pool = nullptr;
  /// Cap on workers per scan; 0 means "all pool threads".
  size_t max_workers = 0;
  /// Cost cutoff: scans of fewer rows run serial even with a pool.
  size_t parallel_min_rows = kDefaultParallelMinRows;
  /// Optional telemetry sink (per-engine or GlobalScanCounters()).
  ScanCounters* counters = nullptr;
};

/// Validated parse of a JANUS_SCAN_THREADS-style value. `hardware` is the
/// detected hardware concurrency (pass std::thread::hardware_concurrency(),
/// 0 tolerated). Rules:
///  - null/empty/garbage (non-numeric, trailing junk, overflow, <= 0):
///    fall back to max(hardware, 1) and describe the problem in *warning;
///  - values above 4x hardware are clamped to that bound (oversubscribing a
///    scan pool past that only adds context-switch overhead), also warned;
///  - otherwise the parsed value is returned and *warning is left empty.
/// Pure function so the validation rules are unit-testable; the process-wide
/// pool's constructor prints the warning once.
size_t ParseScanThreads(const char* text, size_t hardware,
                        std::string* warning);

/// Process-wide scan pool, created lazily on first use with
/// JANUS_SCAN_THREADS threads (default: std::thread::hardware_concurrency;
/// malformed values are validated by ParseScanThreads and warned about once
/// on stderr). The lazy build is a C++ magic static — thread-safe without a
/// lock of its own; the pool's queue/counters carry the capability
/// annotations.
ThreadPool* SharedScanPool();

/// Process-wide telemetry for contexts without an engine-owned sink.
ScanCounters& GlobalScanCounters();

/// Shared pool + global counters + default cutoff — the context free-standing
/// consumers (benches, examples, ground-truth helpers) use.
ExecContext DefaultExec();

}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_EXEC_CONTEXT_H_
