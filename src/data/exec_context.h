#ifndef JANUS_DATA_EXEC_CONTEXT_H_
#define JANUS_DATA_EXEC_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace janus {

class ThreadPool;

namespace scan {

/// Telemetry of the parallel execution layer: how many scans chose the
/// morsel-parallel path vs stayed serial (cost cutoff, no pool, or a
/// one-thread plan), and how many worker ranges were dispatched. Engines own
/// one instance each and surface the numbers through EngineStats.
struct ScanCounters {
  std::atomic<uint64_t> parallel_scans{0};
  std::atomic<uint64_t> serial_scans{0};
  std::atomic<uint64_t> worker_ranges{0};
};

/// Default cost cutoff: scans below this many rows stay serial. Dispatching
/// a worker costs roughly a queue push + wakeup (~µs); a 4096-row block
/// filters in ~1µs, so parallelism only pays once a scan spans many blocks.
inline constexpr size_t kDefaultParallelMinRows = 64 * 1024;

/// Execution context threaded through every archival scan consumer. A
/// default-constructed context is the serial path (no pool); engines build
/// theirs from EngineConfig (scan_threads / parallel_min_rows) against the
/// process-wide shared pool.
struct ExecContext {
  /// Pool the morsels are dispatched on; nullptr pins the scan serial.
  ThreadPool* pool = nullptr;
  /// Cap on workers per scan; 0 means "all pool threads".
  size_t max_workers = 0;
  /// Cost cutoff: scans of fewer rows run serial even with a pool.
  size_t parallel_min_rows = kDefaultParallelMinRows;
  /// Optional telemetry sink (per-engine or GlobalScanCounters()).
  ScanCounters* counters = nullptr;
};

/// Process-wide scan pool, created lazily on first use with
/// JANUS_SCAN_THREADS threads (default: std::thread::hardware_concurrency).
/// The lazy build is a C++ magic static — thread-safe without a lock of its
/// own; the pool's queue/counters carry the capability annotations.
ThreadPool* SharedScanPool();

/// Process-wide telemetry for contexts without an engine-owned sink.
ScanCounters& GlobalScanCounters();

/// Shared pool + global counters + default cutoff — the context free-standing
/// consumers (benches, examples, ground-truth helpers) use.
ExecContext DefaultExec();

}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_EXEC_CONTEXT_H_
