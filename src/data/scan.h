#ifndef JANUS_DATA_SCAN_H_
#define JANUS_DATA_SCAN_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "data/column_store.h"
#include "data/schema.h"
#include "data/workload.h"

namespace janus {

/// Streaming aggregate accumulator shared by the columnar scan kernels and
/// the row-oriented ground-truth path (data/ground_truth.cc) — the single
/// place the SUM/COUNT/AVG/MIN/MAX finishing rules live.
struct AggAccumulator {
  double count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::max();
  double max = std::numeric_limits<double>::lowest();

  void Add(double a) {
    count += 1;
    sum += a;
    min = std::min(min, a);
    max = std::max(max, a);
  }

  /// Fold another accumulator in (morsel partials merge in worker order, so
  /// the combined sum is deterministic for a fixed partitioning).
  void Merge(const AggAccumulator& o) {
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  /// nullopt when no tuple matched (AVG/MIN/MAX undefined; relative error of
  /// a zero SUM/COUNT is undefined too, so harnesses skip those queries).
  std::optional<double> Finish(AggFunc f) const;
};

/// Vectorized scan kernels over a ColumnStore. All kernels process rows in
/// fixed-size blocks with a column-at-a-time selection-vector filter: each
/// predicate dimension is evaluated over its contiguous column for the whole
/// block before any other column is touched, so the hot loops are simple
/// branch-light passes over dense double arrays that auto-vectorize.
namespace scan {

/// Block size of the vectorized kernels: big enough to amortize per-block
/// work, small enough that a block's selection vector stays in L1.
inline constexpr size_t kBlockRows = 4096;

/// Filter one block [begin, end) of `store` against `rect` over
/// `predicate_columns`, column at a time. On return `sel` holds the matching
/// row positions; returns how many. `sel` must have room for end - begin
/// entries. An empty predicate set matches every row.
size_t FilterBlock(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, size_t begin, size_t end,
                   uint32_t* sel);

/// Number of live rows inside `rect` (closed intervals, row semantics
/// identical to Rectangle::Contains over materialized tuples).
size_t CountInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect);

/// Early-exit variant for rejection sampling: stops as soon as `threshold`
/// matches are found — including mid-block, so the last block is not
/// re-filtered past the first satisfying row. Returns min(matches,
/// threshold).
size_t CountInRectAtLeast(const ColumnStore& store,
                          const std::vector<int>& predicate_columns,
                          const Rectangle& rect, size_t threshold);

// --- row-range kernels (morsel building blocks) -----------------------------
//
// The full-store kernels above are thin wrappers over these range variants;
// the morsel-parallel layer (data/parallel_scan.h) runs the same code over
// block-aligned sub-ranges and merges the partials in worker order, so a
// one-worker parallel scan is bit-identical to the serial kernel.

/// Count the live rows of [begin, end) inside `rect`, stopping at the first
/// satisfying row once `limit` matches are reached. Returns min(matches,
/// limit).
size_t CountRangeAtLeast(const ColumnStore& store,
                         const std::vector<int>& predicate_columns,
                         const Rectangle& rect, size_t begin, size_t end,
                         size_t limit);

/// Aggregate partial of `agg_column` over the rows of [begin, end) inside
/// `rect`. Only the fields `func` needs are guaranteed meaningful (e.g. a
/// kSum scan does not maintain min/max).
AggAccumulator AggregateRange(const ColumnStore& store, AggFunc func,
                              int agg_column,
                              const std::vector<int>& predicate_columns,
                              const Rectangle& rect, size_t begin, size_t end);

/// Aggregate of `agg_column` over the rows inside `rect`; nullopt when no
/// row matches.
std::optional<double> AggregateInRect(const ColumnStore& store, AggFunc func,
                                      int agg_column,
                                      const std::vector<int>& predicate_columns,
                                      const Rectangle& rect);

/// Invoke `fn(row_position)` for every live row inside `rect`, in position
/// order. The callable is templated so tight consumers inline.
template <typename Fn>
void ForEachInRect(const ColumnStore& store,
                   const std::vector<int>& predicate_columns,
                   const Rectangle& rect, Fn&& fn) {
  uint32_t sel[kBlockRows];
  const size_t n = store.size();
  for (size_t begin = 0; begin < n; begin += kBlockRows) {
    const size_t end = std::min(n, begin + kBlockRows);
    const size_t matched =
        FilterBlock(store, predicate_columns, rect, begin, end, sel);
    for (size_t i = 0; i < matched; ++i) fn(static_cast<size_t>(sel[i]));
  }
}

/// Exact answer of one aggregate query via the columnar kernels — the single
/// ground-truth implementation behind data/ground_truth.* and bench/common.h.
std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q);

/// Batch evaluation: one kernel scan per query (each touching only that
/// query's predicate + aggregate columns).
std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries);

/// Materialize a row vector into a scratch ColumnStore wide enough for
/// `queries` (or kMaxColumns when queries is empty) so row-oriented callers
/// can run the columnar kernels. The store is built index-free (BulkAppend);
/// the id index is only constructed if someone later looks a row up by id.
ColumnStore ToColumnStore(const std::vector<Tuple>& rows,
                          const std::vector<AggQuery>& queries);

}  // namespace scan
}  // namespace janus

#endif  // JANUS_DATA_SCAN_H_
