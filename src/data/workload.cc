#include "data/workload.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>

#include "data/parallel_scan.h"
#include "data/scan.h"

namespace janus {
namespace {

// Empty input (or a column outside the schema) leaves the min/max fold at
// its sentinel values, with lo > hi; RandomRect would then sample from an
// inverted interval. Clamp to the degenerate [0,0] so every downstream
// rectangle stays well-formed.
void ClampDomains(std::vector<double>* lo, std::vector<double>* hi) {
  for (size_t i = 0; i < lo->size(); ++i) {
    if ((*lo)[i] > (*hi)[i]) {
      (*lo)[i] = 0.0;
      (*hi)[i] = 0.0;
    }
  }
}

void WarnShortfallOnce(const WorkloadGenReport& r) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true, std::memory_order_relaxed)) return;
  std::fprintf(stderr,
               "[janus] WorkloadGenerator: produced %zu of %zu requested "
               "queries (%zu rejected below min_count; attempts budget "
               "exhausted). Table too small or min_count unsatisfiable; "
               "further shortfalls will not be logged.\n",
               r.generated, r.requested, r.rejected);
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const std::vector<Tuple>& rows,
                                     std::vector<int> predicate_columns,
                                     int agg_column)
    : predicate_columns_(std::move(predicate_columns)),
      agg_column_(agg_column) {
  const size_t d = predicate_columns_.size();
  domain_lo_.assign(d, std::numeric_limits<double>::max());
  domain_hi_.assign(d, std::numeric_limits<double>::lowest());
  for (const Tuple& t : rows) {
    for (size_t i = 0; i < d; ++i) {
      const double v = t[predicate_columns_[i]];
      domain_lo_[i] = std::min(domain_lo_[i], v);
      domain_hi_[i] = std::max(domain_hi_[i], v);
    }
  }
  ClampDomains(&domain_lo_, &domain_hi_);
}

WorkloadGenerator::WorkloadGenerator(const ColumnStore& store,
                                     std::vector<int> predicate_columns,
                                     int agg_column)
    : predicate_columns_(std::move(predicate_columns)),
      agg_column_(agg_column) {
  const size_t d = predicate_columns_.size();
  domain_lo_.assign(d, std::numeric_limits<double>::max());
  domain_hi_.assign(d, std::numeric_limits<double>::lowest());
  for (size_t i = 0; i < d; ++i) {
    const ColumnSpan col = store.column(predicate_columns_[i]);
    for (double v : col) {
      domain_lo_[i] = std::min(domain_lo_[i], v);
      domain_hi_[i] = std::max(domain_hi_[i], v);
    }
    if (col.empty() && !store.empty()) {
      // Column outside the schema reads 0.0 everywhere.
      domain_lo_[i] = 0.0;
      domain_hi_[i] = 0.0;
    }
  }
  ClampDomains(&domain_lo_, &domain_hi_);
}

Rectangle WorkloadGenerator::RandomRect(Rng* rng) const {
  const size_t d = predicate_columns_.size();
  std::vector<double> lo(d), hi(d);
  for (size_t i = 0; i < d; ++i) {
    double a = rng->Uniform(domain_lo_[i], domain_hi_[i]);
    double b = rng->Uniform(domain_lo_[i], domain_hi_[i]);
    if (a > b) std::swap(a, b);
    lo[i] = a;
    hi[i] = b;
  }
  return Rectangle(std::move(lo), std::move(hi));
}

std::vector<AggQuery> WorkloadGenerator::Generate(
    const std::vector<Tuple>& rows, const WorkloadOptions& opts,
    WorkloadGenReport* report) const {
  AggQuery probe;
  probe.agg_column = agg_column_;
  probe.predicate_columns = predicate_columns_;
  return Generate(scan::ToColumnStore(rows, {probe}), opts, report);
}

std::vector<AggQuery> WorkloadGenerator::Generate(
    const ColumnStore& store, const WorkloadOptions& opts,
    WorkloadGenReport* report) const {
  Rng rng(opts.seed);
  std::vector<AggQuery> out;
  out.reserve(opts.num_queries);
  WorkloadGenReport r;
  r.requested = opts.num_queries;
  uint64_t attempts_left = static_cast<uint64_t>(opts.num_queries) * 50;
  while (out.size() < opts.num_queries && attempts_left-- > 0) {
    AggQuery q;
    q.func = opts.func;
    q.agg_column = agg_column_;
    q.predicate_columns = predicate_columns_;
    q.rect = RandomRect(&rng);
    if (opts.min_count > 0 &&
        scan::CountInRectAtLeast(store, predicate_columns_, q.rect,
                                 opts.min_count, opts.exec) < opts.min_count) {
      ++r.rejected;
      continue;
    }
    out.push_back(std::move(q));
  }
  r.generated = out.size();
  r.budget_exhausted = r.generated < r.requested;
  if (r.budget_exhausted) WarnShortfallOnce(r);
  if (report != nullptr) *report = r;
  return out;
}

}  // namespace janus
