#include "data/ground_truth.h"

#include <cmath>

#include "data/parallel_scan.h"
#include "data/scan.h"

namespace janus {

std::optional<double> ExactAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q) {
  // Row path kept for callers holding snapshot vectors; small inputs stay on
  // the shared accumulator, avoiding the transposition.
  AggAccumulator acc;
  std::vector<double> point(q.predicate_columns.size());
  for (const Tuple& t : rows) {
    ProjectTuple(t, q.predicate_columns, point.data());
    if (q.rect.Contains(point.data())) acc.Add(t[q.agg_column]);
  }
  return acc.Finish(q.func);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q) {
  return scan::ExactAnswer(store, q);
}

std::vector<std::optional<double>> ExactAnswers(
    const std::vector<Tuple>& rows, const std::vector<AggQuery>& queries) {
  return scan::ExactAnswers(scan::ToColumnStore(rows, queries), queries);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries) {
  return scan::ExactAnswers(store, queries);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const scan::ExecContext& exec) {
  return scan::ExactAnswer(store, q, exec);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const scan::ExecContext& exec) {
  return scan::ExactAnswers(store, queries, exec);
}

std::optional<double> RelativeError(std::optional<double> truth, double est) {
  if (!truth.has_value() || *truth == 0.0) return std::nullopt;
  return std::abs(est - *truth) / std::abs(*truth);
}

}  // namespace janus
