#include "data/ground_truth.h"

#include <cmath>

#include "data/parallel_scan.h"
#include "data/scan.h"

namespace janus {

std::optional<double> ExactAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q) {
  // Delegate to the columnar kernels so the row path is bit-identical to
  // the batch path — the SIMD aggregate kernels have their own summation
  // order, so keeping a second scalar accumulator here would let the two
  // ground-truth entry points drift by a few ulps.
  return scan::ExactAnswer(scan::ToColumnStore(rows, {q}), q);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q) {
  return scan::ExactAnswer(store, q);
}

std::vector<std::optional<double>> ExactAnswers(
    const std::vector<Tuple>& rows, const std::vector<AggQuery>& queries) {
  return scan::ExactAnswers(scan::ToColumnStore(rows, queries), queries);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries) {
  return scan::ExactAnswers(store, queries);
}

std::optional<double> ExactAnswer(const ColumnStore& store, const AggQuery& q,
                                  const scan::ExecContext& exec) {
  return scan::ExactAnswer(store, q, exec);
}

std::vector<std::optional<double>> ExactAnswers(
    const ColumnStore& store, const std::vector<AggQuery>& queries,
    const scan::ExecContext& exec) {
  return scan::ExactAnswers(store, queries, exec);
}

std::optional<double> RelativeError(std::optional<double> truth, double est) {
  if (!truth.has_value() || *truth == 0.0) return std::nullopt;
  return std::abs(est - *truth) / std::abs(*truth);
}

}  // namespace janus
