#include "data/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace janus {

namespace {

struct Accum {
  double count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::max();
  double max = std::numeric_limits<double>::lowest();

  void Add(double a) {
    count += 1;
    sum += a;
    min = std::min(min, a);
    max = std::max(max, a);
  }

  std::optional<double> Finish(AggFunc f) const {
    if (count == 0) return std::nullopt;
    switch (f) {
      case AggFunc::kSum:
        return sum;
      case AggFunc::kCount:
        return count;
      case AggFunc::kAvg:
        return sum / count;
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return std::nullopt;
  }
};

}  // namespace

std::optional<double> ExactAnswer(const std::vector<Tuple>& rows,
                                  const AggQuery& q) {
  Accum acc;
  std::vector<double> point(q.predicate_columns.size());
  for (const Tuple& t : rows) {
    ProjectTuple(t, q.predicate_columns, point.data());
    if (q.rect.Contains(point.data())) acc.Add(t[q.agg_column]);
  }
  return acc.Finish(q.func);
}

std::vector<std::optional<double>> ExactAnswers(
    const std::vector<Tuple>& rows, const std::vector<AggQuery>& queries) {
  std::vector<Accum> accs(queries.size());
  std::vector<double> point(kMaxColumns);
  for (const Tuple& t : rows) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const AggQuery& q = queries[i];
      ProjectTuple(t, q.predicate_columns, point.data());
      if (q.rect.Contains(point.data())) accs[i].Add(t[q.agg_column]);
    }
  }
  std::vector<std::optional<double>> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] = accs[i].Finish(queries[i].func);
  }
  return out;
}

std::optional<double> RelativeError(std::optional<double> truth, double est) {
  if (!truth.has_value() || *truth == 0.0) return std::nullopt;
  return std::abs(est - *truth) / std::abs(*truth);
}

}  // namespace janus
