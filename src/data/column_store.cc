#include "data/column_store.h"

#include <cassert>
#include <limits>

#include "data/parallel_scan.h"
#include "persist/common.h"
#include "util/invariants.h"

namespace janus {

namespace {

size_t WidthFor(const Schema& schema) {
  const int n = schema.num_columns();
  if (n <= 0) return static_cast<size_t>(kMaxColumns);
  return static_cast<size_t>(n < kMaxColumns ? n : kMaxColumns);
}

}  // namespace

ColumnStore::ColumnStore(Schema schema)
    : schema_(std::move(schema)), columns_(WidthFor(schema_)) {}

ColumnStore::ColumnStore(int num_columns)
    : columns_(static_cast<size_t>(
          num_columns < 1 ? 1
                          : (num_columns > kMaxColumns ? kMaxColumns
                                                       : num_columns))) {}

void ColumnStore::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
  ids_.reserve(rows);
  index_.reserve(rows);
}

void ColumnStore::Insert(const Tuple& t) {
  EnsureIndex();
  assert(index_.find(t.id) == index_.end());
  index_[t.id] = ids_.size();
  ids_.push_back(t.id);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(t.values[c]);
  }
}

void ColumnStore::BulkAppend(const std::vector<Tuple>& rows) {
  Reserve(ids_.size() + rows.size());
  for (const Tuple& t : rows) {
    ids_.push_back(t.id);
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(t.values[c]);
    }
  }
  indexed_ = false;
}

ColumnStore ColumnStore::WithoutIndex() const {
  ColumnStore copy(schema_);
  copy.columns_ = columns_;
  copy.ids_ = ids_;
  copy.indexed_ = false;
  return copy;
}

void ColumnStore::EnsureIndex() const {
  if (indexed_) return;
  index_.clear();
  index_.reserve(ids_.size());
  for (size_t pos = 0; pos < ids_.size(); ++pos) index_[ids_[pos]] = pos;
  indexed_ = true;
}

bool ColumnStore::Delete(uint64_t id) {
  EnsureIndex();
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const size_t pos = it->second;
  const size_t last = ids_.size() - 1;
  if (pos != last) {
    ids_[pos] = ids_[last];
    for (auto& col : columns_) col[pos] = col[last];
    index_[ids_[pos]] = pos;
  }
  ids_.pop_back();
  for (auto& col : columns_) col.pop_back();
  index_.erase(it);
  return true;
}

std::optional<Tuple> ColumnStore::Find(uint64_t id) const {
  EnsureIndex();
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return RowTuple(it->second);
}

size_t ColumnStore::PositionOf(uint64_t id) const {
  EnsureIndex();
  auto it = index_.find(id);
  return it == index_.end() ? std::numeric_limits<size_t>::max() : it->second;
}

Tuple ColumnStore::RowTuple(size_t pos) const {
  Tuple t;
  t.id = ids_[pos];
  for (size_t c = 0; c < columns_.size(); ++c) {
    t.values[c] = columns_[c][pos];
  }
  return t;
}

std::vector<Tuple> ColumnStore::SampleUniform(Rng* rng, size_t k) const {
  std::vector<size_t> idx = rng->SampleIndices(ids_.size(), k);
  std::vector<Tuple> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(RowTuple(i));
  return out;
}

std::vector<Tuple> ColumnStore::SampleUniform(
    Rng* rng, size_t k, const scan::ExecContext& exec) const {
  std::vector<size_t> idx = rng->SampleIndices(ids_.size(), k);
  std::vector<Tuple> out(idx.size());
  // Each tuple copy gathers `width` doubles — far heavier than a kernel
  // row, so the fan-out cutoff sits well below parallel_min_rows.
  constexpr size_t kMinSampleDraws = 8192;
  const scan::MorselPlan plan =
      scan::PlanMorselsAtCutoff(exec, idx.size(), kMinSampleDraws,
                                scan::MorselCost::kHeavyItems);
  scan::ForEachMorsel(exec, idx.size(), plan,
                      [&](size_t, size_t, size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i) {
                          out[i] = RowTuple(idx[i]);
                        }
                      });
  return out;
}

Tuple ColumnStore::SampleOne(Rng* rng) const {
  assert(!ids_.empty());
  return RowTuple(rng->NextUint64(ids_.size()));
}

size_t ColumnStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col.capacity() * sizeof(double);
  bytes += ids_.capacity() * sizeof(uint64_t);
  // Open-addressing-agnostic estimate of the unordered_map footprint: one
  // bucket pointer plus one heap node (key, value, next) per entry.
  bytes += index_.bucket_count() * sizeof(void*) +
           index_.size() * (sizeof(uint64_t) + sizeof(size_t) + sizeof(void*));
  return bytes;
}

void ColumnStore::SaveTo(persist::Writer* w) const {
  persist::SaveSchema(schema_, w);
  w->U32(static_cast<uint32_t>(columns_.size()));
  w->U64Vec(ids_);
  for (const std::vector<double>& col : columns_) w->F64Vec(col);
}

void ColumnStore::LoadFrom(persist::Reader* r) {
  const Schema loaded = persist::LoadSchema(r);
  const uint32_t width = r->U32();
  if (width == 0 || width > static_cast<uint32_t>(kMaxColumns)) {
    throw persist::PersistError("snapshot corrupt: bad column-store width");
  }
  // The snapshot must have been written under the same schema this store
  // was configured with: column indexes in the owner's config refer to this
  // layout, so silently adopting a different one would corrupt every scan.
  if (loaded.column_names != schema_.column_names ||
      width != columns_.size()) {
    throw persist::PersistError(
        "snapshot mismatch: archive schema differs from the engine's "
        "configured schema (recreate the engine with the schema the "
        "snapshot was written under)");
  }
  schema_ = loaded;
  ids_ = r->U64Vec();
  columns_.assign(width, {});
  for (std::vector<double>& col : columns_) {
    col = r->F64Vec();
    if (col.size() != ids_.size()) {
      throw persist::PersistError(
          "snapshot corrupt: column length does not match id column");
    }
  }
  index_.clear();
  indexed_ = false;
}

void ColumnStore::CheckInvariants() const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    invariants::Require(
        columns_[c].size() == ids_.size(), "ColumnStore",
        "column " + std::to_string(c) + " has " +
            std::to_string(columns_[c].size()) + " values for " +
            std::to_string(ids_.size()) + " rows");
  }
  if (indexed_) {
    invariants::Require(index_.size() == ids_.size(), "ColumnStore",
                        "index holds " + std::to_string(index_.size()) +
                            " entries for " + std::to_string(ids_.size()) +
                            " rows");
    for (size_t pos = 0; pos < ids_.size(); ++pos) {
      const auto it = index_.find(ids_[pos]);
      invariants::Require(it != index_.end(), "ColumnStore",
                          "live id " + std::to_string(ids_[pos]) +
                              " missing from the id index");
      invariants::Require(
          it->second == pos, "ColumnStore",
          "index maps id " + std::to_string(ids_[pos]) + " to position " +
              std::to_string(it->second) + ", actual position " +
              std::to_string(pos));
    }
    // index.size() == rows plus every row resolving to itself makes the
    // index a bijection, which also proves id uniqueness.
  } else {
    std::unordered_map<uint64_t, size_t> seen;
    seen.reserve(ids_.size());
    for (size_t pos = 0; pos < ids_.size(); ++pos) {
      const auto [it, inserted] = seen.emplace(ids_[pos], pos);
      invariants::Require(inserted, "ColumnStore",
                          "duplicate id " + std::to_string(ids_[pos]) +
                              " at positions " + std::to_string(it->second) +
                              " and " + std::to_string(pos));
    }
  }
}

}  // namespace janus
