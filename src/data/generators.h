#ifndef JANUS_DATA_GENERATORS_H_
#define JANUS_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"

namespace janus {

/// Synthetic stand-ins for the three evaluation datasets (Sec. 6.1.1). The
/// originals are not redistributable / not available offline, so each
/// generator reproduces the schema and the distributional character the
/// JanusAQP algorithms are sensitive to: attribute ordering (timestamps are
/// monotone in arrival order), skew (log-normal magnitudes, heavy-tailed
/// volumes), correlation between attributes, and zero-inflation. See
/// DESIGN.md "Substitutions".
///
/// Column layouts:
///   IntelWireless: time, light, temperature, humidity, voltage
///   NycTaxi:       pickup_time, dropoff_time, trip_distance,
///                  passenger_count, fare, pickup_time_of_day
///   NasdaqEtf:     date, open, close, high, low, volume
enum class DatasetKind { kIntelWireless, kNycTaxi, kNasdaqEtf };

/// Dataset name as used in experiment output ("Intel", "NYC", "ETF").
const char* DatasetName(DatasetKind kind);

/// A generated dataset: schema plus rows in arrival order. Rows carry unique
/// ids 0..n-1 so that deletion workloads can address them.
struct GeneratedDataset {
  DatasetKind kind;
  Schema schema;
  std::vector<Tuple> rows;
};

/// Generate `n` rows of the given dataset with a deterministic seed.
GeneratedDataset GenerateDataset(DatasetKind kind, size_t n, uint64_t seed);

/// Convenience: per-dataset default predicate / aggregate columns used in the
/// paper's 1-D experiments (Sec. 6.2):
///   Intel: predicate=time,   aggregate=light
///   NYC:   predicate=pickup_time, aggregate=trip_distance
///   ETF:   predicate=volume, aggregate=close
struct DefaultTemplate {
  int predicate_column;
  int aggregate_column;
};
DefaultTemplate DefaultTemplateFor(DatasetKind kind);

/// Uniform-value synthetic dataset (columns iid U[0,1], one agg column with
/// N(10, 2) values): the simplest substrate for unit tests.
GeneratedDataset GenerateUniform(size_t n, int num_predicate_columns,
                                 uint64_t seed);

}  // namespace janus

#endif  // JANUS_DATA_GENERATORS_H_
