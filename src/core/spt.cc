#include "core/spt.h"

#include <algorithm>

#include "core/max_variance.h"
#include "core/partitioner_1d.h"
#include "core/partitioner_dp.h"
#include "core/partitioner_kd.h"
#include "data/parallel_scan.h"
#include "data/scan.h"
#include "util/rng.h"
#include "util/timer.h"

namespace janus {

namespace {

/// Per-item parallel cutoff for sample materialization / projection loops:
/// each item is a Tuple copy or kd-point build — far heavier than a kernel
/// row, so the fan-out pays off much earlier than parallel_min_rows.
constexpr size_t kMinSampleItems = 8192;

}  // namespace

PartitionResult OptimizePartition(const std::vector<Tuple>& samples,
                                  const SptOptions& opts_in,
                                  size_t data_size) {
  SptOptions opts = opts_in;
  // Sec. 5.5: the system sizes k from the sample budget (k ~ 0.5% of m in
  // the paper's runs). Never hand out more leaves than the samples can
  // meaningfully stratify — a leaf needs a handful of samples to carry any
  // estimator at all.
  opts.num_leaves = std::max(
      1, std::min(opts.num_leaves, static_cast<int>(samples.size() / 8)));
  const int dims = static_cast<int>(opts.spec.predicate_columns.size());

  if (opts.algorithm == PartitionAlgorithm::kDynamicProgram) {
    std::vector<std::pair<double, double>> pairs;
    pairs.reserve(samples.size());
    for (const Tuple& t : samples) {
      pairs.emplace_back(t[opts.spec.predicate_columns[0]],
                         t[opts.spec.agg_column]);
    }
    PartitionerDpOptions dp;
    dp.num_leaves = opts.num_leaves;
    dp.focus = opts.focus;
    dp.sampling_rate = opts.sample_rate;
    return BuildPartitionDP(std::move(pairs), dp);
  }

  MaxVarianceIndex::Options mo;
  mo.dims = dims;
  mo.focus = opts.focus;
  mo.sampling_rate = opts.sample_rate;
  mo.delta = opts.delta;
  MaxVarianceIndex index(mo);
  // Project samples to kd points in work-stealing morsels: every point
  // lands at its own index, so the result is bit-identical to the serial
  // loop under any scheduling.
  std::vector<KdPoint> pts(samples.size());
  {
    const scan::MorselPlan plan =
        scan::PlanMorselsAtCutoff(opts.exec, samples.size(), kMinSampleItems,
                                  scan::MorselCost::kHeavyItems);
    scan::ForEachMorsel(opts.exec, samples.size(), plan,
                        [&](size_t, size_t, size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            pts[i] = MakeKdPoint(samples[i],
                                                 opts.spec.predicate_columns,
                                                 opts.spec.agg_column);
                          }
                        });
  }
  index.Build(pts);

  switch (opts.algorithm) {
    case PartitionAlgorithm::kEqualDepth:
      if (dims == 1) return BuildEqualDepth1D(index, opts.num_leaves);
      [[fallthrough]];
    case PartitionAlgorithm::kKdTree: {
      PartitionerKdOptions ko;
      ko.num_leaves = opts.num_leaves;
      ko.focus = opts.focus;
      ko.exec = opts.exec;
      return BuildPartitionKd(index, ko);
    }
    case PartitionAlgorithm::kBinarySearch:
    default: {
      if (dims != 1) {
        PartitionerKdOptions ko;
        ko.num_leaves = opts.num_leaves;
        ko.focus = opts.focus;
        ko.exec = opts.exec;
        return BuildPartitionKd(index, ko);
      }
      Partitioner1dOptions bo;
      bo.num_leaves = opts.num_leaves;
      bo.focus = opts.focus;
      bo.rho = opts.rho;
      bo.data_size = data_size;
      return BuildPartition1D(index, bo);
    }
  }
}

SptBuildResult BuildSpt(const ColumnStore& data, const SptOptions& opts) {
  SptBuildResult result;
  Timer total;
  Rng rng(opts.seed);
  const size_t m = std::max<size_t>(
      16, static_cast<size_t>(opts.sample_rate *
                              static_cast<double>(data.size())));
  // Index draws stay serial — the persisted RNG stream must not depend on
  // the thread count — but materializing the drawn rows is embarrassingly
  // parallel (each draw fills its own slot).
  std::vector<size_t> idx = rng.SampleIndices(data.size(), 2 * m);
  std::vector<Tuple> samples(idx.size());
  {
    const scan::MorselPlan plan =
        scan::PlanMorselsAtCutoff(opts.exec, idx.size(), kMinSampleItems,
                                  scan::MorselCost::kHeavyItems);
    scan::ForEachMorsel(opts.exec, idx.size(), plan,
                        [&](size_t, size_t, size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            samples[i] = data.RowTuple(idx[i]);
                          }
                        });
  }

  Timer part;
  PartitionResult pr = OptimizePartition(samples, opts, data.size());
  result.partition_seconds = part.ElapsedSeconds();
  result.achieved_error = pr.achieved_error;

  DptOptions dopts;
  dopts.spec = opts.spec;
  dopts.sample_rate = opts.sample_rate;
  dopts.minmax_k = opts.minmax_k;
  dopts.confidence = opts.confidence;
  dopts.delta = opts.delta;
  dopts.exec = opts.exec;
  result.synopsis = std::make_unique<Dpt>(dopts, std::move(pr.spec));
  result.synopsis->InitializeExact(data, samples);
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

SptBuildResult BuildSpt(const std::vector<Tuple>& data,
                        const SptOptions& opts) {
  return BuildSpt(scan::ToColumnStore(data, {}), opts);
}

}  // namespace janus
