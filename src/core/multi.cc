#include "core/multi.h"

#include <algorithm>

#include "persist/serde.h"

namespace janus {

MultiTemplateJanus::MultiTemplateJanus(const JanusOptions& base)
    : base_(base), table_(base.schema), rng_(base.seed) {}

int MultiTemplateJanus::TemplateFor(
    const std::vector<int>& predicate_columns) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].spec.predicate_columns == predicate_columns) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int MultiTemplateJanus::AddTemplate(const SynopsisSpec& spec) {
  const int existing = TemplateFor(spec.predicate_columns);
  if (existing >= 0 &&
      entries_[static_cast<size_t>(existing)].spec.agg_column ==
          spec.agg_column) {
    return existing;
  }
  Entry entry;
  entry.spec = spec;
  entries_.push_back(std::move(entry));
  const int idx = static_cast<int>(entries_.size()) - 1;
  if (initialized_) BuildEntry(&entries_[static_cast<size_t>(idx)]);
  return idx;
}

SptOptions MultiTemplateJanus::MakeSptOptions(const SynopsisSpec& spec) const {
  SptOptions s;
  s.spec = spec;
  s.num_leaves = base_.num_leaves;
  s.focus = base_.focus;
  s.sample_rate = base_.sample_rate;
  s.algorithm = base_.algorithm;
  s.rho = base_.rho;
  s.delta = base_.delta;
  s.minmax_k = base_.minmax_k;
  s.confidence = base_.confidence;
  s.seed = base_.seed;
  s.exec = base_.exec;
  return s;
}

DptOptions MultiTemplateJanus::MakeDptOptions(const SynopsisSpec& spec) const {
  DptOptions dopts;
  dopts.spec = spec;
  dopts.sample_rate = base_.sample_rate;
  dopts.minmax_k = base_.minmax_k;
  dopts.confidence = base_.confidence;
  dopts.delta = base_.delta;
  dopts.exec = base_.exec;
  return dopts;
}

void MultiTemplateJanus::BuildEntry(Entry* entry) {
  PartitionResult pr = OptimizePartition(reservoir_->samples(),
                                         MakeSptOptions(entry->spec),
                                         table_.size());
  entry->dpt = std::make_unique<Dpt>(MakeDptOptions(entry->spec),
                                     std::move(pr.spec));
  entry->dpt->InitializeFromReservoir(reservoir_->samples(), table_.size());
  const size_t goal = static_cast<size_t>(
      base_.catchup_rate * static_cast<double>(table_.size()));
  entry->catchup = std::make_unique<CatchupEngine>(
      entry->dpt.get(), table_.store().WithoutIndex(), goal, rng_.Next());
}

void MultiTemplateJanus::LoadInitial(const std::vector<Tuple>& rows) {
  for (const Tuple& t : rows) table_.Insert(t);
}

void MultiTemplateJanus::Initialize() {
  const size_t target = std::max<size_t>(
      32, static_cast<size_t>(2.0 * base_.sample_rate *
                              static_cast<double>(table_.size())));
  reservoir_ = std::make_unique<DynamicReservoir>(target, rng_.Next());
  reservoir_->Reset(table_.SampleUniform(&rng_, target, base_.exec));
  initialized_ = true;
  for (Entry& entry : entries_) BuildEntry(&entry);
}

void MultiTemplateJanus::Insert(const Tuple& t) {
  table_.Insert(t);
  // One global reservoir decision shared by every tree (Sec. 5.5: the set S
  // is stored once; each tree only indexes it).
  ReservoirChange ch = reservoir_->OnInsert(t, table_.size());
  if (bg_capture_) {
    // Double-apply: one shared op stream, replayed into every side tree in
    // the same per-tree order as the live application below.
    if (ch.evicted.has_value()) {
      Capture({ReoptDeltaOp::Kind::kSampleRemove, *ch.evicted, {}});
    }
    if (ch.added.has_value()) {
      Capture({ReoptDeltaOp::Kind::kSampleAdd, *ch.added, {}});
    }
    Capture({ReoptDeltaOp::Kind::kInsert, t, {}});
  }
  for (Entry& entry : entries_) {
    if (ch.evicted.has_value()) entry.dpt->SampleRemove(*ch.evicted);
    if (ch.added.has_value()) entry.dpt->SampleAdd(*ch.added);
    entry.dpt->ApplyInsert(t);
  }
}

bool MultiTemplateJanus::Delete(uint64_t id) {
  const std::optional<Tuple> p = table_.Find(id);
  if (!p.has_value()) return false;
  const Tuple t = *p;
  table_.Delete(id);
  ReservoirChange ch = reservoir_->OnDelete(id);
  std::vector<Tuple> fresh;
  if (ch.needs_resample) {
    fresh = table_.SampleUniform(&rng_, reservoir_->capacity(), base_.exec);
    reservoir_->Reset(fresh);
  }
  if (bg_capture_) {
    if (ch.needs_resample) {
      Capture({ReoptDeltaOp::Kind::kSampleReset, Tuple{}, fresh});
    } else if (ch.evicted.has_value()) {
      Capture({ReoptDeltaOp::Kind::kSampleRemove, *ch.evicted, {}});
    }
    Capture({ReoptDeltaOp::Kind::kDelete, t, {}});
  }
  for (Entry& entry : entries_) {
    if (ch.needs_resample) {
      entry.dpt->ResetSamples(fresh);
    } else if (ch.evicted.has_value()) {
      entry.dpt->SampleRemove(*ch.evicted);
    }
    entry.dpt->ApplyDelete(t);
  }
  return true;
}

QueryResult MultiTemplateJanus::Query(const AggQuery& q) {
  int idx = TemplateFor(q.predicate_columns);
  if (idx < 0) {
    // A query from a new template: build its tree on demand from the pooled
    // sample and start catch-up for it (Sec. 5.5). The first answer is
    // sample-grade; subsequent ones improve as catch-up proceeds.
    SynopsisSpec spec;
    spec.agg_column = q.agg_column;
    spec.predicate_columns = q.predicate_columns;
    idx = AddTemplate(spec);
  }
  return entries_[static_cast<size_t>(idx)].dpt->Query(q);
}

void MultiTemplateJanus::RunCatchupToGoal() {
  for (Entry& entry : entries_) {
    if (entry.catchup) entry.catchup->RunToGoal();
  }
}

void MultiTemplateJanus::Rebuild() {
  if (!initialized_) return;
  for (Entry& entry : entries_) BuildEntry(&entry);
}

void MultiTemplateJanus::Capture(ReoptDeltaOp op) {
  MutexLock lock(&delta_mu_);
  bg_.delta.push_back(std::move(op));
}

bool MultiTemplateJanus::BeginBackgroundRebuild() {
  if (bg_active_ || !initialized_ || !reservoir_) return false;
  bg_ = BackgroundRebuild{};
  bg_.snapshot = reservoir_->samples();
  bg_.n0 = table_.size();
  bg_.archive = std::make_unique<ColumnStore>(table_.store().WithoutIndex());
  const size_t n = entries_.size();
  bg_.specs.reserve(n);
  bg_.seeds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bg_.specs.push_back(entries_[i].spec);
    // Entry-order draws — exactly the Next() calls a blocking Rebuild()
    // would make now, so the RNG stream stays aligned with the blocking
    // path (the equivalence contract).
    bg_.seeds.push_back(rng_.Next());
  }
  bg_.sides.resize(n);
  {
    MutexLock lock(&delta_mu_);
    bg_capture_ = true;
  }
  bg_active_ = true;
  return true;
}

void MultiTemplateJanus::BuildBackgroundRebuild() {
  if (!bg_active_) return;
  for (size_t i = 0; i < bg_.specs.size(); ++i) {
    PartitionResult pr = OptimizePartition(
        bg_.snapshot, MakeSptOptions(bg_.specs[i]), bg_.n0);
    bg_.sides[i] = std::make_unique<Dpt>(MakeDptOptions(bg_.specs[i]),
                                         std::move(pr.spec));
    bg_.sides[i]->InitializeFromReservoir(bg_.snapshot, bg_.n0);
  }
  // Pre-drain the shared delta while updates keep flowing, leaving only a
  // bounded tail for the exclusive adoption step (see core/janus.cc for the
  // single-tree variant of the same loop).
  for (int round = 0; round < 8; ++round) {
    std::vector<ReoptDeltaOp> batch;
    {
      MutexLock lock(&delta_mu_);
      if (bg_.delta.size() <= base_.reopt_delta_tail) break;
      batch.swap(bg_.delta);
    }
    for (std::unique_ptr<Dpt>& side : bg_.sides) {
      bg_.replayed += ReplayReoptDelta(batch, side.get());
    }
  }
}

bool MultiTemplateJanus::FinishBackgroundRebuild(uint64_t* replayed) {
  if (!bg_active_) return false;
  {
    MutexLock lock(&delta_mu_);
    bg_capture_ = false;
  }
  bg_active_ = false;
  for (std::unique_ptr<Dpt>& side : bg_.sides) {
    bg_.replayed += ReplayReoptDelta(bg_.delta, side.get());
  }
  const size_t goal = static_cast<size_t>(
      base_.catchup_rate * static_cast<double>(bg_.n0));
  // Swap only the templates that existed at Begin; later discoveries built
  // live trees from the current reservoir and need no replacement. Entry
  // indices are stable — discovery only appends.
  for (size_t i = 0; i < bg_.sides.size(); ++i) {
    Entry& e = entries_[i];
    e.dpt = std::move(bg_.sides[i]);
    e.catchup = std::make_unique<CatchupEngine>(
        e.dpt.get(), bg_.archive->WithoutIndex(), goal, bg_.seeds[i]);
  }
  if (replayed != nullptr) *replayed = bg_.replayed;
  bg_ = BackgroundRebuild{};
  return true;
}

void MultiTemplateJanus::SaveTo(persist::Writer* w) const {
  table_.SaveTo(w);
  rng_.SaveTo(w);
  w->Bool(initialized_);
  w->Bool(reservoir_ != nullptr);
  if (reservoir_) reservoir_->SaveTo(w);
  w->Size(entries_.size());
  for (const Entry& e : entries_) {
    w->I32(e.spec.agg_column);
    w->IntVec(e.spec.predicate_columns);
    w->Bool(e.dpt != nullptr);
    if (e.dpt) e.dpt->SaveTo(w);
    w->Bool(e.catchup != nullptr);
    if (e.catchup) e.catchup->SaveTo(w);
  }
}

void MultiTemplateJanus::LoadFrom(persist::Reader* r) {
  table_.LoadFrom(r);
  rng_.LoadFrom(r);
  initialized_ = r->Bool();
  if (r->Bool()) {
    reservoir_ = std::make_unique<DynamicReservoir>(2, 0);
    reservoir_->LoadFrom(r);
  } else {
    reservoir_.reset();
  }
  entries_.clear();
  const size_t num_entries = r->Size();
  entries_.reserve(num_entries);
  for (size_t i = 0; i < num_entries; ++i) {
    Entry e;
    e.spec.agg_column = r->I32();
    e.spec.predicate_columns = r->IntVec();
    if (r->Bool()) {
      e.dpt = std::make_unique<Dpt>(MakeDptOptions(e.spec),
                                    PartitionTreeSpec{});
      e.dpt->LoadFrom(r);
    }
    if (r->Bool()) {
      if (!e.dpt) {
        throw persist::PersistError(
            "snapshot corrupt: template catch-up without a tree");
      }
      e.catchup = std::make_unique<CatchupEngine>(
          e.dpt.get(), ColumnStore(base_.schema), /*goal_samples=*/0,
          /*seed=*/0);
      e.catchup->LoadFrom(r);
    }
    entries_.push_back(std::move(e));
  }
}

}  // namespace janus
