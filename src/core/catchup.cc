#include "core/catchup.h"

#include <algorithm>

#include "data/scan.h"
#include "persist/serde.h"
#include "util/timer.h"

namespace janus {

CatchupEngine::CatchupEngine(Dpt* dpt, ColumnStore snapshot,
                             size_t goal_samples, uint64_t seed)
    : dpt_(dpt),
      snapshot_(std::move(snapshot)),
      goal_(snapshot_.empty() ? 0 : goal_samples),
      rng_(seed) {}

CatchupEngine::CatchupEngine(Dpt* dpt, const std::vector<Tuple>& snapshot,
                             size_t goal_samples, uint64_t seed)
    : CatchupEngine(dpt, scan::ToColumnStore(snapshot, {}), goal_samples,
                    seed) {}

size_t CatchupEngine::Step(size_t batch) {
  if (Done() || snapshot_.empty()) return 0;
  const size_t todo = std::min(batch, goal_ - processed_);
  Timer timer;
  for (size_t i = 0; i < todo; ++i) {
    dpt_->AddCatchupSample(
        snapshot_.RowTuple(rng_.NextUint64(snapshot_.size())));
  }
  processing_seconds_ += timer.ElapsedSeconds();
  processed_ += todo;
  return todo;
}

void CatchupEngine::RunToGoal() {
  while (!Done()) Step(4096);
}

void CatchupEngine::SaveTo(persist::Writer* w) const {
  snapshot_.SaveTo(w);
  w->Size(goal_);
  w->Size(processed_);
  w->F64(processing_seconds_);
  rng_.SaveTo(w);
}

void CatchupEngine::LoadFrom(persist::Reader* r) {
  snapshot_.LoadFrom(r);
  goal_ = r->Size();
  processed_ = r->Size();
  processing_seconds_ = r->F64();
  rng_.LoadFrom(r);
}

}  // namespace janus
