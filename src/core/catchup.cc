#include "core/catchup.h"

#include <algorithm>

#include "data/scan.h"
#include "persist/serde.h"
#include "util/timer.h"

namespace janus {

CatchupEngine::CatchupEngine(Dpt* dpt, ColumnStore snapshot,
                             size_t goal_samples, uint64_t seed)
    : dpt_(dpt),
      snapshot_(std::move(snapshot)),
      goal_(snapshot_.empty() ? 0 : goal_samples),
      rng_(seed) {}

CatchupEngine::CatchupEngine(Dpt* dpt, const std::vector<Tuple>& snapshot,
                             size_t goal_samples, uint64_t seed)
    : CatchupEngine(dpt, scan::ToColumnStore(snapshot, {}), goal_samples,
                    seed) {}

size_t CatchupEngine::Step(size_t batch) {
  if (Done() || snapshot_.empty()) return 0;
  const size_t todo = std::min(batch, goal_ - processed_);
  Timer timer;
  // Draw positions serially (the RNG sequence is part of the persisted
  // state), then absorb the batch leaf-partitioned — parallel under the
  // Dpt's exec context, bit-identical to the one-at-a-time loop.
  std::vector<size_t> positions(todo);
  for (size_t i = 0; i < todo; ++i) {
    positions[i] = rng_.NextUint64(snapshot_.size());
  }
  dpt_->AddCatchupSamples(snapshot_, positions);
  processing_seconds_ += timer.ElapsedSeconds();
  processed_ += todo;
  return todo;
}

void CatchupEngine::RunToGoal() {
  // Batches large enough that the leaf-partitioned parallel path engages
  // (the draw sequence, and hence the result, is independent of batching).
  while (!Done()) Step(16384);
}

void CatchupEngine::SaveTo(persist::Writer* w) const {
  snapshot_.SaveTo(w);
  w->Size(goal_);
  w->Size(processed_);
  w->F64(processing_seconds_);
  rng_.SaveTo(w);
}

void CatchupEngine::LoadFrom(persist::Reader* r) {
  snapshot_.LoadFrom(r);
  goal_ = r->Size();
  processed_ = r->Size();
  processing_seconds_ = r->F64();
  rng_.LoadFrom(r);
}

}  // namespace janus
