#include "core/catchup.h"

#include <algorithm>

#include "util/timer.h"

namespace janus {

CatchupEngine::CatchupEngine(Dpt* dpt, std::vector<Tuple> snapshot,
                             size_t goal_samples, uint64_t seed)
    : dpt_(dpt),
      snapshot_(std::move(snapshot)),
      goal_(snapshot_.empty() ? 0 : goal_samples),
      rng_(seed) {}

size_t CatchupEngine::Step(size_t batch) {
  if (Done() || snapshot_.empty()) return 0;
  const size_t todo = std::min(batch, goal_ - processed_);
  Timer timer;
  for (size_t i = 0; i < todo; ++i) {
    const Tuple& t = snapshot_[rng_.NextUint64(snapshot_.size())];
    dpt_->AddCatchupSample(t);
  }
  processing_seconds_ += timer.ElapsedSeconds();
  processed_ += todo;
  return todo;
}

void CatchupEngine::RunToGoal() {
  while (!Done()) Step(4096);
}

}  // namespace janus
