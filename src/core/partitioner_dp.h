#ifndef JANUS_CORE_PARTITIONER_DP_H_
#define JANUS_CORE_PARTITIONER_DP_H_

#include <utility>
#include <vector>

#include "core/partition.h"
#include "data/schema.h"

namespace janus {

/// Options for the dynamic-programming partitioner used by PASS [30] — the
/// baseline of Sec. 6.9 / Table 3.
struct PartitionerDpOptions {
  int num_leaves = 128;
  AggFunc focus = AggFunc::kSum;
  double sampling_rate = 0.01;
  /// The DP runs over a grid of candidate boundaries (every sample when m is
  /// small); PASS used the same coarsening to keep the O(k C^2) DP viable.
  size_t max_candidates = 4096;
};

/// Minimize the maximum bucket error with exactly <= k buckets via dynamic
/// programming over candidate boundary positions:
///   f[b][c] = min_{c' < c} max(f[b-1][c'], cost(c', c)).
/// Asymptotically O(k C^2) — the quadratic blow-up with the number of
/// partitions is the cost the BS partitioner removes (Table 3).
///
/// `samples` are (predicate key, aggregation value) pairs, any order.
PartitionResult BuildPartitionDP(std::vector<std::pair<double, double>> samples,
                                 const PartitionerDpOptions& opts);

}  // namespace janus

#endif  // JANUS_CORE_PARTITIONER_DP_H_
