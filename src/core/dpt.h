#ifndef JANUS_CORE_DPT_H_
#define JANUS_CORE_DPT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/max_variance.h"
#include "core/node_stats.h"
#include "core/partition.h"
#include "core/variance.h"
#include "data/exec_context.h"
#include "data/table.h"
#include "data/workload.h"
#include "util/mutex.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// How node statistics were obtained (Sec. 4.3 / 4.4).
enum class StatMode {
  kExact,    ///< full-scan initialization; statistics are exact (SPT-style)
  kCatchup,  ///< sample-populated; catch-up refines them in the background
};

/// Configuration of one DPT synopsis.
struct DptOptions {
  SynopsisSpec spec;
  /// Sampling rate alpha: the pooled reservoir targets 2m = 2*alpha*N.
  double sample_rate = 0.01;
  /// Top-k/bottom-k heap size for MIN/MAX maintenance (Sec. 4.1).
  int minmax_k = 32;
  double confidence = 0.95;
  /// Relative delta for the AVG max-variance search (Appendix D.1).
  double delta = 0.01;
  /// Additional columns (besides spec.agg_column) whose node statistics are
  /// maintained, enabling aggregation-attribute changes (Sec. 5.5, method
  /// 2.i). spec.agg_column is always tracked.
  std::vector<int> extra_tracked_columns;
  /// Morsel-parallel execution of the archival scans (exact initialization,
  /// batched catch-up). Default: serial.
  scan::ExecContext exec;
};

/// Result of one approximate query (Sec. 4.4).
struct QueryResult {
  double estimate = 0;
  /// z * sqrt(nu_c + nu_s) at the configured confidence (Sec. 4.4.1).
  double ci_half_width = 0;
  double variance_catchup = 0;  ///< nu_c: covered-node (catch-up) variance
  double variance_sample = 0;   ///< nu_s: partial-leaf (stratum) variance
  size_t covered_nodes = 0;
  size_t partial_leaves = 0;
  /// True when every contribution came from exact statistics.
  bool exact = false;

  /// Explicit success slot: when false the estimate/CI fields are
  /// meaningless and error_code/error_detail say why (the numeric value of
  /// api ApiErrorCode — kept as a plain integer here so the core layer does
  /// not depend on src/api/). The AqpEngine facade fills these instead of
  /// letting backend exceptions escape, so callers (and the serving tier)
  /// check `ok` rather than inferring failure from exceptions.
  bool ok = true;
  uint32_t error_code = 0;
  std::string error_detail;
};

/// Dynamic Partition Tree (Sec. 4): a partition-tree synopsis whose node
/// statistics and stratified reservoir sample are maintained under arbitrary
/// insertions and deletions.
///
/// Statistics are stored at the *leaves* only; an internal node's statistics
/// are the sum over its descendant leaves (precomputed DFS ranges make this
/// O(#leaves under the node)). This keeps concurrent maintenance simple and
/// matches the paper's observation that updates touch a single stratum and
/// "race conditions only happen if two workers work on the same node"
/// (Sec. 6.3): ApplyInsert/ApplyDelete/AddCatchupSample serialize on a
/// per-leaf mutex and nothing else. Queries are not synchronized against
/// concurrent updates (the experiment drivers quiesce updates first).
///
/// Reservoir *policy* (acceptance, eviction, re-sample signals) lives in
/// DynamicReservoir; the JanusAqp system wires the two together.
class Dpt {
 public:
  Dpt(const DptOptions& opts, PartitionTreeSpec spec);

  const DptOptions& options() const { return opts_; }
  const PartitionTreeSpec& tree() const { return spec_; }
  StatMode mode() const { return mode_; }
  int dims() const { return spec_.dims; }

  /// Exact initialization from a full archive scan plus a pooled sample
  /// (SPT construction, Sec. 2.3; also seeds the "DPT baseline").
  void InitializeExact(const std::vector<Tuple>& data,
                       const std::vector<Tuple>& reservoir);

  /// Columnar variant: scans the archive's predicate/tracked columns
  /// directly (no per-row Tuple materialization).
  void InitializeExact(const ColumnStore& data,
                       const std::vector<Tuple>& reservoir);

  /// Approximate initialization from the pooled reservoir only — the single
  /// blocking step of re-initialization (Sec. 4.3 step 2). `n0` is |D| at
  /// the snapshot; estimates use N̂_i = (h_i/h) * n0.
  void InitializeFromReservoir(const std::vector<Tuple>& reservoir, size_t n0);

  // --- maintenance (Sec. 4.1); thread-safe per leaf ------------------------

  /// Fold a newly inserted tuple into its leaf statistics.
  void ApplyInsert(const Tuple& t);

  /// Fold a deletion. The full tuple is required (values drive the stats).
  void ApplyDelete(const Tuple& t);

  // --- pooled sample maintenance (Sec. 4.2); not thread-safe ---------------

  void SampleAdd(const Tuple& t);
  void SampleRemove(const Tuple& t);
  void ResetSamples(const std::vector<Tuple>& samples);
  size_t sample_size() const { return samples_.size(); }
  const MaxVarianceIndex& sample_index() const { return samples_; }
  MaxVarianceIndex* mutable_sample_index() { return &samples_; }

  // --- catch-up (Sec. 4.3); thread-safe per leaf ----------------------------

  /// Absorb one uniform archive-snapshot sample into the node statistics.
  void AddCatchupSample(const Tuple& t);

  /// Absorb a whole batch of snapshot samples, by position. Routing runs in
  /// parallel morsels (opts.exec); application is partitioned by leaf with
  /// each leaf's samples applied in draw order, so the resulting node
  /// statistics are bit-identical to feeding the batch through
  /// AddCatchupSample one position at a time.
  void AddCatchupSamples(const ColumnStore& snapshot,
                         const std::vector<size_t>& positions);

  double catchup_count() const { return catchup_total_.load(); }

  // --- queries (Sec. 4.4) ---------------------------------------------------

  QueryResult Query(const AggQuery& q) const;

  // --- introspection for triggers / re-partitioning (Sec. 5.4) -------------

  int LeafForTuple(const Tuple& t) const;
  const Rectangle& LeafRect(int node) const {
    return spec_.nodes[static_cast<size_t>(node)].rect;
  }
  /// Samples currently assigned to a leaf's stratum.
  double LeafSampleCount(int node) const;
  /// Estimated population N̂_i + deltas of a node (leaf or internal).
  double NodeCountEstimate(int node) const;
  double NodeSumEstimate(int node, int column) const;

  /// Full tuples of the pooled sample, by id (mirror of the reservoir).
  const std::unordered_map<uint64_t, Tuple>& sample_tuples() const {
    return sample_tuples_;
  }

  // --- partial re-partitioning internals (Appendix E) ----------------------
  // Used by JanusAqp to graft a re-optimized subtree while preserving the
  // estimates of untouched nodes.

  /// Total catch-up mass under a node.
  double NodeCatchupCount(int node) const;
  /// Copy the full leaf statistics of `src_node` in `src` to `dst_node`.
  void CopyLeafStats(const Dpt& src, int src_node, int dst_node);
  /// Seed a (new) leaf's catch-up moments from tuples, each weighted by
  /// `scale` pseudo-draws, preserving the subtree's total catch-up mass.
  void SeedLeafCatchupFromSamples(int leaf, const std::vector<Tuple>& ts,
                                  double scale);
  /// Restore the global catch-up bookkeeping after a graft.
  void SetCatchupState(StatMode mode, double n0, double total);

  /// Estimated heap footprint of the synopsis: tree nodes, per-leaf
  /// statistics, the pooled sample index and its tuple mirror.
  size_t MemoryBytes() const;

  /// Snapshot persistence: the full synopsis state — tree spec, observed
  /// data domain, per-leaf statistics, the pooled-sample indexes
  /// (structure-exact, so query summation order is preserved) and the
  /// sample mirror, plus the catch-up bookkeeping. Construct the Dpt with
  /// the same DptOptions (engine configuration, not state) and any
  /// placeholder spec — LoadFrom replaces the tree wholesale.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: tree linkage (leaf list and DFS ranges consistent
  /// with the spec), the pooled-sample index vs its tuple mirror (equal
  /// sizes, every mirrored tuple inside the index's bounding box, per-leaf
  /// stratum counts summing to the pool), the sample index's own trees, and
  /// the catch-up bookkeeping (leaf catch-up masses summing to
  /// catchup_count(), within floating-point tolerance — grafts seed scaled
  /// weights). Not thread-safe against concurrent maintenance; callers
  /// quiesce first (AqpEngine::CheckInvariants holds the read room). Throws
  /// InvariantViolation on the first inconsistency.
  void CheckInvariants() const;

 private:
  struct ColumnStats {
    MomentAccumulator exact;
    MomentAccumulator inserted;
    MomentAccumulator removed;
    TreeAgg catchup;
  };
  struct LeafStats {
    std::vector<ColumnStats> columns;  // parallel to tracked_columns_
    MinMaxTracker minmax;              // over spec.agg_column
  };

  int TrackedIndex(int column) const;  // -1 if untracked
  void ComputeLeafRanges();
  /// Zero every leaf's statistics and set the (mode, n0) bookkeeping.
  void ResetLeafStats(StatMode mode, double n0);
  double LeafCountEstimate(int leaf) const;
  double LeafSumEstimate(int leaf, int tracked_idx) const;
  TreeAgg MatchingSamples(int leaf, const AggQuery& q, double* stratum_size,
                          int column) const;
  /// Frontier lookup (Sec. 2.3.2 step 1) against domain-clipped rectangles.
  void Frontier(const Rectangle& q, std::vector<int>* cover,
                std::vector<int>* partial) const;
  QueryResult QueryMinMax(const AggQuery& q) const;
  QueryResult QuerySampleOnly(const AggQuery& q) const;

  /// Grow the observed data domain to include a predicate-space point.
  void GrowDomain(const double* point);
  /// Node rectangle clipped to the observed data domain. Tree rectangles are
  /// unbounded at the edges (so routing never loses a tuple); clipping makes
  /// the cover/partial classification of the frontier tight for boundary
  /// nodes.
  Rectangle ClippedRect(int node) const;

  DptOptions opts_;
  PartitionTreeSpec spec_;
  std::vector<int> tracked_columns_;
  /// Observed data domain per predicate dimension (grow-only; lock-free).
  std::array<std::atomic<double>, kMaxColumns> domain_lo_;
  std::array<std::atomic<double>, kMaxColumns> domain_hi_;
  std::vector<LeafStats> leaf_stats_;  // parallel to spec_.nodes; leaf-only
  /// Per-node update locks, parallel to leaf_stats_. Annotated Mutex type,
  /// but leaf_stats_ cannot carry GUARDED_BY: thread-safety analysis has no
  /// notion of a per-element lock array, and the read side (queries, saves)
  /// is legitimately lock-free — it is fenced from mutators by the owning
  /// engine's room capability, which this layer does not hold. The
  /// discipline remains: mutators lock leaf_mu_[leaf] around leaf_stats_
  /// writes; readers rely on the engine rooms.
  std::unique_ptr<Mutex[]> leaf_mu_;
  // DFS leaf ranges: node i covers dfs_leaves_[range_lo_[i], range_hi_[i]).
  std::vector<int> dfs_leaves_;
  std::vector<int> range_lo_;
  std::vector<int> range_hi_;
  MaxVarianceIndex samples_;
  std::unordered_map<uint64_t, Tuple> sample_tuples_;
  StatMode mode_ = StatMode::kCatchup;
  double n0_ = 0;  // snapshot population for catch-up scaling
  std::atomic<double> catchup_total_{0};
};

}  // namespace janus

#endif  // JANUS_CORE_DPT_H_
