#include "core/dpt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/parallel_scan.h"
#include "data/scan.h"
#include "persist/common.h"
#include "util/invariants.h"
#include "util/stats.h"

namespace janus {

Dpt::Dpt(const DptOptions& opts, PartitionTreeSpec spec)
    : opts_(opts),
      spec_(std::move(spec)),
      samples_([&] {
        MaxVarianceIndex::Options mo;
        mo.dims = static_cast<int>(opts.spec.predicate_columns.size());
        mo.sampling_rate = opts.sample_rate;
        mo.delta = opts.delta;
        return mo;
      }()) {
  tracked_columns_.push_back(opts_.spec.agg_column);
  for (int c : opts_.extra_tracked_columns) {
    if (TrackedIndex(c) < 0) tracked_columns_.push_back(c);
  }
  for (int d = 0; d < kMaxColumns; ++d) {
    domain_lo_[static_cast<size_t>(d)].store(
        std::numeric_limits<double>::max());
    domain_hi_[static_cast<size_t>(d)].store(
        std::numeric_limits<double>::lowest());
  }
  leaf_stats_.resize(spec_.nodes.size());
  leaf_mu_ = std::make_unique<Mutex[]>(spec_.nodes.size());
  for (size_t i = 0; i < spec_.nodes.size(); ++i) {
    if (!spec_.nodes[i].IsLeaf()) continue;
    leaf_stats_[i].columns.resize(tracked_columns_.size());
    leaf_stats_[i].minmax = MinMaxTracker(static_cast<size_t>(opts_.minmax_k));
  }
  ComputeLeafRanges();
}

void Dpt::ComputeLeafRanges() {
  const size_t n = spec_.nodes.size();
  range_lo_.assign(n, 0);
  range_hi_.assign(n, 0);
  dfs_leaves_.clear();
  if (n == 0) return;  // placeholder spec before a snapshot LoadFrom
  dfs_leaves_.reserve(spec_.leaves.size());
  // Iterative DFS computing, for every node, the contiguous range of its
  // descendant leaves in dfs_leaves_.
  struct Frame {
    int node;
    bool entered;
  };
  std::vector<Frame> stack{{0, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const PartitionNode& node = spec_.nodes[static_cast<size_t>(f.node)];
    if (!f.entered) {
      range_lo_[static_cast<size_t>(f.node)] =
          static_cast<int>(dfs_leaves_.size());
      if (node.IsLeaf()) {
        dfs_leaves_.push_back(f.node);
        range_hi_[static_cast<size_t>(f.node)] =
            static_cast<int>(dfs_leaves_.size());
        continue;
      }
      stack.push_back({f.node, true});
      stack.push_back({node.right, false});
      stack.push_back({node.left, false});
    } else {
      range_hi_[static_cast<size_t>(f.node)] =
          static_cast<int>(dfs_leaves_.size());
    }
  }
}

int Dpt::TrackedIndex(int column) const {
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    if (tracked_columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

int Dpt::LeafForTuple(const Tuple& t) const {
  double point[kMaxColumns];
  ProjectTuple(t, opts_.spec.predicate_columns, point);
  return spec_.LeafFor(point);
}

void Dpt::GrowDomain(const double* point) {
  const int d = dims();
  for (int i = 0; i < d; ++i) {
    auto& lo = domain_lo_[static_cast<size_t>(i)];
    double cur = lo.load(std::memory_order_relaxed);
    while (point[i] < cur &&
           !lo.compare_exchange_weak(cur, point[i],
                                     std::memory_order_relaxed)) {
    }
    auto& hi = domain_hi_[static_cast<size_t>(i)];
    cur = hi.load(std::memory_order_relaxed);
    while (point[i] > cur &&
           !hi.compare_exchange_weak(cur, point[i],
                                     std::memory_order_relaxed)) {
    }
  }
}

Rectangle Dpt::ClippedRect(int node) const {
  const Rectangle& r = spec_.nodes[static_cast<size_t>(node)].rect;
  const int d = dims();
  std::vector<double> lo(static_cast<size_t>(d)), hi(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    lo[static_cast<size_t>(i)] =
        std::max(r.lo(i), domain_lo_[static_cast<size_t>(i)].load(
                              std::memory_order_relaxed));
    hi[static_cast<size_t>(i)] =
        std::min(r.hi(i), domain_hi_[static_cast<size_t>(i)].load(
                              std::memory_order_relaxed));
  }
  return Rectangle(std::move(lo), std::move(hi));
}

void Dpt::ResetLeafStats(StatMode mode, double n0) {
  mode_ = mode;
  n0_ = n0;
  catchup_total_.store(0);
  for (size_t i = 0; i < leaf_stats_.size(); ++i) {
    for (ColumnStats& c : leaf_stats_[i].columns) c = ColumnStats{};
    leaf_stats_[i].minmax.Clear();
  }
}

void Dpt::InitializeExact(const std::vector<Tuple>& data,
                          const std::vector<Tuple>& reservoir) {
  // Row-vector entry point (tests): transpose once, then run the one
  // columnar implementation so the two paths cannot drift.
  InitializeExact(scan::ToColumnStore(data, {}), reservoir);
}

void Dpt::InitializeExact(const ColumnStore& data,
                          const std::vector<Tuple>& reservoir) {
  ResetLeafStats(StatMode::kExact, static_cast<double>(data.size()));
  // Column-oriented archive scan: per-row work touches only the predicate
  // and tracked columns, read straight out of their contiguous arrays.
  const std::vector<int>& pred = opts_.spec.predicate_columns;
  std::vector<ColumnSpan> pred_cols;
  pred_cols.reserve(pred.size());
  for (int c : pred) pred_cols.push_back(data.column(c));
  std::vector<ColumnSpan> tracked_cols;
  tracked_cols.reserve(tracked_columns_.size());
  for (int c : tracked_columns_) tracked_cols.push_back(data.column(c));
  const ColumnSpan agg = data.column(opts_.spec.agg_column);
  const size_t n = data.size();

  // The per-row body of the exact-statistics scan over [begin, end),
  // accumulating into `stats` (leaf-indexed). Leaf routing and the domain
  // growth are read-only / lock-free, so workers share them safely.
  const auto scan_range = [&](size_t begin, size_t end,
                              std::vector<LeafStats>* stats) {
    double point[kMaxColumns];
    for (size_t pos = begin; pos < end; ++pos) {
      for (size_t i = 0; i < pred_cols.size(); ++i) {
        point[i] = pred_cols[i].data != nullptr ? pred_cols[i][pos] : 0.0;
      }
      GrowDomain(point);
      const int leaf = spec_.LeafFor(point);
      LeafStats& ls = (*stats)[static_cast<size_t>(leaf)];
      for (size_t i = 0; i < tracked_cols.size(); ++i) {
        ls.columns[i].exact.Add(
            tracked_cols[i].data != nullptr ? tracked_cols[i][pos] : 0.0);
      }
      ls.minmax.Insert(agg.data != nullptr ? agg[pos] : 0.0);
    }
  };

  const scan::MorselPlan plan =
      scan::PlanMorsels(opts_.exec, n, scan::MorselCost::kHeavyItems);
  if (plan.workers <= 1) {
    scan_range(0, n, &leaf_stats_);
  } else {
    // Work-stealing initialization: per-slot leaf partials accumulated over
    // whichever morsels each worker claims, merged in slot order. Counts
    // and min/max merge associatively (bit-identical to serial); the
    // floating-point moment sums agree with serial to reassociation (the
    // 1e-12 equivalence contract).
    std::vector<std::vector<LeafStats>> partials(plan.workers);
    scan::ForEachMorsel(
        opts_.exec, n, plan,
        [&](size_t slot, size_t, size_t begin, size_t end) {
          std::vector<LeafStats>& mine = partials[slot];
          if (mine.empty()) {
            // First morsel this slot claims: build its scratch once — a
            // slot runs many morsels, and re-initializing per claim would
            // silently drop earlier partials.
            mine.resize(leaf_stats_.size());
            for (LeafStats& ls : mine) {
              ls.columns.resize(tracked_columns_.size());
              ls.minmax =
                  MinMaxTracker(static_cast<size_t>(opts_.minmax_k));
            }
          }
          scan_range(begin, end, &mine);
        });
    for (std::vector<LeafStats>& part : partials) {
      if (part.empty()) continue;  // slot never claimed a morsel
      for (size_t leaf = 0; leaf < leaf_stats_.size(); ++leaf) {
        LeafStats& dst = leaf_stats_[leaf];
        const LeafStats& src = part[leaf];
        for (size_t i = 0; i < dst.columns.size(); ++i) {
          dst.columns[i].exact.Merge(src.columns[i].exact);
        }
        dst.minmax.Merge(src.minmax);
      }
    }
  }
  ResetSamples(reservoir);
}

void Dpt::InitializeFromReservoir(const std::vector<Tuple>& reservoir,
                                  size_t n0) {
  ResetLeafStats(StatMode::kCatchup, static_cast<double>(n0));
  for (const Tuple& t : reservoir) AddCatchupSample(t);
  ResetSamples(reservoir);
}

void Dpt::ApplyInsert(const Tuple& t) {
  if (spec_.nodes.empty()) return;  // placeholder spec (failed LoadFrom)
  double point[kMaxColumns];
  ProjectTuple(t, opts_.spec.predicate_columns, point);
  GrowDomain(point);
  const int leaf = spec_.LeafFor(point);
  MutexLock lock(&leaf_mu_[leaf]);
  LeafStats& ls = leaf_stats_[static_cast<size_t>(leaf)];
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    const double v = t[tracked_columns_[i]];
    if (mode_ == StatMode::kExact) {
      ls.columns[i].exact.Add(v);
    } else {
      ls.columns[i].inserted.Add(v);
    }
  }
  ls.minmax.Insert(t[opts_.spec.agg_column]);
}

void Dpt::ApplyDelete(const Tuple& t) {
  if (spec_.nodes.empty()) return;  // placeholder spec (failed LoadFrom)
  const int leaf = LeafForTuple(t);
  MutexLock lock(&leaf_mu_[leaf]);
  LeafStats& ls = leaf_stats_[static_cast<size_t>(leaf)];
  for (size_t i = 0; i < tracked_columns_.size(); ++i) {
    const double v = t[tracked_columns_[i]];
    if (mode_ == StatMode::kExact) {
      ls.columns[i].exact.Remove(v);
    } else {
      ls.columns[i].removed.Add(v);
    }
  }
  ls.minmax.Erase(t[opts_.spec.agg_column]);
}

void Dpt::SampleAdd(const Tuple& t) {
  samples_.Insert(MakeKdPoint(t, opts_.spec.predicate_columns,
                              opts_.spec.agg_column));
  sample_tuples_[t.id] = t;
}

void Dpt::SampleRemove(const Tuple& t) {
  samples_.Delete(MakeKdPoint(t, opts_.spec.predicate_columns,
                              opts_.spec.agg_column));
  sample_tuples_.erase(t.id);
}

void Dpt::ResetSamples(const std::vector<Tuple>& samples) {
  std::vector<KdPoint> pts;
  pts.reserve(samples.size());
  sample_tuples_.clear();
  sample_tuples_.reserve(samples.size());
  for (const Tuple& t : samples) {
    pts.push_back(MakeKdPoint(t, opts_.spec.predicate_columns,
                              opts_.spec.agg_column));
    sample_tuples_[t.id] = t;
  }
  samples_.Build(pts);
}

void Dpt::AddCatchupSample(const Tuple& t) {
  if (spec_.nodes.empty()) return;  // placeholder spec (failed LoadFrom)
  double point[kMaxColumns];
  ProjectTuple(t, opts_.spec.predicate_columns, point);
  GrowDomain(point);
  const int leaf = spec_.LeafFor(point);
  {
    MutexLock lock(&leaf_mu_[leaf]);
    LeafStats& ls = leaf_stats_[static_cast<size_t>(leaf)];
    for (size_t i = 0; i < tracked_columns_.size(); ++i) {
      const double v = t[tracked_columns_[i]];
      ls.columns[i].catchup.count += 1;
      ls.columns[i].catchup.sum += v;
      ls.columns[i].catchup.sumsq += v * v;
    }
    ls.minmax.Insert(t[opts_.spec.agg_column]);
  }
  catchup_total_.fetch_add(1.0);
}

void Dpt::AddCatchupSamples(const ColumnStore& snapshot,
                            const std::vector<size_t>& positions) {
  if (spec_.nodes.empty() || positions.empty()) return;
  const size_t n = positions.size();
  // A catch-up sample costs far more than a kernel row (tree descent plus
  // per-column moment updates), so the parallel cutoff sits much lower than
  // the scan kernels'.
  constexpr size_t kMinCatchupBatch = 2048;
  const scan::MorselPlan plan =
      scan::PlanMorselsAtCutoff(opts_.exec, n, kMinCatchupBatch,
                                scan::MorselCost::kHeavyItems);
  if (plan.workers <= 1) {
    for (size_t pos : positions) AddCatchupSample(snapshot.RowTuple(pos));
    return;
  }
  // Phase 1: materialize and route every draw in work-stealing morsels
  // (routing is read-only, domain growth is lock-free; every output lands
  // at its own index, so the result is bit-identical under any stealing).
  std::vector<Tuple> batch(n);
  std::vector<int> leaf_of(n);
  scan::ForEachMorsel(opts_.exec, n, plan,
                      [&](size_t, size_t, size_t begin, size_t end) {
                        double point[kMaxColumns];
                        for (size_t i = begin; i < end; ++i) {
                          batch[i] = snapshot.RowTuple(positions[i]);
                          ProjectTuple(batch[i],
                                       opts_.spec.predicate_columns, point);
                          GrowDomain(point);
                          leaf_of[i] = spec_.LeafFor(point);
                        }
                      });
  // Phase 2: group the draws by leaf, preserving draw order within a leaf.
  std::vector<std::vector<uint32_t>> by_leaf(leaf_stats_.size());
  for (size_t i = 0; i < n; ++i) {
    by_leaf[static_cast<size_t>(leaf_of[i])].push_back(
        static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> active;
  for (size_t leaf = 0; leaf < by_leaf.size(); ++leaf) {
    if (!by_leaf[leaf].empty()) active.push_back(static_cast<uint32_t>(leaf));
  }
  // Phase 3: leaf-partitioned application — exactly one worker plays a
  // leaf's whole draw sequence, in draw order, so the resulting statistics
  // are bit-identical to the serial loop (cross-leaf order never matters;
  // catchup_total_ sums unit weights, which add exactly).
  scan::ForEachIndex(opts_.exec, active.size(), plan.workers, [&](size_t a) {
    const size_t leaf = active[a];
    MutexLock lock(&leaf_mu_[leaf]);
    LeafStats& ls = leaf_stats_[leaf];
    for (uint32_t i : by_leaf[leaf]) {
      const Tuple& t = batch[i];
      for (size_t c = 0; c < tracked_columns_.size(); ++c) {
        const double v = t[tracked_columns_[c]];
        ls.columns[c].catchup.count += 1;
        ls.columns[c].catchup.sum += v;
        ls.columns[c].catchup.sumsq += v * v;
      }
      ls.minmax.Insert(t[opts_.spec.agg_column]);
    }
  });
  catchup_total_.fetch_add(static_cast<double>(n));
}

double Dpt::LeafSampleCount(int node) const {
  return samples_.kd()
      .RangeAggregate(spec_.nodes[static_cast<size_t>(node)].rect)
      .count;
}

double Dpt::LeafCountEstimate(int leaf) const {
  const ColumnStats& c = leaf_stats_[static_cast<size_t>(leaf)].columns[0];
  if (mode_ == StatMode::kExact) return c.exact.count;
  const double h = catchup_total_.load();
  const double base = h > 0 ? n0_ * c.catchup.count / h : 0;
  // Deliberately unclamped: sampling noise can push a drained leaf slightly
  // negative, and clamping here would bias aggregated counts upward (the
  // negatives must cancel against other leaves' positives). Callers that
  // need a population for scaling clamp at use.
  return base + c.inserted.count - c.removed.count;
}

double Dpt::LeafSumEstimate(int leaf, int tracked_idx) const {
  const ColumnStats& c =
      leaf_stats_[static_cast<size_t>(leaf)]
          .columns[static_cast<size_t>(tracked_idx)];
  if (mode_ == StatMode::kExact) return c.exact.sum;
  const double h = catchup_total_.load();
  const double base = h > 0 ? n0_ * c.catchup.sum / h : 0;
  return base + c.inserted.sum - c.removed.sum;
}

double Dpt::NodeCountEstimate(int node) const {
  double total = 0;
  for (int i = range_lo_[static_cast<size_t>(node)];
       i < range_hi_[static_cast<size_t>(node)]; ++i) {
    total += LeafCountEstimate(dfs_leaves_[static_cast<size_t>(i)]);
  }
  return total;
}

double Dpt::NodeSumEstimate(int node, int column) const {
  const int ti = TrackedIndex(column);
  if (ti < 0) return 0;
  double total = 0;
  for (int i = range_lo_[static_cast<size_t>(node)];
       i < range_hi_[static_cast<size_t>(node)]; ++i) {
    total += LeafSumEstimate(dfs_leaves_[static_cast<size_t>(i)], ti);
  }
  return total;
}

TreeAgg Dpt::MatchingSamples(int leaf, const AggQuery& q, double* stratum_size,
                             int column) const {
  std::vector<KdPoint> pts;
  samples_.kd().Report(spec_.nodes[static_cast<size_t>(leaf)].rect, &pts);
  *stratum_size = static_cast<double>(pts.size());
  TreeAgg match;
  const bool native_column = column == opts_.spec.agg_column;
  for (const KdPoint& p : pts) {
    if (!q.rect.Contains(p.x.data())) continue;
    double v = p.a;
    if (!native_column) {
      auto it = sample_tuples_.find(p.id);
      if (it == sample_tuples_.end()) continue;
      v = it->second[column];
    }
    match.count += 1;
    match.sum += v;
    match.sumsq += v * v;
  }
  return match;
}

double Dpt::NodeCatchupCount(int node) const {
  double total = 0;
  for (int i = range_lo_[static_cast<size_t>(node)];
       i < range_hi_[static_cast<size_t>(node)]; ++i) {
    const int leaf = dfs_leaves_[static_cast<size_t>(i)];
    total += leaf_stats_[static_cast<size_t>(leaf)].columns[0].catchup.count;
  }
  return total;
}

void Dpt::CopyLeafStats(const Dpt& src, int src_node, int dst_node) {
  leaf_stats_[static_cast<size_t>(dst_node)] =
      src.leaf_stats_[static_cast<size_t>(src_node)];
}

void Dpt::SeedLeafCatchupFromSamples(int leaf, const std::vector<Tuple>& ts,
                                     double scale) {
  LeafStats& ls = leaf_stats_[static_cast<size_t>(leaf)];
  for (const Tuple& t : ts) {
    for (size_t i = 0; i < tracked_columns_.size(); ++i) {
      const double v = t[tracked_columns_[i]];
      ls.columns[i].catchup.count += scale;
      ls.columns[i].catchup.sum += scale * v;
      ls.columns[i].catchup.sumsq += scale * v * v;
    }
    ls.minmax.Insert(t[opts_.spec.agg_column]);
  }
}

void Dpt::SetCatchupState(StatMode mode, double n0, double total) {
  mode_ = mode;
  n0_ = n0;
  catchup_total_.store(total);
}

size_t Dpt::MemoryBytes() const {
  const size_t d = static_cast<size_t>(dims());
  // Tree shape: nodes plus their heap-allocated rectangle bounds.
  size_t bytes =
      spec_.nodes.size() * (sizeof(PartitionNode) + 2 * d * sizeof(double));
  for (const LeafStats& ls : leaf_stats_) {
    bytes += ls.columns.capacity() * sizeof(ColumnStats);
  }
  // MIN/MAX heaps: up to 2k multiset nodes per leaf (value + rb-tree node).
  bytes += spec_.leaves.size() * 2 * static_cast<size_t>(opts_.minmax_k) *
           (sizeof(double) + 4 * sizeof(void*));
  // Pooled sample: kd-index points (point + subtree aggregates) and the
  // id -> tuple mirror.
  bytes += samples_.size() * 2 * sizeof(KdPoint);
  bytes += sample_tuples_.size() *
               (sizeof(uint64_t) + sizeof(Tuple) + sizeof(void*)) +
           sample_tuples_.bucket_count() * sizeof(void*);
  return bytes;
}

void Dpt::SaveTo(persist::Writer* w) const {
  // Tree spec.
  w->Size(spec_.nodes.size());
  for (const PartitionNode& n : spec_.nodes) {
    persist::SaveRectangle(n.rect, w);
    w->I32(n.left);
    w->I32(n.right);
    w->I32(n.parent);
    w->I32(n.split_dim);
    w->F64(n.split_val);
  }
  w->IntVec(spec_.leaves);
  w->I32(spec_.dims);
  w->F64(spec_.worst_error);

  // Catch-up bookkeeping and observed domain.
  w->U8(mode_ == StatMode::kExact ? 0 : 1);
  w->F64(n0_);
  w->F64(catchup_total_.load());
  for (int d = 0; d < kMaxColumns; ++d) {
    w->F64(domain_lo_[static_cast<size_t>(d)].load());
    w->F64(domain_hi_[static_cast<size_t>(d)].load());
  }

  // Per-node statistics (empty column vectors for internal nodes).
  for (const LeafStats& ls : leaf_stats_) {
    w->Size(ls.columns.size());
    for (const ColumnStats& c : ls.columns) {
      persist::SaveMoments(c.exact, w);
      persist::SaveMoments(c.inserted, w);
      persist::SaveMoments(c.removed, w);
      persist::SaveTreeAgg(c.catchup, w);
    }
    ls.minmax.SaveTo(w);
  }

  // Pooled sample: structure-exact indexes plus the id -> tuple mirror
  // (serialized in ascending id order; the map's own iteration order is
  // never load-bearing for template queries).
  samples_.SaveTo(w);
  std::vector<uint64_t> ids;
  ids.reserve(sample_tuples_.size());
  for (const auto& [id, t] : sample_tuples_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w->Size(ids.size());
  for (uint64_t id : ids) persist::SaveTuple(sample_tuples_.at(id), w);
}

void Dpt::LoadFrom(persist::Reader* r) {
  PartitionTreeSpec spec;
  const size_t num_nodes = r->Size();
  if (num_nodes == 0) {
    throw persist::PersistError("snapshot corrupt: empty partition tree");
  }
  spec.nodes.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    PartitionNode n;
    n.rect = persist::LoadRectangle(r);
    n.left = r->I32();
    n.right = r->I32();
    n.parent = r->I32();
    n.split_dim = r->I32();
    n.split_val = r->F64();
    const int max_idx = static_cast<int>(num_nodes);
    if (n.left >= max_idx || n.right >= max_idx || n.parent >= max_idx) {
      throw persist::PersistError(
          "snapshot corrupt: partition node link out of range");
    }
    spec.nodes.push_back(std::move(n));
  }
  spec.leaves = r->IntVec();
  for (int leaf : spec.leaves) {
    if (leaf < 0 || static_cast<size_t>(leaf) >= num_nodes) {
      throw persist::PersistError(
          "snapshot corrupt: leaf index out of range");
    }
  }
  spec.dims = r->I32();
  if (spec.dims != dims()) {
    throw persist::PersistError(
        "snapshot mismatch: partition tree dimensionality differs from the "
        "engine's configured template");
  }
  spec.worst_error = r->F64();
  spec_ = std::move(spec);

  const uint8_t mode = r->U8();
  mode_ = mode == 0 ? StatMode::kExact : StatMode::kCatchup;
  n0_ = r->F64();
  catchup_total_.store(r->F64());
  for (int d = 0; d < kMaxColumns; ++d) {
    domain_lo_[static_cast<size_t>(d)].store(r->F64());
    domain_hi_[static_cast<size_t>(d)].store(r->F64());
  }

  leaf_stats_.clear();
  leaf_stats_.resize(spec_.nodes.size());
  leaf_mu_ = std::make_unique<Mutex[]>(spec_.nodes.size());
  ComputeLeafRanges();
  for (LeafStats& ls : leaf_stats_) {
    const size_t cols = r->Size();
    if (cols != 0 && cols != tracked_columns_.size()) {
      throw persist::PersistError(
          "snapshot mismatch: tracked-column count differs from the "
          "engine's configuration");
    }
    ls.columns.assign(cols, ColumnStats{});
    for (ColumnStats& c : ls.columns) {
      c.exact = persist::LoadMoments(r);
      c.inserted = persist::LoadMoments(r);
      c.removed = persist::LoadMoments(r);
      c.catchup = persist::LoadTreeAgg(r);
    }
    ls.minmax.LoadFrom(r);
  }

  samples_.LoadFrom(r);
  sample_tuples_.clear();
  const size_t num_samples = r->Size();
  sample_tuples_.reserve(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    const Tuple t = persist::LoadTuple(r);
    sample_tuples_[t.id] = t;
  }
}

void Dpt::Frontier(const Rectangle& q, std::vector<int>* cover,
                   std::vector<int>* partial) const {
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    const PartitionNode& n = spec_.nodes[static_cast<size_t>(i)];
    // Classify against the node rectangle clipped to the observed data
    // domain: boundary nodes extend to +-infinity for routing purposes, but
    // only their data extent matters for coverage.
    const Rectangle clipped = ClippedRect(i);
    bool empty = false;
    for (int d = 0; d < clipped.dims(); ++d) {
      if (clipped.lo(d) > clipped.hi(d)) {
        empty = true;
        break;
      }
    }
    if (empty || !q.Intersects(clipped)) continue;
    if (q.Covers(clipped)) {
      cover->push_back(i);
      continue;
    }
    if (n.IsLeaf()) {
      partial->push_back(i);
      continue;
    }
    stack.push_back(n.left);
    stack.push_back(n.right);
  }
}

QueryResult Dpt::QuerySampleOnly(const AggQuery& q) const {
  // Uniform-sample fallback (Sec. 5.5, heuristic ii): treat the pooled
  // reservoir as a plain uniform sample of the whole table.
  QueryResult r;
  const double n_total = NodeCountEstimate(0);
  const double m = static_cast<double>(sample_tuples_.size());
  if (m == 0) return r;
  TreeAgg match;
  double best_min = std::numeric_limits<double>::max();
  double best_max = std::numeric_limits<double>::lowest();
  std::vector<double> point(q.predicate_columns.size());
  for (const auto& [id, t] : sample_tuples_) {
    (void)id;
    ProjectTuple(t, q.predicate_columns, point.data());
    if (!q.rect.Contains(point.data())) continue;
    const double v = t[q.agg_column];
    match.count += 1;
    match.sum += v;
    match.sumsq += v * v;
    best_min = std::min(best_min, v);
    best_max = std::max(best_max, v);
  }
  switch (q.func) {
    case AggFunc::kSum:
      r.estimate = n_total / m * match.sum;
      r.variance_sample = SumQueryVariance(n_total, m, match);
      break;
    case AggFunc::kCount:
      r.estimate = n_total / m * match.count;
      r.variance_sample = CountQueryVariance(n_total, m, match.count);
      break;
    case AggFunc::kAvg:
      r.estimate = match.count > 0 ? match.sum / match.count : 0;
      r.variance_sample = AvgQueryVariance(1.0, m, match);
      break;
    case AggFunc::kMin:
      r.estimate = match.count > 0 ? best_min : 0;
      break;
    case AggFunc::kMax:
      r.estimate = match.count > 0 ? best_max : 0;
      break;
  }
  r.partial_leaves = 1;
  r.ci_half_width = NormalZ(opts_.confidence) *
                    std::sqrt(r.variance_catchup + r.variance_sample);
  return r;
}

QueryResult Dpt::QueryMinMax(const AggQuery& q) const {
  QueryResult r;
  if (q.agg_column != opts_.spec.agg_column ||
      q.predicate_columns != opts_.spec.predicate_columns) {
    return QuerySampleOnly(q);
  }
  std::vector<int> cover, partial;
  Frontier(q.rect, &cover, &partial);
  const bool want_min = q.func == AggFunc::kMin;
  double best = want_min ? std::numeric_limits<double>::max()
                         : std::numeric_limits<double>::lowest();
  bool any = false;
  bool exact = mode_ == StatMode::kExact;
  for (int node : cover) {
    for (int li = range_lo_[static_cast<size_t>(node)];
         li < range_hi_[static_cast<size_t>(node)]; ++li) {
      const int leaf = dfs_leaves_[static_cast<size_t>(li)];
      const MinMaxTracker& mm = leaf_stats_[static_cast<size_t>(leaf)].minmax;
      const auto v = want_min ? mm.Min() : mm.Max();
      if (v.has_value()) {
        best = want_min ? std::min(best, *v) : std::max(best, *v);
        any = true;
        if (mm.degraded()) exact = false;
      }
    }
  }
  for (int i : partial) {
    std::vector<KdPoint> pts;
    samples_.kd().Report(spec_.nodes[static_cast<size_t>(i)].rect, &pts);
    for (const KdPoint& p : pts) {
      if (!q.rect.Contains(p.x.data())) continue;
      best = want_min ? std::min(best, p.a) : std::max(best, p.a);
      any = true;
    }
    exact = false;  // sampled extrema carry no guarantee
  }
  r.estimate = any ? best : 0;
  r.exact = any && exact;
  r.covered_nodes = cover.size();
  r.partial_leaves = partial.size();
  return r;
}

QueryResult Dpt::Query(const AggQuery& q) const {
  // A Dpt left holding the placeholder spec (a LoadFrom that threw part-way
  // through an engine restore) answers zero instead of walking no tree.
  if (spec_.nodes.empty()) return QueryResult{};
  if (q.predicate_columns != opts_.spec.predicate_columns) {
    return QuerySampleOnly(q);
  }
  if (q.func == AggFunc::kMin || q.func == AggFunc::kMax) {
    return QueryMinMax(q);
  }
  const int ti = TrackedIndex(q.agg_column);
  if (ti < 0 && q.func != AggFunc::kCount) {
    // Unknown aggregation attribute: estimate from the leaf samples
    // (Sec. 5.5, method 2.ii).
    return QuerySampleOnly(q);
  }
  const int column = q.agg_column;

  QueryResult r;
  std::vector<int> cover, partial;
  Frontier(q.rect, &cover, &partial);
  r.covered_nodes = cover.size();
  r.partial_leaves = partial.size();

  const double h = catchup_total_.load();
  const double z = NormalZ(opts_.confidence);

  auto n_hat = [&](int node) { return NodeCountEstimate(node); };
  // Catch-up variance of a covered node, from its descendant leaves'
  // catch-up moments (Sec. 4.4.1). SUM/COUNT use the Horvitz-Thompson form
  // which folds in the uncertainty of N̂_i itself (see variance.h).
  auto covered_catchup_variance = [&](int node, AggFunc f, double wi) {
    if (mode_ != StatMode::kCatchup || h <= 0 || ti < 0) return 0.0;
    double nu = 0;
    for (int li = range_lo_[static_cast<size_t>(node)];
         li < range_hi_[static_cast<size_t>(node)]; ++li) {
      const int leaf = dfs_leaves_[static_cast<size_t>(li)];
      const ColumnStats& c =
          leaf_stats_[static_cast<size_t>(leaf)]
              .columns[static_cast<size_t>(ti)];
      if (c.catchup.count <= 0) continue;
      switch (f) {
        case AggFunc::kAvg:
          nu += AvgCatchupVariance(wi, c.catchup.count, c.catchup);
          break;
        case AggFunc::kSum:
          nu += HtSumCatchupVariance(n0_, h, c.catchup);
          break;
        case AggFunc::kCount:
          nu += HtCountCatchupVariance(n0_, h, c.catchup.count);
          break;
        default:
          break;
      }
    }
    return nu;
  };

  if (q.func == AggFunc::kSum || q.func == AggFunc::kCount) {
    double agg = 0;
    double nu_c = 0;
    for (int i : cover) {
      if (q.func == AggFunc::kSum) {
        agg += NodeSumEstimate(i, column);
      } else {
        agg += NodeCountEstimate(i);
      }
      nu_c += covered_catchup_variance(i, q.func, /*wi=*/1.0);
    }
    double samp = 0;
    double nu_s = 0;
    for (int i : partial) {
      double mi = 0;
      const TreeAgg match = MatchingSamples(i, q, &mi, column);
      if (mi <= 0) continue;
      const double ni = std::max(0.0, n_hat(i));
      if (q.func == AggFunc::kSum) {
        samp += ni / mi * match.sum;
        nu_s += SumQueryVariance(ni, mi, match);
      } else {
        samp += ni / mi * match.count;
        nu_s += CountQueryVariance(ni, mi, match.count);
      }
    }
    r.estimate = agg + samp;
    r.variance_catchup = nu_c;
    r.variance_sample = nu_s;
    r.exact = mode_ == StatMode::kExact && partial.empty();
    r.ci_half_width = z * std::sqrt(nu_c + nu_s);
    return r;
  }

  // AVG: weighted average over relevant partitions with w_i = N̂_i / N̂_q
  // (Sec. 2.3.2 / Appendix C). Partial leaves are weighted by their
  // *matching* population N̂_i * |S_i∩q| / m_i rather than the full stratum;
  // this keeps the estimator unbiased when the predicate clips a leaf (the
  // paper's N_q reduces to the same quantity when queries align with
  // buckets).
  struct PartialInfo {
    int node;
    double mi;
    double eff;  // estimated matching population
    TreeAgg match;
  };
  std::vector<PartialInfo> infos;
  infos.reserve(partial.size());
  double nq = 0;
  for (int i : cover) nq += n_hat(i);
  for (int i : partial) {
    PartialInfo info;
    info.node = i;
    info.match = MatchingSamples(i, q, &info.mi, column);
    info.eff = info.mi > 0
                   ? std::max(0.0, n_hat(i)) * info.match.count / info.mi
                   : 0;
    nq += info.eff;
    infos.push_back(info);
  }
  if (nq <= 0) return r;
  double est = 0;
  double nu_c = 0;
  double nu_s = 0;
  for (int i : cover) {
    const double ni = n_hat(i);
    if (ni <= 0) continue;
    const double wi = ni / nq;
    const double avg_i = NodeSumEstimate(i, column) / ni;
    est += wi * avg_i;
    nu_c += covered_catchup_variance(i, AggFunc::kAvg, wi);
  }
  for (const PartialInfo& info : infos) {
    if (info.mi <= 0 || info.match.count <= 0) continue;
    const double wi = info.eff / nq;
    est += wi * (info.match.sum / info.match.count);
    nu_s += AvgQueryVariance(wi, info.mi, info.match);
  }
  r.estimate = est;
  r.variance_catchup = nu_c;
  r.variance_sample = nu_s;
  r.exact = mode_ == StatMode::kExact && partial.empty();
  r.ci_half_width = z * std::sqrt(nu_c + nu_s);
  return r;
}

void Dpt::CheckInvariants() const {
  if (spec_.nodes.empty()) {
    // Placeholder spec (constructed for LoadFrom); nothing to audit.
    invariants::Require(leaf_stats_.empty() && dfs_leaves_.empty(), "Dpt",
                        "placeholder spec carries leaf state");
    return;
  }
  const size_t n = spec_.nodes.size();
  invariants::Require(
      leaf_stats_.size() == n && range_lo_.size() == n && range_hi_.size() == n,
      "Dpt", "per-node arrays are not parallel to the tree spec");
  invariants::Require(dfs_leaves_.size() == spec_.leaves.size(), "Dpt",
                      "DFS leaf order holds " +
                          std::to_string(dfs_leaves_.size()) +
                          " leaves, spec has " +
                          std::to_string(spec_.leaves.size()));
  for (size_t i = 0; i < n; ++i) {
    const PartitionNode& node = spec_.nodes[i];
    const int lo = range_lo_[i];
    const int hi = range_hi_[i];
    if (node.IsLeaf()) {
      invariants::Require(
          hi == lo + 1 && dfs_leaves_[static_cast<size_t>(lo)] ==
                              static_cast<int>(i),
          "Dpt", "leaf " + std::to_string(i) + " has a non-singleton or "
                                               "misdirected DFS range");
      invariants::Require(
          leaf_stats_[i].columns.size() == tracked_columns_.size(), "Dpt",
          "leaf " + std::to_string(i) + " tracks " +
              std::to_string(leaf_stats_[i].columns.size()) +
              " columns, expected " + std::to_string(tracked_columns_.size()));
    } else {
      invariants::Require(node.left >= 0 && node.right >= 0 &&
                              static_cast<size_t>(node.left) < n &&
                              static_cast<size_t>(node.right) < n,
                          "Dpt", "internal node " + std::to_string(i) +
                                     " has out-of-range children");
      // An internal node's leaf range is exactly the concatenation of its
      // children's — the property every O(#leaves) node aggregate relies on.
      invariants::Require(
          lo == range_lo_[static_cast<size_t>(node.left)] &&
              range_hi_[static_cast<size_t>(node.left)] ==
                  range_lo_[static_cast<size_t>(node.right)] &&
              range_hi_[static_cast<size_t>(node.right)] == hi,
          "Dpt",
          "internal node " + std::to_string(i) +
              "'s DFS range does not tile its children's");
    }
  }
  // Catch-up bookkeeping: the global mass equals the per-leaf masses. Both
  // sides accumulate in different orders (and grafts seed scaled weights),
  // so compare with a relative tolerance.
  const double leaf_mass = NodeCatchupCount(0);
  const double total = catchup_total_.load();
  invariants::Require(
      std::abs(leaf_mass - total) <=
          1e-6 * std::max({1.0, std::abs(leaf_mass), std::abs(total)}),
      "Dpt", "leaf catch-up masses sum to " + std::to_string(leaf_mass) +
                 ", catchup_total is " + std::to_string(total));
  // Pooled sample: the index's own structures, then index vs tuple mirror.
  samples_.CheckInvariants();
  invariants::Require(samples_.size() == sample_tuples_.size(), "Dpt",
                      "sample index holds " + std::to_string(samples_.size()) +
                          " points, mirror holds " +
                          std::to_string(sample_tuples_.size()) + " tuples");
  for (const auto& [id, t] : sample_tuples_) {
    const KdPoint p =
        MakeKdPoint(t, opts_.spec.predicate_columns, opts_.spec.agg_column);
    Rectangle point_rect = Rectangle::Infinite(spec_.dims);
    for (int d = 0; d < spec_.dims; ++d) {
      point_rect.set_lo(d, p.x[static_cast<size_t>(d)]);
      point_rect.set_hi(d, p.x[static_cast<size_t>(d)]);
    }
    std::vector<KdPoint> at;
    samples_.kd().Report(point_rect, &at);
    bool found = false;
    for (const KdPoint& q : at) found = found || q.id == id;
    invariants::Require(found, "Dpt",
                        "mirrored sample id " + std::to_string(id) +
                            " is missing from the kd index at its "
                            "coordinates");
  }
}

}  // namespace janus
