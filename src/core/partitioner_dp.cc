#include "core/partitioner_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/variance.h"

namespace janus {

namespace {

/// Prefix-moment view over sorted samples; O(1) range aggregates.
struct Prefixes {
  std::vector<double> sum;
  std::vector<double> sumsq;

  TreeAgg Range(size_t lo, size_t hi) const {
    TreeAgg agg;
    agg.count = static_cast<double>(hi - lo);
    agg.sum = sum[hi] - sum[lo];
    agg.sumsq = sumsq[hi] - sumsq[lo];
    return agg;
  }
};

/// Variance of the (approximate) max-variance query in rank bucket [i, j):
/// the half-split bound of Appendix D.1 evaluated on prefix arrays.
double BucketVariance(const Prefixes& pre, size_t i, size_t j, AggFunc focus,
                      double sampling_rate) {
  if (j - i < 2) return 0;
  const double mi = static_cast<double>(j - i);
  const size_t mid = i + (j - i) / 2;
  switch (focus) {
    case AggFunc::kCount:
      return CountQueryVariance(mi / sampling_rate, mi, mi / 2.0);
    case AggFunc::kSum: {
      const TreeAgg l = pre.Range(i, mid);
      const TreeAgg r = pre.Range(mid, j);
      return SumLeafError(sampling_rate, mi, l.sumsq >= r.sumsq ? l : r);
    }
    case AggFunc::kAvg: {
      const TreeAgg l = pre.Range(i, mid);
      const TreeAgg r = pre.Range(mid, j);
      return AvgLeafError(mi, l.sumsq >= r.sumsq ? l : r);
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      return 0;
  }
  return 0;
}

}  // namespace

PartitionResult BuildPartitionDP(std::vector<std::pair<double, double>> samples,
                                 const PartitionerDpOptions& opts) {
  PartitionResult result;
  std::sort(samples.begin(), samples.end());
  const size_t m = samples.size();
  const size_t k =
      std::min<size_t>(static_cast<size_t>(std::max(1, opts.num_leaves)),
                       std::max<size_t>(1, m));
  if (m == 0) {
    result.spec = BuildBalanced1dTree({});
    result.ok = true;
    return result;
  }

  Prefixes pre;
  pre.sum.assign(m + 1, 0);
  pre.sumsq.assign(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    pre.sum[i + 1] = pre.sum[i] + samples[i].second;
    pre.sumsq[i + 1] = pre.sumsq[i] + samples[i].second * samples[i].second;
  }

  // Candidate boundary ranks: every sample when m is small, a uniform grid
  // otherwise. Endpoints 0 and m are always candidates.
  std::vector<size_t> pos;
  const size_t stride =
      std::max<size_t>(1, (m + opts.max_candidates - 1) / opts.max_candidates);
  for (size_t r = 0; r <= m; r += stride) pos.push_back(r);
  if (pos.back() != m) pos.push_back(m);
  const size_t C = pos.size();

  const double inf = std::numeric_limits<double>::infinity();
  // f[c]: min of (max bucket variance) covering samples [0, pos[c]) with the
  // current number of buckets; choice[b][c] for backtracking.
  std::vector<double> f(C, inf);
  std::vector<std::vector<uint32_t>> choice(
      k, std::vector<uint32_t>(C, 0));
  for (size_t c = 0; c < C; ++c) {
    f[c] = BucketVariance(pre, 0, pos[c], opts.focus, opts.sampling_rate);
  }
  std::vector<double> g(C, inf);
  for (size_t b = 1; b < k; ++b) {
    g.assign(C, inf);
    g[0] = 0;
    for (size_t c = 1; c < C; ++c) {
      double best = inf;
      uint32_t best_cut = 0;
      for (size_t cp = 0; cp < c; ++cp) {
        if (f[cp] >= best) continue;  // cannot improve: max(f,cost) >= f
        const double cost = BucketVariance(pre, pos[cp], pos[c], opts.focus,
                                           opts.sampling_rate);
        const double v = std::max(f[cp], cost);
        if (v < best) {
          best = v;
          best_cut = static_cast<uint32_t>(cp);
        }
      }
      g[c] = best;
      choice[b][c] = best_cut;
    }
    f.swap(g);
  }

  // Backtrack boundary ranks.
  std::vector<size_t> cuts;
  size_t c = C - 1;
  for (size_t b = k; b-- > 1;) {
    c = choice[b][c];
    if (c == 0) break;
    cuts.push_back(pos[c]);
  }
  std::sort(cuts.begin(), cuts.end());
  std::vector<double> boundaries;
  for (size_t r : cuts) {
    if (r == 0 || r >= m) continue;
    const double a = samples[r - 1].first;
    const double bkey = samples[r].first;
    const double key = a == bkey ? a : 0.5 * (a + bkey);
    if (boundaries.empty() || key > boundaries.back()) {
      boundaries.push_back(key);
    }
  }
  result.spec = BuildBalanced1dTree(boundaries);
  result.spec.worst_error = std::sqrt(f[C - 1]);
  result.achieved_error = result.spec.worst_error;
  result.ok = true;
  return result;
}

}  // namespace janus
