#ifndef JANUS_CORE_CATCHUP_H_
#define JANUS_CORE_CATCHUP_H_

#include <cstdint>
#include <vector>

#include "core/dpt.h"
#include "data/column_store.h"
#include "util/rng.h"

namespace janus {

/// The catch-up process of Sec. 4.3 (step 5): random samples of the archival
/// snapshot refine the approximate node statistics in the background until a
/// user-chosen goal (e.g. 0.1 * |D| samples) is reached.
///
/// The engine owns an immutable columnar copy of the snapshot taken at
/// (re-)initialization — schema-width columns and ids only, no id index, so
/// the copy never exceeds the old row snapshot and shrinks with the schema —
/// and its estimates target exactly the population the deltas are measured
/// against (tuples inserted/deleted later are covered by the per-node
/// deltas — see Dpt). Samples are drawn with replacement, which
/// keeps the Horvitz-Thompson scaling unbiased at any stopping point; this
/// is why queries issued mid-catch-up are valid, just wider (Sec. 4.3).
class CatchupEngine {
 public:
  /// `goal_samples` caps the catch-up (the paper runs until 0.1 * |D|).
  /// Pass `table.store().WithoutIndex()` (or move a scratch store in) — the
  /// sampler only reads positions, never ids.
  CatchupEngine(Dpt* dpt, ColumnStore snapshot, size_t goal_samples,
                uint64_t seed);

  /// Row-vector snapshot (tests / stream boundary); transposed on entry.
  CatchupEngine(Dpt* dpt, const std::vector<Tuple>& snapshot,
                size_t goal_samples, uint64_t seed);

  /// Process up to `batch` samples; returns how many were absorbed.
  size_t Step(size_t batch);

  /// Run to the goal.
  void RunToGoal();

  bool Done() const { return processed_ >= goal_; }
  size_t processed() const { return processed_; }
  size_t goal() const { return goal_; }

  /// CPU time spent absorbing samples (the "processing" cost of Fig. 7; the
  /// "loading" cost is measured by the broker samplers).
  double processing_seconds() const { return processing_seconds_; }

  /// Snapshot persistence: the archival snapshot copy, progress counters and
  /// the draw RNG, so a restored catch-up draws the same remaining sample
  /// sequence as the uninterrupted one. The owning Dpt pointer is set at
  /// construction and not serialized.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  Dpt* dpt_;
  ColumnStore snapshot_;
  size_t goal_;
  size_t processed_ = 0;
  double processing_seconds_ = 0;
  Rng rng_;
};

}  // namespace janus

#endif  // JANUS_CORE_CATCHUP_H_
