#include "core/partitioner_kd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "data/parallel_scan.h"
#include "util/thread_pool.h"

namespace janus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Number of leaves the serial phase grows before fanning out: each
/// phase-1 leaf becomes an independent subtree task. A constant (never a
/// function of the pool or thread count) so the produced tree is a pure
/// function of the samples and options — bit-identical whether the subtree
/// tasks run serially, on 2 threads, or on 64.
constexpr int kFrontierFanout = 16;

struct HeapEntry {
  double variance;
  int node;
  int depth;
  double count;  // samples under the node, as split-feasibility tiebreak

  bool operator<(const HeapEntry& o) const {
    if (variance != o.variance) return variance < o.variance;
    return count < o.count;  // prefer bigger buckets on variance ties
  }
};

/// Median coordinate of the samples inside `rect` along `dim`, found by
/// binary search on the coordinate with range-count probes (O(log) probes).
double MedianCoord(const DynamicKdTree& kd, const Rectangle& rect, int dim,
                   double total) {
  const Rectangle bbox = kd.BoundingBox();
  double lo = std::max(rect.lo(dim), bbox.lo(dim));
  double hi = std::min(rect.hi(dim), bbox.hi(dim));
  const double target = total / 2;
  for (int iter = 0;
       iter < 60 && hi - lo > 1e-12 * (std::abs(hi) + std::abs(lo) + 1);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    Rectangle probe = rect;
    probe.set_hi(dim, mid);
    const double c = kd.RangeAggregate(probe).count;
    if (c < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// The greedy max-variance growth loop: repeatedly pop the worst leaf off
/// `heap` and split it at the sample median of the round-robin dimension,
/// until `num_leaves` leaves exist or nothing is splittable. Unsplittable
/// entries (fewer than 2 samples, or degenerate along every dimension)
/// silently leave the heap and stay leaves. Works on any rooted spec — the
/// whole tree in phase 1, a frontier subtree in phase 2.
void GreedyGrow(const MaxVarianceIndex& index, const PartitionerKdOptions& opts,
                PartitionTreeSpec* spec, std::priority_queue<HeapEntry>* heap,
                int* leaves, int num_leaves) {
  const int d = index.dims();
  while (*leaves < num_leaves && !heap->empty()) {
    HeapEntry top = heap->top();
    heap->pop();
    PartitionNode parent_copy = spec->nodes[static_cast<size_t>(top.node)];
    const double count = index.kd().RangeAggregate(parent_copy.rect).count;
    if (count < 2) continue;
    // Split on the median of the round-robin dimension of this branch; if
    // the samples are degenerate along it, try the other dimensions.
    int dim = top.depth % d;
    double split = 0;
    bool found = false;
    for (int attempt = 0; attempt < d; ++attempt) {
      const int try_dim = (dim + attempt) % d;
      const double candidate =
          MedianCoord(index.kd(), parent_copy.rect, try_dim, count);
      Rectangle probe = parent_copy.rect;
      probe.set_hi(try_dim, candidate);
      const double left_count = index.kd().RangeAggregate(probe).count;
      if (left_count > 0 && left_count < count) {
        dim = try_dim;
        split = candidate;
        found = true;
        break;
      }
    }
    if (!found) continue;
    const int li = static_cast<int>(spec->nodes.size());
    const int ri = li + 1;
    PartitionNode left, right;
    left.rect = parent_copy.rect;
    left.rect.set_hi(dim, split);
    left.parent = top.node;
    right.rect = parent_copy.rect;
    right.rect.set_lo(dim, split);
    right.parent = top.node;
    spec->nodes.push_back(left);
    spec->nodes.push_back(right);
    PartitionNode& parent = spec->nodes[static_cast<size_t>(top.node)];
    parent.left = li;
    parent.right = ri;
    parent.split_dim = dim;
    parent.split_val = split;
    // The two freshly-cut children are evaluated concurrently when a pool
    // is available: each evaluation (range aggregate + max-variance probe)
    // is a read-only tree query, and the results land in fixed slots, so
    // the heap sees the same entries as a serial build. (Inside a phase-2
    // subtree task this degrades to the serial inline path via the
    // nested-scan guard — same result either way.)
    double child_count[2];
    double child_var[2];
    const int child_node[2] = {li, ri};
    scan::ForEachIndex(opts.exec, 2, opts.exec.pool != nullptr ? 2 : 1,
                       [&](size_t c) {
                         const Rectangle& r =
                             spec->nodes[static_cast<size_t>(child_node[c])]
                                 .rect;
                         child_count[c] = index.kd().RangeAggregate(r).count;
                         child_var[c] = index.MaxVariance(r, opts.focus);
                       });
    heap->push({child_var[0], li, top.depth + 1, child_count[0]});
    heap->push({child_var[1], ri, top.depth + 1, child_count[1]});
    ++*leaves;
  }
}

/// Distribute `extra` leaf splits across the frontier proportional to each
/// node's sample count, by largest-remainder rounding (ties favor the lower
/// frontier slot). Deterministic, and independent of any execution order.
std::vector<int> SplitBudget(const std::vector<HeapEntry>& frontier,
                             int extra) {
  const size_t n = frontier.size();
  std::vector<int> out(n, 0);
  double total = 0;
  for (const HeapEntry& e : frontier) total += std::max(0.0, e.count);
  if (total <= 0) {
    for (size_t i = 0; extra > 0; i = (i + 1) % n, --extra) ++out[i];
    return out;
  }
  std::vector<std::pair<double, size_t>> rem(n);
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double share =
        extra * std::max(0.0, frontier[i].count) / total;
    out[i] = static_cast<int>(share);
    assigned += out[i];
    rem[i] = {share - static_cast<double>(out[i]), i};
  }
  std::sort(rem.begin(), rem.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int r = 0; r < extra - assigned; ++r) {
    ++out[rem[static_cast<size_t>(r) % n].second];
  }
  return out;
}

/// Graft `sub` — an independently grown tree whose root rect equals the
/// frontier leaf's rect — onto leaf `fn` of `spec`: the sub-root's split
/// moves onto fn and the remaining nodes append with remapped links
/// (local x > 0 maps to offset + x - 1, local 0 maps to fn), the same
/// arithmetic as the partial-repartition graft in core/janus.cc.
void SpliceSubtree(PartitionTreeSpec* spec, int fn,
                   const PartitionTreeSpec& sub) {
  if (sub.nodes.size() <= 1) return;
  const int offset = static_cast<int>(spec->nodes.size());
  const auto remap = [&](int x) { return x == 0 ? fn : offset + x - 1; };
  {
    const PartitionNode& r = sub.nodes[0];
    PartitionNode& dst = spec->nodes[static_cast<size_t>(fn)];
    dst.split_dim = r.split_dim;
    dst.split_val = r.split_val;
    dst.left = remap(r.left);
    dst.right = remap(r.right);
  }
  for (size_t x = 1; x < sub.nodes.size(); ++x) {
    PartitionNode n = sub.nodes[x];
    n.parent = remap(n.parent);
    if (n.left >= 0) {
      n.left = remap(n.left);
      n.right = remap(n.right);
    }
    spec->nodes.push_back(n);
  }
}

}  // namespace

PartitionResult BuildPartitionKd(const MaxVarianceIndex& index,
                                 const PartitionerKdOptions& opts) {
  PartitionResult result;
  const int d = index.dims();
  PartitionTreeSpec& spec = result.spec;
  spec.dims = d;

  PartitionNode root;
  root.rect = Rectangle(std::vector<double>(static_cast<size_t>(d), -kInf),
                        std::vector<double>(static_cast<size_t>(d), kInf));
  spec.nodes.push_back(root);

  std::priority_queue<HeapEntry> heap;
  const TreeAgg all = index.kd().RangeAggregate(spec.nodes[0].rect);
  heap.push({index.MaxVariance(spec.nodes[0].rect, opts.focus), 0, 0,
             all.count});
  int leaves = 1;

  // Phase 1: grow the frontier serially with the plain greedy (identical to
  // the historical single-threaded build when num_leaves <= the fanout).
  GreedyGrow(index, opts, &spec, &heap, &leaves,
             std::min(opts.num_leaves, kFrontierFanout));

  // Phase 2: the heap now holds the splittable frontier leaves. Hand each
  // one a share of the remaining leaf budget (proportional to its sample
  // count) and grow the subtrees as independent tasks over the scan pool:
  // every task only issues read-only tree probes and writes its own output
  // slot, and the splice below runs serially in frontier order, so the
  // final spec is bit-identical under any task interleaving.
  if (leaves < opts.num_leaves && !heap.empty()) {
    std::vector<HeapEntry> frontier;
    frontier.reserve(heap.size());
    while (!heap.empty()) {
      frontier.push_back(heap.top());
      heap.pop();
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                return a.node < b.node;
              });
    const std::vector<int> budget =
        SplitBudget(frontier, opts.num_leaves - leaves);
    std::vector<PartitionTreeSpec> subs(frontier.size());
    const size_t workers =
        opts.exec.pool != nullptr
            ? std::min(frontier.size(), opts.exec.pool->num_threads())
            : 1;
    scan::ForEachIndex(opts.exec, frontier.size(), workers, [&](size_t f) {
      if (budget[f] == 0) return;  // stays a leaf of the main tree
      PartitionTreeSpec local;
      local.dims = d;
      PartitionNode sub_root;
      sub_root.rect = spec.nodes[static_cast<size_t>(frontier[f].node)].rect;
      local.nodes.push_back(sub_root);
      std::priority_queue<HeapEntry> h;
      h.push({frontier[f].variance, 0, frontier[f].depth, frontier[f].count});
      int sub_leaves = 1;
      // Depth continues from the frontier entry, so the round-robin split
      // dimension sequence matches a build that never paused there.
      GreedyGrow(index, opts, &local, &h, &sub_leaves, 1 + budget[f]);
      subs[f] = std::move(local);
    });
    for (size_t f = 0; f < frontier.size(); ++f) {
      SpliceSubtree(&spec, frontier[f].node, subs[f]);
    }
  }

  // Collect leaves in node order and the worst-bucket error. The error
  // probes are independent tree queries, so they fan out over the pool;
  // the max-reduction is order-insensitive, hence bit-identical to serial.
  for (int i = 0; i < static_cast<int>(spec.nodes.size()); ++i) {
    if (spec.nodes[static_cast<size_t>(i)].IsLeaf()) {
      spec.leaves.push_back(i);
    }
  }
  std::vector<double> leaf_error(spec.leaves.size(), 0.0);
  scan::ForEachIndex(
      opts.exec, spec.leaves.size(),
      opts.exec.pool != nullptr && spec.leaves.size() >= 8
          ? opts.exec.pool->num_threads()
          : 1,
      [&](size_t l) {
        leaf_error[l] = index.MaxVariance(
            spec.nodes[static_cast<size_t>(spec.leaves[l])].rect, opts.focus);
      });
  double worst = 0;
  for (double e : leaf_error) worst = std::max(worst, e);
  spec.worst_error = std::sqrt(worst);
  result.achieved_error = spec.worst_error;
  result.ok = true;
  return result;
}

}  // namespace janus
