#include "core/partitioner_kd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "data/parallel_scan.h"
#include "util/thread_pool.h"

namespace janus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HeapEntry {
  double variance;
  int node;
  int depth;
  double count;  // samples under the node, as split-feasibility tiebreak

  bool operator<(const HeapEntry& o) const {
    if (variance != o.variance) return variance < o.variance;
    return count < o.count;  // prefer bigger buckets on variance ties
  }
};

/// Median coordinate of the samples inside `rect` along `dim`, found by
/// binary search on the coordinate with range-count probes (O(log) probes).
double MedianCoord(const DynamicKdTree& kd, const Rectangle& rect, int dim,
                   double total) {
  const Rectangle bbox = kd.BoundingBox();
  double lo = std::max(rect.lo(dim), bbox.lo(dim));
  double hi = std::min(rect.hi(dim), bbox.hi(dim));
  const double target = total / 2;
  for (int iter = 0;
       iter < 60 && hi - lo > 1e-12 * (std::abs(hi) + std::abs(lo) + 1);
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    Rectangle probe = rect;
    probe.set_hi(dim, mid);
    const double c = kd.RangeAggregate(probe).count;
    if (c < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

PartitionResult BuildPartitionKd(const MaxVarianceIndex& index,
                                 const PartitionerKdOptions& opts) {
  PartitionResult result;
  const int d = index.dims();
  PartitionTreeSpec& spec = result.spec;
  spec.dims = d;

  PartitionNode root;
  root.rect = Rectangle(std::vector<double>(static_cast<size_t>(d), -kInf),
                        std::vector<double>(static_cast<size_t>(d), kInf));
  spec.nodes.push_back(root);

  std::priority_queue<HeapEntry> heap;
  const TreeAgg all = index.kd().RangeAggregate(spec.nodes[0].rect);
  heap.push({index.MaxVariance(spec.nodes[0].rect, opts.focus), 0, 0,
             all.count});

  int leaves = 1;
  std::vector<HeapEntry> unsplittable;
  while (leaves < opts.num_leaves && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    PartitionNode parent_copy = spec.nodes[static_cast<size_t>(top.node)];
    const double count =
        index.kd().RangeAggregate(parent_copy.rect).count;
    if (count < 2) {
      unsplittable.push_back(top);
      continue;
    }
    // Split on the median of the round-robin dimension of this branch; if
    // the samples are degenerate along it, try the other dimensions.
    int dim = top.depth % d;
    double split = 0;
    bool found = false;
    for (int attempt = 0; attempt < d; ++attempt) {
      const int try_dim = (dim + attempt) % d;
      const double candidate =
          MedianCoord(index.kd(), parent_copy.rect, try_dim, count);
      Rectangle probe = parent_copy.rect;
      probe.set_hi(try_dim, candidate);
      const double left_count = index.kd().RangeAggregate(probe).count;
      if (left_count > 0 && left_count < count) {
        dim = try_dim;
        split = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      unsplittable.push_back(top);
      continue;
    }
    const int li = static_cast<int>(spec.nodes.size());
    const int ri = li + 1;
    PartitionNode left, right;
    left.rect = parent_copy.rect;
    left.rect.set_hi(dim, split);
    left.parent = top.node;
    right.rect = parent_copy.rect;
    right.rect.set_lo(dim, split);
    right.parent = top.node;
    spec.nodes.push_back(left);
    spec.nodes.push_back(right);
    PartitionNode& parent = spec.nodes[static_cast<size_t>(top.node)];
    parent.left = li;
    parent.right = ri;
    parent.split_dim = dim;
    parent.split_val = split;
    // The two freshly-cut children are evaluated concurrently when a pool
    // is available: each evaluation (range aggregate + max-variance probe)
    // is a read-only tree query, and the results land in fixed slots, so
    // the heap sees the same entries as a serial build.
    double child_count[2];
    double child_var[2];
    const int child_node[2] = {li, ri};
    scan::ForEachIndex(opts.exec, 2, opts.exec.pool != nullptr ? 2 : 1,
                       [&](size_t c) {
                         const Rectangle& r =
                             spec.nodes[static_cast<size_t>(child_node[c])]
                                 .rect;
                         child_count[c] = index.kd().RangeAggregate(r).count;
                         child_var[c] = index.MaxVariance(r, opts.focus);
                       });
    heap.push({child_var[0], li, top.depth + 1, child_count[0]});
    heap.push({child_var[1], ri, top.depth + 1, child_count[1]});
    ++leaves;
  }

  // Collect leaves in tree order and the worst-bucket error. The error
  // probes are independent tree queries, so they fan out over the pool;
  // the max-reduction is order-insensitive, hence bit-identical to serial.
  for (int i = 0; i < static_cast<int>(spec.nodes.size()); ++i) {
    if (spec.nodes[static_cast<size_t>(i)].IsLeaf()) {
      spec.leaves.push_back(i);
    }
  }
  std::vector<double> leaf_error(spec.leaves.size(), 0.0);
  scan::ForEachIndex(
      opts.exec, spec.leaves.size(),
      opts.exec.pool != nullptr && spec.leaves.size() >= 8
          ? opts.exec.pool->num_threads()
          : 1,
      [&](size_t l) {
        leaf_error[l] = index.MaxVariance(
            spec.nodes[static_cast<size_t>(spec.leaves[l])].rect, opts.focus);
      });
  double worst = 0;
  for (double e : leaf_error) worst = std::max(worst, e);
  spec.worst_error = std::sqrt(worst);
  result.achieved_error = spec.worst_error;
  result.ok = true;
  return result;
}

}  // namespace janus
