#ifndef JANUS_CORE_PARTITION_H_
#define JANUS_CORE_PARTITION_H_

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "data/schema.h"

namespace janus {

/// One node of a hierarchical rectangular partitioning (Sec. 2.3.1).
/// Internal nodes carry an axis-aligned split; leaves are the buckets.
/// Invariants: every child is a subset of its parent, siblings are disjoint
/// (up to the shared boundary hyperplane), children tile the parent.
struct PartitionNode {
  Rectangle rect;
  int left = -1;
  int right = -1;
  int parent = -1;
  int split_dim = -1;
  double split_val = 0;

  bool IsLeaf() const { return left < 0; }
};

/// The shape of a partition tree, produced by the optimizers and consumed by
/// DPT/SPT (which attach statistics to the nodes).
struct PartitionTreeSpec {
  std::vector<PartitionNode> nodes;  ///< nodes[0] is the root
  std::vector<int> leaves;           ///< leaf indices in left-to-right order
  int dims = 1;
  /// sqrt of the worst bucket max-variance at construction time.
  double worst_error = 0;

  int num_leaves() const { return static_cast<int>(leaves.size()); }

  /// Index of the leaf whose bucket contains `point` (split rule:
  /// x[split_dim] < split_val goes left). O(height).
  int LeafFor(const double* point) const {
    assert(!nodes.empty());
    int i = 0;
    while (!nodes[static_cast<size_t>(i)].IsLeaf()) {
      const PartitionNode& n = nodes[static_cast<size_t>(i)];
      i = (point[n.split_dim] < n.split_val) ? n.left : n.right;
    }
    return i;
  }
};

/// Result of a partitioning request (any optimizer).
struct PartitionResult {
  PartitionTreeSpec spec;
  /// sqrt(max bucket M) of the returned partitioning.
  double achieved_error = 0;
  bool ok = false;
};

/// Builds a balanced binary PartitionTreeSpec over ordered 1-D buckets
/// delimited by `boundaries` (ascending split values; buckets =
/// (-inf, b0), [b0, b1), ..., [b_last, +inf)). The root rectangle spans the
/// whole real line on the single predicate dimension.
PartitionTreeSpec BuildBalanced1dTree(const std::vector<double>& boundaries);

}  // namespace janus

#endif  // JANUS_CORE_PARTITION_H_
