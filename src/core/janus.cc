#include "core/janus.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/partition.h"
#include "persist/serde.h"
#include "util/invariants.h"
#include "util/timer.h"

namespace janus {

JanusAqp::JanusAqp(const JanusOptions& opts)
    : opts_(opts), table_(opts.schema), rng_(opts.seed) {}

JanusAqp::~JanusAqp() {
  if (opt_thread_.joinable()) opt_thread_.join();
}

DptOptions JanusAqp::MakeDptOptions() const {
  DptOptions d;
  d.spec = opts_.spec;
  d.sample_rate = opts_.sample_rate;
  d.minmax_k = opts_.minmax_k;
  d.confidence = opts_.confidence;
  d.delta = opts_.delta;
  d.extra_tracked_columns = opts_.extra_tracked_columns;
  d.exec = opts_.exec;
  return d;
}

SptOptions JanusAqp::MakeSptOptions() const {
  SptOptions s;
  s.spec = opts_.spec;
  s.num_leaves = opts_.num_leaves;
  s.focus = opts_.focus;
  s.sample_rate = opts_.sample_rate;
  s.algorithm = opts_.algorithm;
  s.rho = opts_.rho;
  s.delta = opts_.delta;
  s.minmax_k = opts_.minmax_k;
  s.confidence = opts_.confidence;
  s.seed = opts_.seed;
  s.exec = opts_.exec;
  return s;
}

void JanusAqp::LoadInitial(const std::vector<Tuple>& rows) {
  for (const Tuple& t : rows) table_.Insert(t);
}

void JanusAqp::RefreshBaselines() {
  leaf_baseline_var_ = ComputeBaselines(*dpt_);
}

std::vector<double> JanusAqp::ComputeBaselines(const Dpt& dpt) const {
  std::vector<double> baselines(dpt.tree().nodes.size(), 0);
  for (int leaf : dpt.tree().leaves) {
    baselines[static_cast<size_t>(leaf)] =
        dpt.sample_index().MaxVariance(dpt.LeafRect(leaf), opts_.focus);
  }
  return baselines;
}

void JanusAqp::AdoptSpec(PartitionTreeSpec spec) {
  dpt_ = std::make_unique<Dpt>(MakeDptOptions(), std::move(spec));
  dpt_->InitializeFromReservoir(reservoir_->samples(), table_.size());
  const size_t goal = static_cast<size_t>(
      opts_.catchup_rate * static_cast<double>(table_.size()));
  catchup_ = std::make_unique<CatchupEngine>(
      dpt_.get(), table_.store().WithoutIndex(), goal, rng_.Next());
  RefreshBaselines();
}

void JanusAqp::Initialize() {
  const size_t target = std::max<size_t>(
      32, static_cast<size_t>(2.0 * opts_.sample_rate *
                              static_cast<double>(table_.size())));
  reservoir_ = std::make_unique<DynamicReservoir>(target, rng_.Next());
  reservoir_->Reset(table_.SampleUniform(&rng_, target, opts_.exec));
  Timer timer;
  PartitionResult pr =
      OptimizePartition(reservoir_->samples(), MakeSptOptions(),
                        table_.size());
  Timer blocking;
  AdoptSpec(std::move(pr.spec));
  counters_.last_blocking_seconds = blocking.ElapsedSeconds();
  counters_.last_reopt_seconds = timer.ElapsedSeconds();
}

void JanusAqp::Insert(const Tuple& t) {
  {
    MutexLock lock(&update_mu_);
    table_.Insert(t);
    ++counters_.inserts;
    ReservoirChange ch = reservoir_->OnInsert(t, table_.size());
    if (ch.evicted.has_value()) {
      dpt_->SampleRemove(*ch.evicted);
      if (bg_capture_) {
        bg_.delta.push_back({ReoptDeltaOp::Kind::kSampleRemove, *ch.evicted, {}});
      }
    }
    if (ch.added.has_value()) {
      dpt_->SampleAdd(*ch.added);
      if (bg_capture_) {
        bg_.delta.push_back({ReoptDeltaOp::Kind::kSampleAdd, *ch.added, {}});
      }
    }
    if (bg_capture_) bg_.delta.push_back({ReoptDeltaOp::Kind::kInsert, t, {}});
  }
  {
    // Shared hold: a concurrent trigger repartition (tree_mu_ writer) must
    // not free the tree out from under the statistics update.
    ReaderMutexLock tree(&tree_mu_);
    dpt_->ApplyInsert(t);
  }
  if (opts_.enable_triggers) CheckTriggers(t);
}

bool JanusAqp::Delete(uint64_t id) {
  Tuple t;
  {
    MutexLock lock(&update_mu_);
    const std::optional<Tuple> p = table_.Find(id);
    if (!p.has_value()) return false;
    t = *p;
    // A pipeline whose archive assembly has not reached this row yet loses
    // its Begin-time payload with this delete; park it for the assembler.
    if (bg_capture_ && bg_.copy_pos < bg_.t0_ids.size()) {
      bg_.rescued.emplace(id, t);
    }
    table_.Delete(id);
    ++counters_.deletes;
    ReservoirChange ch = reservoir_->OnDelete(id);
    if (ch.needs_resample) {
      // Sec. 4.2: |S| hit its lower bound m; re-sample 2m from the archive.
      std::vector<Tuple> fresh =
          table_.SampleUniform(&rng_, reservoir_->capacity(), opts_.exec);
      reservoir_->Reset(fresh);
      dpt_->ResetSamples(fresh);
      ++counters_.reservoir_resamples;
      if (bg_capture_) {
        bg_.delta.push_back({ReoptDeltaOp::Kind::kSampleReset, Tuple{}, fresh});
      }
    } else if (ch.evicted.has_value()) {
      dpt_->SampleRemove(*ch.evicted);
      if (bg_capture_) {
        bg_.delta.push_back({ReoptDeltaOp::Kind::kSampleRemove, *ch.evicted, {}});
      }
    }
    if (bg_capture_) bg_.delta.push_back({ReoptDeltaOp::Kind::kDelete, t, {}});
  }
  {
    ReaderMutexLock tree(&tree_mu_);
    dpt_->ApplyDelete(t);
  }
  if (opts_.enable_triggers) CheckTriggers(t);
  return true;
}

QueryResult JanusAqp::Query(const AggQuery& q) const { return dpt_->Query(q); }

void JanusAqp::RunCatchupToGoal() {
  ReaderMutexLock tree(&tree_mu_);
  if (catchup_) catchup_->RunToGoal();
}

size_t JanusAqp::StepCatchup(size_t batch) {
  ReaderMutexLock tree(&tree_mu_);
  return catchup_ ? catchup_->Step(batch) : 0;
}

double JanusAqp::CurrentTreeMaxVariance() const {
  double worst = 0;
  for (int leaf : dpt_->tree().leaves) {
    worst = std::max(worst, dpt_->sample_index().MaxVariance(
                                dpt_->LeafRect(leaf), opts_.focus));
  }
  return worst;
}

bool JanusAqp::FullRepartition() {
  Timer timer;
  PartitionResult pr =
      OptimizePartition(reservoir_->samples(), MakeSptOptions(),
                        table_.size());
  if (!pr.ok) return false;
  Timer blocking;
  AdoptSpec(std::move(pr.spec));
  counters_.last_blocking_seconds = blocking.ElapsedSeconds();
  counters_.last_reopt_seconds = timer.ElapsedSeconds();
  ++counters_.repartitions;
  return true;
}

bool JanusAqp::PartialRepartition(int leaf) {
  const int psi = opts_.partial_repartition_psi;
  if (psi <= 0) return false;
  const PartitionTreeSpec& old_spec = dpt_->tree();
  // Climb psi levels (Appendix E).
  int anchor = leaf;
  for (int i = 0; i < psi; ++i) {
    const int parent = old_spec.nodes[static_cast<size_t>(anchor)].parent;
    if (parent < 0) break;
    anchor = parent;
  }
  if (anchor == 0) return FullRepartition();

  // Samples and leaf budget of the anchored subtree.
  const Rectangle& region = old_spec.nodes[static_cast<size_t>(anchor)].rect;
  std::vector<Tuple> region_samples;
  std::vector<double> point(opts_.spec.predicate_columns.size());
  for (const auto& [id, t] : dpt_->sample_tuples()) {
    (void)id;
    ProjectTuple(t, opts_.spec.predicate_columns, point.data());
    if (region.Contains(point.data())) region_samples.push_back(t);
  }
  int subtree_leaves = 0;
  std::vector<int> old_subtree_leaf_nodes;
  {
    std::vector<int> stack{anchor};
    while (!stack.empty()) {
      const int i = stack.back();
      stack.pop_back();
      const PartitionNode& n = old_spec.nodes[static_cast<size_t>(i)];
      if (n.IsLeaf()) {
        ++subtree_leaves;
        old_subtree_leaf_nodes.push_back(i);
        continue;
      }
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  if (region_samples.size() < 4 || subtree_leaves < 2) {
    // Region too thin to re-optimize on its own: degrade to a full rebuild,
    // and count it — silent fallbacks hide the real cost of psi > 0.
    ++counters_.partial_repartition_fallbacks;
    return FullRepartition();
  }

  Timer timer;
  SptOptions sopts = MakeSptOptions();
  sopts.num_leaves = subtree_leaves;
  PartitionResult sub =
      OptimizePartition(region_samples, sopts, table_.size());
  if (!sub.ok) {
    ++counters_.partial_repartition_fallbacks;
    return FullRepartition();
  }
  // Clip the sub-spec's rectangles into the anchored region.
  for (PartitionNode& n : sub.spec.nodes) {
    for (int d = 0; d < old_spec.dims; ++d) {
      n.rect.set_lo(d, std::max(n.rect.lo(d), region.lo(d)));
      n.rect.set_hi(d, std::min(n.rect.hi(d), region.hi(d)));
    }
  }

  // Graft: copy the old tree, replacing the anchored subtree.
  PartitionTreeSpec grafted;
  grafted.dims = old_spec.dims;
  std::vector<std::pair<int, int>> preserved;  // old leaf node -> new node
  // Map old node index -> new node index (only for nodes we copy).
  std::vector<int> remap(old_spec.nodes.size(), -1);
  // First pass: copy every node not inside the anchored subtree. Identify
  // subtree membership by walking parents.
  auto in_subtree = [&](int node) {
    for (int i = node; i >= 0;
         i = old_spec.nodes[static_cast<size_t>(i)].parent) {
      if (i == anchor) return true;
    }
    return false;
  };
  for (size_t i = 0; i < old_spec.nodes.size(); ++i) {
    if (static_cast<int>(i) != anchor && in_subtree(static_cast<int>(i))) {
      continue;
    }
    remap[i] = static_cast<int>(grafted.nodes.size());
    grafted.nodes.push_back(old_spec.nodes[i]);
  }
  // Fix copied links.
  for (size_t i = 0; i < old_spec.nodes.size(); ++i) {
    if (remap[i] < 0) continue;
    PartitionNode& n = grafted.nodes[static_cast<size_t>(remap[i])];
    const int old_parent = old_spec.nodes[i].parent;
    n.parent = old_parent >= 0 ? remap[static_cast<size_t>(old_parent)] : -1;
    if (static_cast<int>(i) == anchor) {
      n.left = n.right = -1;  // re-attached below
      continue;
    }
    if (!old_spec.nodes[i].IsLeaf()) {
      n.left = remap[static_cast<size_t>(old_spec.nodes[i].left)];
      n.right = remap[static_cast<size_t>(old_spec.nodes[i].right)];
    }
  }
  // Attach the new subtree under the anchor: sub.spec node 0 becomes the
  // anchor itself (adopt its split), the rest append with offset.
  const int new_anchor = remap[static_cast<size_t>(anchor)];
  const int offset = static_cast<int>(grafted.nodes.size());
  {
    PartitionNode& a = grafted.nodes[static_cast<size_t>(new_anchor)];
    const PartitionNode& sroot = sub.spec.nodes[0];
    a.split_dim = sroot.split_dim;
    a.split_val = sroot.split_val;
    a.left = sroot.left >= 0 ? offset + sroot.left - 1 : -1;
    a.right = sroot.right >= 0 ? offset + sroot.right - 1 : -1;
  }
  for (size_t i = 1; i < sub.spec.nodes.size(); ++i) {
    PartitionNode n = sub.spec.nodes[i];
    n.parent = n.parent == 0 ? new_anchor
                             : offset + n.parent - 1;
    if (n.left >= 0) {
      n.left = offset + n.left - 1;
      n.right = offset + n.right - 1;
    }
    grafted.nodes.push_back(n);
  }
  // Recompute leaves in node order.
  for (size_t i = 0; i < grafted.nodes.size(); ++i) {
    if (grafted.nodes[i].IsLeaf()) {
      grafted.leaves.push_back(static_cast<int>(i));
    }
  }
  // Preserved leaf mapping (everything copied in pass 1 that is a leaf).
  for (size_t i = 0; i < old_spec.nodes.size(); ++i) {
    if (remap[i] >= 0 && static_cast<int>(i) != anchor &&
        old_spec.nodes[i].IsLeaf()) {
      preserved.emplace_back(static_cast<int>(i), remap[i]);
    }
  }

  // Build the new synopsis: preserved leaves keep their statistics; new
  // subtree leaves are seeded from the region's reservoir samples with the
  // subtree's catch-up mass preserved (Appendix E keeps estimates of
  // unchanged nodes and restarts catch-up for the changed region).
  const double h_total = dpt_->catchup_count();
  const double h_sub = dpt_->NodeCatchupCount(anchor);
  const double n0 = static_cast<double>(table_.size());
  auto fresh = std::make_unique<Dpt>(MakeDptOptions(), std::move(grafted));
  for (const auto& [old_node, new_node] : preserved) {
    fresh->CopyLeafStats(*dpt_, old_node, new_node);
  }
  // Seed new leaves: distribute region samples to their new leaves.
  const double scale =
      region_samples.empty()
          ? 0
          : h_sub / static_cast<double>(region_samples.size());
  std::vector<std::vector<Tuple>> per_leaf(fresh->tree().nodes.size());
  for (const Tuple& t : region_samples) {
    per_leaf[static_cast<size_t>(fresh->LeafForTuple(t))].push_back(t);
  }
  for (size_t i = 0; i < per_leaf.size(); ++i) {
    if (per_leaf[i].empty()) continue;
    // Only seed the freshly created leaves (preserved ones keep stats).
    bool is_preserved = false;
    for (const auto& [o, nn] : preserved) {
      (void)o;
      if (nn == static_cast<int>(i)) {
        is_preserved = true;
        break;
      }
    }
    if (is_preserved) continue;
    fresh->SeedLeafCatchupFromSamples(static_cast<int>(i), per_leaf[i], scale);
  }
  fresh->SetCatchupState(StatMode::kCatchup, n0, h_total);
  // Re-attach the pooled reservoir.
  std::vector<Tuple> pool;
  pool.reserve(dpt_->sample_tuples().size());
  for (const auto& [id, t] : dpt_->sample_tuples()) {
    (void)id;
    pool.push_back(t);
  }
  fresh->ResetSamples(pool);
  dpt_ = std::move(fresh);
  const size_t goal = static_cast<size_t>(
      opts_.catchup_rate * static_cast<double>(table_.size()));
  catchup_ = std::make_unique<CatchupEngine>(
      dpt_.get(), table_.store().WithoutIndex(), goal, rng_.Next());
  RefreshBaselines();
  counters_.last_reopt_seconds = timer.ElapsedSeconds();
  ++counters_.partial_repartitions;
  return true;
}

bool JanusAqp::CheckTriggers(const Tuple& t) {
  if (!opts_.enable_triggers || !dpt_) return false;
  if (updates_since_check_.fetch_add(1) + 1 <
      opts_.trigger_check_interval) {
    return false;
  }
  updates_since_check_.store(0);

  bool starved = false;
  bool drift = false;
  int leaf = -1;
  double cur = 0;
  const Dpt* evaluated = nullptr;
  {
    // Evaluation reads the sample index and baselines, which concurrent
    // updaters mutate under update_mu_; the shared tree hold pins the
    // synopsis pointer against a racing repartition.
    ReaderMutexLock tree(&tree_mu_);
    MutexLock lock(&update_mu_);
    evaluated = dpt_.get();
    ++counters_.trigger_checks;
    leaf = dpt_->LeafForTuple(t);

    // Starvation check (Sec. 5.4): too few samples for robust estimators.
    const double si = dpt_->LeafSampleCount(leaf);
    const double m = static_cast<double>(dpt_->sample_size());
    starved = si < opts_.starvation_factor * std::log2(std::max(2.0, m));

    // Variance drift check.
    cur = dpt_->sample_index().MaxVariance(dpt_->LeafRect(leaf), opts_.focus);
    const double base = leaf_baseline_var_[static_cast<size_t>(leaf)];
    drift = base > 0 && (cur > opts_.beta * base || cur * opts_.beta < base);

    if (!starved && !drift) return false;
    ++counters_.trigger_fires;

    if (opts_.reopt_mode == ReoptMode::kBackground) {
      // Record the request; fires while a build is already in flight
      // coalesce into the next pipeline run.
      reopt_request_ = true;
      reopt_request_starved_ = reopt_request_starved_ || starved;
      reopt_request_drift_ = reopt_request_drift_ || (drift && !starved);
      reopt_request_leaf_ = leaf;
    }
  }
  if (opts_.reopt_mode == ReoptMode::kBackground) {
    if (reopt_notify_) reopt_notify_();
    return false;
  }

  // Blocking mode: rebuild inline. The exclusive tree hold fences the
  // swap against concurrent appliers; if another updater repartitioned
  // between our evaluation and this acquisition the trigger data is stale,
  // so give up and let the next check re-evaluate the new tree.
  WriterMutexLock tree(&tree_mu_);
  MutexLock lock(&update_mu_);
  if (dpt_.get() != evaluated) return false;

  if (starved) {
    if (opts_.partial_repartition_psi > 0) return PartialRepartition(leaf);
    return FullRepartition();
  }

  // Drift: only adopt a new partitioning if it beats the current one by a
  // factor beta (Sec. 5.4).
  PartitionResult cand =
      OptimizePartition(reservoir_->samples(), MakeSptOptions(),
                        table_.size());
  const double cand_var = cand.achieved_error * cand.achieved_error;
  const double cur_max = CurrentTreeMaxVariance();
  if (cand.ok && cand_var * opts_.beta < cur_max) {
    Timer blocking;
    AdoptSpec(std::move(cand.spec));
    counters_.last_blocking_seconds = blocking.ElapsedSeconds();
    ++counters_.repartitions;
    return true;
  }
  // The drifted level is the new normal; avoid re-firing every check.
  leaf_baseline_var_[static_cast<size_t>(leaf)] = cur;
  return false;
}

void JanusAqp::Reinitialize() {
  Timer timer;
  PartitionResult pr =
      OptimizePartition(reservoir_->samples(), MakeSptOptions(),
                        table_.size());
  Timer blocking;
  AdoptSpec(std::move(pr.spec));
  counters_.last_blocking_seconds = blocking.ElapsedSeconds();
  // Step 4 (Sec. 4.3): fresh archive sample becomes the pooled reservoir,
  // re-sized to the configured rate of the *current* table.
  const size_t target = std::max<size_t>(
      32, static_cast<size_t>(2.0 * opts_.sample_rate *
                              static_cast<double>(table_.size())));
  reservoir_ = std::make_unique<DynamicReservoir>(target, rng_.Next());
  std::vector<Tuple> fresh =
      table_.SampleUniform(&rng_, target, opts_.exec);
  reservoir_->Reset(fresh);
  dpt_->ResetSamples(fresh);
  counters_.last_reopt_seconds = timer.ElapsedSeconds();
  ++counters_.repartitions;
}

bool JanusAqp::ReoptRequested() const {
  MutexLock lock(&update_mu_);
  return reopt_request_;
}

bool JanusAqp::BeginBackgroundReopt() {
  MutexLock lock(&update_mu_);
  if (bg_active_ || !dpt_ || !reservoir_) return false;
  bg_ = BackgroundReopt{};
  // Consume the pending request; with none pending this is an explicit,
  // unconditional rebuild (the background Reinitialize analogue).
  bg_.starved = reopt_request_ ? reopt_request_starved_ : true;
  bg_.drift =
      reopt_request_ && reopt_request_drift_ && !reopt_request_starved_;
  bg_.drift_leaf = reopt_request_leaf_;
  reopt_request_ = false;
  reopt_request_starved_ = false;
  reopt_request_drift_ = false;
  reopt_request_leaf_ = -1;
  // T0 snapshot: pooled sample, |D|, an index-free archive copy, and the
  // catch-up seed — drawn *now*, so the RNG stream is positioned exactly as
  // if a blocking rebuild had adopted at this point (the equivalence
  // contract in the header depends on this).
  bg_.live_at_begin = dpt_.get();
  bg_.snapshot = reservoir_->samples();
  bg_.n0 = table_.size();
  // Only the id order is captured here; the payload copy — tens of
  // milliseconds at 1M rows, far too long for a hold that fences queries —
  // is deferred to AssembleReoptArchive in stage 2.
  bg_.t0_ids = table_.store().ids();
  bg_.archive = std::make_unique<ColumnStore>(table_.store().schema());
  bg_.catchup_seed = rng_.Next();
  bg_.total.Reset();
  bg_capture_ = true;
  bg_active_ = true;
  return true;
}

void JanusAqp::AssembleReoptArchive() {
  // Reconstruct the Begin-time archive: for every id in Begin-time order,
  // the payload is either still live (payloads are immutable while live) or
  // was parked in bg_.rescued by the delete that removed it. Chunked holds
  // keep each update-mutex acquisition bounded, so concurrent inserters —
  // who hold the update room while they wait on this mutex — never dam up
  // the room turn long enough for queries to notice.
  constexpr size_t kChunk = 16384;
  bg_.archive->Reserve(bg_.t0_ids.size());
  for (;;) {
    std::vector<Tuple> rows;
    rows.reserve(kChunk);
    bool done = false;
    {
      MutexLock lock(&update_mu_);
      const size_t end = std::min(bg_.copy_pos + kChunk, bg_.t0_ids.size());
      for (size_t i = bg_.copy_pos; i < end; ++i) {
        const uint64_t id = bg_.t0_ids[i];
        const auto it = bg_.rescued.find(id);
        if (it != bg_.rescued.end()) {
          rows.push_back(it->second);
          continue;
        }
        const std::optional<Tuple> live = table_.Find(id);
        if (!live.has_value()) {
          bg_.copy_failed = true;
          return;
        }
        rows.push_back(*live);
      }
      bg_.copy_pos = end;
      done = end == bg_.t0_ids.size();
    }
    // Only this thread touches bg_.archive between Begin and Finish; the
    // append runs outside the lock.
    bg_.archive->BulkAppend(rows);
    if (done) break;
  }
  {
    // Assembly complete: deletes stop parking payloads (copy_pos == size
    // turns the capture condition off); free the bookkeeping eagerly.
    MutexLock lock(&update_mu_);
    std::vector<uint64_t>().swap(bg_.t0_ids);
    bg_.copy_pos = 0;
    bg_.rescued.clear();
  }
}

void JanusAqp::BuildBackgroundReopt() {
  if (!bg_active_) return;
  AssembleReoptArchive();
  if (bg_.copy_failed) return;  // build_ok stays false; Finish discards.
  PartitionResult pr =
      OptimizePartition(bg_.snapshot, MakeSptOptions(), bg_.n0);
  bg_.build_ok = pr.ok;
  if (!pr.ok) return;
  bg_.cand_var = pr.achieved_error * pr.achieved_error;
  bg_.side = std::make_unique<Dpt>(MakeDptOptions(), std::move(pr.spec));
  bg_.side->InitializeFromReservoir(bg_.snapshot, bg_.n0);
  // Baselines of the snapshot-initialized tree — what a blocking rebuild at
  // the Begin point would compute. Doing it here keeps the per-leaf
  // MaxVariance sweep out of the exclusive adoption step.
  bg_.baselines = ComputeBaselines(*bg_.side);
  // Pre-drain: keep swapping the delta buffer out (under update_mu_) and
  // replaying it into the side tree without any lock, until the tail fits
  // the exclusive step's budget. Rounds are bounded — a hot update stream
  // can always outrun the drain, and the tail replay handles the rest.
  for (int round = 0; round < 8; ++round) {
    std::vector<ReoptDeltaOp> batch;
    {
      MutexLock lock(&update_mu_);
      if (bg_.delta.size() <= opts_.reopt_delta_tail) break;
      batch.swap(bg_.delta);
    }
    bg_.replayed += ReplayReoptDelta(batch, bg_.side.get());
  }
}

bool JanusAqp::FinishBackgroundReopt() {
  if (!bg_active_) return false;
  // Retired state is moved aside under the locks (O(1) pointer moves) and
  // freed only after they release: destroying the old tree's sample index
  // and the old catch-up's archive snapshot costs several milliseconds at
  // 1M rows, and none of it belongs in the exclusive blocking window.
  // Declared before the lock guards so destructor order runs locks-first.
  std::unique_ptr<Dpt> retired_dpt;
  std::unique_ptr<CatchupEngine> retired_catchup;
  BackgroundReopt retired_bg;
  Timer blocking;
  WriterMutexLock tree(&tree_mu_);
  MutexLock lock(&update_mu_);
  bg_active_ = false;
  bg_capture_ = false;
  // A synopsis replaced by any other path mid-pipeline (explicit
  // Reinitialize, snapshot Load) makes the side tree stale: its snapshot,
  // delta stream and catch-up seed describe a tree that no longer exists.
  bool adopt = bg_.build_ok && bg_.side != nullptr &&
               dpt_.get() == bg_.live_at_begin;
  if (adopt && bg_.drift && !bg_.starved) {
    // Drift requests stay conditional (Sec. 5.4): adopt only if the
    // candidate still beats the live tree — which kept absorbing updates
    // during the build — by a factor beta.
    const double cur_max = CurrentTreeMaxVariance();
    if (!(bg_.cand_var * opts_.beta < cur_max)) {
      adopt = false;
      const int leaf = bg_.drift_leaf;
      if (leaf >= 0 && leaf < static_cast<int>(leaf_baseline_var_.size())) {
        // As in the blocking path: the drifted level is the new normal.
        leaf_baseline_var_[static_cast<size_t>(leaf)] =
            dpt_->sample_index().MaxVariance(dpt_->LeafRect(leaf),
                                             opts_.focus);
      }
    }
  }
  if (!adopt) {
    ++counters_.background_discards;
    retired_bg = std::move(bg_);
    bg_ = BackgroundReopt{};
    return false;
  }
  // The exclusive tail: replay what the pre-drain left, swap the pointer,
  // restart catch-up from the Begin-time archive snapshot and seed.
  bg_.replayed += ReplayReoptDelta(bg_.delta, bg_.side.get());
  retired_dpt = std::move(dpt_);
  dpt_ = std::move(bg_.side);
  const size_t goal = static_cast<size_t>(
      opts_.catchup_rate * static_cast<double>(bg_.n0));
  retired_catchup = std::move(catchup_);
  catchup_ = std::make_unique<CatchupEngine>(
      dpt_.get(), std::move(*bg_.archive), goal, bg_.catchup_seed);
  leaf_baseline_var_ = std::move(bg_.baselines);
  // Requests recorded while the build ran were evaluated against the tree
  // just replaced; adoption (fresh baselines, fresh catch-up) supersedes
  // them.
  reopt_request_ = false;
  reopt_request_starved_ = false;
  reopt_request_drift_ = false;
  reopt_request_leaf_ = -1;
  counters_.delta_ops_replayed += bg_.replayed;
  counters_.last_blocking_seconds = blocking.ElapsedSeconds();
  counters_.last_reopt_seconds = bg_.total.ElapsedSeconds();
  ++counters_.repartitions;
  ++counters_.background_reopts;
  retired_bg = std::move(bg_);
  bg_ = BackgroundReopt{};
  return true;
}

uint64_t ReplayReoptDelta(const std::vector<ReoptDeltaOp>& ops, Dpt* side) {
  for (const ReoptDeltaOp& op : ops) {
    switch (op.kind) {
      case ReoptDeltaOp::Kind::kInsert:
        side->ApplyInsert(op.t);
        break;
      case ReoptDeltaOp::Kind::kDelete:
        side->ApplyDelete(op.t);
        break;
      case ReoptDeltaOp::Kind::kSampleAdd:
        side->SampleAdd(op.t);
        break;
      case ReoptDeltaOp::Kind::kSampleRemove:
        side->SampleRemove(op.t);
        break;
      case ReoptDeltaOp::Kind::kSampleReset:
        side->ResetSamples(op.reset);
        break;
    }
  }
  return static_cast<uint64_t>(ops.size());
}

void JanusAqp::SaveTo(persist::Writer* w) const {
  table_.SaveTo(w);
  rng_.SaveTo(w);

  w->U64(counters_.inserts);
  w->U64(counters_.deletes);
  w->U64(counters_.reservoir_resamples);
  w->U64(counters_.trigger_checks);
  w->U64(counters_.trigger_fires);
  w->U64(counters_.repartitions);
  w->U64(counters_.partial_repartitions);
  w->U64(counters_.partial_repartition_fallbacks);
  w->U64(counters_.background_reopts);
  w->U64(counters_.background_discards);
  w->U64(counters_.delta_ops_replayed);
  w->F64(counters_.last_reopt_seconds);
  w->F64(counters_.last_blocking_seconds);
  w->U64(updates_since_check_.load());
  w->F64Vec(leaf_baseline_var_);

  w->Bool(reservoir_ != nullptr);
  if (reservoir_) reservoir_->SaveTo(w);
  w->Bool(dpt_ != nullptr);
  if (dpt_) dpt_->SaveTo(w);
  w->Bool(catchup_ != nullptr);
  if (catchup_) catchup_->SaveTo(w);
}

void JanusAqp::LoadFrom(persist::Reader* r) {
  table_.LoadFrom(r);
  rng_.LoadFrom(r);

  counters_.inserts = r->U64();
  counters_.deletes = r->U64();
  counters_.reservoir_resamples = r->U64();
  counters_.trigger_checks = r->U64();
  counters_.trigger_fires = r->U64();
  counters_.repartitions = r->U64();
  counters_.partial_repartitions = r->U64();
  counters_.partial_repartition_fallbacks = r->U64();
  counters_.background_reopts = r->U64();
  counters_.background_discards = r->U64();
  counters_.delta_ops_replayed = r->U64();
  counters_.last_reopt_seconds = r->F64();
  counters_.last_blocking_seconds = r->F64();
  updates_since_check_.store(r->U64());
  leaf_baseline_var_ = r->F64Vec();

  if (r->Bool()) {
    reservoir_ = std::make_unique<DynamicReservoir>(2, 0);
    reservoir_->LoadFrom(r);
  } else {
    reservoir_.reset();
  }
  if (r->Bool()) {
    dpt_ = std::make_unique<Dpt>(MakeDptOptions(), PartitionTreeSpec{});
    dpt_->LoadFrom(r);
  } else {
    dpt_.reset();
  }
  if (r->Bool()) {
    if (!dpt_) {
      throw persist::PersistError(
          "snapshot corrupt: catch-up state without a synopsis");
    }
    catchup_ = std::make_unique<CatchupEngine>(dpt_.get(),
                                               ColumnStore(opts_.schema),
                                               /*goal_samples=*/0, /*seed=*/0);
    catchup_->LoadFrom(r);
  } else {
    catchup_.reset();
  }
}

void JanusAqp::BeginReinitialize() {
  if (opt_running_) return;
  opt_running_ = true;
  opt_done_.store(false);
  // The optimizer works on a snapshot of the pooled sample (Sec. 4.3 step 1
  // runs in parallel with maintenance of the old synopsis).
  std::vector<Tuple> snapshot;
  {
    MutexLock lock(&update_mu_);
    snapshot = reservoir_->samples();
  }
  const size_t n = table_.size();
  opt_thread_ = std::thread([this, snapshot = std::move(snapshot), n] {
    opt_result_ = OptimizePartition(snapshot, MakeSptOptions(), n);
    opt_done_.store(true);
  });
}

bool JanusAqp::ReinitializeReady() const { return opt_done_.load(); }

double JanusAqp::FinishReinitialize() {
  if (!opt_running_) return 0;
  opt_thread_.join();
  opt_running_ = false;
  Timer blocking;
  {
    WriterMutexLock tree(&tree_mu_);
    MutexLock lock(&update_mu_);
    AdoptSpec(std::move(opt_result_.spec));
  }
  const double secs = blocking.ElapsedSeconds();
  counters_.last_blocking_seconds = secs;
  // Step 4: fresh reservoir off the critical path, re-sized to the current
  // table.
  {
    MutexLock lock(&update_mu_);
    const size_t target = std::max<size_t>(
        32, static_cast<size_t>(2.0 * opts_.sample_rate *
                                static_cast<double>(table_.size())));
    reservoir_ = std::make_unique<DynamicReservoir>(target, rng_.Next());
    std::vector<Tuple> fresh =
      table_.SampleUniform(&rng_, target, opts_.exec);
    reservoir_->Reset(fresh);
    dpt_->ResetSamples(fresh);
  }
  ++counters_.repartitions;
  return secs;
}

void JanusAqp::CheckInvariants() const {
  table_.store().CheckInvariants();
  if (reservoir_) {
    reservoir_->CheckInvariants();
    for (const Tuple& t : reservoir_->samples()) {
      invariants::Require(table_.Find(t.id).has_value(), "JanusAqp",
                          "reservoir holds id " + std::to_string(t.id) +
                              " that is not live in the archive");
    }
  }
  if (dpt_) {
    dpt_->CheckInvariants();
    // The DPT's sample mirror tracks the reservoir one change at a time
    // (added/evicted deltas); id-set equality proves no delta was dropped.
    if (reservoir_) {
      const auto& mirror = dpt_->sample_tuples();
      invariants::Require(
          mirror.size() == reservoir_->size(), "JanusAqp",
          "DPT sample mirror holds " + std::to_string(mirror.size()) +
              " tuples but the reservoir holds " +
              std::to_string(reservoir_->size()));
      for (const Tuple& t : reservoir_->samples()) {
        invariants::Require(mirror.contains(t.id), "JanusAqp",
                            "reservoir sample id " + std::to_string(t.id) +
                                " missing from the DPT sample mirror");
      }
    }
  }
}

}  // namespace janus
