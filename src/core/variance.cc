#include "core/variance.h"

#include <algorithm>

namespace janus {

namespace {

/// m * Σa² - (Σa)², clamped at zero against floating point cancellation.
double ScaledSpread(double m, const TreeAgg& q) {
  const double v = m * q.sumsq - q.sum * q.sum;
  return v > 0 ? v : 0;
}

}  // namespace

double SumQueryVariance(double Ni, double mi, const TreeAgg& q) {
  if (mi <= 0) return 0;
  return Ni * Ni / (mi * mi * mi) * ScaledSpread(mi, q);
}

double CountQueryVariance(double Ni, double mi, double matching) {
  TreeAgg q;
  q.count = matching;
  q.sum = matching;
  q.sumsq = matching;
  return SumQueryVariance(Ni, mi, q);
}

double AvgQueryVariance(double wi, double mi, const TreeAgg& q) {
  if (mi <= 0 || q.count <= 0) return 0;
  return wi * wi / (mi * q.count * q.count) * ScaledSpread(mi, q);
}

double SumCatchupVariance(double Ni, double hi, const TreeAgg& h) {
  // Identical algebra with the catch-up sample in place of the stratum
  // sample: N_i^2/h_i^3 * (h_i Σa² - (Σa)²).
  return SumQueryVariance(Ni, hi, h);
}

double AvgCatchupVariance(double wi, double hi, const TreeAgg& h) {
  if (hi <= 0) return 0;
  return wi * wi / (hi * hi * hi) * ScaledSpread(hi, h);
}

double HtSumCatchupVariance(double N, double h, const TreeAgg& node) {
  if (h <= 0) return 0;
  const double spread = node.sumsq - node.sum * node.sum / h;
  return spread > 0 ? N * N / (h * h) * spread : 0;
}

double HtCountCatchupVariance(double N, double h, double hi) {
  if (h <= 0) return 0;
  const double spread = hi - hi * hi / h;
  return spread > 0 ? N * N / (h * h) * spread : 0;
}

double SumLeafError(double sampling_rate, double mi, const TreeAgg& q) {
  if (mi <= 0) return 0;
  const double Ni = mi / std::max(1e-12, sampling_rate);
  return SumQueryVariance(Ni, mi, q);
}

double AvgLeafError(double mi, const TreeAgg& q) {
  if (mi <= 0 || q.count <= 0) return 0;
  return ScaledSpread(mi, q) / (mi * q.count * q.count);
}

}  // namespace janus
