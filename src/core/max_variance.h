#ifndef JANUS_CORE_MAX_VARIANCE_H_
#define JANUS_CORE_MAX_VARIANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/schema.h"
#include "index/dynamic_kd_tree.h"
#include "index/order_stat_tree.h"

namespace janus {

/// The dynamic index M of Sec. 5.3.1 / Appendix D.1: maintains the pooled
/// sample S under insertions/deletions and, given a query rectangle R,
/// returns an approximation M(R) of the variance V(R) of the maximum-
/// variance query inside R, with M(R) >= V(R) / gamma:
///
///  * COUNT: the max-variance query holds |R∩S|/2 samples; M splits R at the
///    sample median and returns that half's variance (exact up to the split).
///  * SUM: split R into equal-count halves; return the SUM-variance of the
///    half with the larger Σa² (1/4-approximation).
///  * AVG: find a sub-rectangle holding ~delta·|R∩S| samples that (nearly)
///    maximizes Σa² — 1-D: the best contiguous sample window; d>1: the best
///    maximal canonical k-d cell — and return its AVG-variance
///    (O(1/log^{d+1} m)-approximation, Lemma D.1).
///
/// All returned values are *variances*; callers compare sqrt(M(R)) against
/// the error ladder.
class MaxVarianceIndex {
 public:
  struct Options {
    int dims = 1;
    AggFunc focus = AggFunc::kSum;
    /// Sampling rate alpha used to scale N_i ~ m_i/alpha in SUM/COUNT
    /// errors; a common constant across buckets.
    double sampling_rate = 0.01;
    /// Fraction of the *total* sample count a valid AVG query must contain
    /// (the 2*delta*m assumption of Appendix D.1). Buckets smaller than
    /// delta*m admit no valid AVG query and report zero error, which keeps
    /// the per-bucket error monotone in bucket size (Appendix D.2).
    double delta = 0.01;
  };

  explicit MaxVarianceIndex(const Options& opts);

  int dims() const { return opts_.dims; }
  AggFunc focus() const { return opts_.focus; }
  size_t size() const { return kd_.size(); }

  /// Bulk-load the sample set.
  void Build(const std::vector<KdPoint>& samples);

  void Insert(const KdPoint& p);
  bool Delete(const KdPoint& p);

  /// M(R): approximate max variance of a `focus` query inside R.
  double MaxVariance(const Rectangle& r) const;

  /// Same for an explicit aggregate function.
  double MaxVariance(const Rectangle& r, AggFunc f) const;

  /// 1-D only: M over the rank range [lo, hi) of the sorted samples — the
  /// primitive the binary-search partitioner iterates on.
  double MaxVarianceRankRange(size_t lo, size_t hi) const;
  double MaxVarianceRankRange(size_t lo, size_t hi, AggFunc f) const;

  /// Underlying indexes (read-only).
  const DynamicKdTree& kd() const { return kd_; }
  const OrderStatTree& tree1d() const { return tree1d_; }

  /// Snapshot persistence: both underlying indexes, structure-exact. The
  /// options are not serialized — the owner reconstructs the index with the
  /// same configuration before calling LoadFrom.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit: both underlying indexes plus, in 1-D, agreement of
  /// their sizes (every sample is mirrored into the rank tree). Throws
  /// InvariantViolation on inconsistency.
  void CheckInvariants() const;

 private:
  double RankRangeVariance(size_t lo, size_t hi, AggFunc f) const;
  double RectVariance(const Rectangle& r, AggFunc f) const;

  Options opts_;
  DynamicKdTree kd_;
  OrderStatTree tree1d_;  // populated only when dims == 1
};

/// Converts a tuple to an index point under a synopsis template.
KdPoint MakeKdPoint(const Tuple& t, const std::vector<int>& predicate_columns,
                    int agg_column);

}  // namespace janus

#endif  // JANUS_CORE_MAX_VARIANCE_H_
