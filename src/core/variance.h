#ifndef JANUS_CORE_VARIANCE_H_
#define JANUS_CORE_VARIANCE_H_

#include <vector>

#include "data/schema.h"
#include "index/order_stat_tree.h"

namespace janus {

/// The per-query template of a synopsis (Sec. 3.1): which attribute is
/// aggregated and which attributes carry the rectangular predicate.
struct SynopsisSpec {
  int agg_column = 0;
  std::vector<int> predicate_columns;

  int dims() const { return static_cast<int>(predicate_columns.size()); }
};

/// Variance formulas of Sec. 5.1 / Appendix C. `q` carries the moments
/// (count, Σa, Σa²) of the sampled tuples matching the query inside one
/// partition; `mi` is the stratum's sample count and `Ni` the (estimated)
/// stratum population.
///
/// These return the *variance contribution* w_i^2 * var(phi_q(S_i)) / m_i of
/// one partition; the confidence interval is z * sqrt(sum of contributions).

/// SUM (and COUNT with a == 1): N_i^2/m_i^3 * (m_i * Σa² - (Σa)²).
double SumQueryVariance(double Ni, double mi, const TreeAgg& q);

/// COUNT specialization: all matching values count as 1.
double CountQueryVariance(double Ni, double mi, double matching);

/// AVG inside one partition with weight w_i = N̂_i / N̂_q:
///   w_i^2 / (m_i * |q ∩ S_i|²) * (m_i * Σa² - (Σa)²).
double AvgQueryVariance(double wi, double mi, const TreeAgg& q);

/// Catch-up variance contribution of a fully covered node (Sec. 4.4.1):
/// same algebra with the catch-up moments (h_i, Σa, Σa²) and, for
/// SUM/COUNT, the scale factor N̂_i/h_i folded in (Appendix C).
double SumCatchupVariance(double Ni, double hi, const TreeAgg& h);
double AvgCatchupVariance(double wi, double hi, const TreeAgg& h);

/// Horvitz-Thompson variance of the covered-node SUM/COUNT estimators the
/// DPT actually uses: est_i = (N/h) * Σ_{t in H_i} t.a with N the snapshot
/// population and h the total catch-up draws. Unlike the Appendix-C form,
/// this includes the uncertainty in the node population N̂_i itself (the
/// paper's formula assumes N_i is known), which is what calibrates the
/// confidence intervals in catch-up mode:
///   var = N²/h² * (Σ_{H_i} a² - (Σ_{H_i} a)²/h).
double HtSumCatchupVariance(double N, double h, const TreeAgg& node);
/// COUNT specialization (a == 1): N²/h² * (h_i - h_i²/h).
double HtCountCatchupVariance(double N, double h, double hi);

/// Max-variance "leaf error" forms used by the partitioning optimizer
/// (Sec. 5.1). For partitioning, N_i is unknown and estimated as m_i /
/// sampling_rate; the rate is a constant scale common to all buckets so the
/// minimax comparisons are unaffected.
double SumLeafError(double sampling_rate, double mi, const TreeAgg& q);
double AvgLeafError(double mi, const TreeAgg& q);

}  // namespace janus

#endif  // JANUS_CORE_VARIANCE_H_
