#ifndef JANUS_CORE_PARTITIONER_KD_H_
#define JANUS_CORE_PARTITIONER_KD_H_

#include "core/max_variance.h"
#include "core/partition.h"
#include "data/exec_context.h"

namespace janus {

/// Options for the k-d partitioner (Sec. 5.3.2 / Appendix D.3).
struct PartitionerKdOptions {
  int num_leaves = 128;
  AggFunc focus = AggFunc::kSum;
  /// Parallel context for the phase-2 subtree tasks, the per-split child
  /// evaluations, and the final leaf error sweep. Every evaluation is an
  /// independent, deterministic read-only tree query and the frontier
  /// decomposition is a constant of the algorithm, so the build result is
  /// bit-identical to a serial build regardless of scheduling or thread
  /// count.
  scan::ExecContext exec;
};

/// Greedy max-variance k-d construction: keep a max-heap of leaves keyed by
/// M(leaf); repeatedly pop the worst leaf and split it at the sample median
/// of the next dimension (round-robin per branch depth), until k leaves
/// exist. Near-optimal w.r.t. the optimal tree under the same splitting
/// criterion (Appendix D.3): 2*sqrt(k)-approx for SUM/COUNT,
/// 2*log^{(d+1)/2} m for AVG.
///
/// Execution is a two-phase decomposition: a short serial greedy grows a
/// fixed-size frontier (so builds at or below the frontier size match the
/// historical single-threaded algorithm exactly), then the remaining leaf
/// budget is split across the frontier proportional to sample counts
/// (largest-remainder rounding) and each frontier subtree grows as an
/// independent task on the scan pool, spliced back in deterministic
/// frontier order.
///
/// Works for any d >= 1 (for d == 1 it yields a median k-d ladder; the BS
/// partitioner is preferred there).
PartitionResult BuildPartitionKd(const MaxVarianceIndex& index,
                                 const PartitionerKdOptions& opts);

}  // namespace janus

#endif  // JANUS_CORE_PARTITIONER_KD_H_
