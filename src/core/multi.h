#ifndef JANUS_CORE_MULTI_H_
#define JANUS_CORE_MULTI_H_

#include <memory>
#include <vector>

#include "core/catchup.h"
#include "core/dpt.h"
#include "core/janus.h"
#include "core/spt.h"
#include "data/table.h"
#include "sampling/reservoir.h"
#include "util/mutex.h"

namespace janus {

/// Multi-template synopsis manager — the "first method" of Sec. 5.5: one
/// global pooled sample S (a single reservoir over the table) and one
/// partition tree per query template, for total space O(m + L*k). Every
/// tree answers its template with the full theoretical error guarantees.
///
/// Templates can be registered upfront or discovered on demand: a query
/// whose predicate attributes match no registered template triggers the
/// construction of a new tree from the pooled sample (in ~O(k polylog m))
/// followed by a catch-up phase for that tree alone, exactly as Sec. 5.5
/// describes.
class MultiTemplateJanus {
 public:
  /// `base` carries the shared knobs (leaf count, rates, seeds); its `spec`
  /// is ignored — templates are added explicitly or on demand.
  explicit MultiTemplateJanus(const JanusOptions& base);

  /// Register a template; returns its index. No-op (returning the existing
  /// index) when an identical template is already registered.
  int AddTemplate(const SynopsisSpec& spec);

  void LoadInitial(const std::vector<Tuple>& rows);

  /// Build every registered template's tree from a fresh archive sample.
  void Initialize();

  /// Maintenance: one reservoir decision, then every tree absorbs the
  /// update (Sec. 5.5: "all update operations ... can be executed in
  /// parallel for different trees").
  void Insert(const Tuple& t);
  bool Delete(uint64_t id);

  /// Answer a query. Routes to the template with matching predicate
  /// attributes; if none exists, a new template is built on demand from the
  /// pooled sample and its catch-up starts immediately.
  QueryResult Query(const AggQuery& q);

  /// Drive every template's catch-up to its goal.
  void RunCatchupToGoal();

  /// Rebuild every template's tree and catch-up engine from the current
  /// pooled reservoir and archive — the blocking re-optimization analogue
  /// of JanusAqp::Reinitialize. No-op before Initialize().
  void Rebuild();

  // --- Background rebuild (three-stage pipeline) ----------------------------
  //
  // The multi-template version of JanusAqp's pipeline (see core/janus.h for
  // the staging and adoption contract): Begin() snapshots the pooled sample,
  // the archive, the registered specs and one pre-drawn catch-up seed per
  // template (entry order — the same draws a blocking Rebuild() would make),
  // Build() optimizes and populates one side tree per snapshotted template
  // with no exclusion, Finish() replays the delta tail into every side tree
  // and swaps them in. Updates arriving mid-pipeline are double-applied to
  // one shared delta buffer (its own mutex — the only state the build thread
  // and the update path share). Templates discovered *during* the build are
  // not swapped: their live trees were built from the current reservoir and
  // absorbed every later update already.
  //
  // Begin and Finish require full exclusion (the engine's exclusive room);
  // Build runs concurrently with queries and updates.

  /// Stage 1. Returns false when a pipeline is already active or the
  /// instance is uninitialized.
  bool BeginBackgroundRebuild();
  /// Stage 2. No exclusion; touches only the Begin() snapshot and the
  /// delta buffer.
  void BuildBackgroundRebuild();
  /// Stage 3. Returns true when the side trees were adopted. `replayed`
  /// (optional) receives the total delta applications across side trees.
  bool FinishBackgroundRebuild(uint64_t* replayed = nullptr);
  /// True between a successful Begin and the matching Finish.
  bool BackgroundRebuildActive() const { return bg_active_; }

  size_t num_templates() const { return entries_.size(); }
  const Dpt& dpt(int i) const { return *entries_[static_cast<size_t>(i)].dpt; }
  const DynamicTable& table() const { return table_; }
  const DynamicReservoir& reservoir() const { return *reservoir_; }
  /// Index of the template matching the query's predicate columns; -1 when
  /// absent.
  int TemplateFor(const std::vector<int>& predicate_columns) const;

  /// Snapshot persistence: archive, global reservoir, every template's spec,
  /// tree and catch-up engine, and the manager RNG. Templates registered on
  /// the instance before LoadFrom are replaced by the snapshot's set.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  struct Entry {
    SynopsisSpec spec;
    std::unique_ptr<Dpt> dpt;
    std::unique_ptr<CatchupEngine> catchup;
  };

  /// One pipeline run. Everything except `delta` is written at Begin under
  /// full exclusion and then owned by the single build thread; `delta` is
  /// shared with the update path under delta_mu_.
  struct BackgroundRebuild {
    std::vector<Tuple> snapshot;  ///< pooled reservoir at Begin
    size_t n0 = 0;                ///< |D| at Begin
    std::unique_ptr<ColumnStore> archive;  ///< index-free archive copy
    std::vector<SynopsisSpec> specs;       ///< specs of entries_[0..n) at Begin
    std::vector<uint64_t> seeds;           ///< per-template catch-up seeds
    std::vector<std::unique_ptr<Dpt>> sides;
    std::vector<ReoptDeltaOp> delta;
    uint64_t replayed = 0;
  };

  SptOptions MakeSptOptions(const SynopsisSpec& spec) const;
  DptOptions MakeDptOptions(const SynopsisSpec& spec) const;
  void BuildEntry(Entry* entry);
  /// Append one captured op to the shared delta when a pipeline is active.
  void Capture(ReoptDeltaOp op);

  JanusOptions base_;
  DynamicTable table_;
  std::unique_ptr<DynamicReservoir> reservoir_;
  std::vector<Entry> entries_;
  Rng rng_;
  bool initialized_ = false;

  /// Guards bg_.delta and bg_capture_ — the only state the background build
  /// thread shares with the (externally serialized) update path.
  mutable Mutex delta_mu_;
  bool bg_capture_ = false;
  bool bg_active_ = false;
  BackgroundRebuild bg_;
};

}  // namespace janus

#endif  // JANUS_CORE_MULTI_H_
