#ifndef JANUS_CORE_MULTI_H_
#define JANUS_CORE_MULTI_H_

#include <memory>
#include <vector>

#include "core/catchup.h"
#include "core/dpt.h"
#include "core/janus.h"
#include "core/spt.h"
#include "data/table.h"
#include "sampling/reservoir.h"

namespace janus {

/// Multi-template synopsis manager — the "first method" of Sec. 5.5: one
/// global pooled sample S (a single reservoir over the table) and one
/// partition tree per query template, for total space O(m + L*k). Every
/// tree answers its template with the full theoretical error guarantees.
///
/// Templates can be registered upfront or discovered on demand: a query
/// whose predicate attributes match no registered template triggers the
/// construction of a new tree from the pooled sample (in ~O(k polylog m))
/// followed by a catch-up phase for that tree alone, exactly as Sec. 5.5
/// describes.
class MultiTemplateJanus {
 public:
  /// `base` carries the shared knobs (leaf count, rates, seeds); its `spec`
  /// is ignored — templates are added explicitly or on demand.
  explicit MultiTemplateJanus(const JanusOptions& base);

  /// Register a template; returns its index. No-op (returning the existing
  /// index) when an identical template is already registered.
  int AddTemplate(const SynopsisSpec& spec);

  void LoadInitial(const std::vector<Tuple>& rows);

  /// Build every registered template's tree from a fresh archive sample.
  void Initialize();

  /// Maintenance: one reservoir decision, then every tree absorbs the
  /// update (Sec. 5.5: "all update operations ... can be executed in
  /// parallel for different trees").
  void Insert(const Tuple& t);
  bool Delete(uint64_t id);

  /// Answer a query. Routes to the template with matching predicate
  /// attributes; if none exists, a new template is built on demand from the
  /// pooled sample and its catch-up starts immediately.
  QueryResult Query(const AggQuery& q);

  /// Drive every template's catch-up to its goal.
  void RunCatchupToGoal();

  size_t num_templates() const { return entries_.size(); }
  const Dpt& dpt(int i) const { return *entries_[static_cast<size_t>(i)].dpt; }
  const DynamicTable& table() const { return table_; }
  const DynamicReservoir& reservoir() const { return *reservoir_; }
  /// Index of the template matching the query's predicate columns; -1 when
  /// absent.
  int TemplateFor(const std::vector<int>& predicate_columns) const;

  /// Snapshot persistence: archive, global reservoir, every template's spec,
  /// tree and catch-up engine, and the manager RNG. Templates registered on
  /// the instance before LoadFrom are replaced by the snapshot's set.
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  struct Entry {
    SynopsisSpec spec;
    std::unique_ptr<Dpt> dpt;
    std::unique_ptr<CatchupEngine> catchup;
  };

  SptOptions MakeSptOptions(const SynopsisSpec& spec) const;
  void BuildEntry(Entry* entry);

  JanusOptions base_;
  DynamicTable table_;
  std::unique_ptr<DynamicReservoir> reservoir_;
  std::vector<Entry> entries_;
  Rng rng_;
  bool initialized_ = false;
};

}  // namespace janus

#endif  // JANUS_CORE_MULTI_H_
