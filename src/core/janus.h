#ifndef JANUS_CORE_JANUS_H_
#define JANUS_CORE_JANUS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/catchup.h"
#include "core/dpt.h"
#include "core/spt.h"
#include "data/table.h"
#include "sampling/reservoir.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// How re-partitioning triggers execute (Sec. 5.4 / ROADMAP "incremental
/// re-optimization that overlaps serving").
enum class ReoptMode {
  /// Rebuild inline on the update path (the paper's behavior; default).
  /// Every fire pays the whole optimize + adopt cost under exclusion.
  kBlocking,
  /// A fire only records a request; an owner thread drives the three-stage
  /// Begin/Build/FinishBackgroundReopt pipeline so the exclusive section
  /// shrinks to a pointer swap plus a bounded delta-tail replay.
  kBackground,
};

/// Configuration of a JanusAQP instance (Sec. 3.1 knobs plus the
/// re-optimization parameters of Sec. 5.4).
struct JanusOptions {
  SynopsisSpec spec;
  /// Archive schema; the table allocates one column per schema entry. An
  /// empty schema falls back to kMaxColumns-wide storage.
  Schema schema;
  int num_leaves = 128;
  /// Sampling rate alpha (1% in most experiments).
  double sample_rate = 0.01;
  /// Catch-up goal as a fraction of |D| (10% in most experiments).
  double catchup_rate = 0.10;
  AggFunc focus = AggFunc::kSum;
  PartitionAlgorithm algorithm = PartitionAlgorithm::kBinarySearch;
  double confidence = 0.95;
  double rho = 2.0;
  /// Maximum allowable variance drift before a re-partition is considered
  /// (Sec. 5.4; the paper's default).
  double beta = 10.0;
  double delta = 0.01;
  int minmax_k = 32;
  std::vector<int> extra_tracked_columns;
  /// Automatic re-partitioning triggers (Sec. 5.4). When disabled the
  /// instance behaves like the "DPT-only" baseline.
  bool enable_triggers = true;
  /// Updates between drift checks on the touched leaf (checking every single
  /// update is supported with interval 1).
  uint64_t trigger_check_interval = 64;
  /// A leaf is starved when |S_i| < starvation_factor * log2(m) (Sec. 5.4).
  double starvation_factor = 0.25;
  /// Partial re-partitioning: rebuild only the subtree `psi` levels above a
  /// problematic leaf (Appendix E). 0 disables (always full).
  int partial_repartition_psi = 0;
  /// Morsel-parallel execution of the archival scans (catch-up batches,
  /// exact-mode initialization). Default: serial.
  scan::ExecContext exec;
  uint64_t seed = 42;
  /// How trigger re-partitions execute (see ReoptMode). Blocking keeps the
  /// historical inline behavior; background needs an owner thread driving
  /// the pipeline (api/engines.cc provides one per engine).
  ReoptMode reopt_mode = ReoptMode::kBlocking;
  /// Background pipeline: the off-to-the-side build keeps pre-draining the
  /// delta buffer until at most this many ops remain, bounding the replay
  /// work left for the exclusive adoption step.
  size_t reopt_delta_tail = 1024;
};

/// One captured update for background re-optimization: while a side tree
/// builds, every mutation of the live synopsis is double-applied to a buffer
/// of these (in live order) and replayed into the side tree before adoption.
/// Shared by JanusAqp and MultiTemplateJanus.
struct ReoptDeltaOp {
  enum class Kind : uint8_t {
    kInsert,        ///< Dpt::ApplyInsert(t)
    kDelete,        ///< Dpt::ApplyDelete(t)
    kSampleAdd,     ///< Dpt::SampleAdd(t) — reservoir admitted t
    kSampleRemove,  ///< Dpt::SampleRemove(t) — reservoir evicted t
    kSampleReset,   ///< Dpt::ResetSamples(reset) — reservoir re-drawn
  };
  Kind kind;
  Tuple t;
  std::vector<Tuple> reset;
};

/// Apply captured ops to `side` in capture order; returns how many.
uint64_t ReplayReoptDelta(const std::vector<ReoptDeltaOp>& ops, Dpt* side);

/// Operational counters for the experiment harnesses.
struct JanusCounters {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t reservoir_resamples = 0;
  uint64_t trigger_checks = 0;
  uint64_t trigger_fires = 0;
  uint64_t repartitions = 0;
  uint64_t partial_repartitions = 0;
  /// Partial re-partitions that silently degraded to a full rebuild
  /// (region too thin, single-leaf subtree, or sub-optimizer failure).
  uint64_t partial_repartition_fallbacks = 0;
  uint64_t background_reopts = 0;    ///< adoptions via the background pipeline
  uint64_t background_discards = 0;  ///< side builds rejected at adoption
  uint64_t delta_ops_replayed = 0;   ///< double-applied ops replayed into side trees
  double last_reopt_seconds = 0;   ///< last re-optimization, wall clock
  double last_blocking_seconds = 0;  ///< blocking populate step (Sec. 4.3)
};

/// The JanusAQP system (Sec. 3): owns the evolving table (archival storage),
/// the pooled reservoir, one DPT synopsis, the catch-up engine and the
/// re-partitioning triggers.
///
/// Thread-safety: Insert()/Delete() may be called from multiple threads
/// concurrently (per-leaf statistics locks plus a reservoir/table mutex);
/// blocking-mode trigger repartitions synchronize with concurrent updaters
/// through tree_mu_ (the synopsis pointer is only replaced under its
/// exclusive hold, and every applier pins it shared). Query() and the
/// explicit re-optimization entry points must be externally quiesced,
/// exactly as the experiment drivers and the api/ engine rooms do;
/// FinishBackgroundReopt() additionally requires full exclusion (see the
/// pipeline contract below).
class JanusAqp {
 public:
  explicit JanusAqp(const JanusOptions& opts);
  ~JanusAqp();

  /// Bulk-load initial (historical) data without per-update overhead.
  void LoadInitial(const std::vector<Tuple>& rows);

  /// Build the first synopsis from the current archive and start catch-up.
  void Initialize();

  /// Process one insertion (Sec. 4.1/4.2 + trigger checks).
  void Insert(const Tuple& t);

  /// Process one deletion by tuple id. Returns false if not live.
  bool Delete(uint64_t id);

  /// Answer a query from the synopsis only (never touches the archive).
  QueryResult Query(const AggQuery& q) const;

  /// Run the catch-up engine to its goal (deterministic, inline).
  void RunCatchupToGoal();
  /// Absorb up to `batch` catch-up samples; returns how many.
  size_t StepCatchup(size_t batch);

  /// Full re-optimization (Sec. 4.3): optimize partitioning on the pooled
  /// reservoir, blocking-populate the new synopsis, re-sample the reservoir
  /// from the archive and restart catch-up. Sequential variant.
  void Reinitialize();

  /// Concurrent variant: runs the optimization phase on a worker thread
  /// while the old synopsis keeps absorbing updates; FinishReinitialize()
  /// performs only the short blocking step (Sec. 4.3, Fig. 4).
  void BeginReinitialize();
  bool ReinitializeReady() const;
  /// Blocks until the optimizer is done, then swaps synopses. Returns the
  /// duration of the blocking step.
  double FinishReinitialize();

  /// Trigger evaluation for the leaf of `t` (Sec. 5.4); called internally by
  /// Insert/Delete, public for tests. Returns true if a re-partition ran.
  /// In background mode a fire never runs inline: it records a request
  /// (ReoptRequested()), calls the notify hook, and returns false.
  bool CheckTriggers(const Tuple& t);

  // --- Background re-optimization (three-stage pipeline) -------------------
  //
  // With reopt_mode = kBackground an owner thread — the engine's maintenance
  // thread in api/engines.cc, or a test driving the stages synchronously —
  // consumes trigger requests by running:
  //   1. BeginBackgroundReopt():  update-side exclusion only. Snapshots the
  //      pooled reservoir and the archive's id order (NOT the row payloads —
  //      an O(ids) copy, so queries fenced behind the update room wait
  //      microseconds-to-low-ms, never the tens of ms a full archive copy
  //      costs at 1M rows), pre-draws the catch-up seed (so the RNG stream
  //      matches a blocking rebuild at the snapshot point exactly), and
  //      starts double-applying updates to a delta buffer.
  //   2. BuildBackgroundReopt():  no exclusion. First assembles the archive
  //      snapshot in short update-mutex chunks (deletes that race the
  //      assembly park the dying row's snapshot-time payload in a rescue
  //      map, so the result is bit-identical — same rows, same order — to
  //      the one-shot copy stage 1 used to take), then optimizes the
  //      partition, builds and populates the side DPT, and pre-drains the
  //      delta buffer down to reopt_delta_tail ops while updates keep
  //      flowing.
  //   3. FinishBackgroundReopt(): full exclusion (the engine's exclusive
  //      room). Replays the delta tail, applies the drift-adoption
  //      condition, swaps the synopsis pointer and restarts catch-up.
  //
  // Adoption contract: the adopted tree is bit-identical to the tree a
  // *blocking* re-optimization at the Begin() snapshot would have produced,
  // followed by the same update stream — the delta replay preserves live op
  // order, and the catch-up engine gets the same seed, archive snapshot and
  // goal as the blocking path would have drawn at that moment.

  /// True when a background-mode trigger fire is waiting for a pipeline run.
  bool ReoptRequested() const;
  /// Stage 1. Returns false when a pipeline is already active or the
  /// instance is uninitialized. Called with update-side exclusion (an
  /// update-room hold, or a quiesced instance); a call with no pending
  /// request starts an unconditional rebuild (the Reinitialize analogue).
  bool BeginBackgroundReopt();
  /// Stage 2. Runs concurrently with queries and updates; no exclusion.
  void BuildBackgroundReopt();
  /// Stage 3. Requires full exclusion (exclusive room / quiesced). Returns
  /// true when the side tree was adopted, false when it was discarded
  /// (failed build, or a drift candidate that no longer beats the live
  /// tree by beta).
  bool FinishBackgroundReopt();
  /// True between a successful Begin and the matching Finish.
  bool BackgroundReoptActive() const { return bg_active_; }
  /// Hook invoked (outside all locks) whenever a background-mode trigger
  /// records a request; the engine points this at its maintenance-thread
  /// wakeup. Set before concurrent use.
  void SetReoptNotify(std::function<void()> fn) {
    reopt_notify_ = std::move(fn);
  }

  /// Snapshot persistence: archive, pooled reservoir, synopsis (structure-
  /// exact), catch-up engine, system RNG, counters and trigger baselines —
  /// the complete state needed so a restored instance answers queries
  /// bit-identically and continues the update stream exactly like the
  /// uninterrupted one. Options come from construction, not the snapshot.
  /// Not thread-safe: quiesce updates first (the save path of a running
  /// service goes through the sharded engine's per-shard quiesce points).
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit of the whole system: the archive store, the pooled
  /// reservoir (every sampled id must be live in the table), the synopsis,
  /// and the DPT sample mirror (same ids as the reservoir). Not thread-safe;
  /// quiesce updates first. Throws InvariantViolation on inconsistency.
  void CheckInvariants() const;

  /// True once Initialize() has run (or a snapshot of an initialized
  /// instance was loaded).
  bool initialized() const { return dpt_ != nullptr; }

  const Dpt& dpt() const { return *dpt_; }
  const DynamicTable& table() const { return table_; }
  const DynamicReservoir& reservoir() const { return *reservoir_; }
  const JanusCounters& counters() const { return counters_; }
  const JanusOptions& options() const { return opts_; }
  size_t catchup_processed() const {
    return catchup_ ? catchup_->processed() : 0;
  }
  double catchup_processing_seconds() const {
    return catchup_ ? catchup_->processing_seconds() : 0;
  }

 private:
  /// State of one pipeline run. Owned by the orchestrator thread driving
  /// Begin/Build/Finish; only `delta` is shared (appended by updaters under
  /// update_mu_, drained by the build under the same lock).
  struct BackgroundReopt {
    bool starved = false;  ///< unconditional adoption
    bool drift = false;    ///< conditional adoption (beta test at Finish)
    int drift_leaf = -1;   ///< leaf whose baseline absorbs a discard
    /// The live synopsis at Begin; if it was replaced mid-pipeline by any
    /// other path (an explicit Reinitialize, a snapshot Load) the side tree
    /// is stale and Finish discards it instead of adopting.
    const Dpt* live_at_begin = nullptr;
    std::vector<Tuple> snapshot;  ///< pooled reservoir at Begin
    size_t n0 = 0;                ///< |D| at Begin
    /// Archive row ids in Begin-time order. The payload copy is deferred to
    /// Build (AssembleReoptArchive), which reconstructs the Begin-time
    /// archive — identical rows in identical order — without ever holding
    /// the update mutex for more than one chunk.
    std::vector<uint64_t> t0_ids;
    /// Begin-time payloads of rows deleted before the assembly reached
    /// them. emplace() keeps the first (= snapshot-time) payload even if an
    /// id is deleted, re-inserted and deleted again mid-assembly.
    std::unordered_map<uint64_t, Tuple> rescued;
    size_t copy_pos = 0;      ///< t0_ids assembled so far
    bool copy_failed = false; ///< archive vanished mid-assembly (e.g. Load)
    std::unique_ptr<ColumnStore> archive;  ///< index-free archive copy
    uint64_t catchup_seed = 0;
    std::vector<ReoptDeltaOp> delta;
    std::unique_ptr<Dpt> side;
    double cand_var = 0;   ///< side tree's achieved_error^2
    /// Trigger baselines of the snapshot-initialized side tree, computed in
    /// Build (off the exclusive path — MaxVariance over every leaf is the
    /// expensive part of adoption) and installed verbatim at Finish. This is
    /// exactly what a blocking rebuild at the Begin point computes: baselines
    /// are a function of the reservoir-initialized tree, not of the delta
    /// ops replayed after it.
    std::vector<double> baselines;
    bool build_ok = false;
    uint64_t replayed = 0;  ///< ops drained into the side tree pre-adoption
    Timer total;            ///< Begin -> adoption wall clock
  };

  /// Stage-2 helper: materialize bg_.archive from bg_.t0_ids + the live
  /// store + bg_.rescued, in bounded update-mutex holds. Sets
  /// bg_.copy_failed (and leaves build_ok false) if a row can no longer be
  /// resolved — only possible when another path replaced the table
  /// mid-pipeline, which Finish independently detects and discards.
  void AssembleReoptArchive();
  DptOptions MakeDptOptions() const;
  SptOptions MakeSptOptions() const;
  /// Build a synopsis from the given spec, populate from the pooled
  /// reservoir, restart catch-up, refresh trigger baselines.
  void AdoptSpec(PartitionTreeSpec spec);
  void RefreshBaselines();
  /// Per-leaf MaxVariance baselines for an arbitrary (possibly side) tree.
  std::vector<double> ComputeBaselines(const Dpt& dpt) const;
  double CurrentTreeMaxVariance() const;
  bool FullRepartition();
  bool PartialRepartition(int leaf);

  JanusOptions opts_;
  DynamicTable table_;
  std::unique_ptr<DynamicReservoir> reservoir_;
  std::unique_ptr<Dpt> dpt_;
  std::unique_ptr<CatchupEngine> catchup_;
  Rng rng_;
  JanusCounters counters_;

  /// M_i baselines per node index (leaves only), set at (re)build.
  std::vector<double> leaf_baseline_var_;
  std::atomic<uint64_t> updates_since_check_{0};

  /// Serializes table + reservoir + sample-index mutation (Insert/Delete
  /// from many threads). The guarded state (table_, reservoir_, the DPT
  /// sample index) is also read lock-free by externally-quiesced queries,
  /// so it cannot carry GUARDED_BY; the lock protects the mutation path
  /// only, per the class thread-safety contract above.
  mutable Mutex update_mu_;

  /// Guards the dpt_/catchup_ *pointers* against a repartition swap racing
  /// the update path: ApplyInsert/ApplyDelete and catch-up steps hold it
  /// shared, any code path that replaces the synopsis (blocking trigger
  /// repartitions, background adoption) holds it exclusively. Lock order:
  /// tree_mu_ before update_mu_, never the reverse (Insert/Delete release
  /// update_mu_ before touching the tree).
  mutable SharedMutex tree_mu_;

  // Background re-optimization state. The request flags and bg_capture_
  // are guarded by update_mu_ (set by CheckTriggers / the pipeline, read by
  // the capture sites in Insert/Delete); bg_ itself belongs to the single
  // orchestrator thread, except bg_.delta (update_mu_, see above).
  bool reopt_request_ = false;
  bool reopt_request_starved_ = false;
  bool reopt_request_drift_ = false;
  int reopt_request_leaf_ = -1;
  bool bg_capture_ = false;
  bool bg_active_ = false;
  BackgroundReopt bg_;
  std::function<void()> reopt_notify_;

  // Concurrent re-initialization state.
  std::thread opt_thread_;
  std::atomic<bool> opt_done_{false};
  bool opt_running_ = false;
  PartitionResult opt_result_;
};

}  // namespace janus

#endif  // JANUS_CORE_JANUS_H_
