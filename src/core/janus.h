#ifndef JANUS_CORE_JANUS_H_
#define JANUS_CORE_JANUS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/catchup.h"
#include "core/dpt.h"
#include "core/spt.h"
#include "data/table.h"
#include "sampling/reservoir.h"
#include "util/mutex.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Configuration of a JanusAQP instance (Sec. 3.1 knobs plus the
/// re-optimization parameters of Sec. 5.4).
struct JanusOptions {
  SynopsisSpec spec;
  /// Archive schema; the table allocates one column per schema entry. An
  /// empty schema falls back to kMaxColumns-wide storage.
  Schema schema;
  int num_leaves = 128;
  /// Sampling rate alpha (1% in most experiments).
  double sample_rate = 0.01;
  /// Catch-up goal as a fraction of |D| (10% in most experiments).
  double catchup_rate = 0.10;
  AggFunc focus = AggFunc::kSum;
  PartitionAlgorithm algorithm = PartitionAlgorithm::kBinarySearch;
  double confidence = 0.95;
  double rho = 2.0;
  /// Maximum allowable variance drift before a re-partition is considered
  /// (Sec. 5.4; the paper's default).
  double beta = 10.0;
  double delta = 0.01;
  int minmax_k = 32;
  std::vector<int> extra_tracked_columns;
  /// Automatic re-partitioning triggers (Sec. 5.4). When disabled the
  /// instance behaves like the "DPT-only" baseline.
  bool enable_triggers = true;
  /// Updates between drift checks on the touched leaf (checking every single
  /// update is supported with interval 1).
  uint64_t trigger_check_interval = 64;
  /// A leaf is starved when |S_i| < starvation_factor * log2(m) (Sec. 5.4).
  double starvation_factor = 0.25;
  /// Partial re-partitioning: rebuild only the subtree `psi` levels above a
  /// problematic leaf (Appendix E). 0 disables (always full).
  int partial_repartition_psi = 0;
  /// Morsel-parallel execution of the archival scans (catch-up batches,
  /// exact-mode initialization). Default: serial.
  scan::ExecContext exec;
  uint64_t seed = 42;
};

/// Operational counters for the experiment harnesses.
struct JanusCounters {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t reservoir_resamples = 0;
  uint64_t trigger_checks = 0;
  uint64_t trigger_fires = 0;
  uint64_t repartitions = 0;
  uint64_t partial_repartitions = 0;
  double last_reopt_seconds = 0;   ///< last re-optimization, wall clock
  double last_blocking_seconds = 0;  ///< blocking populate step (Sec. 4.3)
};

/// The JanusAQP system (Sec. 3): owns the evolving table (archival storage),
/// the pooled reservoir, one DPT synopsis, the catch-up engine and the
/// re-partitioning triggers.
///
/// Thread-safety: Insert()/Delete() may be called from multiple threads
/// concurrently (per-leaf statistics locks plus a reservoir/table mutex);
/// Query() and the re-optimization entry points must be externally quiesced,
/// exactly as the experiment drivers do.
class JanusAqp {
 public:
  explicit JanusAqp(const JanusOptions& opts);
  ~JanusAqp();

  /// Bulk-load initial (historical) data without per-update overhead.
  void LoadInitial(const std::vector<Tuple>& rows);

  /// Build the first synopsis from the current archive and start catch-up.
  void Initialize();

  /// Process one insertion (Sec. 4.1/4.2 + trigger checks).
  void Insert(const Tuple& t);

  /// Process one deletion by tuple id. Returns false if not live.
  bool Delete(uint64_t id);

  /// Answer a query from the synopsis only (never touches the archive).
  QueryResult Query(const AggQuery& q) const;

  /// Run the catch-up engine to its goal (deterministic, inline).
  void RunCatchupToGoal();
  /// Absorb up to `batch` catch-up samples; returns how many.
  size_t StepCatchup(size_t batch);

  /// Full re-optimization (Sec. 4.3): optimize partitioning on the pooled
  /// reservoir, blocking-populate the new synopsis, re-sample the reservoir
  /// from the archive and restart catch-up. Sequential variant.
  void Reinitialize();

  /// Concurrent variant: runs the optimization phase on a worker thread
  /// while the old synopsis keeps absorbing updates; FinishReinitialize()
  /// performs only the short blocking step (Sec. 4.3, Fig. 4).
  void BeginReinitialize();
  bool ReinitializeReady() const;
  /// Blocks until the optimizer is done, then swaps synopses. Returns the
  /// duration of the blocking step.
  double FinishReinitialize();

  /// Trigger evaluation for the leaf of `t` (Sec. 5.4); called internally by
  /// Insert/Delete, public for tests. Returns true if a re-partition ran.
  bool CheckTriggers(const Tuple& t);

  /// Snapshot persistence: archive, pooled reservoir, synopsis (structure-
  /// exact), catch-up engine, system RNG, counters and trigger baselines —
  /// the complete state needed so a restored instance answers queries
  /// bit-identically and continues the update stream exactly like the
  /// uninterrupted one. Options come from construction, not the snapshot.
  /// Not thread-safe: quiesce updates first (the save path of a running
  /// service goes through the sharded engine's per-shard quiesce points).
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

  /// Structural audit of the whole system: the archive store, the pooled
  /// reservoir (every sampled id must be live in the table), the synopsis,
  /// and the DPT sample mirror (same ids as the reservoir). Not thread-safe;
  /// quiesce updates first. Throws InvariantViolation on inconsistency.
  void CheckInvariants() const;

  /// True once Initialize() has run (or a snapshot of an initialized
  /// instance was loaded).
  bool initialized() const { return dpt_ != nullptr; }

  const Dpt& dpt() const { return *dpt_; }
  const DynamicTable& table() const { return table_; }
  const DynamicReservoir& reservoir() const { return *reservoir_; }
  const JanusCounters& counters() const { return counters_; }
  const JanusOptions& options() const { return opts_; }
  size_t catchup_processed() const {
    return catchup_ ? catchup_->processed() : 0;
  }
  double catchup_processing_seconds() const {
    return catchup_ ? catchup_->processing_seconds() : 0;
  }

 private:
  DptOptions MakeDptOptions() const;
  SptOptions MakeSptOptions() const;
  /// Build a synopsis from the given spec, populate from the pooled
  /// reservoir, restart catch-up, refresh trigger baselines.
  void AdoptSpec(PartitionTreeSpec spec);
  void RefreshBaselines();
  double CurrentTreeMaxVariance() const;
  bool FullRepartition();
  bool PartialRepartition(int leaf);

  JanusOptions opts_;
  DynamicTable table_;
  std::unique_ptr<DynamicReservoir> reservoir_;
  std::unique_ptr<Dpt> dpt_;
  std::unique_ptr<CatchupEngine> catchup_;
  Rng rng_;
  JanusCounters counters_;

  /// M_i baselines per node index (leaves only), set at (re)build.
  std::vector<double> leaf_baseline_var_;
  std::atomic<uint64_t> updates_since_check_{0};

  /// Serializes table + reservoir + sample-index mutation (Insert/Delete
  /// from many threads). The guarded state (table_, reservoir_, the DPT
  /// sample index) is also read lock-free by externally-quiesced queries,
  /// so it cannot carry GUARDED_BY; the lock protects the mutation path
  /// only, per the class thread-safety contract above.
  mutable Mutex update_mu_;

  // Concurrent re-initialization state.
  std::thread opt_thread_;
  std::atomic<bool> opt_done_{false};
  bool opt_running_ = false;
  PartitionResult opt_result_;
};

}  // namespace janus

#endif  // JANUS_CORE_JANUS_H_
