#include "core/partitioner_1d.h"

#include <algorithm>
#include <cmath>

namespace janus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Recursive balanced-tree builder over bucket index range [lo, hi).
// `boundaries[i]` separates bucket i from bucket i+1.
int BuildBalancedRec(const std::vector<double>& boundaries, int lo, int hi,
                     double rect_lo, double rect_hi, int parent,
                     PartitionTreeSpec* spec) {
  const int idx = static_cast<int>(spec->nodes.size());
  spec->nodes.emplace_back();
  PartitionNode& self = spec->nodes.back();
  self.rect = Rectangle({rect_lo}, {rect_hi});
  self.parent = parent;
  if (hi - lo == 1) {
    spec->leaves.push_back(idx);
    return idx;
  }
  const int mid = lo + (hi - lo) / 2;
  const double split = boundaries[static_cast<size_t>(mid - 1)];
  // NOTE: self reference may dangle after recursive emplace_back; write
  // through the vector index instead.
  spec->nodes[static_cast<size_t>(idx)].split_dim = 0;
  spec->nodes[static_cast<size_t>(idx)].split_val = split;
  const int l =
      BuildBalancedRec(boundaries, lo, mid, rect_lo, split, idx, spec);
  const int r =
      BuildBalancedRec(boundaries, mid, hi, split, rect_hi, idx, spec);
  spec->nodes[static_cast<size_t>(idx)].left = l;
  spec->nodes[static_cast<size_t>(idx)].right = r;
  return idx;
}

// Boundary key between ranks r-1 and r: the midpoint of the two sample keys
// (or the shared key when equal).
double BoundaryAtRank(const OrderStatTree& tree, size_t r) {
  const double a = tree.Select(r - 1);
  const double b = tree.Select(r);
  return a == b ? a : 0.5 * (a + b);
}

}  // namespace

PartitionTreeSpec BuildBalanced1dTree(const std::vector<double>& boundaries) {
  PartitionTreeSpec spec;
  spec.dims = 1;
  const int buckets = static_cast<int>(boundaries.size()) + 1;
  spec.nodes.reserve(static_cast<size_t>(2 * buckets));
  BuildBalancedRec(boundaries, 0, buckets, -kInf, kInf, -1, &spec);
  return spec;
}

PartitionResult BuildEqualDepth1D(const MaxVarianceIndex& index,
                                  int num_leaves) {
  PartitionResult result;
  const OrderStatTree& tree = index.tree1d();
  const size_t m = tree.size();
  const size_t k = static_cast<size_t>(std::max(1, num_leaves));
  std::vector<double> boundaries;
  std::vector<size_t> cuts;  // boundary ranks, for the error evaluation
  if (m > 1) {
    for (size_t b = 1; b < k && b * m / k < m; ++b) {
      const size_t r = b * m / k;
      if (r == 0) continue;
      const double key = BoundaryAtRank(tree, r);
      if (!boundaries.empty() && key <= boundaries.back()) continue;
      boundaries.push_back(key);
      cuts.push_back(r);
    }
  }
  result.spec = BuildBalanced1dTree(boundaries);
  // Worst bucket error under the focus aggregate.
  double worst = 0;
  size_t prev = 0;
  for (size_t i = 0; i <= cuts.size(); ++i) {
    const size_t end = (i == cuts.size()) ? m : cuts[i];
    worst = std::max(worst, index.MaxVarianceRankRange(prev, end));
    prev = end;
  }
  result.spec.worst_error = std::sqrt(worst);
  result.achieved_error = result.spec.worst_error;
  result.ok = true;
  return result;
}

namespace {

// Greedy feasibility sweep: can the samples be covered by at most k maximal
// buckets whose sqrt(max variance) is <= e? Appends the boundary ranks when
// feasible.
bool FeasibleWithError(const MaxVarianceIndex& index, size_t m, size_t k,
                       double e, std::vector<size_t>* boundary_ranks) {
  boundary_ranks->clear();
  const double e2 = e * e;  // compare variances, avoiding sqrt in the loop
  size_t start = 0;
  for (size_t b = 0; b < k && start < m; ++b) {
    // Binary search the largest end such that M([start, end)) <= e^2. A
    // single sample always fits (its variance is 0).
    size_t lo = start + 1;
    size_t hi = m;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo + 1) / 2;
      if (index.MaxVarianceRankRange(start, mid) <= e2) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    start = lo;
    if (start < m) boundary_ranks->push_back(start);
  }
  return start >= m;
}

}  // namespace

PartitionResult BuildPartition1D(const MaxVarianceIndex& index,
                                 const Partitioner1dOptions& opts) {
  PartitionResult result;
  const OrderStatTree& tree = index.tree1d();
  const size_t m = tree.size();
  const size_t k = static_cast<size_t>(std::max(1, opts.num_leaves));
  if (m == 0) {
    result.spec = BuildBalanced1dTree({});
    result.ok = true;
    return result;
  }
  if (opts.focus == AggFunc::kCount) {
    // Equal-depth is optimal for COUNT in one dimension (Appendix D.2).
    return BuildEqualDepth1D(index, opts.num_leaves);
  }

  // Error ladder E = {rho^t} spanning [L/(sqrt(2) N), N * U] — the union of
  // the SUM and AVG bounds of Lemma D.2 — plus 0.
  const TreeAgg all = tree.PrefixAggregate(m);
  double U = 0;
  double L = kInf;
  for (size_t i = 0; i < m; ++i) {
    const double v = std::abs(tree.SelectValue(i));
    U = std::max(U, v);
    if (v > 0) L = std::min(L, v);
  }
  (void)all;
  const double N = static_cast<double>(std::max<size_t>(opts.data_size, m));
  if (U == 0) {
    // All aggregation values are zero: any partitioning has zero error.
    return BuildEqualDepth1D(index, opts.num_leaves);
  }
  if (!std::isfinite(L)) L = U;
  const double ladder_lo = L / (std::sqrt(2.0) * N);
  const double ladder_hi = N * U;
  const double rho = std::max(1.0001, opts.rho);
  std::vector<double> ladder;
  for (double e = ladder_lo; e < ladder_hi * rho; e *= rho) {
    ladder.push_back(e);
  }

  // Binary search the smallest feasible ladder value.
  std::vector<size_t> best_ranks;
  bool have = false;
  size_t lo = 0;
  size_t hi = ladder.size();  // invariant: ladder[hi] feasible (top always is)
  // First verify the top is feasible (it must be: one bucket per step covers
  // everything when e is the global bound).
  std::vector<size_t> ranks;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (FeasibleWithError(index, m, k, ladder[mid], &ranks)) {
      best_ranks = ranks;
      have = true;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (!have) {
    // Fall back to the maximal ladder value; feasible by construction since
    // a bucket can always absorb at least one more sample at huge e. If even
    // that fails (pathological), use equal depth.
    if (!FeasibleWithError(index, m, k, ladder.back() * rho, &best_ranks)) {
      return BuildEqualDepth1D(index, opts.num_leaves);
    }
  }

  // The geometric ladder can leave budget on the table: the greedy sweep at
  // the smallest feasible e may use far fewer than k maximal buckets. Spend
  // the remaining budget by repeatedly median-splitting the bucket with the
  // largest max-variance (the Sec. 5.3.2 criterion); this only lowers the
  // worst-case error.
  std::vector<size_t> cuts{0};
  cuts.insert(cuts.end(), best_ranks.begin(), best_ranks.end());
  cuts.push_back(m);
  while (cuts.size() - 1 < k) {
    double worst = -1;
    size_t worst_i = 0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      if (cuts[i + 1] - cuts[i] < 2) continue;
      const double v = index.MaxVarianceRankRange(cuts[i], cuts[i + 1]);
      if (v > worst) {
        worst = v;
        worst_i = i;
      }
    }
    if (worst < 0) break;  // nothing splittable
    const size_t mid = cuts[worst_i] + (cuts[worst_i + 1] - cuts[worst_i]) / 2;
    cuts.insert(cuts.begin() + static_cast<ptrdiff_t>(worst_i) + 1, mid);
    if (worst == 0) break;  // zero-error everywhere: splitting further is moot
  }

  std::vector<double> boundaries;
  boundaries.reserve(cuts.size());
  for (size_t i = 1; i + 1 < cuts.size(); ++i) {
    const double key = BoundaryAtRank(tree, cuts[i]);
    if (boundaries.empty() || key > boundaries.back()) {
      boundaries.push_back(key);
    }
  }
  result.spec = BuildBalanced1dTree(boundaries);
  // Evaluate the achieved worst bucket error.
  double worst = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    worst = std::max(worst, index.MaxVarianceRankRange(cuts[i], cuts[i + 1]));
  }
  result.spec.worst_error = std::sqrt(worst);
  result.achieved_error = result.spec.worst_error;
  result.ok = true;
  return result;
}

}  // namespace janus
