#ifndef JANUS_CORE_SPT_H_
#define JANUS_CORE_SPT_H_

#include <memory>

#include "core/dpt.h"
#include "core/partition.h"

namespace janus {

/// Which partition optimizer a static build uses (Sec. 6.9 / Table 3).
enum class PartitionAlgorithm {
  kBinarySearch,  ///< the new BS algorithm of Sec. 5.2 (1-D)
  kDynamicProgram,  ///< the PASS DP algorithm [30] (1-D)
  kEqualDepth,      ///< equal-count buckets (COUNT-optimal in 1-D)
  kKdTree,          ///< greedy max-variance k-d splits (any d)
};

/// Options for building a static partition tree (PASS / "SPT", Sec. 2.3).
struct SptOptions {
  SynopsisSpec spec;
  int num_leaves = 128;
  AggFunc focus = AggFunc::kSum;
  double sample_rate = 0.01;
  PartitionAlgorithm algorithm = PartitionAlgorithm::kBinarySearch;
  double rho = 2.0;
  double delta = 0.01;
  int minmax_k = 32;
  double confidence = 0.95;
  uint64_t seed = 42;
  /// Morsel-parallel execution of the exact statistics scan (and of the
  /// built Dpt's later catch-up batches). Default: serial.
  scan::ExecContext exec;
};

/// A built SPT plus construction metrics (Table 3 reports the partitioning
/// time and the resulting accuracy).
struct SptBuildResult {
  std::unique_ptr<Dpt> synopsis;  ///< exact-mode Dpt: the SPT of Sec. 2.3
  double partition_seconds = 0;   ///< time spent in the optimizer alone
  double total_seconds = 0;       ///< optimizer + exact statistics scan
  double achieved_error = 0;      ///< sqrt(worst bucket max-variance)
};

/// Build a PASS-style static partition tree over `data`: draw an
/// alpha-sample, optimize the partitioning on it with the chosen algorithm,
/// then scan `data` once for exact node statistics and attach the sample as
/// the leaf strata.
SptBuildResult BuildSpt(const std::vector<Tuple>& data, const SptOptions& opts);

/// Columnar variant: samples and the exact statistics scan read the archive's
/// columns directly (no row materialization on the hot path).
SptBuildResult BuildSpt(const ColumnStore& data, const SptOptions& opts);

/// Run only the partition optimizer over `samples` (no statistics scan);
/// shared by BuildSpt and by JanusAQP re-optimization.
PartitionResult OptimizePartition(const std::vector<Tuple>& samples,
                                  const SptOptions& opts, size_t data_size);

}  // namespace janus

#endif  // JANUS_CORE_SPT_H_
