#ifndef JANUS_CORE_PARTITIONER_1D_H_
#define JANUS_CORE_PARTITIONER_1D_H_

#include "core/max_variance.h"
#include "core/partition.h"

namespace janus {

/// Options for the 1-D binary-search partitioner (Sec. 5.2, Appendix D.2).
struct Partitioner1dOptions {
  int num_leaves = 128;
  AggFunc focus = AggFunc::kSum;
  /// Multiplicative step of the error ladder E = {rho^t}.
  double rho = 2.0;
  /// |D| — bounds the error ladder (U = O(poly N), L = Omega(1/poly N)).
  size_t data_size = 0;
};

/// The binary-search (BS) partitioner of Sec. 5.2: discretize the feasible
/// error range into the geometric ladder E, binary search the smallest e in
/// E for which a greedy maximal-bucket sweep covers all samples with at most
/// k buckets, and return that partitioning. Runs in
/// O(k * M * log m * loglog N) where M is the cost of one max-variance probe.
///
/// For COUNT the optimum 1-D partitioning is equal-depth (Appendix D.2) and
/// is constructed directly in O(k log m).
PartitionResult BuildPartition1D(const MaxVarianceIndex& index,
                                 const Partitioner1dOptions& opts);

/// Equal-depth 1-D partitioning (the COUNT fast path; also the strata
/// builder of the SRS baseline).
PartitionResult BuildEqualDepth1D(const MaxVarianceIndex& index,
                                  int num_leaves);

}  // namespace janus

#endif  // JANUS_CORE_PARTITIONER_1D_H_
