#ifndef JANUS_CORE_NODE_STATS_H_
#define JANUS_CORE_NODE_STATS_H_

#include <optional>
#include <set>

#include "index/order_stat_tree.h"
#include "util/stats.h"

namespace janus {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Tracks MIN and MAX of a node's aggregation values under insertions and
/// deletions via bounded top-k / bottom-k heaps (Sec. 4.1):
///  * insert: push into both heaps, trimming them back to k;
///  * delete: erase the value if present; once a heap is down to one element
///    further erases are refused and the tracker becomes an *outer
///    approximation* (estimated MIN <= true MIN, estimated MAX >= true MAX).
class MinMaxTracker {
 public:
  explicit MinMaxTracker(size_t k = 32) : k_(k) {}

  void Insert(double v);

  /// Remove `v` after the corresponding tuple's deletion.
  void Erase(double v);

  /// Fold another tracker in (the k smallest / largest of a union are a
  /// function of the two heaps alone, so per-worker partial trackers merge
  /// into exactly the tracker a sequential pass would have built).
  void Merge(const MinMaxTracker& o);

  /// Smallest tracked value; nullopt when no value was ever inserted.
  std::optional<double> Min() const;
  /// Largest tracked value.
  std::optional<double> Max() const;

  /// True once deletions have exhausted a heap: Min()/Max() are outer
  /// approximations from that point on (Sec. 4.1).
  bool degraded() const { return degraded_; }

  void Clear();

  /// Snapshot persistence: heap contents in sorted order plus the degraded
  /// flag (multisets rebuilt from sorted input iterate identically).
  void SaveTo(persist::Writer* w) const;
  void LoadFrom(persist::Reader* r);

 private:
  size_t k_;
  std::multiset<double> bottom_;                       // k smallest
  std::multiset<double, std::greater<double>> top_;    // k largest
  bool degraded_ = false;
};

/// Statistics attached to one DPT node (Sec. 4.1 / 4.4). The node estimate
/// combines three parts:
///   catch-up estimate (h moments, Horvitz-Thompson scaled)
///   + exact delta of tuples inserted since (re-)initialization
///   - exact delta of *new* tuples deleted again
/// In exact mode (full-scan initialization, or an SPT) `exact` carries the
/// full statistics and the catch-up part is unused.
struct NodeStats {
  // Exact running statistics (exact mode), or unused (catch-up mode).
  MomentAccumulator exact;
  // Post-(re)initialization deltas (catch-up mode).
  MomentAccumulator inserted;
  MomentAccumulator removed;
  // Catch-up sample moments: h_i, sum t.a, sum t.a^2 (Sec. 4.4.1).
  TreeAgg catchup;
  // MIN/MAX heaps.
  MinMaxTracker minmax;

  void ClearDynamic() {
    inserted.Clear();
    removed.Clear();
    catchup = TreeAgg{};
  }
};

}  // namespace janus

#endif  // JANUS_CORE_NODE_STATS_H_
