#include "core/max_variance.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/variance.h"
#include "persist/serde.h"
#include "util/invariants.h"

namespace janus {

KdPoint MakeKdPoint(const Tuple& t, const std::vector<int>& predicate_columns,
                    int agg_column) {
  KdPoint p;
  p.id = t.id;
  for (size_t i = 0; i < predicate_columns.size(); ++i) {
    p.x[i] = t[predicate_columns[i]];
  }
  p.a = t[agg_column];
  return p;
}

MaxVarianceIndex::MaxVarianceIndex(const Options& opts)
    : opts_(opts), kd_(opts.dims) {}

void MaxVarianceIndex::Build(const std::vector<KdPoint>& samples) {
  kd_.Build(samples);
  if (opts_.dims == 1) {
    tree1d_.Clear();
    for (const KdPoint& p : samples) tree1d_.Insert(p.x[0], p.a);
  }
}

void MaxVarianceIndex::Insert(const KdPoint& p) {
  kd_.Insert(p);
  if (opts_.dims == 1) tree1d_.Insert(p.x[0], p.a);
}

bool MaxVarianceIndex::Delete(const KdPoint& p) {
  const bool ok = kd_.Delete(p.x.data(), p.id);
  if (ok && opts_.dims == 1) tree1d_.Delete(p.x[0], p.a);
  return ok;
}

double MaxVarianceIndex::RankRangeVariance(size_t lo, size_t hi,
                                           AggFunc f) const {
  if (hi <= lo) return 0;
  const size_t n = hi - lo;
  if (n < 2) return 0;
  const size_t mid = lo + n / 2;
  const TreeAgg whole = tree1d_.RankRangeAggregate(lo, hi);
  const double mi = whole.count;
  switch (f) {
    case AggFunc::kCount: {
      // The max-variance COUNT query holds half the samples.
      return CountQueryVariance(mi / opts_.sampling_rate, mi,
                                static_cast<double>(n) / 2.0);
    }
    case AggFunc::kSum: {
      const TreeAgg left = tree1d_.RankRangeAggregate(lo, mid);
      const TreeAgg right = tree1d_.RankRangeAggregate(mid, hi);
      const TreeAgg& best = left.sumsq >= right.sumsq ? left : right;
      return SumLeafError(opts_.sampling_rate, mi, best);
    }
    case AggFunc::kAvg: {
      // Best contiguous window of w = max(2, delta * m) samples by Σa²,
      // scanned with stride w/2 (any window shares at least half its mass
      // with a scanned one, so this loses at most a factor 2 in Σa²).
      // delta is relative to the *total* sample count m, per Appendix D.1:
      // valid AVG queries hold at least ~delta*m samples, so buckets smaller
      // than the window admit no valid query and report zero error — this
      // keeps the bucket error monotone in bucket size (Appendix D.2).
      const size_t w = std::max<size_t>(
          2, static_cast<size_t>(opts_.delta *
                                 static_cast<double>(tree1d_.size())));
      if (w > n) return 0.0;
      if (w == n) return AvgLeafError(mi, whole);
      const size_t stride = std::max<size_t>(1, w / 2);
      TreeAgg best;
      bool have = false;
      for (size_t s = lo; s + w <= hi; s += stride) {
        TreeAgg win = tree1d_.RankRangeAggregate(s, s + w);
        if (!have || win.sumsq > best.sumsq) {
          best = win;
          have = true;
        }
      }
      // Include the right-aligned window.
      TreeAgg tail = tree1d_.RankRangeAggregate(hi - w, hi);
      if (!have || tail.sumsq > best.sumsq) best = tail;
      return AvgLeafError(mi, best);
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      return 0;  // MIN/MAX are answered exactly from heaps; no variance.
  }
  return 0;
}

double MaxVarianceIndex::RectVariance(const Rectangle& r, AggFunc f) const {
  const TreeAgg whole = kd_.RangeAggregate(r);
  const double mi = whole.count;
  if (mi < 2) return 0;
  switch (f) {
    case AggFunc::kCount:
      return CountQueryVariance(mi / opts_.sampling_rate, mi, mi / 2.0);
    case AggFunc::kSum: {
      // Split R into two equal-count halves along its widest data extent by
      // binary searching the splitting coordinate with range-count queries.
      const Rectangle bbox = kd_.BoundingBox();
      int dim = 0;
      double lo = 0, hi = 0;
      double best_extent = -1;
      for (int d = 0; d < dims(); ++d) {
        const double dlo = std::max(r.lo(d), bbox.lo(d));
        const double dhi = std::min(r.hi(d), bbox.hi(d));
        const double extent = dhi - dlo;
        if (extent > best_extent) {
          best_extent = extent;
          dim = d;
          lo = dlo;
          hi = dhi;
        }
      }
      const double target = mi / 2;
      for (int iter = 0; iter < 60 && hi - lo > 1e-12 * (std::abs(hi) + 1);
           ++iter) {
        const double mid = 0.5 * (lo + hi);
        Rectangle probe = r;
        probe.set_hi(dim, mid);
        const double c = kd_.RangeAggregate(probe).count;
        if (c < target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      Rectangle left = r;
      left.set_hi(dim, 0.5 * (lo + hi));
      const TreeAgg la = kd_.RangeAggregate(left);
      TreeAgg ra;
      ra.count = whole.count - la.count;
      ra.sum = whole.sum - la.sum;
      ra.sumsq = whole.sumsq - la.sumsq;
      const TreeAgg& best = la.sumsq >= ra.sumsq ? la : ra;
      return SumLeafError(opts_.sampling_rate, mi, best);
    }
    case AggFunc::kAvg: {
      const size_t cap = std::max<size_t>(
          2, static_cast<size_t>(opts_.delta *
                                 static_cast<double>(kd_.size())));
      if (static_cast<double>(cap) > mi) return 0.0;
      TreeAgg cell = kd_.MaxSumsqCell(r, cap);
      if (cell.count < 1) return AvgLeafError(mi, whole);
      return AvgLeafError(mi, cell);
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      return 0;
  }
  return 0;
}

double MaxVarianceIndex::MaxVariance(const Rectangle& r) const {
  return MaxVariance(r, opts_.focus);
}

double MaxVarianceIndex::MaxVariance(const Rectangle& r, AggFunc f) const {
  if (opts_.dims == 1) {
    // Use the exact rank-range machinery in one dimension.
    const size_t lo = tree1d_.RankOf(r.lo(0));
    // Count keys <= hi.
    const TreeAgg range = tree1d_.KeyRangeAggregate(r.lo(0), r.hi(0));
    return RankRangeVariance(lo, lo + static_cast<size_t>(range.count), f);
  }
  return RectVariance(r, f);
}

double MaxVarianceIndex::MaxVarianceRankRange(size_t lo, size_t hi) const {
  return RankRangeVariance(lo, hi, opts_.focus);
}

double MaxVarianceIndex::MaxVarianceRankRange(size_t lo, size_t hi,
                                              AggFunc f) const {
  return RankRangeVariance(lo, hi, f);
}


void MaxVarianceIndex::SaveTo(persist::Writer* w) const {
  kd_.SaveTo(w);
  if (opts_.dims == 1) tree1d_.SaveTo(w);
}

void MaxVarianceIndex::LoadFrom(persist::Reader* r) {
  kd_.LoadFrom(r);
  if (opts_.dims == 1) tree1d_.LoadFrom(r);
}

void MaxVarianceIndex::CheckInvariants() const {
  kd_.CheckInvariants();
  if (opts_.dims == 1) {
    tree1d_.CheckInvariants();
    invariants::Require(tree1d_.size() == kd_.size(), "MaxVarianceIndex",
                        "rank tree holds " + std::to_string(tree1d_.size()) +
                            " samples, kd-tree holds " +
                            std::to_string(kd_.size()));
  }
}

}  // namespace janus
