#include "core/node_stats.h"

#include "persist/serde.h"

namespace janus {

void MinMaxTracker::Insert(double v) {
  bottom_.insert(v);
  if (bottom_.size() > k_) bottom_.erase(std::prev(bottom_.end()));
  top_.insert(v);
  if (top_.size() > k_) top_.erase(std::prev(top_.end()));
}

void MinMaxTracker::Erase(double v) {
  if (auto it = bottom_.find(v); it != bottom_.end()) {
    if (bottom_.size() <= 1) {
      degraded_ = true;  // keep the last value as an outer approximation
    } else {
      bottom_.erase(it);
    }
  }
  if (auto it = top_.find(v); it != top_.end()) {
    if (top_.size() <= 1) {
      degraded_ = true;
    } else {
      top_.erase(it);
    }
  }
}

void MinMaxTracker::Merge(const MinMaxTracker& o) {
  for (double v : o.bottom_) {
    bottom_.insert(v);
    if (bottom_.size() > k_) bottom_.erase(std::prev(bottom_.end()));
  }
  for (double v : o.top_) {
    top_.insert(v);
    if (top_.size() > k_) top_.erase(std::prev(top_.end()));
  }
  degraded_ = degraded_ || o.degraded_;
}

std::optional<double> MinMaxTracker::Min() const {
  if (bottom_.empty()) return std::nullopt;
  return *bottom_.begin();
}

std::optional<double> MinMaxTracker::Max() const {
  if (top_.empty()) return std::nullopt;
  return *top_.begin();
}

void MinMaxTracker::Clear() {
  bottom_.clear();
  top_.clear();
  degraded_ = false;
}

void MinMaxTracker::SaveTo(persist::Writer* w) const {
  w->Size(k_);
  w->Bool(degraded_);
  w->Size(bottom_.size());
  for (double v : bottom_) w->F64(v);
  w->Size(top_.size());
  for (double v : top_) w->F64(v);
}

void MinMaxTracker::LoadFrom(persist::Reader* r) {
  k_ = r->Size();
  degraded_ = r->Bool();
  bottom_.clear();
  top_.clear();
  const size_t nb = r->Size();
  for (size_t i = 0; i < nb; ++i) bottom_.insert(r->F64());
  const size_t nt = r->Size();
  for (size_t i = 0; i < nt; ++i) top_.insert(r->F64());
}

}  // namespace janus
