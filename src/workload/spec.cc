#include "workload/spec.h"

#include <sstream>
#include <stdexcept>

namespace janus {
namespace workload {

void OpMix::Normalize() {
  insert = insert > 0 ? insert : 0;
  del = del > 0 ? del : 0;
  query = query > 0 ? query : 0;
  const double total = insert + del + query;
  if (total <= 0) {
    insert = del = 0;
    query = 1;
    return;
  }
  insert /= total;
  del /= total;
  query /= total;
}

namespace {

DistSpec Zipfian(double s = 0.99) {
  DistSpec d;
  d.kind = DistKind::kZipfian;
  d.zipf_s = s;
  d.zipf_n = 1024;
  d.scramble = true;
  return d;
}

DistSpec Hotspot(double fraction, double probability) {
  DistSpec d;
  d.kind = DistKind::kHotspot;
  d.hot_fraction = fraction;
  d.hot_probability = probability;
  return d;
}

PhaseSpec RunPhase(std::string name, size_t ops, double ins, double del,
                   double query) {
  PhaseSpec p;
  p.name = std::move(name);
  p.ops = ops;
  p.mix.insert = ins;
  p.mix.del = del;
  p.mix.query = query;
  p.mix.Normalize();
  return p;
}

}  // namespace

std::vector<std::string> PresetNames() {
  return {"ycsb-a", "ycsb-b", "ycsb-c", "delete-heavy", "zipf-burst"};
}

WorkloadSpec Preset(const std::string& name, size_t load_rows,
                    size_t phase_ops) {
  WorkloadSpec spec;
  spec.name = name;
  spec.load_rows = load_rows;
  if (name == "ycsb-a") {
    // Update-heavy analogue: YCSB-A's 50% updates become insert/delete
    // churn; requests are zipfian over keys and rectangle placement.
    PhaseSpec run = RunPhase("run", phase_ops, 0.25, 0.25, 0.50);
    run.key_dist = Zipfian();
    run.rect.placement = Zipfian();
    spec.phases = {run};
  } else if (name == "ycsb-b") {
    // Read-mostly: 95% queries, 5% churn, zipfian.
    PhaseSpec run = RunPhase("run", phase_ops, 0.025, 0.025, 0.95);
    run.key_dist = Zipfian();
    run.rect.placement = Zipfian();
    spec.phases = {run};
  } else if (name == "ycsb-c") {
    // Read-only, uniform request placement — the harness's control spec.
    PhaseSpec run = RunPhase("run", phase_ops, 0, 0, 1);
    spec.phases = {run};
  } else if (name == "delete-heavy") {
    // Deletion-dominated traffic with skewed victims: hot rows churn out
    // fast, the exact regime where reservoir lower bounds and re-draws are
    // stressed. A query-only epilogue measures the post-shrink state.
    PhaseSpec churn = RunPhase("churn", phase_ops, 0.20, 0.60, 0.20);
    churn.key_dist = Hotspot(0.2, 0.8);
    churn.rect.placement = Hotspot(0.2, 0.8);
    PhaseSpec after = RunPhase("after", phase_ops / 4, 0, 0, 1);
    spec.phases = {churn, after};
  } else if (name == "zipf-burst") {
    // Calm uniform serving interrupted by a zipfian insert burst aimed at a
    // narrow hot range, then calm again: where the burst moved tail latency
    // and accuracy shows up as calm-vs-recover deltas.
    PhaseSpec calm = RunPhase("calm", phase_ops, 0.05, 0.05, 0.90);
    PhaseSpec burst = RunPhase("burst", phase_ops, 0.70, 0.0, 0.30);
    burst.key_dist = Zipfian(1.2);
    burst.key_dist.scramble = false;  // pile the burst onto one end
    burst.rect.placement = Zipfian(1.2);
    burst.rect.placement.scramble = false;
    PhaseSpec recover = RunPhase("recover", phase_ops, 0.05, 0.05, 0.90);
    spec.phases = {calm, burst, recover};
  } else {
    std::string known;
    for (const std::string& n : PresetNames()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown workload preset \"" + name +
                                "\" (known: " + known + ")");
  }
  return spec;
}

std::string ToString(const WorkloadSpec& spec) {
  std::ostringstream os;
  os << "spec=" << spec.name << " load_rows=" << spec.load_rows
     << " load_dist=" << DistKindName(spec.load_dist.kind)
     << " pred_dims=" << spec.num_predicate_columns;
  for (const PhaseSpec& p : spec.phases) {
    os << " [" << p.name << ": ops=" << p.ops;
    if (p.ops == 0) os << " seconds=" << p.seconds;
    os << " mix=" << p.mix.insert << "/" << p.mix.del << "/" << p.mix.query
       << " keys=" << DistKindName(p.key_dist.kind)
       << " rect=" << DistKindName(p.rect.placement.kind) << "]";
  }
  return os.str();
}

}  // namespace workload
}  // namespace janus
