#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/config.h"
#include "api/error.h"
#include "workload/spec.h"

namespace janus {
namespace workload {

namespace {

[[noreturn]] void BadSpec(const std::string& path, const std::string& section,
                          const std::string& what) {
  throw ApiException(ApiErrorCode::kBadSpecFile,
                     "spec file " + path +
                         (section.empty() ? "" : " [" + section + "]") + ": " +
                         what);
}

std::string Trim(const std::string& s) {
  const size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// One section's "key = value" lines behind the strict ArgMap parsers.
/// Every getter registers its key as known; Finish() rejects the rest, so
/// a typo like "zpif_s" fails the parse instead of silently keeping the
/// default skew.
class SectionParser {
 public:
  SectionParser(std::string path, std::string section,
                const std::vector<std::string>& tokens)
      : path_(std::move(path)),
        section_(std::move(section)),
        args_(tokens) {}

  std::string GetString(const std::string& key, const std::string& def) {
    known_.insert(key);
    return args_.GetString(key, def);
  }

  size_t GetSize(const std::string& key, size_t def) {
    known_.insert(key);
    size_t v = def;
    if (!args_.TryGetSize(key, &v)) FailValue(key);
    return v;
  }

  double GetDouble(const std::string& key, double def) {
    known_.insert(key);
    double v = def;
    if (!args_.TryGetDouble(key, &v)) FailValue(key);
    return v;
  }

  bool GetBool(const std::string& key, bool def) {
    known_.insert(key);
    bool v = def;
    if (!args_.TryGetBool(key, &v)) FailValue(key);
    return v;
  }

  /// Fraction in [lo, hi]; out-of-range values are spec errors, not clamps.
  double GetFraction(const std::string& key, double def, double lo,
                     double hi) {
    const double v = GetDouble(key, def);
    if (v < lo || v > hi) {
      Fail("key '" + key + "' must be in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "], got " + std::to_string(v));
    }
    return v;
  }

  AggFunc GetAggFunc(const std::string& key, AggFunc def) {
    known_.insert(key);
    if (!args_.Has(key)) return def;
    const std::string name = args_.GetString(key, "");
    // ParseAggFunc falls back to its default on unknown names; parsing
    // against two different defaults separates "valid name" (both calls
    // agree) from "unknown name" (each call returns its own default).
    const AggFunc a = ParseAggFunc(name, AggFunc::kSum);
    const AggFunc b = ParseAggFunc(name, AggFunc::kCount);
    if (a != b) {
      Fail("key '" + key + "' names an unknown aggregate '" + name + "'");
    }
    return a;
  }

  /// Distribution family under `prefix`: <prefix>_dist picks the kind, the
  /// remaining <prefix>_* keys set that family's parameters.
  DistSpec GetDist(const std::string& prefix, const DistSpec& def) {
    DistSpec d = def;
    const std::string kind_key = prefix + "_dist";
    known_.insert(kind_key);
    if (args_.Has(kind_key)) {
      const std::string name = args_.GetString(kind_key, "");
      const DistKind a = ParseDistKind(name, DistKind::kUniform);
      const DistKind b = ParseDistKind(name, DistKind::kZipfian);
      if (a != b) {
        Fail("key '" + kind_key + "' names an unknown distribution '" + name +
             "' (uniform, zipfian, hotspot, lognormal)");
      }
      d.kind = a;
    }
    d.zipf_s = GetDouble(prefix + "_zipf_s", d.zipf_s);
    d.zipf_n = GetSize(prefix + "_zipf_n", d.zipf_n);
    if (d.zipf_n == 0) Fail("key '" + prefix + "_zipf_n' must be positive");
    d.scramble = GetBool(prefix + "_scramble", d.scramble);
    d.hot_fraction = GetFraction(prefix + "_hot_fraction", d.hot_fraction,
                                 0.0, 1.0);
    d.hot_probability =
        GetFraction(prefix + "_hot_probability", d.hot_probability, 0.0, 1.0);
    d.lognormal_mu = GetDouble(prefix + "_lognormal_mu", d.lognormal_mu);
    d.lognormal_sigma =
        GetDouble(prefix + "_lognormal_sigma", d.lognormal_sigma);
    if (d.lognormal_sigma <= 0) {
      Fail("key '" + prefix + "_lognormal_sigma' must be positive");
    }
    return d;
  }

  /// Reject every key no getter claimed.
  void Finish() const {
    std::vector<std::string> unknown;
    for (const std::string& key : args_.Keys()) {
      if (known_.find(key) == known_.end()) unknown.push_back(key);
    }
    if (unknown.empty()) return;
    std::string list;
    for (const std::string& key : unknown) {
      if (!list.empty()) list += ", ";
      list += key;
    }
    Fail("unknown keys: " + list);
  }

  [[noreturn]] void Fail(const std::string& what) const {
    BadSpec(path_, section_, what);
  }

 private:
  [[noreturn]] void FailValue(const std::string& key) const {
    Fail("key '" + key + "' has a malformed value '" +
         args_.GetString(key, "") + "'");
  }

  std::string path_;
  std::string section_;
  ArgMap args_;
  std::set<std::string> known_;
};

void ParseGlobal(const std::string& path,
                 const std::vector<std::string>& tokens, WorkloadSpec* spec) {
  SectionParser p(path, "", tokens);
  spec->name = p.GetString("name", spec->name);
  spec->load_rows = p.GetSize("load_rows", spec->load_rows);
  const size_t pred = p.GetSize(
      "pred_columns", static_cast<size_t>(spec->num_predicate_columns));
  if (pred == 0 || pred >= static_cast<size_t>(kMaxColumns)) {
    p.Fail("pred_columns must be in [1, " + std::to_string(kMaxColumns - 1) +
           "] (one column is reserved for the aggregate)");
  }
  spec->num_predicate_columns = static_cast<int>(pred);
  spec->load_dist = p.GetDist("load", spec->load_dist);
  p.Finish();
}

PhaseSpec ParsePhase(const std::string& path, const std::string& name,
                     const std::vector<std::string>& tokens) {
  PhaseSpec phase;
  phase.name = name;
  SectionParser p(path, "phase " + name, tokens);
  phase.ops = p.GetSize("ops", phase.ops);
  phase.seconds = p.GetDouble("seconds", phase.seconds);
  if (phase.seconds < 0) p.Fail("seconds must be non-negative");
  phase.mix.insert = p.GetFraction("insert", phase.mix.insert, 0.0, 1.0);
  phase.mix.del = p.GetFraction("delete", phase.mix.del, 0.0, 1.0);
  phase.mix.query = p.GetFraction("query", phase.mix.query, 0.0, 1.0);
  phase.mix.Normalize();
  phase.func = p.GetAggFunc("func", phase.func);
  phase.key_dist = p.GetDist("key", phase.key_dist);
  phase.rect.placement = p.GetDist("place", phase.rect.placement);
  phase.rect.width = p.GetDist("width", phase.rect.width);
  phase.rect.min_width_frac = p.GetFraction(
      "min_width_frac", phase.rect.min_width_frac, 0.0, 1.0);
  phase.rect.max_width_frac = p.GetFraction(
      "max_width_frac", phase.rect.max_width_frac, 0.0, 1.0);
  if (phase.rect.min_width_frac > phase.rect.max_width_frac) {
    p.Fail("min_width_frac exceeds max_width_frac");
  }
  p.Finish();
  return phase;
}

}  // namespace

WorkloadSpec WorkloadSpec::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) BadSpec(path, "", "cannot open the file");

  // Split into a global section followed by [phase NAME] sections; defer
  // parsing until the sections are complete so every key of a section is
  // validated together.
  std::vector<std::string> global_tokens;
  std::vector<std::pair<std::string, std::vector<std::string>>> phase_tokens;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        BadSpec(path, "", "line " + std::to_string(line_no) +
                              ": unterminated section header '" + line + "'");
      }
      const std::string header = Trim(line.substr(1, line.size() - 2));
      constexpr const char kPhasePrefix[] = "phase ";
      if (header.rfind(kPhasePrefix, 0) != 0 ||
          Trim(header.substr(sizeof(kPhasePrefix) - 1)).empty()) {
        BadSpec(path, "",
                "line " + std::to_string(line_no) + ": section '" + header +
                    "' is not of the form [phase NAME]");
      }
      phase_tokens.emplace_back(Trim(header.substr(sizeof(kPhasePrefix) - 1)),
                                std::vector<std::string>());
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      BadSpec(path, "", "line " + std::to_string(line_no) +
                            ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      BadSpec(path, "", "line " + std::to_string(line_no) +
                            ": empty key or value in '" + line + "'");
    }
    std::vector<std::string>& sink =
        phase_tokens.empty() ? global_tokens : phase_tokens.back().second;
    sink.push_back(key + "=" + value);
  }

  WorkloadSpec spec;
  spec.phases.clear();
  ParseGlobal(path, global_tokens, &spec);
  for (const auto& [name, tokens] : phase_tokens) {
    spec.phases.push_back(ParsePhase(path, name, tokens));
  }
  if (spec.phases.empty()) {
    BadSpec(path, "", "the spec defines no [phase NAME] sections");
  }
  return spec;
}

}  // namespace workload
}  // namespace janus
