#include "workload/distributions.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace janus {
namespace workload {

DistKind ParseDistKind(const std::string& name, DistKind def) {
  std::string v = name;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "uniform") return DistKind::kUniform;
  if (v == "zipfian" || v == "zipf") return DistKind::kZipfian;
  if (v == "hotspot") return DistKind::kHotspot;
  if (v == "lognormal" || v == "log-normal") return DistKind::kLogNormal;
  return def;
}

const char* DistKindName(DistKind k) {
  switch (k) {
    case DistKind::kUniform:
      return "uniform";
    case DistKind::kZipfian:
      return "zipfian";
    case DistKind::kHotspot:
      return "hotspot";
    case DistKind::kLogNormal:
      return "lognormal";
  }
  return "?";
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("AliasTable: empty pmf");
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0)) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (!(total > 0)) throw std::invalid_argument("AliasTable: zero-sum pmf");
  const size_t n = weights.size();
  pmf_.resize(n);
  prob_.resize(n);
  alias_.assign(n, 0);
  // Vose's method: partition scaled probabilities into "small" (< 1) and
  // "large" (>= 1) worklists, pairing each small cell with a large donor.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = weights[i] / total;
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng* rng) const {
  const size_t cell = static_cast<size_t>(rng->NextUint64(prob_.size()));
  return rng->NextDouble() < prob_[cell] ? cell : alias_[cell];
}

namespace {

/// SplitMix64 finalizer: a measurably-good 64-bit mix for scrambling ranks.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

UnitDistribution::UnitDistribution(const DistSpec& spec) : spec_(spec) {
  if (spec_.kind == DistKind::kZipfian) {
    const size_t n = std::max<size_t>(spec_.zipf_n, 1);
    spec_.zipf_n = n;
    std::vector<double> weights(n);
    for (size_t k = 0; k < n; ++k) {
      weights[k] = std::pow(static_cast<double>(k + 1), -spec_.zipf_s);
    }
    alias_ = std::make_unique<AliasTable>(weights);
    zipf_pmf_.resize(n);
    for (size_t k = 0; k < n; ++k) zipf_pmf_[k] = alias_->probability(k);
    // rank -> cell map: identity, or a permutation derived by sorting the
    // mixed hash of each rank (a deterministic pseudo-random shuffle).
    zipf_cell_.resize(n);
    for (size_t k = 0; k < n; ++k) zipf_cell_[k] = static_cast<uint32_t>(k);
    if (spec_.scramble) {
      std::sort(zipf_cell_.begin(), zipf_cell_.end(),
                [](uint32_t a, uint32_t b) {
                  const uint64_t ha = Mix64(a), hb = Mix64(b);
                  return ha != hb ? ha < hb : a < b;
                });
    }
  }
  if (spec_.kind == DistKind::kHotspot) {
    spec_.hot_fraction = std::clamp(spec_.hot_fraction, 0.0, 1.0);
    spec_.hot_probability = std::clamp(spec_.hot_probability, 0.0, 1.0);
  }
  if (spec_.kind == DistKind::kLogNormal) {
    spec_.lognormal_sigma = std::max(spec_.lognormal_sigma, 0.0);
  }
}

double UnitDistribution::Sample(Rng* rng) const {
  switch (spec_.kind) {
    case DistKind::kUniform:
      return rng->NextDouble();
    case DistKind::kZipfian: {
      const size_t rank = alias_->Sample(rng);
      const size_t cell = zipf_cell_[rank];
      const double n = static_cast<double>(spec_.zipf_n);
      return (static_cast<double>(cell) + rng->NextDouble()) / n;
    }
    case DistKind::kHotspot: {
      if (rng->NextDouble() < spec_.hot_probability) {
        return rng->NextDouble() * spec_.hot_fraction;
      }
      const double cold = 1.0 - spec_.hot_fraction;
      return cold > 0 ? spec_.hot_fraction + rng->NextDouble() * cold
                      : rng->NextDouble() * spec_.hot_fraction;
    }
    case DistKind::kLogNormal: {
      // Scale so that mu + 3 sigma maps to 1.0; ~99.9% of draws land below
      // and the tail is clamped into the last cell rather than discarded
      // (resampling would bias the body).
      const double x = rng->LogNormal(spec_.lognormal_mu,
                                      spec_.lognormal_sigma);
      const double scale =
          std::exp(spec_.lognormal_mu + 3.0 * spec_.lognormal_sigma);
      const double u = x / scale;
      return u < 1.0 ? u : std::nextafter(1.0, 0.0);
    }
  }
  return rng->NextDouble();
}

double UnitDistribution::CellProbability(size_t i, size_t cells) const {
  if (cells == 0 || i >= cells) return 0.0;
  const double width = 1.0 / static_cast<double>(cells);
  switch (spec_.kind) {
    case DistKind::kUniform:
      return width;
    case DistKind::kZipfian: {
      // Exact when cells == zipf_n and ranks are unscrambled; otherwise the
      // cell aggregates the ranks that land in it.
      double p = 0;
      const double lo = static_cast<double>(i) * width;
      const double hi = lo + width;
      for (size_t k = 0; k < spec_.zipf_n; ++k) {
        const double cell_lo = static_cast<double>(zipf_cell_[k]) /
                               static_cast<double>(spec_.zipf_n);
        const double cell_hi =
            cell_lo + 1.0 / static_cast<double>(spec_.zipf_n);
        const double overlap =
            std::max(0.0, std::min(hi, cell_hi) - std::max(lo, cell_lo));
        p += zipf_pmf_[k] * overlap * static_cast<double>(spec_.zipf_n);
      }
      return p;
    }
    case DistKind::kHotspot: {
      const double lo = static_cast<double>(i) * width;
      const double hi = lo + width;
      const double f = spec_.hot_fraction;
      const double hot_overlap = std::max(0.0, std::min(hi, f) - lo);
      const double cold_overlap = std::max(0.0, hi - std::max(lo, f));
      double p = 0;
      if (f > 0) p += spec_.hot_probability * hot_overlap / f;
      if (f < 1) p += (1.0 - spec_.hot_probability) * cold_overlap / (1.0 - f);
      return p;
    }
    case DistKind::kLogNormal:
      return 0.0;  // no closed form exposed; tests use moments instead
  }
  return 0.0;
}

}  // namespace workload
}  // namespace janus
