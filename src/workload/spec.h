#ifndef JANUS_WORKLOAD_SPEC_H_
#define JANUS_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "workload/distributions.h"

namespace janus {
namespace workload {

/// Proportions of the three op classes a run phase issues. Normalized by
/// Normalize(); all-zero mixes degenerate to query-only.
struct OpMix {
  double insert = 0.0;
  double del = 0.0;
  double query = 1.0;

  void Normalize();
};

/// How a phase places its predicate rectangles: each dimension's center is a
/// placement-distribution draw over the observed domain, the per-dimension
/// width is a width-distribution draw mapped onto [min_width_frac,
/// max_width_frac] of the domain extent, and the rectangle is clamped to the
/// domain.
struct RectSpec {
  DistSpec placement;  ///< center position per dimension
  DistSpec width;      ///< unit draw mapped to the width range
  double min_width_frac = 0.01;
  double max_width_frac = 0.25;
};

/// One named run phase: an op mix with per-op-class distributions and a
/// target op count (closed loop) or wall-clock duration.
struct PhaseSpec {
  std::string name = "run";
  /// Total ops this phase issues across all runner threads; 0 means "run
  /// for `seconds` of wall clock instead".
  size_t ops = 10000;
  double seconds = 0.0;
  OpMix mix;
  /// Governs insert key placement and delete-victim choice (a unit draw
  /// indexes the live-row set, so a skewed key_dist deletes hot rows more).
  DistSpec key_dist;
  RectSpec rect;
  AggFunc func = AggFunc::kSum;
};

/// A phased workload: one load phase (bulk rows whose predicate values
/// follow load_dist) followed by named run phases — the shape of treeline's
/// ycsbr PhasedWorkload, specialized to insert/delete/range-aggregate ops.
struct WorkloadSpec {
  std::string name = "custom";
  size_t load_rows = 100000;
  DistSpec load_dist;
  /// Predicate columns are 0..num_predicate_columns-1; the aggregate column
  /// is the next one (values ~ N(10, 2), matching GenerateUniform).
  int num_predicate_columns = 1;
  std::vector<PhaseSpec> phases;

  int agg_column() const { return num_predicate_columns; }

  /// Parse a phased-workload spec file so benches can run custom tenant
  /// mixes without a recompile. Line-based "key = value" format reusing
  /// the strict ArgMap parsing rules; '#' starts a comment; a
  /// "[phase NAME]" header opens a run phase. Global keys: name,
  /// load_rows, pred_columns, load_* (distribution). Phase keys: ops,
  /// seconds, insert, delete, query, func, min_width_frac,
  /// max_width_frac, and the key_* / place_* / width_* distribution
  /// families (<prefix>_dist, <prefix>_zipf_s, <prefix>_zipf_n,
  /// <prefix>_scramble, <prefix>_hot_fraction, <prefix>_hot_probability,
  /// <prefix>_lognormal_mu, <prefix>_lognormal_sigma).
  ///
  /// Strict: unknown keys, malformed values, unknown distribution or
  /// aggregate names, out-of-range fractions, missing '=' and a spec with
  /// no phases all throw ApiException(ApiErrorCode::kBadSpecFile) naming
  /// the file, section and offender — a typo aborts the run instead of
  /// silently benchmarking the wrong workload.
  static WorkloadSpec FromFile(const std::string& path);
};

/// Names of the built-in preset specs, in presentation order:
/// "ycsb-a" (50/50 churn/read, zipfian), "ycsb-b" (95% read, zipfian),
/// "ycsb-c" (read-only, uniform), "delete-heavy", "zipf-burst".
std::vector<std::string> PresetNames();

/// Build a preset spec scaled to `load_rows` rows and `phase_ops` ops per
/// run phase. Throws std::invalid_argument for unknown names (the message
/// lists the known ones).
WorkloadSpec Preset(const std::string& name, size_t load_rows,
                    size_t phase_ops);

/// One-line rendering of a spec (logging / reproducibility).
std::string ToString(const WorkloadSpec& spec);

}  // namespace workload
}  // namespace janus

#endif  // JANUS_WORKLOAD_SPEC_H_
