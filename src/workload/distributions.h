#ifndef JANUS_WORKLOAD_DISTRIBUTIONS_H_
#define JANUS_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"

namespace janus {
namespace workload {

/// Families of access/placement distributions the phased harness draws from.
/// Every family is sampled as a *unit position* in [0, 1); callers map that
/// position onto whatever space they address (a live-row index for deletes,
/// a predicate-domain coordinate for rectangle placement, a width range).
enum class DistKind {
  kUniform,    ///< iid U[0, 1)
  kZipfian,    ///< rank-bucketed Zipf(s) over `zipf_n` cells of [0, 1)
  kHotspot,    ///< hot_probability mass on the first hot_fraction of [0, 1)
  kLogNormal,  ///< exp(N(mu, sigma)) scaled by exp(mu + 3 sigma), clamped
};

/// Parse "uniform" / "zipfian" / "hotspot" / "lognormal"; `def` on anything
/// else.
DistKind ParseDistKind(const std::string& name, DistKind def);
const char* DistKindName(DistKind k);

/// Parameters of one distribution instance. Only the fields of the active
/// family are read; the rest are ignored (one struct keeps specs POD and
/// trivially printable).
struct DistSpec {
  DistKind kind = DistKind::kUniform;

  // --- zipfian -------------------------------------------------------------
  /// Exponent s of P(rank k) ~ (k+1)^-s, k in [0, zipf_n).
  double zipf_s = 0.99;
  /// Number of ranked cells [0,1) is divided into; the sampler is uniform
  /// within a cell, so zipf_n bounds the granularity of the skew.
  size_t zipf_n = 1024;
  /// Scramble cell ranks with a 64-bit mix hash so the popular cells spread
  /// over [0, 1) instead of piling up at the low end (YCSB's scrambled
  /// zipfian). The pmf over *ranks* is unchanged.
  bool scramble = false;

  // --- hotspot -------------------------------------------------------------
  double hot_fraction = 0.2;     ///< size of the hot region
  double hot_probability = 0.8;  ///< mass landing in the hot region

  // --- lognormal -----------------------------------------------------------
  double lognormal_mu = 0.0;
  double lognormal_sigma = 1.0;
};

/// Exact discrete sampler over {0..n-1} for an arbitrary pmf: Vose's alias
/// method (O(n) setup, O(1) per draw, matches the analytic distribution
/// exactly — the chi-squared acceptance test in the suite relies on this).
class AliasTable {
 public:
  /// `weights` need not be normalized; must be non-empty with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;
  size_t size() const { return prob_.size(); }
  /// Normalized probability of cell i (for tests / analytic comparison).
  double probability(size_t i) const { return pmf_[i]; }

 private:
  std::vector<double> prob_;    ///< acceptance threshold per cell
  std::vector<uint32_t> alias_; ///< fallback cell
  std::vector<double> pmf_;     ///< normalized input weights
};

/// Samples unit positions in [0, 1) following a DistSpec. Stateless apart
/// from precomputed tables; safe to share across threads (each thread draws
/// through its own Rng).
class UnitDistribution {
 public:
  explicit UnitDistribution(const DistSpec& spec);

  double Sample(Rng* rng) const;
  const DistSpec& spec() const { return spec_; }

  /// Analytic probability that a sample lands in cell i of `cells` equal
  /// subdivisions of [0, 1). Exact for uniform/zipfian/hotspot (zipfian
  /// requires cells == zipf_n and no scrambling); the chi-squared tests
  /// compare observed counts against this.
  double CellProbability(size_t i, size_t cells) const;

 private:
  DistSpec spec_;
  std::vector<double> zipf_pmf_;       ///< normalized rank probabilities
  std::vector<uint32_t> zipf_cell_;    ///< rank -> cell (identity or scrambled)
  std::unique_ptr<AliasTable> alias_;  ///< zipfian only
};

}  // namespace workload
}  // namespace janus

#endif  // JANUS_WORKLOAD_DISTRIBUTIONS_H_
