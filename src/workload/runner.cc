#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "api/driver.h"
#include "api/registry.h"
#include "data/column_store.h"
#include "data/ground_truth.h"
#include "stream/broker.h"
#include "util/timer.h"
#include "workload/distributions.h"

namespace janus {
namespace workload {

LatencyReservoir::LatencyReservoir(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  samples_.reserve(std::min<size_t>(capacity_, 4096));
}

void LatencyReservoir::Add(double ms, Rng* rng) {
  max_ms_ = std::max(max_ms_, ms);
  if (samples_.size() < capacity_) {
    samples_.push_back(ms);
  } else {
    const uint64_t j = rng->NextUint64(count_ + 1);
    if (j < capacity_) samples_[static_cast<size_t>(j)] = ms;
  }
  ++count_;
}

void LatencyReservoir::Merge(const LatencyReservoir& other, Rng* rng) {
  // Weighted take: each of the other's samples stands for other.count /
  // other.samples of its population; re-adding them one by one with the
  // combined count keeps the merged reservoir approximately uniform (exact
  // when neither side overflowed its capacity, the common case for phases
  // under ~capacity ops per thread).
  max_ms_ = std::max(max_ms_, other.max_ms_);
  for (double ms : other.samples_) {
    if (samples_.size() < capacity_) {
      samples_.push_back(ms);
    } else {
      const uint64_t j = rng->NextUint64(count_ + 1);
      if (j < capacity_) samples_[static_cast<size_t>(j)] = ms;
    }
    ++count_;
  }
  // Count the unsampled remainder too, so count() is the true op count.
  count_ += other.count_ - std::min<uint64_t>(other.count_,
                                              other.samples_.size());
}

double LatencyReservoir::PercentileMs(double p) const {
  return Percentile(samples_, p);
}

namespace {

/// Shared mutable state of one phase: the ground-truth mirror plus the live
/// id set (the mirror's own id column). All workers funnel through one
/// mutex — mirror maintenance is O(1) per op and the engine call happens
/// outside the lock, so the serialization cost is small next to a query.
struct Mirror {
  std::mutex mu;
  ColumnStore store;

  explicit Mirror(int num_columns) : store(num_columns) {}
};

/// Draw one predicate rectangle over the unit domain [0,1]^d.
AggQuery DrawQuery(const RectSpec& rect, const UnitDistribution& placement,
                   const UnitDistribution& width, int dims, int agg_column,
                   AggFunc func, Rng* rng) {
  std::vector<double> lo(static_cast<size_t>(dims)),
      hi(static_cast<size_t>(dims));
  const double wmin = std::clamp(rect.min_width_frac, 0.0, 1.0);
  const double wmax = std::clamp(rect.max_width_frac, wmin, 1.0);
  for (int d = 0; d < dims; ++d) {
    const double center = placement.Sample(rng);
    const double w = wmin + (wmax - wmin) * width.Sample(rng);
    const double half = w / 2.0;
    lo[static_cast<size_t>(d)] = std::clamp(center - half, 0.0, 1.0);
    hi[static_cast<size_t>(d)] = std::clamp(center + half, 0.0, 1.0);
  }
  AggQuery q;
  q.func = func;
  q.agg_column = agg_column;
  q.predicate_columns.resize(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) q.predicate_columns[static_cast<size_t>(d)] = d;
  q.rect = Rectangle(std::move(lo), std::move(hi));
  return q;
}

Tuple DrawInsert(const UnitDistribution& keys, int dims, int agg_column,
                 uint64_t id, Rng* rng) {
  Tuple t;
  t.id = id;
  for (int d = 0; d < dims; ++d) t[d] = keys.Sample(rng);
  t[agg_column] = rng->Normal(10.0, 2.0);
  return t;
}

struct WorkerResult {
  OpCounts ops;
  LatencyReservoir query_lat;
  LatencyReservoir update_lat;

  explicit WorkerResult(size_t cap) : query_lat(cap), update_lat(cap) {}
};

/// One closed-loop worker: claims ops off the shared counter (or runs until
/// the deadline), executes them against the engine, and samples latency.
void RunWorker(AqpEngine* engine, Mirror* mirror, const PhaseSpec& phase,
               const UnitDistribution& keys, const UnitDistribution& placement,
               const UnitDistribution& width, int dims, int agg_column,
               std::atomic<uint64_t>* next_op, std::atomic<uint64_t>* next_id,
               const Timer* phase_timer, uint64_t seed, WorkerResult* out) {
  Rng rng(seed);
  Timer op_timer;
  while (true) {
    if (phase.ops > 0) {
      if (next_op->fetch_add(1, std::memory_order_relaxed) >= phase.ops) break;
    } else if (phase_timer->ElapsedSeconds() >= phase.seconds) {
      break;
    }
    const double pick = rng.NextDouble();
    if (pick < phase.mix.insert) {
      const uint64_t id = next_id->fetch_add(1, std::memory_order_relaxed);
      const Tuple t = DrawInsert(keys, dims, agg_column, id, &rng);
      op_timer.Reset();
      engine->Insert(t);
      out->update_lat.Add(op_timer.ElapsedMillis(), &rng);
      {
        std::lock_guard<std::mutex> lock(mirror->mu);
        mirror->store.Insert(t);
      }
      ++out->ops.inserts;
    } else if (pick < phase.mix.insert + phase.mix.del) {
      uint64_t victim = 0;
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(mirror->mu);
        const size_t n = mirror->store.size();
        if (n > 0) {
          const double u = keys.Sample(&rng);
          const size_t idx =
              std::min(static_cast<size_t>(u * static_cast<double>(n)), n - 1);
          victim = mirror->store.id_at(idx);
          mirror->store.Delete(victim);
          have = true;
        }
      }
      if (!have) {
        ++out->ops.delete_misses;
        continue;
      }
      op_timer.Reset();
      engine->Delete(victim);
      out->update_lat.Add(op_timer.ElapsedMillis(), &rng);
      ++out->ops.deletes;
    } else {
      const AggQuery q = DrawQuery(phase.rect, placement, width, dims,
                                   agg_column, phase.func, &rng);
      op_timer.Reset();
      (void)engine->Query(q);
      out->query_lat.Add(op_timer.ElapsedMillis(), &rng);
      ++out->ops.queries;
    }
  }
}

/// Accuracy epilogue: after the phase's workers have joined, answer fresh
/// queries from the phase's rectangle spec and compare against the exact
/// answer over the mirror (both sides see the identical phase-end state, so
/// the relative error is well-defined — mid-phase truths are moving
/// targets). Zero/undefined truths are skipped, matching bench/common.h.
void MeasureAccuracy(const AqpEngine& engine, const ColumnStore& mirror,
                     const PhaseSpec& phase, int dims, int agg_column,
                     size_t num_queries, uint64_t seed, PhaseReport* report) {
  if (num_queries == 0) return;
  const UnitDistribution placement(phase.rect.placement);
  const UnitDistribution width(phase.rect.width);
  Rng rng(seed);
  std::vector<double> errors;
  size_t covered = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const AggQuery q = DrawQuery(phase.rect, placement, width, dims,
                                 agg_column, phase.func, &rng);
    const QueryResult r = engine.Query(q);
    const auto truth = ExactAnswer(mirror, q);
    const auto rel = RelativeError(truth, r.estimate);
    if (!rel.has_value()) continue;
    errors.push_back(*rel);
    if (std::abs(r.estimate - *truth) <= r.ci_half_width) ++covered;
  }
  report->accuracy_evaluated = errors.size();
  if (!errors.empty()) {
    report->err_median = Median(errors);
    report->err_p95 = Percentile(errors, 95);
    report->ci_coverage =
        static_cast<double>(covered) / static_cast<double>(errors.size());
  }
}

/// Stream-mode phase: ops are generated in order onto the broker topics
/// (mirror updated at generation time), then one EngineDriver consumer
/// drains them. Delete victims come only from rows live at phase start, so
/// a delete can never outrun its insert across the independent topics.
OpCounts StreamPhase(Broker* broker, EngineDriver* driver,
                     Mirror* mirror, const PhaseSpec& phase,
                     const UnitDistribution& keys,
                     const UnitDistribution& placement,
                     const UnitDistribution& width, int dims, int agg_column,
                     std::atomic<uint64_t>* next_id, uint64_t seed,
                     double* drain_seconds) {
  OpCounts ops;
  Rng rng(seed);
  std::vector<uint64_t> phase_live = mirror->store.ids();
  const size_t total = phase.ops > 0 ? phase.ops : 10000;
  for (size_t i = 0; i < total; ++i) {
    const double pick = rng.NextDouble();
    if (pick < phase.mix.insert) {
      const uint64_t id = next_id->fetch_add(1, std::memory_order_relaxed);
      const Tuple t = DrawInsert(keys, dims, agg_column, id, &rng);
      broker->insert_topic()->Append(t);
      mirror->store.Insert(t);
      ++ops.inserts;
    } else if (pick < phase.mix.insert + phase.mix.del) {
      if (phase_live.empty()) {
        ++ops.delete_misses;
        continue;
      }
      const double u = keys.Sample(&rng);
      const size_t idx = std::min(
          static_cast<size_t>(u * static_cast<double>(phase_live.size())),
          phase_live.size() - 1);
      const uint64_t victim = phase_live[idx];
      phase_live[idx] = phase_live.back();
      phase_live.pop_back();
      mirror->store.Delete(victim);
      Tuple t;
      t.id = victim;
      broker->delete_topic()->Append(t);
      ++ops.deletes;
    } else {
      broker->query_topic()->Append(DrawQuery(phase.rect, placement, width,
                                              dims, agg_column, phase.func,
                                              &rng));
      ++ops.queries;
    }
  }
  Timer drain;
  driver->Drain();
  *drain_seconds = drain.ElapsedSeconds();
  // Results accumulate per phase only: drain them so a long multi-phase run
  // does not grow the driver's buffer without bound.
  (void)driver->TakeResults();
  return ops;
}

}  // namespace

RunReport RunPhasedWorkload(const WorkloadSpec& spec,
                            const RunnerOptions& options) {
  const int dims = std::max(spec.num_predicate_columns, 1);
  const int agg_column = dims;
  const int num_columns = dims + 1;

  EngineConfig cfg = options.engine_cfg;
  cfg.agg_column = agg_column;
  cfg.predicate_columns.clear();
  for (int d = 0; d < dims; ++d) cfg.predicate_columns.push_back(d);
  Schema schema;
  for (int d = 0; d < dims; ++d) {
    schema.column_names.push_back("p" + std::to_string(d));
  }
  schema.column_names.push_back("agg");
  cfg.schema = schema;

  RunReport report;
  report.spec = spec.name;
  report.engine = cfg.engine;
  report.load_rows = spec.load_rows;
  report.threads = options.stream ? 1 : std::max(options.threads, 1);
  report.stream = options.stream;

  // --- load phase -----------------------------------------------------------
  const UnitDistribution load_dist(spec.load_dist);
  Rng load_rng(options.seed);
  std::vector<Tuple> rows;
  rows.reserve(spec.load_rows);
  for (size_t i = 0; i < spec.load_rows; ++i) {
    rows.push_back(DrawInsert(load_dist, dims, agg_column,
                              static_cast<uint64_t>(i), &load_rng));
  }
  auto engine = EngineRegistry::Create(cfg);
  Timer load_timer;
  engine->LoadInitial(rows);
  engine->Initialize();
  engine->RunCatchupToGoal();
  report.load_seconds = load_timer.ElapsedSeconds();

  Mirror mirror(num_columns);
  mirror.store.BulkAppend(rows);
  rows.clear();
  rows.shrink_to_fit();

  std::atomic<uint64_t> next_id{spec.load_rows};

  // Stream-mode plumbing (one broker + driver across all phases; offsets
  // advance monotonically through the phases' appends).
  std::unique_ptr<Broker> broker;
  std::unique_ptr<EngineDriver> driver;
  if (options.stream) {
    broker = std::make_unique<Broker>();
    // Measure engine cost, not the simulated broker round-trip.
    broker->insert_topic()->set_poll_overhead_ns(0);
    broker->delete_topic()->set_poll_overhead_ns(0);
    driver = std::make_unique<EngineDriver>(engine.get(), broker.get());
  }

  // --- run phases -----------------------------------------------------------
  for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
    const PhaseSpec& phase = spec.phases[pi];
    const UnitDistribution keys(phase.key_dist);
    const UnitDistribution placement(phase.rect.placement);
    const UnitDistribution width(phase.rect.width);
    const uint64_t phase_seed = options.seed + 1000 * (pi + 1);

    PhaseReport pr;
    pr.phase = phase.name;

    if (options.stream) {
      double drain_seconds = 0;
      pr.ops = StreamPhase(broker.get(), driver.get(), &mirror, phase, keys,
                           placement, width, dims, agg_column, &next_id,
                           phase_seed, &drain_seconds);
      pr.seconds = drain_seconds;
    } else {
      const int threads = std::max(options.threads, 1);
      std::atomic<uint64_t> next_op{0};
      std::vector<WorkerResult> results(
          static_cast<size_t>(threads),
          WorkerResult(options.latency_reservoir));
      std::vector<std::thread> workers;
      Timer phase_timer;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back(RunWorker, engine.get(), &mirror, std::cref(phase),
                             std::cref(keys), std::cref(placement),
                             std::cref(width), dims, agg_column, &next_op,
                             &next_id, &phase_timer,
                             phase_seed + 17 * static_cast<uint64_t>(t + 1),
                             &results[static_cast<size_t>(t)]);
      }
      for (std::thread& w : workers) w.join();
      pr.seconds = phase_timer.ElapsedSeconds();

      Rng merge_rng(phase_seed + 999);
      LatencyReservoir query_lat(options.latency_reservoir);
      LatencyReservoir update_lat(options.latency_reservoir);
      for (const WorkerResult& r : results) {
        pr.ops.inserts += r.ops.inserts;
        pr.ops.deletes += r.ops.deletes;
        pr.ops.delete_misses += r.ops.delete_misses;
        pr.ops.queries += r.ops.queries;
        query_lat.Merge(r.query_lat, &merge_rng);
        update_lat.Merge(r.update_lat, &merge_rng);
      }
      pr.query_samples = query_lat.count();
      pr.query_p50_ms = query_lat.PercentileMs(50);
      pr.query_p90_ms = query_lat.PercentileMs(90);
      pr.query_p99_ms = query_lat.PercentileMs(99);
      pr.query_p999_ms = query_lat.PercentileMs(99.9);
      pr.query_max_ms = query_lat.max_ms();
      pr.update_samples = update_lat.count();
      pr.update_p50_ms = update_lat.PercentileMs(50);
      pr.update_p99_ms = update_lat.PercentileMs(99);
      pr.update_max_ms = update_lat.max_ms();
    }

    if (pr.seconds > 0) {
      pr.ops_per_sec = static_cast<double>(pr.ops.total()) / pr.seconds;
      pr.queries_per_sec = static_cast<double>(pr.ops.queries) / pr.seconds;
    }

    MeasureAccuracy(*engine, mirror.store, phase, dims, agg_column,
                    options.accuracy_queries, phase_seed + 7, &pr);
    report.phases.push_back(std::move(pr));
  }

  report.final_stats = engine->Stats();
  return report;
}

}  // namespace workload
}  // namespace janus
