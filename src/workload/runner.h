#ifndef JANUS_WORKLOAD_RUNNER_H_
#define JANUS_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/engine.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/spec.h"

namespace janus {
namespace workload {

/// Fixed-size uniform reservoir over per-op latencies (algorithm R): keeps
/// an unbiased sample of up to `capacity` observations plus the exact count
/// and maximum, so phase percentiles stay O(capacity) in memory no matter
/// how many ops a phase runs. Percentiles are linearly interpolated between
/// closest ranks (util/stats.h Percentile — the NumPy/Excel "linear",
/// Hyndman–Fan type 7 definition).
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 1 << 16);

  void Add(double ms, Rng* rng);
  void Merge(const LatencyReservoir& other, Rng* rng);

  uint64_t count() const { return count_; }
  double max_ms() const { return max_ms_; }
  /// p in [0, 100]; 0 for an empty reservoir.
  double PercentileMs(double p) const;

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  double max_ms_ = 0;
  std::vector<double> samples_;
};

/// How the runner drives the engine.
struct RunnerOptions {
  /// Engine under test; cfg.engine names the registry backend. The runner
  /// overrides the query-template fields (agg_column, predicate_columns,
  /// schema) to match the spec.
  EngineConfig engine_cfg;
  /// Closed-loop worker threads per run phase (direct mode).
  int threads = 1;
  /// Latency reservoir capacity per op class.
  size_t latency_reservoir = 1 << 16;
  /// Per-phase accuracy epilogue: this many queries drawn from the phase's
  /// rectangle spec are answered by the engine and checked against the
  /// exact answer over the runner's ground-truth mirror. 0 disables.
  size_t accuracy_queries = 64;
  /// Drive the ops through a Broker + EngineDriver (the streaming scenario)
  /// instead of calling the engine directly. Per-op latency is not defined
  /// in this mode (the driver consumes batches), so only phase throughput
  /// and accuracy are reported; `threads` is ignored (one consumer).
  bool stream = false;
  uint64_t seed = 42;
};

struct OpCounts {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Delete ops skipped because no live row was available.
  uint64_t delete_misses = 0;
  uint64_t queries = 0;

  uint64_t total() const { return inserts + deletes + delete_misses + queries; }
};

/// Everything measured in one run phase.
struct PhaseReport {
  std::string phase;
  double seconds = 0;
  OpCounts ops;
  double ops_per_sec = 0;
  double queries_per_sec = 0;

  // Query-op latency percentiles (ms); zero when no queries ran or in
  // stream mode.
  double query_p50_ms = 0;
  double query_p90_ms = 0;
  double query_p99_ms = 0;
  double query_p999_ms = 0;
  double query_max_ms = 0;
  uint64_t query_samples = 0;

  // Update-op (insert + delete) latency percentiles (ms).
  double update_p50_ms = 0;
  double update_p99_ms = 0;
  double update_max_ms = 0;
  uint64_t update_samples = 0;

  // Accuracy epilogue vs the ground-truth mirror at phase end. Queries with
  // zero/undefined truths are skipped (they have no relative error).
  size_t accuracy_evaluated = 0;
  double err_median = 0;
  double err_p95 = 0;
  /// Fraction of evaluated queries whose truth fell inside the reported CI.
  double ci_coverage = 0;
};

struct RunReport {
  std::string spec;
  std::string engine;
  size_t load_rows = 0;
  double load_seconds = 0;
  int threads = 0;
  bool stream = false;
  std::vector<PhaseReport> phases;
  EngineStats final_stats;
};

/// Closed-loop phased workload runner: builds the engine from the registry,
/// bulk-loads the spec's load phase, then drives each run phase with
/// `threads` workers through the AqpEngine concurrency contract (or one
/// Broker/EngineDriver consumer in stream mode), sampling per-op latency
/// into reservoirs and measuring accuracy against a mirror of the live
/// table it maintains alongside the engine.
RunReport RunPhasedWorkload(const WorkloadSpec& spec,
                            const RunnerOptions& options);

}  // namespace workload
}  // namespace janus

#endif  // JANUS_WORKLOAD_RUNNER_H_
