#include "api/engine.h"

#include <atomic>

#include "util/thread_pool.h"

namespace janus {

std::vector<QueryResult> AqpEngine::QueryBatch(
    const std::vector<AggQuery>& queries, ThreadPool* pool) const {
  std::vector<QueryResult> out(queries.size());
  if (pool == nullptr || pool->num_threads() <= 1 || queries.size() < 2) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = Query(queries[i]);
    return out;
  }
  // Work-stealing over a shared cursor: each worker grabs the next
  // unanswered query, so skewed per-query costs still balance.
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool->num_threads(), queries.size());
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([this, &queries, &out, &next] {
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        out[i] = Query(queries[i]);
      }
    });
  }
  pool->WaitIdle();
  return out;
}

void AqpEngine::SaveState(persist::Writer* w) const {
  (void)w;
  throw persist::PersistError(std::string("engine '") + name() +
                              "' does not implement snapshot persistence");
}

void AqpEngine::LoadState(persist::Reader* r) {
  (void)r;
  throw persist::PersistError(std::string("engine '") + name() +
                              "' does not implement snapshot persistence");
}

void AqpEngine::Save(const std::string& path, const SnapshotMeta& meta) const {
  persist::Writer payload;
  SnapshotMeta stamped = meta;
  stamped.engine = name();
  persist::WriteMeta(stamped, &payload);
  SaveState(&payload);
  persist::WriteSnapshotFile(path, payload);
}

SnapshotMeta AqpEngine::Load(const std::string& path) {
  // File-level verification (magic, version, size, checksum) happens fully
  // before any engine state is touched, so file corruption never mutates a
  // live engine. State-level mismatches inside LoadState (wrong config for
  // this snapshot) throw after mutation has begun — discard the engine and
  // recreate it in that case.
  const persist::SnapshotFile file = persist::ReadSnapshotFile(path);
  persist::Reader r(file.payload(), file.payload_size());
  const SnapshotMeta meta = persist::ReadMeta(&r);
  if (meta.engine != name()) {
    throw persist::PersistError("snapshot mismatch: file " + path +
                                " was written by engine '" + meta.engine +
                                "', this engine is '" + name() + "'");
  }
  LoadState(&r);
  if (!r.AtEnd()) {
    throw persist::PersistError("snapshot corrupt: " +
                                std::to_string(r.remaining()) +
                                " trailing bytes after engine state");
  }
  return meta;
}

}  // namespace janus
