#include "api/engine.h"

#include <atomic>

#include "util/thread_pool.h"

namespace janus {

std::vector<QueryResult> AqpEngine::QueryBatch(
    const std::vector<AggQuery>& queries, ThreadPool* pool) const {
  std::vector<QueryResult> out(queries.size());
  if (pool == nullptr || pool->num_threads() <= 1 || queries.size() < 2) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = Query(queries[i]);
    return out;
  }
  // Work-stealing over a shared cursor: each worker grabs the next
  // unanswered query, so skewed per-query costs still balance.
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool->num_threads(), queries.size());
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([this, &queries, &out, &next] {
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        out[i] = Query(queries[i]);
      }
    });
  }
  pool->WaitIdle();
  return out;
}

}  // namespace janus
