#include "api/engine.h"

#include "api/error.h"
#include "data/parallel_scan.h"
#include "util/invariants.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace janus {

namespace {

/// Query-shape validation shared by Query and QueryBatch: the facade
/// rejects malformed requests with a typed result instead of letting a
/// backend index out of bounds or throw.
ApiError ValidateQuery(const AggQuery& q) {
  if (q.predicate_columns.empty()) {
    return ApiError{ApiErrorCode::kInvalidArgument,
                    "query has no predicate columns"};
  }
  if (q.rect.dims() != static_cast<int>(q.predicate_columns.size())) {
    return ApiError{ApiErrorCode::kInvalidArgument,
                    "rectangle dims (" + std::to_string(q.rect.dims()) +
                        ") != predicate columns (" +
                        std::to_string(q.predicate_columns.size()) + ")"};
  }
  for (int c : q.predicate_columns) {
    if (c < 0 || c >= kMaxColumns) {
      return ApiError{ApiErrorCode::kInvalidArgument,
                      "predicate column " + std::to_string(c) +
                          " outside [0, " + std::to_string(kMaxColumns) + ")"};
    }
  }
  if (q.agg_column < 0 || q.agg_column >= kMaxColumns) {
    return ApiError{ApiErrorCode::kInvalidArgument,
                    "aggregate column " + std::to_string(q.agg_column) +
                        " outside [0, " + std::to_string(kMaxColumns) + ")"};
  }
  return ApiError::Ok();
}

QueryResult ErrorResult(const ApiError& e) {
  QueryResult r;
  r.ok = false;
  r.error_code = static_cast<uint32_t>(e.code);
  r.error_detail = e.detail;
  return r;
}

}  // namespace

// --- public API: the concurrency contract ----------------------------------

void AqpEngine::LoadInitial(const std::vector<Tuple>& rows) {
  ExclusiveRoom room(base_rooms());
  LoadInitialImpl(rows);
}

void AqpEngine::Initialize() {
  ExclusiveRoom room(base_rooms());
  InitializeImpl();
}

void AqpEngine::Insert(const Tuple& t) {
  UpdateRoom room(base_rooms());
  if (update_concurrency() == UpdateConcurrency::kSerial) {
    MutexLock lock(&update_mu_);
    InsertImpl(t);
    return;
  }
  InsertImpl(t);
}

bool AqpEngine::Delete(uint64_t id) {
  UpdateRoom room(base_rooms());
  if (update_concurrency() == UpdateConcurrency::kSerial) {
    MutexLock lock(&update_mu_);
    return DeleteImpl(id);
  }
  return DeleteImpl(id);
}

QueryResult AqpEngine::Query(const AggQuery& q) const {
  const ApiError bad = ValidateQuery(q);
  if (!bad.ok()) return ErrorResult(bad);
  ReadRoom room(base_rooms());
  try {
    return QueryImpl(q);
  } catch (const std::exception& e) {
    // The typed surface: a backend exception becomes an error-slotted
    // result, never an escaped exception (the serving tier relies on this —
    // a served query must produce a response frame, not a connection reset).
    return ErrorResult(ApiErrorFromException(e));
  }
}

std::vector<QueryResult> AqpEngine::QueryBatch(
    const std::vector<AggQuery>& queries, ThreadPool* pool) const {
  // Shape-validate up front; a batch with any invalid member still answers
  // the valid ones (results are positionally aligned, so per-query error
  // slots carry the rejections).
  std::vector<size_t> valid;
  valid.reserve(queries.size());
  std::vector<QueryResult> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const ApiError bad = ValidateQuery(queries[i]);
    if (bad.ok()) {
      valid.push_back(i);
    } else {
      out[i] = ErrorResult(bad);
    }
  }
  if (valid.empty()) return out;
  // All-valid batches (the hot path) avoid the compaction copy.
  const bool all_valid = valid.size() == queries.size();
  std::vector<AggQuery> accepted;
  if (!all_valid) {
    accepted.reserve(valid.size());
    for (size_t i : valid) accepted.push_back(queries[i]);
  }
  ReadRoom room(base_rooms());
  try {
    std::vector<QueryResult> answered =
        QueryBatchImpl(all_valid ? queries : accepted, pool);
    for (size_t j = 0; j < valid.size(); ++j) {
      out[valid[j]] = std::move(answered[j]);
    }
  } catch (const std::exception& e) {
    const QueryResult err = ErrorResult(ApiErrorFromException(e));
    for (size_t i : valid) out[i] = err;
  }
  return out;
}

void AqpEngine::RunCatchupToGoal() {
  // Catch-up shares the update room with inserts/deletes (leaf statistics
  // are per-leaf locked) but is serialized against itself: the catch-up
  // engine's draw RNG and progress counters are single-writer state.
  UpdateRoom room(base_rooms());
  MutexLock lock(&update_mu_);
  RunCatchupToGoalImpl();
}

size_t AqpEngine::StepCatchup(size_t batch) {
  UpdateRoom room(base_rooms());
  MutexLock lock(&update_mu_);
  return StepCatchupImpl(batch);
}

void AqpEngine::Reinitialize() {
  ExclusiveRoom room(base_rooms());
  ReinitializeImpl();
}

EngineStats AqpEngine::Stats() const {
  ReadRoom room(base_rooms());
  return StatsImpl();
}

void AqpEngine::CheckInvariants() const {
  // Reader role: the audit only inspects state, and fencing out updates for
  // its duration is exactly what makes a mid-stream audit meaningful.
  ReadRoom room(base_rooms());
  CheckInvariantsImpl();
}

void AqpEngine::CheckInvariantsImpl() const {
  if (const DynamicTable* t = table()) t->store().CheckInvariants();
}

std::vector<QueryResult> AqpEngine::QueryBatchImpl(
    const std::vector<AggQuery>& queries, ThreadPool* pool) const {
  std::vector<QueryResult> out(queries.size());
  if (pool == nullptr || pool->num_threads() <= 1 || queries.size() < 2) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = QueryImpl(queries[i]);
    return out;
  }
  // Work-stealing over a shared cursor (scan::ForEachIndex): each worker
  // grabs the next unanswered query, so skewed per-query costs still
  // balance, and workers call QueryImpl directly — the caller already holds
  // the read room for the whole batch. Helpers arrive via one gang
  // dispatch, the caller drains the cursor too, and a batch issued from
  // inside another fan-out's worker runs inline, so concurrent batches on
  // one shared pool neither wait on each other nor deadlock.
  scan::ExecContext ctx;
  ctx.pool = pool;
  const size_t workers = std::min(pool->num_threads() + 1, queries.size());
  scan::ForEachIndex(ctx, queries.size(), workers, [this, &queries, &out](
                                                       size_t i) {
    out[i] = QueryImpl(queries[i]);
  });
  return out;
}

void AqpEngine::SaveState(persist::Writer* w) const {
  (void)w;
  throw persist::PersistError(std::string("engine '") + name() +
                              "' does not implement snapshot persistence");
}

void AqpEngine::LoadState(persist::Reader* r) {
  (void)r;
  throw persist::PersistError(std::string("engine '") + name() +
                              "' does not implement snapshot persistence");
}

void AqpEngine::Save(const std::string& path, const SnapshotMeta& meta) const {
  // Reader role: concurrent queries may proceed, updates are fenced off for
  // the duration of the state capture (kInternal engines quiesce per shard).
  ReadRoom room(base_rooms());
  persist::Writer payload;
  SnapshotMeta stamped = meta;
  stamped.engine = name();
  persist::WriteMeta(stamped, &payload);
  SaveState(&payload);
  persist::WriteSnapshotFile(path, payload);
}

SnapshotMeta AqpEngine::Load(const std::string& path) {
  ExclusiveRoom room(base_rooms());
  // File-level verification (magic, version, size, checksum) happens fully
  // before any engine state is touched, so file corruption never mutates a
  // live engine. State-level mismatches inside LoadState (wrong config for
  // this snapshot) throw after mutation has begun — discard the engine and
  // recreate it in that case.
  const persist::SnapshotFile file = persist::ReadSnapshotFile(path);
  persist::Reader r(file.payload(), file.payload_size());
  const SnapshotMeta meta = persist::ReadMeta(&r);
  if (meta.engine != name()) {
    throw persist::PersistError("snapshot mismatch: file " + path +
                                " was written by engine '" + meta.engine +
                                "', this engine is '" + name() + "'");
  }
  LoadState(&r);
  if (!r.AtEnd()) {
    throw persist::PersistError("snapshot corrupt: " +
                                std::to_string(r.remaining()) +
                                " trailing bytes after engine state");
  }
  return meta;
}

}  // namespace janus
