#ifndef JANUS_API_ENGINE_H_
#define JANUS_API_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dpt.h"
#include "data/table.h"
#include "data/workload.h"
#include "persist/snapshot.h"

namespace janus {

class ThreadPool;

/// Uniform operational snapshot of any engine: counters every backend can
/// fill plus the cost metrics the experiment harnesses report. Fields an
/// engine has no notion of stay at their zero values.
struct EngineStats {
  std::string engine;      ///< registry name of the backend
  size_t rows = 0;         ///< live tuples in the archive
  size_t sample_size = 0;  ///< synopsis sample footprint (tuples)
  int num_templates = 0;   ///< registered query templates (multi)

  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t repartitions = 0;
  uint64_t partial_repartitions = 0;
  uint64_t trigger_checks = 0;
  uint64_t trigger_fires = 0;
  uint64_t reservoir_resamples = 0;

  size_t catchup_processed = 0;
  double catchup_processing_seconds = 0;
  double last_reopt_seconds = 0;      ///< last re-optimization, wall clock
  double last_blocking_seconds = 0;   ///< blocking step of the last re-opt
  double build_seconds = 0;           ///< last full (re)build / retrain
  double partition_seconds = 0;       ///< optimizer-only share of the build

  /// Heap footprint of the columnar archive (ids + columns + id index);
  /// sharded engines report the sum over their shards.
  size_t archive_bytes = 0;
  /// Estimated heap footprint of the synopsis state answering queries
  /// (partition trees, reservoirs / strata samples, learned models).
  size_t synopsis_bytes = 0;
};

/// The one dynamic-AQP engine interface (the paper's data/query API of
/// Sec. 3.2): bulk load, build, a stream of inserts and deletes, approximate
/// aggregate queries with confidence intervals, and explicit control over
/// catch-up and re-optimization. Every synopsis backend — JanusAQP, the
/// multi-template manager, the RS/SRS/SPN baselines and the static SPT —
/// implements it, so benches, examples and the streaming driver are written
/// once against this class and run against any registered engine.
///
/// Contracts (inherited from the underlying systems):
///  - LoadInitial() may be called repeatedly before Initialize().
///  - Insert()/Delete() require Initialize() to have run; engines whose
///    maintenance path is thread-safe (janus) accept them from multiple
///    threads, the others must be driven from one thread.
///  - Query()/QueryBatch() must be externally quiesced against concurrent
///    updates, exactly as the experiment drivers do; concurrent *readers*
///    are always allowed.
///  - Exception: the "sharded:<inner>" engines (api/sharded.h) strengthen
///    this to a fully concurrent contract — Insert()/Delete() from any
///    number of threads and Query()/QueryBatch()/Stats() concurrent with
///    updates, with an internal per-shard quiesce point providing
///    read-your-writes. No external quiescing is required for them.
class AqpEngine {
 public:
  virtual ~AqpEngine() = default;

  /// Registry name of this engine ("janus", "rs", ...).
  virtual const char* name() const = 0;

  /// Bulk-load historical data without per-update overhead.
  virtual void LoadInitial(const std::vector<Tuple>& rows) = 0;

  /// Build the synopsis from the loaded archive.
  virtual void Initialize() = 0;

  /// Process one insertion.
  virtual void Insert(const Tuple& t) = 0;

  /// Process one deletion by tuple id. Returns false if the id is not live.
  virtual bool Delete(uint64_t id) = 0;

  /// Answer one query from the synopsis (never touches the archive).
  virtual QueryResult Query(const AggQuery& q) const = 0;

  /// Answer a whole workload. With a pool, queries fan out over its worker
  /// threads (the synopsis is read-only during a batch, so parallel readers
  /// are safe); without one the batch runs inline. Results are positionally
  /// aligned with `queries`.
  virtual std::vector<QueryResult> QueryBatch(
      const std::vector<AggQuery>& queries, ThreadPool* pool = nullptr) const;

  /// Drive background statistics refinement to its goal. No-op for engines
  /// without a catch-up phase.
  virtual void RunCatchupToGoal() {}

  /// Absorb up to `batch` catch-up samples; returns how many were absorbed
  /// (0 for engines without catch-up).
  virtual size_t StepCatchup(size_t batch) {
    (void)batch;
    return 0;
  }

  /// Full re-optimization / retrain from the current archive. No-op for
  /// engines whose synopsis never moves (rs, srs).
  virtual void Reinitialize() {}

  /// Uniform counter/memory snapshot.
  virtual EngineStats Stats() const = 0;

  /// The evolving archive table, when the engine owns one (all built-in
  /// engines do). Exact ground truths in examples run the columnar scan
  /// kernels over table()->store().
  virtual const DynamicTable* table() const { return nullptr; }

  /// The primary partition-tree synopsis, for experiment introspection
  /// (leaf rectangles, tree shape); nullptr for engines without one.
  virtual const Dpt* synopsis() const { return nullptr; }

  // --- snapshot persistence & crash recovery --------------------------------
  //
  // Every built-in backend (sharded compositions included) captures its
  // *complete* operational state: a restored engine answers queries
  // bit-identically to the saved one, and — because samplers, RNGs and index
  // structures round-trip exactly — processing the same update stream after
  // restore reproduces the uninterrupted run exactly. Recovery therefore
  // composes with the broker: snapshot + replayed stream tail == never
  // crashed (see EngineDriver::SaveSnapshot/LoadSnapshot).
  //
  // Concurrency: Save/SaveState read unsynchronized engine state — quiesce
  // updates first, exactly like Query(). The "sharded:*" engines are again
  // the exception: their SaveState/LoadState quiesce each shard internally,
  // so a snapshot taken under concurrent ingest is a consistent per-shard
  // cut of everything enqueued before the call.

  /// Serialize complete engine state into `w`. Engines registered at
  /// runtime without an override reject with persist::PersistError.
  virtual void SaveState(persist::Writer* w) const;

  /// Restore state from `r` into an engine constructed with the *same*
  /// EngineConfig (configuration is not part of the snapshot). Throws
  /// persist::PersistError on corrupt or mismatched payloads.
  virtual void LoadState(persist::Reader* r);

  /// Write a versioned, checksummed snapshot file (magic + format version +
  /// FNV-1a checksum; see persist/snapshot.h). `meta.engine` is stamped with
  /// name() automatically; the broker offsets are the caller's. Throws
  /// persist::PersistError on failure; on success the file is complete (the
  /// write is staged through a temp file and renamed).
  void Save(const std::string& path, const SnapshotMeta& meta = {}) const;

  /// Verify and load a snapshot file written by an engine of the same
  /// registry name; returns the recovery metadata (broker offsets at save
  /// time). Throws persist::PersistError on bad magic / version / checksum /
  /// truncation / engine mismatch — never crashes on corrupt input.
  SnapshotMeta Load(const std::string& path);
};

}  // namespace janus

#endif  // JANUS_API_ENGINE_H_
