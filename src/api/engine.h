#ifndef JANUS_API_ENGINE_H_
#define JANUS_API_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dpt.h"
#include "data/table.h"
#include "data/workload.h"
#include "persist/snapshot.h"
#include "util/mutex.h"
#include "util/room_lock.h"
#include "util/thread_annotations.h"

namespace janus {

class ThreadPool;

/// Uniform operational snapshot of any engine: counters every backend can
/// fill plus the cost metrics the experiment harnesses report. Fields an
/// engine has no notion of stay at their zero values.
struct EngineStats {
  std::string engine;      ///< registry name of the backend
  size_t rows = 0;         ///< live tuples in the archive
  size_t sample_size = 0;  ///< synopsis sample footprint (tuples)
  int num_templates = 0;   ///< registered query templates (multi)

  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t repartitions = 0;
  uint64_t partial_repartitions = 0;
  /// Partial re-partitions that silently degraded to a full rebuild
  /// (region too thin, single-leaf subtree, or sub-optimizer failure).
  uint64_t partial_repartition_fallbacks = 0;
  uint64_t trigger_checks = 0;
  uint64_t trigger_fires = 0;
  uint64_t reservoir_resamples = 0;
  /// Background re-optimization pipeline (reopt_mode=background): side
  /// trees adopted, side trees discarded at adoption, and double-applied
  /// delta ops replayed into side trees.
  uint64_t background_reopts = 0;
  uint64_t background_discards = 0;
  uint64_t delta_ops_replayed = 0;

  size_t catchup_processed = 0;
  double catchup_processing_seconds = 0;

  /// Archival scans that took the morsel-parallel path vs stayed serial
  /// (cost cutoff, scan_threads=1, or nested inside another scan).
  uint64_t parallel_scans = 0;
  uint64_t serial_scans = 0;
  /// Subset of serial_scans that stayed serial only because they were
  /// issued from inside a scan worker (fan-out suppressed to avoid
  /// deadlocking the shared pool). Persistently non-zero values mean a
  /// heavy path is being re-parallelized from within a parallel region.
  uint64_t nested_serial_scans = 0;
  /// Morsels executed by pool helpers rather than the issuing thread — the
  /// work-stealing share of all parallel scans (0 when helpers never wake
  /// in time, which is the expected idle-pool fast path).
  uint64_t stolen_morsels = 0;
  double last_reopt_seconds = 0;      ///< last re-optimization, wall clock
  double last_blocking_seconds = 0;   ///< blocking step of the last re-opt
  double build_seconds = 0;           ///< last full (re)build / retrain
  double partition_seconds = 0;       ///< optimizer-only share of the build

  /// Heap footprint of the columnar archive (ids + columns + id index);
  /// sharded engines report the sum over their shards.
  size_t archive_bytes = 0;
  /// Estimated heap footprint of the synopsis state answering queries
  /// (partition trees, reservoirs / strata samples, learned models).
  size_t synopsis_bytes = 0;
};

/// The one dynamic-AQP engine interface (the paper's data/query API of
/// Sec. 3.2): bulk load, build, a stream of inserts and deletes, approximate
/// aggregate queries with confidence intervals, and explicit control over
/// catch-up and re-optimization. Every synopsis backend — JanusAQP, the
/// multi-template manager, the RS/SRS/SPN baselines and the static SPT —
/// implements it, so benches, examples and the streaming driver are written
/// once against this class and run against any registered engine.
///
/// Concurrency contract (provided by this base class; no external quiescing
/// required for any engine):
///  - Query()/QueryBatch()/Stats()/Save() are *readers*: any number may run
///    concurrently, against one engine, from any threads.
///  - Insert()/Delete()/StepCatchup()/RunCatchupToGoal() are *updaters*:
///    they exclude readers but run concurrently with each other when the
///    backend's maintenance path is thread-safe (update_concurrency()
///    kConcurrent — janus); otherwise the base class serializes them too.
///  - LoadInitial()/Initialize()/Reinitialize()/Load() are *exclusive*.
/// The two rooms alternate under contention (util/room_lock.h), so a steady
/// update stream cannot starve queries or vice versa. The "sharded:<inner>"
/// engines implement their own, stronger synchronization (per-shard quiesce
/// points give read-your-writes) and opt out of the base locking entirely.
///
/// Subclasses implement the protected *Impl hooks; the public non-virtual
/// API wraps them in the contract above.
class AqpEngine {
 public:
  virtual ~AqpEngine() = default;

  /// How the base class synchronizes this engine.
  enum class UpdateConcurrency {
    kSerial,      ///< base serializes updates (single-threaded backends)
    kConcurrent,  ///< backend accepts concurrent updates (janus)
    kInternal,    ///< fully internally synchronized (sharded); no base locks
  };

  /// Registry name of this engine ("janus", "rs", ...).
  virtual const char* name() const = 0;

  /// Bulk-load historical data without per-update overhead.
  void LoadInitial(const std::vector<Tuple>& rows);

  /// Build the synopsis from the loaded archive.
  void Initialize();

  /// Process one insertion.
  void Insert(const Tuple& t);

  /// Process one deletion by tuple id. Returns false if the id is not live.
  bool Delete(uint64_t id);

  /// Answer one query from the synopsis (never touches the archive).
  QueryResult Query(const AggQuery& q) const;

  /// Answer a whole workload. With a pool, queries fan out over its worker
  /// threads under one read-room hold (the synopsis is read-only during a
  /// batch); without one the batch runs inline. Results are positionally
  /// aligned with `queries`.
  std::vector<QueryResult> QueryBatch(const std::vector<AggQuery>& queries,
                                      ThreadPool* pool = nullptr) const;

  /// Drive background statistics refinement to its goal. No-op for engines
  /// without a catch-up phase.
  void RunCatchupToGoal();

  /// Absorb up to `batch` catch-up samples; returns how many were absorbed
  /// (0 for engines without catch-up).
  size_t StepCatchup(size_t batch);

  /// Full re-optimization / retrain from the current archive. No-op for
  /// engines whose synopsis never moves (rs, srs).
  void Reinitialize();

  /// Uniform counter/memory snapshot.
  EngineStats Stats() const;

  /// Deep structural self-audit (util/invariants.h): walks every index and
  /// synopsis structure the backend owns and throws InvariantViolation with
  /// a description of the first inconsistency found. Runs as a *reader* —
  /// audits never mutate. O(state) per call; intended for debug builds and
  /// the conformance/property suites (see MaybeAuditInvariants in
  /// util/invariants.h for the JANUS_AUDIT_INVARIANTS gate), not for
  /// production hot paths.
  void CheckInvariants() const;

  /// The evolving archive table, when the engine owns one (all built-in
  /// engines do). Exact ground truths in examples run the columnar scan
  /// kernels over table()->store().
  virtual const DynamicTable* table() const { return nullptr; }

  /// The primary partition-tree synopsis, for experiment introspection
  /// (leaf rectangles, tree shape); nullptr for engines without one.
  virtual const Dpt* synopsis() const { return nullptr; }

  // --- snapshot persistence & crash recovery --------------------------------
  //
  // Every built-in backend (sharded compositions included) captures its
  // *complete* operational state: a restored engine answers queries
  // bit-identically to the saved one, and — because samplers, RNGs and index
  // structures round-trip exactly — processing the same update stream after
  // restore reproduces the uninterrupted run exactly. Recovery therefore
  // composes with the broker: snapshot + replayed stream tail == never
  // crashed (see EngineDriver::SaveSnapshot/LoadSnapshot).
  //
  // Concurrency: Save() reads in the read room (concurrent updates are
  // fenced off for the duration); Load() is exclusive. Direct
  // SaveState/LoadState calls bypass the rooms — quiesce externally. The
  // "sharded:*" engines quiesce each shard internally, so a snapshot taken
  // under concurrent ingest is a consistent per-shard cut of everything
  // enqueued before the call.

  /// Serialize complete engine state into `w`. Engines registered at
  /// runtime without an override reject with persist::PersistError.
  virtual void SaveState(persist::Writer* w) const;

  /// Restore state from `r` into an engine constructed with the *same*
  /// EngineConfig (configuration is not part of the snapshot). Throws
  /// persist::PersistError on corrupt or mismatched payloads.
  virtual void LoadState(persist::Reader* r);

  /// Write a versioned, checksummed snapshot file (magic + format version +
  /// FNV-1a checksum; see persist/snapshot.h). `meta.engine` is stamped with
  /// name() automatically; the broker offsets are the caller's. Throws
  /// persist::PersistError on failure; on success the file is complete (the
  /// write is staged through a temp file and renamed).
  void Save(const std::string& path, const SnapshotMeta& meta = {}) const;

  /// Verify and load a snapshot file written by an engine of the same
  /// registry name; returns the recovery metadata (broker offsets at save
  /// time). Throws persist::PersistError on bad magic / version / checksum /
  /// truncation / engine mismatch — never crashes on corrupt input.
  SnapshotMeta Load(const std::string& path);

 protected:
  /// How the base class must synchronize updates for this backend.
  virtual UpdateConcurrency update_concurrency() const {
    return UpdateConcurrency::kSerial;
  }

  // Backend hooks behind the public API above. Implementations may assume
  // the base class has provided the documented synchronization (kInternal
  // engines are called bare and synchronize themselves).
  virtual void LoadInitialImpl(const std::vector<Tuple>& rows) = 0;
  virtual void InitializeImpl() = 0;
  virtual void InsertImpl(const Tuple& t) = 0;
  virtual bool DeleteImpl(uint64_t id) = 0;
  virtual QueryResult QueryImpl(const AggQuery& q) const = 0;
  /// Default: work-stealing fan-out over `pool` calling QueryImpl (already
  /// inside the read room).
  virtual std::vector<QueryResult> QueryBatchImpl(
      const std::vector<AggQuery>& queries, ThreadPool* pool) const;
  virtual void RunCatchupToGoalImpl() {}
  virtual size_t StepCatchupImpl(size_t batch) {
    (void)batch;
    return 0;
  }
  virtual void ReinitializeImpl() {}
  virtual EngineStats StatsImpl() const = 0;
  /// Backend hook behind CheckInvariants(). The default audits the archive
  /// table when the engine exposes one; backends override to walk their
  /// synopsis structures too and then delegate to this base audit.
  virtual void CheckInvariantsImpl() const;

  /// The base-class room lock, for backends that run their own maintenance
  /// threads (the background re-optimization pipeline): such a thread takes
  /// rooms exactly like an external caller — the update room for pipeline
  /// stages that coexist with queries being fenced, the exclusive room for
  /// the adoption swap. nullptr for kInternal engines.
  RoomLock* rooms() const { return base_rooms(); }

 private:
  bool internal() const {
    return update_concurrency() == UpdateConcurrency::kInternal;
  }

  /// The base-class room lock, or nullptr for engines that synchronize
  /// internally (kInternal) and are called bare.
  RoomLock* base_rooms() const {
    return internal() ? nullptr : &rooms_;
  }

  mutable RoomLock rooms_;
  /// Serializes updates among themselves for kSerial backends.
  mutable Mutex update_mu_;
};

}  // namespace janus

#endif  // JANUS_API_ENGINE_H_
