#include "api/config.h"

#include "api/error.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>

namespace janus {

namespace {

std::string StripDashes(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && s[i] == '-') ++i;
  return s.substr(i);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Strict numeric parsing, same rules as scan::ParseScanThreads: the whole
// token must be consumed (trailing whitespace tolerated), errno/end-pointer
// checked. Without this, strtoull-style getters wrap "rows=-1" to 2^64-1
// and read "10x" as 10 with the garbage silently ignored.

bool ParseUnsignedStrict(const std::string& s, uint64_t* out) {
  const char* text = s.c_str();
  const char* p = text;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '-') return false;  // strtoull wraps negatives instead of failing
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == p || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseSignedStrict(const std::string& s, long long* out) {
  const char* text = s.c_str();
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == text || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleStrict(const std::string& s, double* out) {
  const char* text = s.c_str();
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == text || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = v;
  return true;
}

// Warn once per key per process (mirrors the shared scan pool's one-shot
// warning): repeated lookups of the same malformed flag stay quiet.
void WarnBadValueOnce(const std::string& key, const std::string& value,
                      const std::string& fallback) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!warned->insert(key).second) return;
  }
  std::fprintf(stderr,
               "[janus] ArgMap: %s=\"%s\" is not a valid number; using "
               "default %s\n",
               key.c_str(), value.c_str(), fallback.c_str());
}

}  // namespace

ArgMap::ArgMap(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    const size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[StripDashes(tok.substr(0, eq))] = tok.substr(eq + 1);
      continue;
    }
    if (tok.size() > 1 && tok[0] == '-') {
      // "--key value" when a value follows; bare "--flag" means true. A
      // dash-prefixed token still counts as a value when it is a negative
      // number ("--beta -2.5"), not another flag.
      const std::string key = StripDashes(tok);
      const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
      // The next token is this flag's value unless it is another flag
      // (dash-prefixed, negative numbers excepted) or a key=value pair.
      const bool next_is_value =
          next != nullptr &&
          std::string_view(next).find('=') == std::string_view::npos &&
          (next[0] != '-' ||
           std::isdigit(static_cast<unsigned char>(next[1])) ||
           next[1] == '.');
      if (next_is_value) {
        kv_.insert_or_assign(key, std::string(argv[++i]));
      } else {
        // std::string avoids a GCC 12 -Wrestrict false positive (PR105329)
        // on const char* assignment through insert_or_assign.
        kv_.insert_or_assign(key, std::string("1"));
      }
    }
    // Bare positional tokens are ignored.
  }
}

ArgMap::ArgMap(const std::vector<std::string>& tokens) {
  for (const std::string& tok : tokens) {
    const size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[StripDashes(tok.substr(0, eq))] = tok.substr(eq + 1);
    } else if (!tok.empty()) {
      kv_[StripDashes(tok)] = "1";
    }
  }
}

bool ArgMap::Has(const std::string& key) const {
  return kv_.contains(key);
}

std::vector<std::string> ArgMap::Keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

bool ArgMap::TryGetSize(const std::string& key, size_t* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return true;
  uint64_t v = 0;
  if (!ParseUnsignedStrict(it->second, &v)) return false;
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (v > std::numeric_limits<size_t>::max()) return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

bool ArgMap::TryGetInt(const std::string& key, int* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return true;
  long long v = 0;
  if (!ParseSignedStrict(it->second, &v) ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ArgMap::TryGetDouble(const std::string& key, double* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return true;
  double v = 0.0;
  if (!ParseDoubleStrict(it->second, &v)) return false;
  *out = v;
  return true;
}

bool ArgMap::TryGetBool(const std::string& key, bool* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return true;
  const std::string v = Lower(it->second);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    *out = false;
    return true;
  }
  return false;
}

std::string ArgMap::GetString(const std::string& key,
                              const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

size_t ArgMap::GetSize(const std::string& key, size_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  uint64_t v = 0;
  if (!ParseUnsignedStrict(it->second, &v)) {
    WarnBadValueOnce(key, it->second, std::to_string(def));
    return def;
  }
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (v > std::numeric_limits<size_t>::max()) {
      WarnBadValueOnce(key, it->second, std::to_string(def));
      return def;
    }
  }
  return static_cast<size_t>(v);
}

uint64_t ArgMap::GetUint64(const std::string& key, uint64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  uint64_t v = 0;
  if (!ParseUnsignedStrict(it->second, &v)) {
    WarnBadValueOnce(key, it->second, std::to_string(def));
    return def;
  }
  return v;
}

int ArgMap::GetInt(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  long long v = 0;
  if (!ParseSignedStrict(it->second, &v) ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    WarnBadValueOnce(key, it->second, std::to_string(def));
    return def;
  }
  return static_cast<int>(v);
}

double ArgMap::GetDouble(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = 0.0;
  if (!ParseDoubleStrict(it->second, &v)) {
    WarnBadValueOnce(key, it->second, std::to_string(def));
    return def;
  }
  return v;
}

bool ArgMap::GetBool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string v = Lower(it->second);
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return def;
}

std::vector<int> ArgMap::GetIntList(const std::string& key,
                                    std::vector<int> def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<int> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<int>(std::strtol(item.c_str(), nullptr, 10)));
    }
  }
  return out.empty() ? def : out;
}

AggFunc ParseAggFunc(const std::string& name, AggFunc def) {
  const std::string v = Lower(name);
  if (v == "sum") return AggFunc::kSum;
  if (v == "count" || v == "cnt") return AggFunc::kCount;
  if (v == "avg") return AggFunc::kAvg;
  if (v == "min") return AggFunc::kMin;
  if (v == "max") return AggFunc::kMax;
  return def;
}

PartitionAlgorithm ParsePartitionAlgorithm(const std::string& name,
                                           PartitionAlgorithm def) {
  const std::string v = Lower(name);
  if (v == "bs" || v == "binary-search") return PartitionAlgorithm::kBinarySearch;
  if (v == "dp" || v == "dynamic-program") return PartitionAlgorithm::kDynamicProgram;
  if (v == "ed" || v == "equal-depth") return PartitionAlgorithm::kEqualDepth;
  if (v == "kd" || v == "kd-tree") return PartitionAlgorithm::kKdTree;
  return def;
}

const char* PartitionAlgorithmName(PartitionAlgorithm a) {
  switch (a) {
    case PartitionAlgorithm::kBinarySearch:
      return "bs";
    case PartitionAlgorithm::kDynamicProgram:
      return "dp";
    case PartitionAlgorithm::kEqualDepth:
      return "ed";
    case PartitionAlgorithm::kKdTree:
      return "kd";
  }
  return "?";
}

const std::vector<EngineConfig::KeyInfo>& EngineConfig::KnownKeys() {
  static const std::vector<KeyInfo>* keys = new std::vector<KeyInfo>{
      {"engine", "registry backend name (janus, multi, rs, srs, spn, spt, "
                 "sharded:<inner>)"},
      {"agg", "aggregate column index"},
      {"pred", "predicate column indices, comma-separated"},
      {"tracked", "extra tracked aggregate columns (Sec. 5.5)"},
      {"columns", "columns a learned model (SPN) covers"},
      {"leaves", "partition-tree leaf count"},
      {"sample_rate", "synopsis sample rate"},
      {"alpha", "alias of sample_rate"},
      {"catchup_rate", "catch-up sample goal as a table fraction"},
      {"catchup", "alias of catchup_rate"},
      {"confidence", "CI confidence level"},
      {"focus", "optimizer focus aggregate (sum, count, avg, min, max)"},
      {"algorithm", "partitioner (bs, dp, ed, kd)"},
      {"triggers", "re-partitioning triggers on/off (janus)"},
      {"beta", "trigger sensitivity"},
      {"check_interval", "updates between trigger checks"},
      {"starvation", "starvation factor of the trigger policy"},
      {"psi", "partial re-partition subtree size (0 = always full)"},
      {"reopt_mode", "blocking | background re-optimization"},
      {"reopt_delta_tail", "max delta ops left for background adoption"},
      {"strata", "SRS strata count (0 = num_leaves)"},
      {"train_fraction", "fraction of live table a model retrains on"},
      {"shards", "hash-shard count of sharded:* engines"},
      {"scan_threads", "morsel-parallel scan worker cap (0 = all, 1 = "
                       "serial)"},
      {"parallel_min_rows", "scans under this many rows stay serial"},
      {"snapshot_path", "periodic snapshot file (empty = off)"},
      {"snapshot_every", "records between automatic snapshots (0 = off)"},
      {"seed", "RNG seed"},
  };
  return *keys;
}

namespace {

/// Levenshtein distance with early-out; used only for did-you-mean hints on
/// the (cold) unknown-key error path.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

EngineConfig EngineConfig::FromArgs(const ArgMap& args,
                                    const std::vector<std::string>& extra_known) {
  // Collect unknown keys first and fail fast with the whole list: a typo
  // like scan_thread=8 must abort the run, not silently configure nothing.
  std::set<std::string> known;
  for (const KeyInfo& k : KnownKeys()) known.insert(k.key);
  for (const std::string& k : extra_known) known.insert(k);
  std::string unknown;
  for (const std::string& key : args.Keys()) {
    if (known.contains(key)) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += key;
    // Did-you-mean: the closest known key within edit distance 2.
    size_t best = 3;
    const std::string* suggestion = nullptr;
    for (const std::string& cand : known) {
      const size_t d = EditDistance(key, cand);
      if (d < best) {
        best = d;
        suggestion = &cand;
      }
    }
    if (suggestion != nullptr) unknown += " (did you mean " + *suggestion + "?)";
  }
  if (!unknown.empty()) {
    throw ApiException(ApiErrorCode::kUnknownConfigKey,
                       "unknown config keys: " + unknown);
  }

  EngineConfig c;
  c.engine = args.GetString("engine", c.engine);
  c.agg_column = args.GetInt("agg", c.agg_column);
  c.predicate_columns = args.GetIntList("pred", c.predicate_columns);
  c.extra_tracked_columns =
      args.GetIntList("tracked", c.extra_tracked_columns);
  c.model_columns = args.GetIntList("columns", c.model_columns);
  c.num_leaves = args.GetInt("leaves", c.num_leaves);
  c.sample_rate =
      args.GetDouble("sample_rate", args.GetDouble("alpha", c.sample_rate));
  c.catchup_rate =
      args.GetDouble("catchup_rate", args.GetDouble("catchup", c.catchup_rate));
  c.confidence = args.GetDouble("confidence", c.confidence);
  c.focus = ParseAggFunc(args.GetString("focus", ""), c.focus);
  c.algorithm =
      ParsePartitionAlgorithm(args.GetString("algorithm", ""), c.algorithm);
  c.enable_triggers = args.GetBool("triggers", c.enable_triggers);
  c.beta = args.GetDouble("beta", c.beta);
  c.trigger_check_interval =
      args.GetUint64("check_interval", c.trigger_check_interval);
  c.starvation_factor = args.GetDouble("starvation", c.starvation_factor);
  c.partial_repartition_psi = args.GetInt("psi", c.partial_repartition_psi);
  c.reopt_mode = args.GetString("reopt_mode", c.reopt_mode);
  c.reopt_delta_tail = args.GetSize("reopt_delta_tail", c.reopt_delta_tail);
  c.num_strata = args.GetInt("strata", c.num_strata);
  c.train_fraction = args.GetDouble("train_fraction", c.train_fraction);
  c.num_shards = args.GetInt("shards", c.num_shards);
  c.scan_threads = args.GetInt("scan_threads", c.scan_threads);
  c.parallel_min_rows = args.GetSize("parallel_min_rows", c.parallel_min_rows);
  c.snapshot_path = args.GetString("snapshot_path", c.snapshot_path);
  c.snapshot_every = args.GetUint64("snapshot_every", c.snapshot_every);
  c.seed = args.GetUint64("seed", c.seed);
  return c;
}

std::string EngineConfig::ToString() const {
  std::ostringstream os;
  auto list = [](const std::vector<int>& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(v[i]);
    }
    return s;
  };
  os << "engine=" << engine << " agg=" << agg_column
     << " pred=" << list(predicate_columns);
  if (!extra_tracked_columns.empty()) {
    os << " tracked=" << list(extra_tracked_columns);
  }
  if (!model_columns.empty()) os << " columns=" << list(model_columns);
  os << " leaves=" << num_leaves << " sample_rate=" << sample_rate
     << " catchup_rate=" << catchup_rate << " confidence=" << confidence
     << " focus=" << AggFuncName(focus)
     << " algorithm=" << PartitionAlgorithmName(algorithm)
     << " triggers=" << (enable_triggers ? "on" : "off") << " beta=" << beta
     << " check_interval=" << trigger_check_interval
     << " starvation=" << starvation_factor
     << " psi=" << partial_repartition_psi
     << " reopt_mode=" << reopt_mode
     << " reopt_delta_tail=" << reopt_delta_tail;
  if (num_strata > 0) os << " strata=" << num_strata;
  os << " train_fraction=" << train_fraction << " shards=" << num_shards
     << " scan_threads=" << scan_threads
     << " parallel_min_rows=" << parallel_min_rows;
  if (!snapshot_path.empty()) os << " snapshot_path=" << snapshot_path;
  if (snapshot_every > 0) os << " snapshot_every=" << snapshot_every;
  os << " seed=" << seed;
  return os.str();
}

}  // namespace janus
