#include "api/error.h"

#include "persist/serde.h"

namespace janus {

const char* ApiErrorCodeName(ApiErrorCode code) {
  switch (code) {
    case ApiErrorCode::kOk:
      return "ok";
    case ApiErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ApiErrorCode::kUnknownEngine:
      return "unknown_engine";
    case ApiErrorCode::kUnknownConfigKey:
      return "unknown_config_key";
    case ApiErrorCode::kPersistence:
      return "persistence";
    case ApiErrorCode::kRejectedRateLimit:
      return "rejected_rate_limit";
    case ApiErrorCode::kRejectedOverloaded:
      return "rejected_overloaded";
    case ApiErrorCode::kMalformedFrame:
      return "malformed_frame";
    case ApiErrorCode::kNetwork:
      return "network";
    case ApiErrorCode::kBadSpecFile:
      return "bad_spec_file";
    case ApiErrorCode::kUnsupported:
      return "unsupported";
    case ApiErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string ApiError::ToString() const {
  if (ok()) return "ok";
  std::string s = ApiErrorCodeName(code);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

ApiError ApiErrorFromException(const std::exception& e) {
  if (const auto* api = dynamic_cast<const ApiException*>(&e)) {
    return api->error();
  }
  if (dynamic_cast<const persist::PersistError*>(&e) != nullptr) {
    return ApiError{ApiErrorCode::kPersistence, e.what()};
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return ApiError{ApiErrorCode::kInvalidArgument, e.what()};
  }
  return ApiError{ApiErrorCode::kInternal, e.what()};
}

}  // namespace janus
