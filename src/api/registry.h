#ifndef JANUS_API_REGISTRY_H_
#define JANUS_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/engine.h"

namespace janus {

/// Factory signature: build an engine from the unified config.
using EngineFactory =
    std::function<std::unique_ptr<AqpEngine>(const EngineConfig&)>;

/// String-keyed engine factory. The global instance comes pre-loaded with
/// the built-in backends:
///   janus  - JanusAQP: DPT + catch-up + re-partitioning triggers (Sec. 4/5)
///   multi  - multi-template manager: one tree per template (Sec. 5.5)
///   rs     - uniform reservoir-sample baseline (Sec. 6.1.3)
///   srs    - stratified reservoir baseline, fixed equal-depth strata
///   spn    - mini sum-product-network, the DeepDB stand-in
///   spt    - static PASS partition tree, never re-optimized (Sec. 2.3)
/// Additional engines can be registered at runtime (tests do).
class EngineRegistry {
 public:
  /// The process-wide registry with the built-ins registered.
  static EngineRegistry& Global();

  /// Register (or replace) a factory under `name`.
  void Register(const std::string& name, const std::string& description,
                EngineFactory factory);

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;  ///< sorted
  std::string Description(const std::string& name) const;

  /// Create an engine; throws std::invalid_argument for unknown names
  /// (the message lists the registered ones).
  std::unique_ptr<AqpEngine> CreateEngine(const std::string& name,
                                          const EngineConfig& config) const;

  /// Convenience on the global registry.
  static std::unique_ptr<AqpEngine> Create(const std::string& name,
                                           const EngineConfig& config);
  /// Creates config.engine.
  static std::unique_ptr<AqpEngine> Create(const EngineConfig& config);

 private:
  struct Entry {
    std::string description;
    EngineFactory factory;
  };
  std::map<std::string, Entry> engines_;
};

}  // namespace janus

#endif  // JANUS_API_REGISTRY_H_
