#include "api/sharded.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "util/completion_latch.h"
#include "util/invariants.h"
#include "util/mpsc_queue.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace janus {

namespace {

/// Backpressure window per shard: producers stall once a shard falls this
/// many un-applied inserts behind.
constexpr size_t kShardQueueCapacity = 1 << 14;
/// Updates the maintenance thread applies per lock acquisition.
constexpr size_t kApplyBatch = 256;

/// AVG/MIN/MAX merges need each shard's population share for the predicate.
bool NeedsShardCounts(AggFunc f) {
  return f == AggFunc::kAvg || f == AggFunc::kMin || f == AggFunc::kMax;
}

}  // namespace

size_t ShardIndexForId(uint64_t id, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer.
  uint64_t x = id + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

QueryResult MergeShardResults(AggFunc func,
                              const std::vector<QueryResult>& parts,
                              const std::vector<double>& shard_counts) {
  QueryResult merged;
  if (parts.empty()) return merged;

  // Error slots propagate: a merge over any failed shard answer is itself
  // meaningless, so the first shard error becomes the pooled result.
  for (const QueryResult& r : parts) {
    if (!r.ok) return r;
  }

  switch (func) {
    case AggFunc::kSum:
    case AggFunc::kCount: {
      // Linear estimators over a partitioned population: everything adds.
      double ci_sq = 0;
      merged.exact = true;
      for (const QueryResult& r : parts) {
        merged.estimate += r.estimate;
        merged.variance_catchup += r.variance_catchup;
        merged.variance_sample += r.variance_sample;
        ci_sq += r.ci_half_width * r.ci_half_width;
        merged.covered_nodes += r.covered_nodes;
        merged.partial_leaves += r.partial_leaves;
        merged.exact = merged.exact && r.exact;
      }
      merged.ci_half_width = std::sqrt(ci_sq);
      return merged;
    }
    case AggFunc::kAvg: {
      double total = 0;
      for (double c : shard_counts) total += std::max(0.0, c);
      if (total <= 0) return merged;
      double ci_sq = 0;
      merged.exact = true;
      for (size_t i = 0; i < parts.size(); ++i) {
        const double c = i < shard_counts.size() ? shard_counts[i] : 0;
        const QueryResult& r = parts[i];
        merged.covered_nodes += r.covered_nodes;
        merged.partial_leaves += r.partial_leaves;
        if (c <= 0) continue;
        const double w = c / total;
        merged.estimate += w * r.estimate;
        merged.variance_catchup += w * w * r.variance_catchup;
        merged.variance_sample += w * w * r.variance_sample;
        ci_sq += w * w * r.ci_half_width * r.ci_half_width;
        merged.exact = merged.exact && r.exact;
      }
      merged.ci_half_width = std::sqrt(ci_sq);
      return merged;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      // Order statistics: the extremum over contributing shards (those whose
      // count estimate says the predicate region is populated there).
      bool any = false;
      merged.exact = true;
      for (size_t i = 0; i < parts.size(); ++i) {
        const double c = i < shard_counts.size() ? shard_counts[i] : 0;
        const QueryResult& r = parts[i];
        merged.covered_nodes += r.covered_nodes;
        merged.partial_leaves += r.partial_leaves;
        if (c <= 0) continue;
        if (!any) {
          merged.estimate = r.estimate;
        } else if (func == AggFunc::kMin) {
          merged.estimate = std::min(merged.estimate, r.estimate);
        } else {
          merged.estimate = std::max(merged.estimate, r.estimate);
        }
        merged.ci_half_width = std::max(merged.ci_half_width, r.ci_half_width);
        merged.exact = merged.exact && r.exact;
        any = true;
      }
      if (!any) merged.exact = false;
      return merged;
    }
  }
  return merged;
}

/// One shard: an inner engine, its bounded update queue, its maintenance
/// thread, and the two synchronization points every read path uses — the
/// quiesce point (all updates enqueued before now are applied) and the
/// reader/writer lock on the engine itself.
struct ShardedEngine::Shard {
  explicit Shard(std::unique_ptr<AqpEngine> e)
      : engine(std::move(e)), queue(kShardQueueCapacity) {
    worker = std::thread([this] { MaintenanceLoop(); });
  }

  ~Shard() {
    queue.Close();
    worker.join();
  }

  void EnqueueInsert(const Tuple& t) {
    {
      MutexLock lock(&state_mu);
      ++enqueued;
    }
    // Blocks on backpressure; rejected only during shutdown.
    if (!queue.Push(t)) {
      MutexLock lock(&state_mu);
      --enqueued;
    }
  }

  /// The shard's quiesce point: wait until every update enqueued before this
  /// call has been applied. Producers may keep enqueueing; the wait target
  /// is a snapshot, so readers are never starved by a steady write load.
  void Quiesce() const {
    MutexLock lock(&state_mu);
    const uint64_t target = enqueued;
    while (applied < target) applied_cv.Wait(&state_mu);
  }

  void MaintenanceLoop() {
    std::vector<Tuple> batch;
    batch.reserve(kApplyBatch);
    for (;;) {
      batch.clear();
      if (queue.PopBatch(&batch, kApplyBatch) == 0) return;
      {
        WriterMutexLock lock(&engine_mu);
        for (const Tuple& t : batch) engine->Insert(t);
      }
      {
        MutexLock lock(&state_mu);
        applied += batch.size();
      }
      applied_cv.NotifyAll();
    }
  }

  /// Set once at construction; the *pointee* is protected by engine_mu (the
  /// maintenance thread and synchronous mutators hold it unique, read paths
  /// shared).
  std::unique_ptr<AqpEngine> engine PT_GUARDED_BY(engine_mu);
  BoundedMpscQueue<Tuple> queue;
  /// Writers (the maintenance thread, synchronous deletes, re-optimization)
  /// take it unique; queries and stats snapshots share it.
  mutable SharedMutex engine_mu;
  mutable Mutex state_mu;
  mutable CondVar applied_cv;
  uint64_t enqueued GUARDED_BY(state_mu) = 0;
  uint64_t applied GUARDED_BY(state_mu) = 0;
  std::thread worker;
};

ShardedEngine::ShardedEngine(std::string inner_name,
                             const EngineConfig& config)
    : name_("sharded:" + inner_name),
      pool_(static_cast<size_t>(std::max(1, config.num_shards))) {
  const size_t n = static_cast<size_t>(std::max(1, config.num_shards));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EngineConfig shard_cfg = config;
    shard_cfg.engine = inner_name;
    // Decorrelate the shards' sampling streams: pooled-variance merging
    // assumes independent per-shard samples.
    shard_cfg.seed = config.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    shards_.push_back(std::make_unique<Shard>(
        EngineRegistry::Global().CreateEngine(inner_name, shard_cfg)));
  }
}

ShardedEngine::~ShardedEngine() = default;

// Deliberately unlocked test introspection (documented "not quiesced"):
// callers own the quiescence, so the analysis cannot see the protection.
const AqpEngine& ShardedEngine::shard_engine(size_t shard) const
    NO_THREAD_SAFETY_ANALYSIS {
  return *shards_[shard]->engine;
}

void ShardedEngine::ForEachShardParallel(
    const std::function<void(size_t)>& fn) const {
  if (shards_.size() == 1) {
    fn(0);
    return;
  }
  // Per-call latch, not pool-global WaitIdle: concurrent fan-outs (Stats
  // alongside QueryBatch — both readers under the new contract) must not
  // wait on each other's shard tasks.
  CompletionLatch latch(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    pool_.Submit([&fn, &latch, i] {
      fn(i);
      latch.Arrive();
    });
  }
  latch.Wait();
}

void ShardedEngine::LoadInitialImpl(const std::vector<Tuple>& rows) {
  std::vector<std::vector<Tuple>> parts(shards_.size());
  for (auto& p : parts) p.reserve(rows.size() / shards_.size() + 1);
  for (const Tuple& t : rows) {
    parts[ShardIndexForId(t.id, shards_.size())].push_back(t);
  }
  ForEachShardParallel([this, &parts](size_t i) {
    WriterMutexLock lock(&shards_[i]->engine_mu);
    shards_[i]->engine->LoadInitial(parts[i]);
  });
}

void ShardedEngine::InitializeImpl() {
  ForEachShardParallel([this](size_t i) {
    WriterMutexLock lock(&shards_[i]->engine_mu);
    shards_[i]->engine->Initialize();
  });
}

void ShardedEngine::InsertImpl(const Tuple& t) {
  shards_[ShardIndexForId(t.id, shards_.size())]->EnqueueInsert(t);
}

bool ShardedEngine::DeleteImpl(uint64_t id) {
  Shard& shard = *shards_[ShardIndexForId(id, shards_.size())];
  // Drain the shard first so a delete observes every earlier insert of the
  // same id, keeping the not-live return value accurate.
  shard.Quiesce();
  WriterMutexLock lock(&shard.engine_mu);
  return shard.engine->Delete(id);
}

QueryResult ShardedEngine::QueryImpl(const AggQuery& q) const {
  return QueryBatchImpl({q}, nullptr).front();
}

std::vector<QueryResult> ShardedEngine::QueryBatchImpl(
    const std::vector<AggQuery>& queries, ThreadPool* pool) const {
  // The fan-out axis is shards, on the internal pool; an external pool adds
  // nothing here (each shard answers the whole batch under one lock hold).
  (void)pool;
  const size_t n = shards_.size();
  const size_t m = queries.size();
  if (n == 1) {
    // Single shard: the merge is an identity, so skip it (and the COUNT
    // companion queries AVG/MIN/MAX merging would otherwise need).
    Shard& shard = *shards_[0];
    shard.Quiesce();
    ReaderMutexLock lock(&shard.engine_mu);
    return shard.engine->QueryBatch(queries, nullptr);
  }
  std::vector<std::vector<QueryResult>> parts(
      n, std::vector<QueryResult>(m));
  std::vector<std::vector<double>> counts(n, std::vector<double>(m, 0));
  ForEachShardParallel([&, this](size_t s) {
    Shard& shard = *shards_[s];
    shard.Quiesce();
    ReaderMutexLock lock(&shard.engine_mu);
    for (size_t i = 0; i < m; ++i) {
      parts[s][i] = shard.engine->Query(queries[i]);
      if (NeedsShardCounts(queries[i].func)) {
        AggQuery cq = queries[i];
        cq.func = AggFunc::kCount;
        counts[s][i] = shard.engine->Query(cq).estimate;
      }
    }
  });

  std::vector<QueryResult> out;
  out.reserve(m);
  std::vector<QueryResult> column(n);
  std::vector<double> count_column(n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t s = 0; s < n; ++s) {
      column[s] = parts[s][i];
      count_column[s] = counts[s][i];
    }
    out.push_back(MergeShardResults(queries[i].func, column, count_column));
  }
  return out;
}

void ShardedEngine::RunCatchupToGoalImpl() {
  ForEachShardParallel([this](size_t i) {
    shards_[i]->Quiesce();
    WriterMutexLock lock(&shards_[i]->engine_mu);
    shards_[i]->engine->RunCatchupToGoal();
  });
}

size_t ShardedEngine::StepCatchupImpl(size_t batch) {
  // Distribute the budget so the fleet absorbs at most `batch` samples in
  // total, honoring the "up to batch" contract.
  const size_t n = shards_.size();
  const size_t base = batch / n;
  const size_t remainder = batch % n;
  std::vector<size_t> absorbed(n, 0);
  ForEachShardParallel([&, this](size_t i) {
    const size_t budget = base + (i < remainder ? 1 : 0);
    if (budget == 0) return;
    shards_[i]->Quiesce();
    WriterMutexLock lock(&shards_[i]->engine_mu);
    absorbed[i] = shards_[i]->engine->StepCatchup(budget);
  });
  size_t total = 0;
  for (size_t a : absorbed) total += a;
  return total;
}

void ShardedEngine::ReinitializeImpl() {
  ForEachShardParallel([this](size_t i) {
    shards_[i]->Quiesce();
    WriterMutexLock lock(&shards_[i]->engine_mu);
    shards_[i]->engine->Reinitialize();
  });
}

EngineStats ShardedEngine::StatsImpl() const {
  // Coherence: each shard's snapshot is taken at the shard's quiesce point
  // under its reader lock, so per-shard counters are internally consistent
  // and monotone; sums of monotone per-shard counters are monotone.
  std::vector<EngineStats> parts(shards_.size());
  ForEachShardParallel([this, &parts](size_t i) {
    shards_[i]->Quiesce();
    ReaderMutexLock lock(&shards_[i]->engine_mu);
    parts[i] = shards_[i]->engine->Stats();
  });
  EngineStats total;
  total.engine = name_;
  for (const EngineStats& s : parts) {
    total.rows += s.rows;
    total.sample_size += s.sample_size;
    total.num_templates = std::max(total.num_templates, s.num_templates);
    total.inserts += s.inserts;
    total.deletes += s.deletes;
    total.repartitions += s.repartitions;
    total.partial_repartitions += s.partial_repartitions;
    total.partial_repartition_fallbacks += s.partial_repartition_fallbacks;
    total.trigger_checks += s.trigger_checks;
    total.trigger_fires += s.trigger_fires;
    total.reservoir_resamples += s.reservoir_resamples;
    total.background_reopts += s.background_reopts;
    total.background_discards += s.background_discards;
    total.delta_ops_replayed += s.delta_ops_replayed;
    total.catchup_processed += s.catchup_processed;
    total.catchup_processing_seconds += s.catchup_processing_seconds;
    total.parallel_scans += s.parallel_scans;
    total.serial_scans += s.serial_scans;
    total.nested_serial_scans += s.nested_serial_scans;
    total.stolen_morsels += s.stolen_morsels;
    total.archive_bytes += s.archive_bytes;
    total.synopsis_bytes += s.synopsis_bytes;
    // Wall-clock style metrics: the slowest shard bounds the fleet.
    total.last_reopt_seconds =
        std::max(total.last_reopt_seconds, s.last_reopt_seconds);
    total.last_blocking_seconds =
        std::max(total.last_blocking_seconds, s.last_blocking_seconds);
    total.build_seconds = std::max(total.build_seconds, s.build_seconds);
    total.partition_seconds =
        std::max(total.partition_seconds, s.partition_seconds);
  }
  return total;
}

void ShardedEngine::CheckInvariantsImpl() const {
  const size_t n = shards_.size();
  ForEachShardParallel([this, n](size_t s) {
    Shard& shard = *shards_[s];
    shard.Quiesce();
    ReaderMutexLock lock(&shard.engine_mu);
    // The inner engine's own audit first (kInternal engines are called
    // bare, so this runs without re-entering any base-class room)...
    shard.engine->CheckInvariants();
    // ...then shard-disjointness: every tuple this shard archives must hash
    // here, or deletes/queries addressed by id would miss it.
    if (const DynamicTable* table = shard.engine->table()) {
      for (uint64_t id : table->store().ids()) {
        invariants::Require(ShardIndexForId(id, n) == s, "ShardedEngine",
                            "tuple id " + std::to_string(id) +
                                " lives in shard " + std::to_string(s) +
                                " but hashes to shard " +
                                std::to_string(ShardIndexForId(id, n)));
      }
    }
  });
}

void ShardedEngine::SaveState(persist::Writer* w) const {
  w->U32(static_cast<uint32_t>(shards_.size()));
  // Serially, one shard at a time: the writer is a single buffer, and each
  // shard's quiesce + writer lock gives a consistent per-shard cut.
  for (const auto& shard : shards_) {
    shard->Quiesce();
    WriterMutexLock lock(&shard->engine_mu);
    shard->engine->SaveState(w);
  }
}

void ShardedEngine::LoadState(persist::Reader* r) {
  const uint32_t count = r->U32();
  if (count != shards_.size()) {
    throw persist::PersistError(
        "snapshot mismatch: file holds " + std::to_string(count) +
        " shards, engine was created with shards=" +
        std::to_string(shards_.size()));
  }
  for (const auto& shard : shards_) {
    shard->Quiesce();
    WriterMutexLock lock(&shard->engine_mu);
    shard->engine->LoadState(r);
  }
}

void RegisterShardedEngines(EngineRegistry* registry) {
  for (const std::string& base : registry->Names()) {
    if (base.rfind("sharded:", 0) == 0) continue;
    registry->Register(
        "sharded:" + base,
        "hash-sharded (shards=N) over: " + registry->Description(base),
        [base](const EngineConfig& c) {
          return std::make_unique<ShardedEngine>(base, c);
        });
  }
}

}  // namespace janus
