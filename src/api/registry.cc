#include "api/registry.h"

#include <stdexcept>

#include "api/error.h"

namespace janus {

// Defined in engines.cc; fills the registry with the built-in backends.
void RegisterBuiltinEngines(EngineRegistry* registry);
// Defined in sharded.cc; composes "sharded:<name>" over the built-ins.
void RegisterShardedEngines(EngineRegistry* registry);

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* global = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltinEngines(r);
    RegisterShardedEngines(r);
    return r;
  }();
  return *global;
}

void EngineRegistry::Register(const std::string& name,
                              const std::string& description,
                              EngineFactory factory) {
  engines_[name] = Entry{description, std::move(factory)};
}

bool EngineRegistry::Contains(const std::string& name) const {
  return engines_.contains(name);
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, entry] : engines_) names.push_back(name);
  return names;
}

std::string EngineRegistry::Description(const std::string& name) const {
  const auto it = engines_.find(name);
  return it == engines_.end() ? std::string() : it->second.description;
}

std::unique_ptr<AqpEngine> EngineRegistry::CreateEngine(
    const std::string& name, const EngineConfig& config) const {
  const auto it = engines_.find(name);
  if (it == engines_.end()) {
    std::string known;
    for (const auto& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw ApiException(ApiErrorCode::kUnknownEngine,
                       "unknown engine '" + name + "' (registered: " + known +
                           ")");
  }
  return it->second.factory(config);
}

std::unique_ptr<AqpEngine> EngineRegistry::Create(const std::string& name,
                                                  const EngineConfig& config) {
  return Global().CreateEngine(name, config);
}

std::unique_ptr<AqpEngine> EngineRegistry::Create(const EngineConfig& config) {
  return Global().CreateEngine(config.engine, config);
}

}  // namespace janus
