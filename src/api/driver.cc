#include "api/driver.h"

namespace janus {

EngineDriver::EngineDriver(AqpEngine* engine, Broker* broker,
                           EngineDriverOptions opts)
    : engine_(engine), broker_(broker), opts_(opts) {}

size_t EngineDriver::PumpOnce() {
  size_t consumed = 0;

  // Data updates first, so queries in the same round see them (the streams
  // are independent topics; arrival order across topics is per-round).
  std::vector<Tuple> batch;
  const size_t ins = broker_->insert_topic()->Poll(insert_offset_,
                                                   opts_.poll_batch, &batch);
  for (const Tuple& t : batch) engine_->Insert(t);
  insert_offset_ += ins;
  stats_.inserts += ins;
  consumed += ins;

  batch.clear();
  const size_t del = broker_->delete_topic()->Poll(delete_offset_,
                                                   opts_.poll_batch, &batch);
  for (const Tuple& t : batch) engine_->Delete(t.id);
  delete_offset_ += del;
  stats_.deletes += del;
  consumed += del;

  if (opts_.catchup_step > 0) engine_->StepCatchup(opts_.catchup_step);

  // Periodic snapshots: count data records only (queries carry no state).
  if (opts_.snapshot_every > 0 && !opts_.snapshot_path.empty()) {
    records_since_snapshot_ += ins + del;
    if (records_since_snapshot_ >= opts_.snapshot_every) {
      SaveSnapshot(opts_.snapshot_path);
      records_since_snapshot_ = 0;
    }
  }

  std::vector<AggQuery> queries;
  const size_t qs = broker_->query_topic()->Poll(query_offset_,
                                                 opts_.poll_batch, &queries);
  for (const AggQuery& q : queries) results_.push_back(engine_->Query(q));
  query_offset_ += qs;
  stats_.queries += qs;
  consumed += qs;

  return consumed;
}

std::vector<QueryResult> EngineDriver::TakeResults() {
  std::vector<QueryResult> out;
  out.swap(results_);
  return out;
}

size_t EngineDriver::Drain() {
  size_t total = 0;
  while (true) {
    const size_t n = PumpOnce();
    if (n == 0) break;
    total += n;
  }
  return total;
}

void EngineDriver::SaveSnapshot(const std::string& path) const {
  SnapshotMeta meta;
  meta.insert_offset = insert_offset_;
  meta.delete_offset = delete_offset_;
  meta.query_offset = query_offset_;
  engine_->Save(path, meta);
}

void EngineDriver::LoadSnapshot(const std::string& path) {
  const SnapshotMeta meta = engine_->Load(path);
  insert_offset_ = meta.insert_offset;
  delete_offset_ = meta.delete_offset;
  query_offset_ = meta.query_offset;
  records_since_snapshot_ = 0;
}

}  // namespace janus
