#ifndef JANUS_API_DRIVER_H_
#define JANUS_API_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/config.h"
#include "api/engine.h"
#include "stream/broker.h"

namespace janus {

struct EngineDriverOptions {
  /// Max records pulled from each topic per poll round.
  size_t poll_batch = 4096;
  /// Catch-up samples absorbed after each pump round (0 disables).
  size_t catchup_step = 0;
  /// Automatic snapshotting: after every `snapshot_every` data records
  /// (inserts + deletes) the driver writes the engine plus its consumer
  /// offsets to `snapshot_path`. 0 / empty disables.
  std::string snapshot_path;
  uint64_t snapshot_every = 0;

  /// Pull the snapshot knobs out of an EngineConfig.
  static EngineDriverOptions FromConfig(const EngineConfig& cfg) {
    EngineDriverOptions o;
    o.snapshot_path = cfg.snapshot_path;
    o.snapshot_every = cfg.snapshot_every;
    return o;
  }
};

struct EngineDriverStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t queries = 0;
};

/// Consumes a Broker's insert/delete/query request streams (Sec. 3.2)
/// through the AqpEngine interface, so the full streaming scenario runs
/// against any registered backend. The driver is a plain consumer: it owns
/// its offsets, polls in batches, applies data updates in arrival order and
/// answers query requests from the synopsis, collecting results in
/// query-topic order.
class EngineDriver {
 public:
  EngineDriver(AqpEngine* engine, Broker* broker,
               EngineDriverOptions opts = {});

  /// One poll round over the three topics. Returns the number of records
  /// consumed (0 means the streams are drained).
  size_t PumpOnce();

  /// Pump until every topic is exhausted; returns total records consumed.
  size_t Drain();

  const EngineDriverStats& stats() const { return stats_; }

  /// Answers to the consumed query requests, in query-topic order. The
  /// buffer grows with every polled query until TakeResults() drains it —
  /// long-running consumers that only peek leak results forever, which is
  /// why the accessor is deprecated in favor of the drain API (the serving
  /// tier is drain-only).
  [[deprecated(
      "results() accumulates without bound; drain with TakeResults() and use "
      "pending_results() for the buffered count")]]
  const std::vector<QueryResult>& results() const { return results_; }

  /// Number of results currently buffered (waiting for TakeResults()).
  size_t pending_results() const { return results_.size(); }

  /// Move the accumulated results out and clear the buffer. Long-running
  /// drivers must drain periodically — results() otherwise grows linearly
  /// in query count forever. Offsets, stats and snapshot semantics are
  /// unaffected: a snapshot taken after a drain records the same offsets it
  /// would have with the results still buffered (results are derived data
  /// and are not part of the snapshot).
  std::vector<QueryResult> TakeResults();

  // --- snapshot persistence & crash recovery --------------------------------

  uint64_t insert_offset() const { return insert_offset_; }
  uint64_t delete_offset() const { return delete_offset_; }
  uint64_t query_offset() const { return query_offset_; }

  /// Write the engine's state plus this driver's consumer offsets to `path`
  /// (AqpEngine::Save with the offsets as recovery metadata). Call between
  /// pump rounds — the driver applies updates synchronously, so the snapshot
  /// is an exact cut of the consumed stream prefix.
  void SaveSnapshot(const std::string& path) const;

  /// Restore engine state and consumer offsets from a snapshot. The next
  /// PumpOnce()/Drain() replays the stream tail past the recorded offsets;
  /// because engine state round-trips bit-exactly, the recovered run is
  /// indistinguishable from one that never stopped. Throws
  /// persist::PersistError on corrupt or mismatched snapshots.
  void LoadSnapshot(const std::string& path);

 private:
  AqpEngine* engine_;
  Broker* broker_;
  EngineDriverOptions opts_;
  uint64_t insert_offset_ = 0;
  uint64_t delete_offset_ = 0;
  uint64_t query_offset_ = 0;
  uint64_t records_since_snapshot_ = 0;
  EngineDriverStats stats_;
  std::vector<QueryResult> results_;
};

}  // namespace janus

#endif  // JANUS_API_DRIVER_H_
