#ifndef JANUS_API_DRIVER_H_
#define JANUS_API_DRIVER_H_

#include <cstdint>
#include <vector>

#include "api/engine.h"
#include "stream/broker.h"

namespace janus {

struct EngineDriverOptions {
  /// Max records pulled from each topic per poll round.
  size_t poll_batch = 4096;
  /// Catch-up samples absorbed after each pump round (0 disables).
  size_t catchup_step = 0;
};

struct EngineDriverStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t queries = 0;
};

/// Consumes a Broker's insert/delete/query request streams (Sec. 3.2)
/// through the AqpEngine interface, so the full streaming scenario runs
/// against any registered backend. The driver is a plain consumer: it owns
/// its offsets, polls in batches, applies data updates in arrival order and
/// answers query requests from the synopsis, collecting results in
/// query-topic order.
class EngineDriver {
 public:
  EngineDriver(AqpEngine* engine, Broker* broker,
               EngineDriverOptions opts = {});

  /// One poll round over the three topics. Returns the number of records
  /// consumed (0 means the streams are drained).
  size_t PumpOnce();

  /// Pump until every topic is exhausted; returns total records consumed.
  size_t Drain();

  const EngineDriverStats& stats() const { return stats_; }

  /// Answers to the consumed query requests, in query-topic order.
  const std::vector<QueryResult>& results() const { return results_; }

 private:
  AqpEngine* engine_;
  Broker* broker_;
  EngineDriverOptions opts_;
  uint64_t insert_offset_ = 0;
  uint64_t delete_offset_ = 0;
  uint64_t query_offset_ = 0;
  EngineDriverStats stats_;
  std::vector<QueryResult> results_;
};

}  // namespace janus

#endif  // JANUS_API_DRIVER_H_
