#ifndef JANUS_API_ERROR_H_
#define JANUS_API_ERROR_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace janus {

/// Stable numeric error codes of the public engine API. These are the codes
/// in-process callers, EngineDriver and the networked serving tier all
/// report — the wire protocol carries the numeric value verbatim, so the
/// enumerators must never be renumbered, only appended to.
enum class ApiErrorCode : uint32_t {
  kOk = 0,
  /// Malformed request: predicate/rectangle dimension mismatch, empty
  /// predicate set, unknown aggregate — the caller's input is wrong.
  kInvalidArgument = 1,
  /// Engine name not present in the registry.
  kUnknownEngine = 2,
  /// EngineConfig parsing saw keys outside the known-key registry.
  kUnknownConfigKey = 3,
  /// Snapshot persistence failure (persist::PersistError routed through the
  /// typed surface): bad magic/version/checksum, truncation, I/O.
  kPersistence = 4,
  /// Admission control: the tenant exceeded its configured token-bucket
  /// rate; retry after backing off. Never accompanies dropped connections.
  kRejectedRateLimit = 5,
  /// Admission control: the server's max_inflight cap is full.
  kRejectedOverloaded = 6,
  /// Wire frame failed validation (magic/version/length/checksum) or the
  /// payload did not decode as the declared message type.
  kMalformedFrame = 7,
  /// Transport-level failure (connect/read/write on the socket).
  kNetwork = 8,
  /// Workload spec file failed to parse (unknown key, malformed value,
  /// unknown distribution, missing file).
  kBadSpecFile = 9,
  /// The operation is not supported by this engine/server configuration.
  kUnsupported = 10,
  /// An unexpected exception escaped a backend; detail carries what().
  kInternal = 11,
};

/// Stable lower-case token for a code ("ok", "rejected_rate_limit", ...).
const char* ApiErrorCodeName(ApiErrorCode code);

/// The one error value of the public API: a stable code plus a
/// human-readable detail string. Returned by value on paths that must not
/// throw (the wire boundary, QueryResult's error slot) and carried by
/// ApiException on paths that do.
struct ApiError {
  ApiErrorCode code = ApiErrorCode::kOk;
  std::string detail;

  bool ok() const { return code == ApiErrorCode::kOk; }
  /// "rejected_rate_limit: tenant 7 over 100 req/s" style rendering.
  std::string ToString() const;

  static ApiError Ok() { return ApiError{}; }
};

/// Exception form of ApiError for the in-process API surfaces that fail by
/// throwing (registry lookup, config parsing, spec files, client transport
/// errors). Derives from std::invalid_argument so pre-existing catch sites
/// for argument-shaped failures keep working; the typed code is what the
/// serving tier puts on the wire instead of the what() string.
class ApiException : public std::invalid_argument {
 public:
  explicit ApiException(ApiError error)
      : std::invalid_argument(error.ToString()), error_(std::move(error)) {}
  ApiException(ApiErrorCode code, std::string detail)
      : ApiException(ApiError{code, std::move(detail)}) {}

  const ApiError& error() const { return error_; }
  ApiErrorCode code() const { return error_.code; }

 private:
  ApiError error_;
};

/// Map an arbitrary in-flight exception onto the typed surface:
/// ApiException keeps its code, persist::PersistError becomes kPersistence,
/// std::invalid_argument becomes kInvalidArgument, anything else kInternal.
/// This is how the engine facade and the server guarantee that no backend
/// exception ever crosses the API (or the wire) untyped.
ApiError ApiErrorFromException(const std::exception& e);

}  // namespace janus

#endif  // JANUS_API_ERROR_H_
